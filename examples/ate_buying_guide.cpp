// ATE buying guide: given an SOC and an upgrade budget, should you buy
// more tester channels or deeper vector memory? Reproduces the
// Section-7 economics analysis as a reusable decision helper.
//
// The candidate upgrades are independent optimizations of the same SOC,
// so they form one ScenarioSpec (one SOC x four named cells) whose
// expansion runs as a batch (baseline + options A/B/C) instead of four
// back-to-back optimizer calls.
//
// Usage: ate_buying_guide [budget-usd]   (default: $48,000, the paper's
// cost of doubling a 512-channel tester's memory)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "ate/cost.hpp"
#include "batch/batch_runner.hpp"
#include "common/format.hpp"
#include "report/table.hpp"
#include "scenario/scenario_spec.hpp"

namespace {

using namespace mst;

CellPoint upgrade_cell(const std::string& label, ChannelCount channels, CycleCount depth)
{
    CellPoint point;
    point.label = label;
    point.cell.ate.channels = channels;
    point.cell.ate.vector_memory_depth = depth;
    return point;
}

} // namespace

int main(int argc, char** argv)
{
    const UsDollars budget = (argc > 1) ? std::atof(argv[1]) : 48'000.0;
    const AteCostModel prices;

    const AteSpec base; // 512 channels x 7M

    // Option A: spend everything on channels.
    const ChannelCount extra = prices.channels_for_budget(budget);

    // Option B: spend on memory doublings (each doubling covers all
    // channels; repeat while the budget allows).
    CycleCount depth = base.vector_memory_depth;
    UsDollars remaining = budget;
    while (remaining >= prices.memory_doubling(base) && depth < 64 * mebi) {
        remaining -= prices.memory_doubling(base);
        depth *= 2;
    }

    // Option C: an even split.
    const ChannelCount half_extra = prices.channels_for_budget(budget / 2);
    CycleCount half_depth = base.vector_memory_depth;
    if (budget / 2 >= prices.memory_doubling(base)) {
        half_depth *= 2;
    }

    ScenarioSpec spec;
    spec.name = "ate-buying-guide";
    spec.socs.push_back(SocSource::by_spec("pnx8550"));
    spec.cells = {
        upgrade_cell("baseline", base.channels, base.vector_memory_depth),
        upgrade_cell("A: channels", base.channels + extra, base.vector_memory_depth),
        upgrade_cell("B: memory", base.channels, depth),
        upgrade_cell("C: split", base.channels + half_extra, half_depth),
    };
    spec.variants.push_back({"plain", {}});
    const std::vector<BatchResult> results = run_batch(expand(spec));
    for (const BatchResult& result : results) {
        if (!result.ok()) {
            std::cerr << result.label << ": " << result.error << '\n';
            return 1;
        }
    }
    const double base_throughput = results[0].solution->best_throughput();

    std::cout << "upgrade budget: " << format_dollars(budget) << " (channel: "
              << format_dollars(prices.channel_cost) << " each; memory doubling: "
              << format_dollars(prices.memory_doubling_cost_per_channel) << "/channel)\n";
    std::cout << "baseline: " << base.channels << " channels x "
              << format_depth(base.vector_memory_depth) << " -> "
              << format_throughput(base_throughput) << " devices/hour\n\n";

    Table table({"option", "ATE", "D_th", "gain"});
    const auto gain = [base_throughput](double value) {
        char text[32];
        std::snprintf(text, sizeof text, "%+.1f%%", 100.0 * (value / base_throughput - 1.0));
        return std::string(text);
    };
    const auto throughput_of = [&results](std::size_t i) {
        return results[i].solution->best_throughput();
    };
    table.add_row({"A: channels", std::to_string(base.channels + extra) + " x " +
                                      format_depth(base.vector_memory_depth),
                   format_throughput(throughput_of(1)), gain(throughput_of(1))});
    table.add_row({"B: memory", std::to_string(base.channels) + " x " + format_depth(depth),
                   format_throughput(throughput_of(2)), gain(throughput_of(2))});
    table.add_row({"C: split", std::to_string(base.channels + half_extra) + " x " +
                                   format_depth(half_depth),
                   format_throughput(throughput_of(3)), gain(throughput_of(3))});
    std::cout << table << '\n';

    const double channels_throughput = throughput_of(1);
    const double memory_throughput = throughput_of(2);
    const double split_throughput = throughput_of(3);
    const double best = std::max({channels_throughput, memory_throughput, split_throughput});
    std::cout << "recommendation: option "
              << (best == channels_throughput ? 'A' : best == memory_throughput ? 'B' : 'C')
              << " for this SOC and budget.\n"
              << "(The paper found memory depth the better buy for its PNX8550 data;\n"
              << " the answer genuinely depends on the SOC's channel/depth staircase.)\n";
    return 0;
}
