// Production-line planning: the paper's Section-3 two-step flow (wafer
// test through E-RPCT, final test through all pins) combined with the
// wafer-periphery losses the paper mentions and sets aside.
//
// For the d695 benchmark on a real 300 mm wafer, this example prints the
// full line plan: on-chip DfT, wafer multi-site with periphery-corrected
// throughput, final-test sites, line balance, and tester-seconds per
// shipped device.
#include <iostream>

#include "common/format.hpp"
#include "flow/test_flow.hpp"
#include "flow/wafer.hpp"
#include "report/table.hpp"
#include "soc/profiles.hpp"

int main()
{
    using namespace mst;

    const Soc soc = make_benchmark_soc("d695");

    TestCell wafer_cell;
    wafer_cell.ate.channels = 256;
    wafer_cell.ate.vector_memory_depth = 64 * kibi;

    FinalTestCell final_cell;
    final_cell.channels = 1024;
    final_cell.max_handler_sites = 8;

    FlowOptions options;
    options.wafer.yields.manufacturing_yield = 0.85;
    options.final_retest = FinalRetest::through_erpct;
    options.packaged_yield = 0.98;

    const FlowPlan plan = plan_flow(soc, wafer_cell, final_cell, options);

    std::cout << "=== stage 1: wafer test (E-RPCT interface) ===\n";
    std::cout << "sites: " << plan.wafer.sites << ", k = "
              << plan.wafer_solution.channels_per_site << " channels/site, touchdown "
              << format_seconds(plan.wafer.touchdown_time) << ", ideal "
              << format_throughput(plan.wafer.devices_per_hour) << " dies/hour\n";

    // Periphery correction on a 300 mm wafer with 8x8 mm dies.
    WaferSpec wafer;
    wafer.die_width_mm = 8.0;
    wafer.die_height_mm = 8.0;
    const ProbeHeadLayout head = best_head_layout(wafer, plan.wafer.sites);
    const WaferProbePlan probing = plan_wafer_probing(wafer, head);
    const DevicesPerHour corrected =
        effective_throughput(plan.wafer.devices_per_hour, plan.wafer.sites, probing);
    std::cout << "wafer map: " << probing.dies_on_wafer << " dies, probe head "
              << head.sites_x << "x" << head.sites_y << ", " << probing.touchdowns
              << " touchdowns, utilization "
              << static_cast<int>(100.0 * probing.utilization) << "%\n";
    std::cout << "periphery-corrected throughput: " << format_throughput(corrected)
              << " dies/hour (paper ignores this loss)\n\n";

    std::cout << "=== stage 2: final test (all "
              << plan.wafer_solution.erpct.functional_pins +
                     plan.wafer_solution.erpct.control_pads
              << " pins, internal re-test via E-RPCT) ===\n";
    std::cout << "sites: " << plan.final.sites << ", touchdown "
              << format_seconds(plan.final.touchdown_time) << ", "
              << format_throughput(plan.final.devices_per_hour) << " parts/hour\n\n";

    std::cout << "=== line plan ===\n";
    Table table({"metric", "value"});
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2f", plan.final_testers_per_wafer_tester);
    table.add_row({"final testers per wafer tester", ratio});
    table.add_row({"tester-seconds per shipped device",
                   format_seconds(plan.tester_seconds_per_shipped_device)});
    table.add_row({"die yield assumed", "85%"});
    table.add_row({"packaged yield assumed", "98%"});
    std::cout << table;
    return 0;
}
