// Quickstart: load a benchmark SOC, describe the tester, run the
// two-step optimizer, and print the resulting test infrastructure.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "common/format.hpp"
#include "core/optimizer.hpp"
#include "soc/profiles.hpp"

int main()
{
    using namespace mst;

    // 1. The SOC under test: the ITC'02 benchmark d695 ships with the
    //    library; .soc files can be loaded with load_soc_file().
    const Soc soc = make_benchmark_soc("d695");

    // 2. The fixed test cell: a modest 256-channel ATE with 64K vectors
    //    per channel, a 5 MHz test clock, and a typical probe station.
    TestCell cell;
    cell.ate.channels = 256;
    cell.ate.vector_memory_depth = 64 * kibi;
    cell.ate.test_clock_hz = 5e6;
    cell.prober.index_time = 0.5;        // seconds per touchdown
    cell.prober.contact_test_time = 0.001;

    // 3. Optimize. Default options: no stimuli broadcast, no
    //    abort-on-fail, no re-testing, perfect yields.
    const Solution solution = optimize_multi_site(soc, cell);

    // 4. Read the answer.
    std::cout << "SOC " << solution.soc_name << ":\n"
              << "  optimal sites        n = " << solution.sites << "\n"
              << "  channels per site    k = " << solution.channels_per_site << "\n"
              << "  test length            = " << solution.test_cycles << " cycles ("
              << format_seconds(solution.manufacturing_time) << ")\n"
              << "  throughput           D = "
              << format_throughput(solution.best_throughput()) << " devices/hour\n\n";

    std::cout << "per-site TAM plan:\n";
    int index = 0;
    for (const GroupSummary& group : solution.groups) {
        std::cout << "  TAM " << ++index << ": " << group.wires << " wires ("
                  << group.channels << " channels), fill " << group.fill << " cycles:";
        for (const std::string& name : group.module_names) {
            std::cout << ' ' << name;
        }
        std::cout << '\n';
    }

    std::cout << "\nE-RPCT wrapper: " << solution.erpct.external_channels
              << " test pins in/out, " << solution.erpct.contacted_pads()
              << " pads contacted at wafer probe, ~"
              << static_cast<long>(solution.erpct.area_gate_equivalents())
              << " gate equivalents of DfT\n";
    return 0;
}
