// Problem 2 of the paper: a flattened (non-modular) SOC. The "test
// architecture" degenerates to a single channel group, and the E-RPCT
// wrapper parameters are the whole answer: how many test pins to expose
// and how the internal scan chains map onto them.
#include <iostream>

#include "common/format.hpp"
#include "core/optimizer.hpp"
#include "report/table.hpp"
#include "wrapper/wrapper_design.hpp"

int main()
{
    using namespace mst;

    // A flattened SOC: the whole chip is one module with 64 internal
    // scan chains of ~200 flip-flops and 5,000 top-level test patterns.
    std::vector<FlipFlopCount> chains;
    for (int c = 0; c < 64; ++c) {
        chains.push_back(180 + (c * 7) % 40); // 180..219, deterministic mix
    }
    const Soc soc("flatchip", {Module("flatchip", 120, 96, 16, 5000, std::move(chains))});

    TestCell cell;
    cell.ate.channels = 256;
    cell.ate.vector_memory_depth = 2 * mebi;
    cell.ate.test_clock_hz = 10e6;

    // Sweep the three problem variants the paper defines for Problem 2.
    Table table({"variant", "n_opt", "k", "t_m", "D_th or D^u_th"});
    for (int variant = 0; variant < 3; ++variant) {
        OptimizeOptions options;
        std::string name;
        switch (variant) {
        case 0:
            name = "plain";
            break;
        case 1:
            name = "stimuli broadcast";
            options.broadcast = BroadcastMode::stimuli;
            break;
        default:
            name = "re-test, p_c = 0.999";
            options.retest = RetestPolicy::retest_contact_failures;
            options.yields.contact_yield_per_terminal = 0.999;
            break;
        }
        const Solution solution = optimize_multi_site(soc, cell, options);
        table.add_row({name, std::to_string(solution.sites),
                       std::to_string(solution.channels_per_site),
                       format_seconds(solution.manufacturing_time),
                       format_throughput(solution.best_throughput())});
    }
    std::cout << table << '\n';

    // Show the physical wrapper for the plain variant: which scan chains
    // concatenate onto which of the k/2 wrapper chains.
    const Solution solution = optimize_multi_site(soc, cell);
    const WrapperDesign wrapper =
        design_wrapper(soc.module(0), wires_from_channels(solution.channels_per_site));
    std::cout << "E-RPCT wrapper detail (" << solution.channels_per_site << " pins -> "
              << wrapper.width << " wrapper chains):\n";
    std::cout << "  max scan-in " << wrapper.max_scan_in << " bits, max scan-out "
              << wrapper.max_scan_out << " bits, test " << wrapper.test_time << " cycles\n";
    for (std::size_t c = 0; c < std::min<std::size_t>(4, wrapper.chains.size()); ++c) {
        const WrapperChain& chain = wrapper.chains[c];
        std::cout << "  chain " << c << ": " << chain.scan_chain_indices.size()
                  << " internal chains, " << chain.scan_flip_flops << " FFs, +"
                  << chain.input_cells << " in-cells, +" << chain.output_cells
                  << " out-cells\n";
    }
    std::cout << "  ... (" << wrapper.chains.size() << " chains total)\n";
    return 0;
}
