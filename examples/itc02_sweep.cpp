// Sweep all shipped ITC'02 benchmark SOCs across a grid of testers and
// report the optimal multi-site configuration for each -- the kind of
// what-if table a test engineer builds when choosing a floor tester.
#include <iostream>

#include "common/format.hpp"
#include "core/optimizer.hpp"
#include "report/table.hpp"
#include "soc/profiles.hpp"

int main()
{
    using namespace mst;

    struct TesterChoice {
        const char* name;
        ChannelCount channels;
        CycleCount depth;
    };
    const TesterChoice testers[] = {
        {"budget  (256 ch x 32M)", 256, 32 * mebi},
        {"midsize (512 ch x 8M)", 512, 8 * mebi},
        {"big-mem (512 ch x 32M)", 512, 32 * mebi},
        {"monster (1024 ch x 16M)", 1024, 16 * mebi},
    };

    for (const std::string soc_name : {"d695", "p22810", "p34392", "p93791"}) {
        const Soc soc = make_benchmark_soc(soc_name);
        std::cout << "=== " << soc_name << " ===\n";
        Table table({"tester", "k/site", "n_opt", "t_m", "D_th"});
        for (const TesterChoice& tester : testers) {
            TestCell cell;
            cell.ate.channels = tester.channels;
            cell.ate.vector_memory_depth = tester.depth;
            cell.ate.test_clock_hz = 20e6; // modern 20 MHz scan clock

            OptimizeOptions options;
            options.broadcast = BroadcastMode::stimuli;
            const Solution solution = optimize_multi_site(soc, cell, options);
            table.add_row({tester.name, std::to_string(solution.channels_per_site),
                           std::to_string(solution.sites),
                           format_seconds(solution.manufacturing_time),
                           format_throughput(solution.best_throughput())});
        }
        std::cout << table << '\n';
    }
    std::cout << "All four SOCs prefer deep memory over raw channel count once the\n"
                 "interface is narrow enough -- the paper's Section 7 message.\n";
    return 0;
}
