// Sweep all shipped ITC'02 benchmark SOCs across a grid of testers and
// report the optimal multi-site configuration for each -- the kind of
// what-if table a test engineer builds when choosing a floor tester.
//
// The grid is one declarative ScenarioSpec (SOC sources x named cells x
// one broadcast variant); expand() produces the 16 scenarios in
// soc-major order and run_batch fans them out across a thread pool.
// Results come back in input order, so the report reads them off grid
// position.
#include <iostream>
#include <vector>

#include "batch/batch_runner.hpp"
#include "common/format.hpp"
#include "report/table.hpp"
#include "scenario/scenario_spec.hpp"

int main()
{
    using namespace mst;

    struct TesterChoice {
        const char* name;
        ChannelCount channels;
        CycleCount depth;
    };
    const std::vector<TesterChoice> testers = {
        {"budget  (256 ch x 32M)", 256, 32 * mebi},
        {"midsize (512 ch x 8M)", 512, 8 * mebi},
        {"big-mem (512 ch x 32M)", 512, 32 * mebi},
        {"monster (1024 ch x 16M)", 1024, 16 * mebi},
    };
    const std::vector<std::string> soc_names = {"d695", "p22810", "p34392", "p93791"};

    ScenarioSpec spec;
    spec.name = "itc02-tester-sweep";
    for (const std::string& soc_name : soc_names) {
        spec.socs.push_back(SocSource::by_spec(soc_name));
    }
    for (const TesterChoice& tester : testers) {
        CellPoint cell;
        cell.label = tester.name;
        cell.cell.ate.channels = tester.channels;
        cell.cell.ate.vector_memory_depth = tester.depth;
        cell.cell.ate.test_clock_hz = 20e6; // modern 20 MHz scan clock
        spec.cells.push_back(cell);
    }
    OptionVariant broadcast;
    broadcast.label = "broadcast";
    broadcast.options.broadcast = BroadcastMode::stimuli;
    spec.variants.push_back(broadcast);

    const std::vector<BatchResult> results = run_batch(expand(spec));

    std::size_t slot = 0;
    for (const std::string& soc_name : soc_names) {
        std::cout << "=== " << soc_name << " ===\n";
        Table table({"tester", "k/site", "n_opt", "t_m", "D_th"});
        for (std::size_t t = 0; t < testers.size(); ++t, ++slot) {
            const BatchResult& result = results[slot];
            if (!result.ok()) {
                table.add_row({testers[t].name, "-", "-", "-", result.error});
                continue;
            }
            const Solution& solution = *result.solution;
            table.add_row({testers[t].name, std::to_string(solution.channels_per_site),
                           std::to_string(solution.sites),
                           format_seconds(solution.manufacturing_time),
                           format_throughput(solution.best_throughput())});
        }
        std::cout << table << '\n';
    }
    std::cout << "All four SOCs prefer deep memory over raw channel count once the\n"
                 "interface is narrow enough -- the paper's Section 7 message.\n";
    return 0;
}
