// Sweep all shipped ITC'02 benchmark SOCs across a grid of testers and
// report the optimal multi-site configuration for each -- the kind of
// what-if table a test engineer builds when choosing a floor tester.
//
// The 16 scenarios are independent, so they fan out across a BatchRunner
// thread pool instead of a sequential loop; results come back in input
// order, so the report below reads them off grid position.
#include <iostream>
#include <memory>
#include <vector>

#include "batch/batch_runner.hpp"
#include "common/format.hpp"
#include "report/table.hpp"
#include "soc/profiles.hpp"

int main()
{
    using namespace mst;

    struct TesterChoice {
        const char* name;
        ChannelCount channels;
        CycleCount depth;
    };
    const std::vector<TesterChoice> testers = {
        {"budget  (256 ch x 32M)", 256, 32 * mebi},
        {"midsize (512 ch x 8M)", 512, 8 * mebi},
        {"big-mem (512 ch x 32M)", 512, 32 * mebi},
        {"monster (1024 ch x 16M)", 1024, 16 * mebi},
    };
    const std::vector<std::string> soc_names = {"d695", "p22810", "p34392", "p93791"};

    std::vector<BatchScenario> scenarios;
    for (const std::string& soc_name : soc_names) {
        const std::shared_ptr<const Soc> soc = share_soc(make_benchmark_soc(soc_name));
        for (const TesterChoice& tester : testers) {
            BatchScenario scenario;
            scenario.label = tester.name;
            scenario.soc = soc;
            scenario.cell.ate.channels = tester.channels;
            scenario.cell.ate.vector_memory_depth = tester.depth;
            scenario.cell.ate.test_clock_hz = 20e6; // modern 20 MHz scan clock
            scenario.options.broadcast = BroadcastMode::stimuli;
            scenarios.push_back(std::move(scenario));
        }
    }

    const std::vector<BatchResult> results = run_batch(scenarios);

    std::size_t slot = 0;
    for (const std::string& soc_name : soc_names) {
        std::cout << "=== " << soc_name << " ===\n";
        Table table({"tester", "k/site", "n_opt", "t_m", "D_th"});
        for (std::size_t t = 0; t < testers.size(); ++t, ++slot) {
            const BatchResult& result = results[slot];
            if (!result.ok()) {
                table.add_row({result.label, "-", "-", "-", result.error});
                continue;
            }
            const Solution& solution = *result.solution;
            table.add_row({result.label, std::to_string(solution.channels_per_site),
                           std::to_string(solution.sites),
                           format_seconds(solution.manufacturing_time),
                           format_throughput(solution.best_throughput())});
        }
        std::cout << table << '\n';
    }
    std::cout << "All four SOCs prefer deep memory over raw channel count once the\n"
                 "interface is narrow enough -- the paper's Section 7 message.\n";
    return 0;
}
