// The paper's flagship scenario: wafer testing the Philips PNX8550
// Nexperia home-platform chip (62 logic + 212 memory modules, here a
// calibrated synthetic reconstruction) on a 512-channel ATE.
//
// Walks the whole Section 6/7 story: Step 1, Step 2, broadcast vs
// private stimuli, and what the site/throughput trade-off looks like.
#include <iostream>

#include "common/format.hpp"
#include "core/optimizer.hpp"
#include "report/table.hpp"
#include "soc/profiles.hpp"

int main()
{
    using namespace mst;

    const Soc soc = make_benchmark_soc("pnx8550");
    const SocStats stats = soc.stats();
    std::cout << "PNX8550 (synthetic reconstruction): " << stats.module_count << " modules, "
              << stats.total_scan_flip_flops / 1000 << "k scan flip-flops, "
              << stats.total_test_data_volume_bits / 1'000'000 << " Mbit test data\n\n";

    const TestCell cell; // the paper's test cell: 512 ch x 7M @ 5 MHz

    for (const BroadcastMode mode : {BroadcastMode::none, BroadcastMode::stimuli}) {
        OptimizeOptions options;
        options.broadcast = mode;
        const Solution solution = optimize_multi_site(soc, cell, options);

        std::cout << "--- " << (mode == BroadcastMode::none ? "private stimuli per site"
                                                            : "stimuli broadcast to all sites")
                  << " ---\n";
        std::cout << "Step 1: k = " << solution.channels_step1 << " channels -> n_max = "
                  << solution.max_sites_step1 << "\n";
        std::cout << "Step 2: n_opt = " << solution.sites << " sites, "
                  << format_throughput(solution.best_throughput()) << " devices/hour, t_m = "
                  << format_seconds(solution.manufacturing_time) << "\n\n";

        Table table({"n", "k/site", "t_m", "D_th"});
        for (auto it = solution.site_curve.rbegin(); it != solution.site_curve.rend(); ++it) {
            table.add_row({std::to_string(it->sites), std::to_string(it->channels_per_site),
                           format_seconds(it->manufacturing_time),
                           format_throughput(it->devices_per_hour)});
        }
        std::cout << table << '\n';
    }

    std::cout << "Reading the tables: giving up sites frees ATE channels, which Step 2\n"
                 "reinvests into wider TAMs (larger k/site, smaller t_m). The optimum\n"
                 "balances sites against per-site test time -- exactly Figure 5 of the\n"
                 "paper.\n";
    return 0;
}
