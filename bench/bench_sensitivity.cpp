// Sensitivity study (ours): every conclusion in the paper is conditioned
// on two test-cell constants — the 0.5 s prober index time and the 5 MHz
// test clock. This bench sweeps both and reports where the paper's
// qualitative claims (optimal multi-site, memory-vs-channel verdict)
// hold or flip.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/format.hpp"
#include "core/optimizer.hpp"
#include "report/table.hpp"
#include "soc/profiles.hpp"

namespace {

using namespace mst;

void print_index_time_sweep(const Soc& soc)
{
    std::cout << "=== Sensitivity: optimal multi-site vs prober index time "
                 "(PNX8550, 512 ch x 7M, broadcast) ===\n\n";
    Table table({"t_i [s]", "n_opt", "k/site", "t_m", "D_th"});
    for (const double index_time : {0.1, 0.25, 0.5, 1.0, 2.0}) {
        TestCell cell;
        cell.prober.index_time = index_time;
        OptimizeOptions options;
        options.broadcast = BroadcastMode::stimuli;
        const Solution solution = optimize_multi_site(soc, cell, options);
        char label[16];
        std::snprintf(label, sizeof label, "%.2f", index_time);
        table.add_row({label, std::to_string(solution.sites),
                       std::to_string(solution.channels_per_site),
                       format_seconds(solution.manufacturing_time),
                       format_throughput(solution.best_throughput())});
    }
    std::cout << table << '\n';
    std::cout << "Long index times push the optimum toward more sites (amortize the\n"
                 "touchdown); short ones reward fewer, faster sites.\n\n";
}

void print_clock_sweep(const Soc& soc)
{
    std::cout << "=== Sensitivity: throughput vs test clock (PNX8550, 512 ch x 7M) ===\n\n";
    Table table({"clock [MHz]", "n_opt", "t_m", "D_th", "gain vs 5 MHz"});
    double base = 0.0;
    for (const double mhz : {5.0, 10.0, 20.0, 50.0}) {
        TestCell cell;
        cell.ate.test_clock_hz = mhz * 1e6;
        const Solution solution = optimize_multi_site(soc, cell);
        if (base == 0.0) {
            base = solution.best_throughput();
        }
        char label[16];
        std::snprintf(label, sizeof label, "%.0f", mhz);
        char gain[16];
        std::snprintf(gain, sizeof gain, "%.2fx", solution.best_throughput() / base);
        table.add_row({label, std::to_string(solution.sites),
                       format_seconds(solution.manufacturing_time),
                       format_throughput(solution.best_throughput()), gain});
    }
    std::cout << table << '\n';
    std::cout << "Faster scan clocks shrink t_m but the fixed index time caps the\n"
                 "return -- the same saturation the paper observes for memory depth.\n\n";
}

void BM_SensitivityPoint(benchmark::State& state)
{
    const Soc soc = make_benchmark_soc("pnx8550");
    TestCell cell;
    cell.prober.index_time = static_cast<double>(state.range(0)) / 100.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(optimize_multi_site(soc, cell));
    }
}

} // namespace

BENCHMARK(BM_SensitivityPoint)->Arg(10)->Arg(200)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    const mst::Soc soc = mst::make_benchmark_soc("pnx8550");
    print_index_time_sweep(soc);
    print_clock_sweep(soc);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
