// Scaling study (ours, not in the paper): optimizer cost as the SOC
// grows. The DATE'05 algorithm is meant to run inside a DfT planning
// loop, so we check that full Step 1 + Step 2 stays interactive even for
// SOCs an order of magnitude larger than the ITC'02 set.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/format.hpp"
#include "core/optimizer.hpp"
#include "report/table.hpp"
#include "soc/generator.hpp"

namespace {

using namespace mst;

Soc scaled_soc(int modules)
{
    GeneratorConfig config;
    config.name = "scale" + std::to_string(modules);
    config.seed = 4242;
    config.logic_modules = modules;
    config.logic_volume_bits = 120'000LL * modules;
    config.min_chains = 4;
    config.max_chains = 32;
    return generate_soc(config);
}

TestCell scaled_cell()
{
    TestCell cell;
    cell.ate.channels = 512;
    cell.ate.vector_memory_depth = 256 * kibi;
    return cell;
}

void print_scaling_table()
{
    std::cout << "=== Scaling: solution shape vs module count (512 ch x 256K) ===\n\n";
    Table table({"modules", "k", "n_opt", "test cycles", "D_th"});
    for (const int modules : {10, 20, 40, 80, 160, 320}) {
        const Soc soc = scaled_soc(modules);
        const Solution solution = optimize_multi_site(soc, scaled_cell());
        table.add_row({std::to_string(modules), std::to_string(solution.channels_per_site),
                       std::to_string(solution.sites), std::to_string(solution.test_cycles),
                       format_throughput(solution.best_throughput())});
    }
    std::cout << table << '\n';
}

void BM_OptimizeScaled(benchmark::State& state)
{
    const Soc soc = scaled_soc(static_cast<int>(state.range(0)));
    const TestCell cell = scaled_cell();
    for (auto _ : state) {
        benchmark::DoNotOptimize(optimize_multi_site(soc, cell));
    }
    state.SetComplexityN(state.range(0));
}

void BM_TimeTableConstruction(benchmark::State& state)
{
    const Soc soc = scaled_soc(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(SocTimeTables(soc));
    }
    state.SetComplexityN(state.range(0));
}

} // namespace

BENCHMARK(BM_OptimizeScaled)->RangeMultiplier(2)->Range(10, 320)->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_TimeTableConstruction)->RangeMultiplier(2)->Range(10, 320)
    ->Unit(benchmark::kMillisecond)->Complexity();

int main(int argc, char** argv)
{
    print_scaling_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
