// Figure 6 of the paper plus the Section-7 upgrade economics:
//  (a) throughput vs ATE channel count (512..1024, depth 7M): linear;
//  (b) throughput vs vector memory depth (5M..14M, 512 channels):
//      sub-linear;
//  ($) the cost comparison: doubling the vector memory of all 512
//      channels vs spending the same dollars on extra channels.
#include <benchmark/benchmark.h>

#include <iostream>

#include "ate/cost.hpp"
#include "common/format.hpp"
#include "core/optimizer.hpp"
#include "report/series.hpp"
#include "soc/profiles.hpp"

namespace {

using namespace mst;

double throughput_at(const Soc& soc, ChannelCount channels, CycleCount depth)
{
    TestCell cell;
    cell.ate.channels = channels;
    cell.ate.vector_memory_depth = depth;
    return optimize_multi_site(soc, cell).best_throughput();
}

void print_figure6(const Soc& soc)
{
    std::cout << "=== Figure 6(a): throughput vs ATE channels (PNX8550, depth 7M) ===\n\n";
    Series by_channels;
    by_channels.name = "pnx8550 D_th vs channels";
    by_channels.x_label = "ATE channels";
    by_channels.y_label = "D_th [devices/hour]";
    for (ChannelCount channels = 512; channels <= 1024; channels += 64) {
        by_channels.points.emplace_back(channels, throughput_at(soc, channels, 7 * mebi));
    }
    print_series(std::cout, by_channels);

    std::cout << "=== Figure 6(b): throughput vs vector memory depth (PNX8550, 512 ch) ===\n\n";
    Series by_depth;
    by_depth.name = "pnx8550 D_th vs depth";
    by_depth.x_label = "vector memory depth [M vectors]";
    by_depth.y_label = "D_th [devices/hour]";
    for (CycleCount depth_m = 5; depth_m <= 14; ++depth_m) {
        by_depth.points.emplace_back(static_cast<double>(depth_m),
                                     throughput_at(soc, 512, depth_m * mebi));
    }
    print_series(std::cout, by_depth);

    // Linear vs sub-linear check (the paper's textual claims).
    const double double_channels =
        by_channels.points.back().second / by_channels.points.front().second;
    const double double_depth = throughput_at(soc, 512, 14 * mebi) / by_depth.points[2].second;
    std::cout << "doubling channels (512 -> 1024) multiplies D_th by "
              << double_channels << " (paper: ~2.0, linear)\n";
    std::cout << "doubling depth (7M -> 14M) multiplies D_th by " << double_depth
              << " (paper: ~1.27, sub-linear)\n\n";

    // Section-7 economics.
    const AteCostModel prices;
    AteSpec base;
    const UsDollars memory_budget = prices.memory_doubling(base);
    const ChannelCount extra_channels = prices.channels_for_budget(memory_budget);
    const double base_throughput = throughput_at(soc, 512, 7 * mebi);
    const double with_memory = throughput_at(soc, 512, 14 * mebi);
    const double with_channels = throughput_at(soc, 512 + extra_channels, 7 * mebi);
    std::cout << "=== Section 7 economics: what does " << format_dollars(memory_budget)
              << " buy? ===\n\n";
    std::cout << "  double all memory to 14M: D_th " << format_throughput(base_throughput)
              << " -> " << format_throughput(with_memory) << "  (+"
              << static_cast<int>(100.0 * (with_memory / base_throughput - 1.0))
              << "%, paper: +27%)\n";
    std::cout << "  buy " << extra_channels << " channels instead:   D_th "
              << format_throughput(base_throughput) << " -> "
              << format_throughput(with_channels) << "  (+"
              << static_cast<int>(100.0 * (with_channels / base_throughput - 1.0))
              << "%, paper: +18%)\n";
    std::cout << "  measured winner at equal cost: "
              << (with_memory >= with_channels ? "memory depth (paper agrees)"
                                               : "channels (paper found memory; see EXPERIMENTS.md "
                                                 "on the k(D) staircase of the synthetic PNX8550)")
              << "\n\n";
}

void BM_ThroughputCurvePoint(benchmark::State& state)
{
    const Soc soc = make_benchmark_soc("pnx8550");
    const auto channels = static_cast<ChannelCount>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_at(soc, channels, 7 * mebi));
    }
}

} // namespace

BENCHMARK(BM_ThroughputCurvePoint)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    print_figure6(mst::make_benchmark_soc("pnx8550"));
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
