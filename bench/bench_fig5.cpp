// Figure 5 of the paper: operation of the two-step algorithm on the
// Philips PNX8550 (synthetic reconstruction), for the cases with and
// without stimuli broadcast, on a 512-channel / 7M-vector / 5 MHz ATE.
//
// Printed output:
//  - the Steps 1+2 throughput curve D_th(n) without broadcast,
//  - the Steps 1+2 throughput curve D_th(n) with broadcast,
//  - the "Step 1 only" straight line for the broadcast case (the paper's
//    dashed line): Step 1's architecture evaluated at every n,
//  - the paper's capped-equipment comparison: throughput at n = 8 for
//    Steps 1+2 vs Step 1 only (the paper reports a 34% gap).
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/format.hpp"
#include "core/optimizer.hpp"
#include "report/series.hpp"
#include "soc/profiles.hpp"

namespace {

using namespace mst;

TestCell paper_cell()
{
    return TestCell{}; // 512 ch x 7M, 5 MHz, t_i = 0.5 s, t_c = 1 ms
}

Series curve_from_solution(const Solution& solution, const std::string& name)
{
    Series series;
    series.name = name;
    series.x_label = "sites n";
    series.y_label = "throughput D_th [devices/hour]";
    for (auto it = solution.site_curve.rbegin(); it != solution.site_curve.rend(); ++it) {
        series.points.emplace_back(it->sites, it->devices_per_hour);
    }
    return series;
}

/// Step-1-only throughput at a given n: the Step-1 architecture is kept,
/// so t_m is fixed and D_th is simply linear in n.
Series step1_only_line(const Soc& soc, const TestCell& cell, const OptimizeOptions& base,
                       SiteCount up_to)
{
    OptimizeOptions options = base;
    options.step1_only = true;
    const Solution step1 = optimize_multi_site(soc, cell, options);

    Series series;
    series.name = "pnx8550 broadcast, Step 1 only (dashed line)";
    series.x_label = "sites n";
    series.y_label = "throughput D_th [devices/hour]";
    for (SiteCount n = 1; n <= up_to; ++n) {
        ThroughputInputs inputs;
        inputs.sites = n;
        inputs.manufacturing_test_time = step1.manufacturing_time;
        inputs.contacted_terminals_per_soc = step1.channels_per_site + base.control_pads;
        const ThroughputResult result =
            evaluate_throughput(inputs, cell.prober, base.yields, base.abort);
        series.points.emplace_back(n, result.devices_per_hour);
    }
    return series;
}

void print_figure5()
{
    std::cout << "=== Figure 5: two-step algorithm on PNX8550 (512 ch x 7M @ 5 MHz) ===\n\n";
    const Soc soc = make_benchmark_soc("pnx8550");
    const TestCell cell = paper_cell();

    OptimizeOptions no_broadcast;
    const Solution plain = optimize_multi_site(soc, cell, no_broadcast);
    std::cout << "without broadcast: Step 1 k = " << plain.channels_step1
              << " channels, n_max = " << plain.max_sites_step1
              << "; optimum n_opt = " << plain.sites << ", D_th = "
              << format_throughput(plain.best_throughput()) << " devices/hour\n";

    OptimizeOptions broadcast;
    broadcast.broadcast = BroadcastMode::stimuli;
    const Solution wide = optimize_multi_site(soc, cell, broadcast);
    std::cout << "with broadcast:    Step 1 k = " << wide.channels_step1
              << " channels, n_max = " << wide.max_sites_step1
              << "; optimum n_opt = " << wide.sites << ", D_th = "
              << format_throughput(wide.best_throughput()) << " devices/hour\n\n";

    print_series(std::cout, curve_from_solution(plain, "pnx8550 no broadcast, Steps 1+2"));
    print_series(std::cout, curve_from_solution(wide, "pnx8550 broadcast, Steps 1+2"));
    print_series(std::cout, step1_only_line(soc, cell, broadcast, wide.max_sites_step1));

    // The capped-equipment claim: multi-site limited to n = 8.
    const SiteCount cap = 8;
    double steps12_at_cap = 0.0;
    for (const SitePoint& point : wide.site_curve) {
        if (point.sites == cap) {
            steps12_at_cap = point.devices_per_hour;
        }
    }
    const Series line = step1_only_line(soc, cell, broadcast, cap);
    const double step1_at_cap = line.points.back().second;
    if (steps12_at_cap > 0.0 && step1_at_cap > 0.0) {
        std::cout << "equipment capped at n = " << cap << " (broadcast): Steps 1+2 = "
                  << format_throughput(steps12_at_cap) << ", Step 1 only = "
                  << format_throughput(step1_at_cap) << "  (+"
                  << static_cast<int>(100.0 * (steps12_at_cap / step1_at_cap - 1.0))
                  << "% from Step 2; paper reports +34%)\n\n";
    }
}

void BM_OptimizePnx8550(benchmark::State& state, BroadcastMode mode)
{
    const Soc soc = make_benchmark_soc("pnx8550");
    const TestCell cell = paper_cell();
    OptimizeOptions options;
    options.broadcast = mode;
    for (auto _ : state) {
        benchmark::DoNotOptimize(optimize_multi_site(soc, cell, options));
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_OptimizePnx8550, no_broadcast, mst::BroadcastMode::none)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OptimizePnx8550, broadcast, mst::BroadcastMode::stimuli)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    print_figure5();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
