// Ablation study of the Step-1 design choices called out in DESIGN.md:
// group-selection policy, expansion policy, module order, the
// criterion-1 budget search, and the compaction pass. For each variant
// we report the per-SOC channel count k and test length on the Table-1
// operating points; deltas versus the full algorithm quantify what each
// ingredient buys.
#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "arch/channel_group.hpp"
#include "common/format.hpp"
#include "core/step1.hpp"
#include "report/table.hpp"
#include "soc/profiles.hpp"

namespace {

using namespace mst;

struct Variant {
    std::string name;
    std::function<void(OptimizeOptions&)> tweak;
};

std::vector<Variant> variants()
{
    return {
        {"full algorithm (paper + tightening)", [](OptimizeOptions&) {}},
        {"group select: first fit",
         [](OptimizeOptions& o) { o.group_select = GroupSelectPolicy::first_fit; }},
        {"expansion: min widening",
         [](OptimizeOptions& o) { o.expansion = ExpansionPolicy::min_widening; }},
        {"expansion: always new group",
         [](OptimizeOptions& o) { o.expansion = ExpansionPolicy::always_new_group; }},
        {"order: by volume", [](OptimizeOptions& o) { o.module_order = ModuleOrder::by_volume; }},
        {"order: file order", [](OptimizeOptions& o) { o.module_order = ModuleOrder::input_order; }},
        {"no budget search", [](OptimizeOptions& o) { o.budget_search = false; }},
        {"no compaction", [](OptimizeOptions& o) { o.compaction = false; }},
        {"raw greedy (no search, no compaction)",
         [](OptimizeOptions& o) {
             o.budget_search = false;
             o.compaction = false;
         }},
    };
}

struct Workload {
    std::string soc;
    ChannelCount channels;
    CycleCount depth;
};

std::vector<Workload> workloads()
{
    return {
        {"d695", 256, 64 * kibi},
        {"p22810", 512, 512 * kibi},
        {"p34392", 512, parse_depth("1.256M")},
        {"p93791", 512, parse_depth("2.000M")},
    };
}

void print_ablation()
{
    std::cout << "=== Ablation: Step-1 design choices (channels k per SOC) ===\n\n";
    Table table({"variant", "d695", "p22810", "p34392", "p93791", "avg dk"});

    std::vector<ChannelCount> reference;
    for (const Variant& variant : variants()) {
        std::vector<std::string> row{variant.name};
        double delta_sum = 0.0;
        std::size_t column = 0;
        for (const Workload& workload : workloads()) {
            const Soc soc = make_benchmark_soc(workload.soc);
            const SocTimeTables tables(soc);
            AteSpec ate;
            ate.channels = workload.channels;
            ate.vector_memory_depth = workload.depth;
            OptimizeOptions options;
            options.broadcast = BroadcastMode::stimuli;
            variant.tweak(options);
            const Step1Result result = run_step1(tables, ate, options);
            row.push_back(std::to_string(result.channels));
            if (reference.size() > column) {
                delta_sum += result.channels - reference[column];
            } else {
                reference.push_back(result.channels);
            }
            ++column;
        }
        char delta[32];
        std::snprintf(delta, sizeof delta, "%+.1f", delta_sum / static_cast<double>(column));
        row.emplace_back(delta);
        table.add_row(std::move(row));
    }
    std::cout << table << '\n';
    std::cout << "dk: average extra channels vs the full algorithm (lower is better).\n\n";
}

void BM_Step1Variant(benchmark::State& state, bool budget_search, bool compaction)
{
    const Soc soc = make_benchmark_soc("p93791");
    const SocTimeTables tables(soc);
    AteSpec ate;
    ate.channels = 512;
    ate.vector_memory_depth = parse_depth("2.000M");
    OptimizeOptions options;
    options.budget_search = budget_search;
    options.compaction = compaction;
    for (auto _ : state) {
        benchmark::DoNotOptimize(run_step1(tables, ate, options));
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_Step1Variant, full, true, true)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Step1Variant, raw_greedy, false, false)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv)
{
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
