// Figure 7 of the paper:
//  (a) unique throughput D^u_th vs vector memory depth for contact
//      yields p_c in {1, .9999, .9998, .999, .998, .99} (re-test of
//      contact failures enabled). Deeper memory -> fewer contacted pads
//      -> smaller re-test rate.
//  (b) expected test application time vs site count for manufacturing
//      yields p_m in {1, .98, .95, .90, .80, .70} under abort-on-fail
//      (eq 4.4). The benefit washes out beyond a handful of sites.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/format.hpp"
#include "core/optimizer.hpp"
#include "report/series.hpp"
#include "soc/profiles.hpp"

namespace {

using namespace mst;

void print_figure7a(const Soc& soc)
{
    std::cout << "=== Figure 7(a): unique throughput vs depth, per contact yield "
                 "(PNX8550, 512 ch, re-test on) ===\n\n";
    for (const double pc : {1.0, 0.9999, 0.9998, 0.999, 0.998, 0.99}) {
        Series series;
        series.name = "p_c = " + std::to_string(pc);
        series.x_label = "vector memory depth [M vectors]";
        series.y_label = "D^u_th [unique devices/hour]";
        for (CycleCount depth_m = 5; depth_m <= 14; ++depth_m) {
            TestCell cell;
            cell.ate.vector_memory_depth = depth_m * mebi;
            OptimizeOptions options;
            options.retest = RetestPolicy::retest_contact_failures;
            options.yields.contact_yield_per_terminal = pc;
            const Solution solution = optimize_multi_site(soc, cell, options);
            series.points.emplace_back(static_cast<double>(depth_m),
                                       solution.throughput.unique_devices_per_hour);
        }
        print_series(std::cout, series);
    }
}

void print_figure7b(const Soc& soc)
{
    std::cout << "=== Figure 7(b): abort-on-fail expected test time vs sites, per yield "
                 "(PNX8550, 512 ch x 7M) ===\n\n";
    // The architecture (and so t_m) comes from the depth-7M optimizer run;
    // eq 4.4 then scales the expected time with n and p_m.
    const TestCell cell;
    const Solution solution = optimize_multi_site(soc, cell);
    std::cout << "architecture: k = " << solution.channels_per_site << " channels/site, t_m = "
              << format_seconds(solution.manufacturing_time) << " (full scan-through)\n\n";

    for (const double pm : {1.0, 0.98, 0.95, 0.90, 0.80, 0.70}) {
        Series series;
        series.name = "p_m = " + std::to_string(pm);
        series.x_label = "sites n";
        series.y_label = "expected test application time [s]";
        for (SiteCount n = 1; n <= 8; ++n) {
            ThroughputInputs inputs;
            inputs.sites = n;
            inputs.manufacturing_test_time = solution.manufacturing_time;
            inputs.contacted_terminals_per_soc = solution.erpct.contacted_pads();
            YieldModel yields;
            yields.manufacturing_yield = pm;
            const ThroughputResult result =
                evaluate_throughput(inputs, cell.prober, yields, AbortOnFail::on);
            series.points.emplace_back(n, result.total_test_time);
        }
        print_series(std::cout, series);
    }
    std::cout << "note: by n >= 4-6 all yield curves converge to the full test time -- \n"
                 "abort-on-fail loses its value under multi-site testing (paper's claim).\n\n";
}

void BM_RetestEvaluation(benchmark::State& state)
{
    ThroughputInputs inputs;
    inputs.sites = 7;
    inputs.manufacturing_test_time = 1.47;
    inputs.contacted_terminals_per_soc = 79;
    YieldModel yields;
    yields.contact_yield_per_terminal = 0.999;
    yields.manufacturing_yield = 0.9;
    const ProbeStation prober;
    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluate_throughput(inputs, prober, yields, AbortOnFail::on));
    }
}

} // namespace

BENCHMARK(BM_RetestEvaluation);

int main(int argc, char** argv)
{
    const mst::Soc soc = mst::make_benchmark_soc("pnx8550");
    print_figure7a(soc);
    print_figure7b(soc);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
