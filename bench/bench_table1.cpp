// Table 1 of the paper: ATE channels k and maximum multi-site n_max for
// the rectangle bin-packing baseline [7] versus the Step-1 algorithm,
// over four ITC'02 SOCs and eleven vector-memory depths each.
//
// Output columns per row:
//   depth | LB | k [7] | k Us | n [7] | n Us
// where LB is the theoretical channel lower bound of [7], "[7]" is our
// implementation of the rectangle bin-packing baseline, and "Us" is
// Step 1 (stimuli broadcast assumed, as in the paper's comparison).
// The paper's own Table 1 lists the published values; EXPERIMENTS.md
// maps ours against them.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "arch/channel_group.hpp"
#include "baseline/bin_packing.hpp"
#include "baseline/lower_bound.hpp"
#include "common/format.hpp"
#include "core/step1.hpp"
#include "report/table.hpp"
#include "soc/profiles.hpp"

namespace {

using namespace mst;

struct SocCase {
    std::string name;
    ChannelCount ate_channels;
    std::vector<CycleCount> depths;
};

std::vector<CycleCount> depth_sweep(CycleCount from, CycleCount step, int count)
{
    std::vector<CycleCount> depths;
    for (int i = 0; i < count; ++i) {
        depths.push_back(from + i * step);
    }
    return depths;
}

std::vector<SocCase> table1_cases()
{
    return {
        {"d695", 256, depth_sweep(48 * kibi, 8 * kibi, 11)},
        {"p22810", 512, depth_sweep(384 * kibi, 64 * kibi, 11)},
        {"p34392", 512,
         {768 * kibi, 896 * kibi, parse_depth("1.000M"), parse_depth("1.128M"),
          parse_depth("1.256M"), parse_depth("1.384M"), parse_depth("1.512M"),
          parse_depth("1.640M"), parse_depth("1.768M"), parse_depth("1.896M"),
          parse_depth("2.000M")}},
        {"p93791", 512,
         {parse_depth("1.000M"), parse_depth("1.256M"), parse_depth("1.512M"),
          parse_depth("1.768M"), parse_depth("2.000M"), parse_depth("2.256M"),
          parse_depth("2.512M"), parse_depth("2.768M"), parse_depth("3.000M"),
          parse_depth("3.256M"), parse_depth("3.512M")}},
    };
}

void print_table1()
{
    std::cout << "=== Table 1: maximum multi-site, rectangle bin-packing [7] vs Step 1 "
                 "(stimuli broadcast) ===\n\n";
    for (const SocCase& soc_case : table1_cases()) {
        const Soc soc = make_benchmark_soc(soc_case.name);
        const SocTimeTables tables(soc);

        Table table({"depth", "LB k", "k [7]", "k Us", "n [7]", "n Us"});
        for (const CycleCount depth : soc_case.depths) {
            AteSpec ate;
            ate.channels = soc_case.ate_channels;
            ate.vector_memory_depth = depth;

            const auto lb = lower_bound_channels(tables, depth);
            const BaselineResult baseline =
                pack_rectangles(tables, ate, BroadcastMode::stimuli);

            OptimizeOptions options;
            options.broadcast = BroadcastMode::stimuli;
            const Step1Result step1 = run_step1(tables, ate, options);

            table.add_row({format_depth(depth), std::to_string(lb.value_or(0)),
                           std::to_string(baseline.channels), std::to_string(step1.channels),
                           std::to_string(baseline.max_sites), std::to_string(step1.max_sites)});
        }
        std::cout << "SOC " << soc_case.name << " (ATE: " << soc_case.ate_channels
                  << " channels)\n"
                  << table << '\n';
    }
}

/// Timing: Step 1 on each benchmark SOC at its smallest Table-1 depth.
void BM_Step1(benchmark::State& state, const std::string& name, ChannelCount channels,
              CycleCount depth)
{
    const Soc soc = make_benchmark_soc(name);
    const SocTimeTables tables(soc);
    AteSpec ate;
    ate.channels = channels;
    ate.vector_memory_depth = depth;
    OptimizeOptions options;
    options.broadcast = BroadcastMode::stimuli;
    for (auto _ : state) {
        benchmark::DoNotOptimize(run_step1(tables, ate, options));
    }
}

/// Timing: the baseline packer under the same conditions.
void BM_Baseline(benchmark::State& state, const std::string& name, ChannelCount channels,
                 CycleCount depth)
{
    const Soc soc = make_benchmark_soc(name);
    const SocTimeTables tables(soc);
    AteSpec ate;
    ate.channels = channels;
    ate.vector_memory_depth = depth;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pack_rectangles(tables, ate, BroadcastMode::stimuli));
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_Step1, d695, "d695", 256, 48 * mst::kibi);
BENCHMARK_CAPTURE(BM_Step1, p93791, "p93791", 512, mst::mebi);
BENCHMARK_CAPTURE(BM_Baseline, d695, "d695", 256, 48 * mst::kibi);
BENCHMARK_CAPTURE(BM_Baseline, p93791, "p93791", 512, mst::mebi);

int main(int argc, char** argv)
{
    print_table1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
