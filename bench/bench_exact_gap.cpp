// Optimality-gap study (ours): how far is Step 1 from the exact optimum?
//
// The DATE'05 paper compares against [7]'s lower bound, which can be
// loose. The branch-and-bound reference solver gives the true minimum
// wire count on small SOCs, so we can report the exact gap of both
// heuristics, plus the wafer-periphery ablation the paper mentions and
// ignores.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baseline/bin_packing.hpp"
#include "baseline/lower_bound.hpp"
#include "core/step1.hpp"
#include "exact/branch_bound.hpp"
#include "flow/wafer.hpp"
#include "report/table.hpp"
#include "soc/generator.hpp"

namespace {

using namespace mst;

void print_gap_table()
{
    std::cout << "=== Step 1 vs exact optimum (random 8-module SOCs, depth 90K, wires) ===\n\n";
    Table table({"seed", "LB", "exact", "Step 1", "bin-pack [7]", "B&B nodes"});
    int step1_optimal = 0;
    int rows = 0;
    for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u, 99u, 111u}) {
        const Soc soc = random_soc(seed, 8);
        const SocTimeTables tables(soc);
        const CycleCount depth = 90'000;
        const auto exact = exact_min_wires(tables, depth);
        const auto lb = lower_bound_wires(tables, depth);
        if (!exact || !lb) {
            continue;
        }
        AteSpec ate;
        ate.channels = 512;
        ate.vector_memory_depth = depth;
        const Step1Result step1 = run_step1(tables, ate, OptimizeOptions{});
        const BaselineResult packed = pack_rectangles(tables, ate, BroadcastMode::none);

        const WireCount step1_wires = wires_from_channels(step1.channels);
        table.add_row({std::to_string(seed), std::to_string(*lb),
                       std::to_string(exact->wires), std::to_string(step1_wires),
                       std::to_string(wires_from_channels(packed.channels)),
                       std::to_string(exact->nodes_explored)});
        ++rows;
        if (step1_wires == exact->wires) {
            ++step1_optimal;
        }
    }
    std::cout << table << '\n';
    std::cout << "Step 1 hits the exact optimum on " << step1_optimal << "/" << rows
              << " instances; the [7] lower bound is loose wherever LB < exact.\n\n";
}

void print_periphery_ablation()
{
    std::cout << "=== Wafer-periphery ablation (300 mm wafer, ignored by the paper) ===\n\n";
    Table table({"die size", "sites", "head", "utilization", "effective sites"});
    for (const double die_mm : {5.0, 10.0, 15.0}) {
        for (const SiteCount sites : {4, 16, 36}) {
            WaferSpec wafer;
            wafer.die_width_mm = die_mm;
            wafer.die_height_mm = die_mm;
            const ProbeHeadLayout head = best_head_layout(wafer, sites);
            const WaferProbePlan plan = plan_wafer_probing(wafer, head);
            char util[16];
            std::snprintf(util, sizeof util, "%.1f%%", 100.0 * plan.utilization);
            char eff[16];
            std::snprintf(eff, sizeof eff, "%.1f", plan.effective_sites());
            table.add_row({std::to_string(static_cast<int>(die_mm)) + " mm",
                           std::to_string(sites),
                           std::to_string(head.sites_x) + "x" + std::to_string(head.sites_y),
                           util, eff});
        }
    }
    std::cout << table << '\n';
    std::cout << "Large dies and large heads lose real throughput at the wafer edge --\n"
                 "the paper's idealized D_th overstates accordingly.\n\n";
}

void BM_ExactSolver(benchmark::State& state)
{
    const Soc soc = random_soc(42, static_cast<int>(state.range(0)));
    const SocTimeTables tables(soc);
    for (auto _ : state) {
        benchmark::DoNotOptimize(exact_min_wires(tables, 90'000));
    }
}

} // namespace

BENCHMARK(BM_ExactSolver)->DenseRange(4, 10, 2)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    print_gap_table();
    print_periphery_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
