#include "report/solution_json.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace mst {

/// RFC 8259 string escaping (control characters, quote, backslash).
std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char ch : text) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", ch);
                out += buffer;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

namespace {

std::string number(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    return buffer;
}

} // namespace

void write_solution_json(std::ostream& out, const Solution& solution, JsonStyle style)
{
    // Layout tokens: pretty indents nested objects, compact stays on one
    // line. Key order and value formatting are identical either way.
    const bool pretty = (style == JsonStyle::pretty);
    const char* open = pretty ? "{\n" : "{";
    const char* key = pretty ? "  \"" : "\"";
    const char* sep = pretty ? ",\n" : ",";
    const char* item = pretty ? "    " : "";

    out << open;
    out << key << "soc\": \"" << json_escape(solution.soc_name) << "\"" << sep;
    out << key << "sites\": " << solution.sites << sep;
    out << key << "channels_per_site\": " << solution.channels_per_site << sep;
    out << key << "test_cycles\": " << solution.test_cycles << sep;
    out << key << "manufacturing_time_s\": " << number(solution.manufacturing_time) << sep;
    out << key << "devices_per_hour\": " << number(solution.throughput.devices_per_hour) << sep;
    out << key << "unique_devices_per_hour\": "
        << number(solution.throughput.unique_devices_per_hour) << sep;
    out << key << "step1\": { \"channels\": " << solution.channels_step1
        << ", \"max_sites\": " << solution.max_sites_step1 << " }" << sep;
    if (solution.exact) {
        const ExactSummary& exact = *solution.exact;
        out << key << "exact\": { \"wires\": " << exact.wires
            << ", \"greedy_wires\": " << exact.greedy_wires << ", \"gap\": " << exact.gap
            << ", \"bnb_nodes\": " << exact.nodes_explored << ", \"certified\": "
            << (exact.certified ? "true" : "false") << ", \"groups\": [";
        for (std::size_t g = 0; g < exact.groups.size(); ++g) {
            out << (g == 0 ? "" : ", ") << '[';
            for (std::size_t m = 0; m < exact.groups[g].size(); ++m) {
                out << (m == 0 ? "" : ", ") << '"' << json_escape(exact.groups[g][m]) << '"';
            }
            out << ']';
        }
        out << "] }" << sep;
    }
    out << key << "erpct\": { \"external_channels\": " << solution.erpct.external_channels
        << ", \"internal_wires\": " << solution.erpct.internal_wires
        << ", \"control_pads\": " << solution.erpct.control_pads
        << ", \"functional_pins\": " << solution.erpct.functional_pins
        << ", \"contacted_pads\": " << solution.erpct.contacted_pads() << " }" << sep;

    out << key << "tams\": [";
    for (std::size_t g = 0; g < solution.groups.size(); ++g) {
        const GroupSummary& group = solution.groups[g];
        out << (g == 0 ? (pretty ? "\n" : "") : sep) << item;
        out << "{ \"wires\": " << group.wires << ", \"channels\": " << group.channels
            << ", \"fill_cycles\": " << group.fill << ", \"modules\": [";
        for (std::size_t m = 0; m < group.module_names.size(); ++m) {
            out << (m == 0 ? "" : ", ") << '"' << json_escape(group.module_names[m]) << '"';
        }
        out << "] }";
    }
    out << (pretty ? "\n  ]" : "]") << sep;

    out << key << "site_curve\": [";
    for (std::size_t i = 0; i < solution.site_curve.size(); ++i) {
        const SitePoint& point = solution.site_curve[i];
        out << (i == 0 ? (pretty ? "\n" : "") : sep) << item;
        out << "{ \"sites\": " << point.sites << ", \"channels_per_site\": "
            << point.channels_per_site << ", \"test_cycles\": " << point.test_cycles
            << ", \"devices_per_hour\": " << number(point.devices_per_hour) << " }";
    }
    out << (pretty ? "\n  ]\n}\n" : "]}");
}

std::string solution_to_json(const Solution& solution, JsonStyle style)
{
    std::ostringstream stream;
    write_solution_json(stream, solution, style);
    return stream.str();
}

} // namespace mst
