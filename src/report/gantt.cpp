#include "report/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace mst {

namespace {

/// Block letters cycle through A..Z then a..z.
char block_letter(int module_index)
{
    constexpr int alphabet = 26;
    const int wrapped = module_index % (2 * alphabet);
    return (wrapped < alphabet) ? static_cast<char>('A' + wrapped)
                                : static_cast<char>('a' + wrapped - alphabet);
}

} // namespace

std::string render_gantt(const Architecture& architecture, CycleCount depth, int columns)
{
    if (depth < 1) {
        throw ValidationError("gantt depth must be positive");
    }
    if (columns < 8) {
        throw ValidationError("gantt needs at least 8 columns");
    }

    std::ostringstream out;
    const double scale = static_cast<double>(columns) / static_cast<double>(depth);
    int group_number = 0;
    for (const ChannelGroup& group : architecture.groups()) {
        out << "TAM " << ++group_number << " [w=" << group.width() << "] |";
        std::string row;
        for (const int module_index : group.module_indices()) {
            const CycleCount time =
                architecture.tables().table(module_index).time(group.width());
            const auto cells = static_cast<std::size_t>(
                std::max<long>(1, std::lround(static_cast<double>(time) * scale)));
            row.append(cells, block_letter(module_index));
        }
        if (row.size() > static_cast<std::size_t>(columns)) {
            row.resize(static_cast<std::size_t>(columns));
        }
        row.append(static_cast<std::size_t>(columns) - row.size(), '.');
        out << row << "|\n";
    }

    out << "legend:";
    for (int m = 0; m < architecture.tables().module_count(); ++m) {
        out << ' ' << block_letter(m) << '=' << architecture.tables().soc().module(m).name();
        if (m == 25 && architecture.tables().module_count() > 26) {
            out << " ...";
            break;
        }
    }
    out << '\n';
    return out.str();
}

} // namespace mst
