#include "report/series.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace mst {

void print_series(std::ostream& out, const Series& series)
{
    out << "# " << series.name << "  (" << series.x_label << " vs " << series.y_label << ")\n";
    for (const auto& [x, y] : series.points) {
        out << x << ' ' << y << '\n';
    }
    out << "# shape: " << sparkline(series.points) << "\n\n";
}

std::string sparkline(const std::vector<std::pair<double, double>>& points)
{
    static constexpr const char* levels[] = {"_", ".", ":", "-", "=", "+", "*", "#"};
    if (points.empty()) {
        return {};
    }
    double lo = points.front().second;
    double hi = lo;
    for (const auto& [x, y] : points) {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
    }
    std::string line;
    for (const auto& [x, y] : points) {
        int level = 0;
        if (hi > lo) {
            level = static_cast<int>(std::floor((y - lo) / (hi - lo) * 7.999));
        }
        level = std::clamp(level, 0, 7);
        line += levels[level];
    }
    return line;
}

} // namespace mst
