// Minimal ASCII table builder for paper-shaped output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mst {

/// Column-aligned text table with a header row and a separator line.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Append one row; it must have exactly as many cells as the header.
    /// Throws ValidationError otherwise.
    void add_row(std::vector<std::string> cells);

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Render with two-space column gaps; numbers look best right-aligned,
    /// so all cells are right-aligned except the first column.
    [[nodiscard]] std::string to_string() const;

    friend std::ostream& operator<<(std::ostream& out, const Table& table);

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mst
