// JSON export of a Solution: the machine-readable handoff from the
// optimizer to downstream DfT insertion / test-program generation tools.
#pragma once

#include <iosfwd>
#include <string>

#include "core/solution.hpp"

namespace mst {

/// Layout of the serialized solution. Both styles carry the same keys
/// and values; `compact` emits no newlines so the object can be embedded
/// in a JSON-lines response (the request service's wire format).
enum class JsonStyle {
    pretty,   ///< indented, one key per line (CLI --json output)
    compact,  ///< single line, minimal whitespace
};

/// Serialize a solution as a single self-contained JSON object:
/// operating point, E-RPCT wrapper parameters, per-group TAM plan, and
/// the full site curve. Output is deterministic (fixed key order) and
/// strings are escaped per RFC 8259.
void write_solution_json(std::ostream& out, const Solution& solution,
                         JsonStyle style = JsonStyle::pretty);

/// Convenience: serialize to a string.
[[nodiscard]] std::string solution_to_json(const Solution& solution,
                                           JsonStyle style = JsonStyle::pretty);

/// Escape a string for embedding in a JSON string literal (RFC 8259:
/// backslash, double quote, and control characters).
[[nodiscard]] std::string json_escape(const std::string& text);

} // namespace mst
