// ASCII Gantt rendering of a test architecture: one row per channel
// group, time left to right, one block per module test. Makes the
// "fitting SOC test data on the target ATE" pictures of the paper's
// Figures 3 and 4 inspectable for real solutions.
#pragma once

#include <string>

#include "arch/architecture.hpp"

namespace mst {

/// Render the architecture as a Gantt chart scaled to `depth` cycles
/// across `columns` characters. Each group prints as
///   TAM <i> [ w<width>] |AAABBBBBB....|
/// with one letter per module (a legend follows) and '.' for free
/// vector memory.
[[nodiscard]] std::string render_gantt(const Architecture& architecture,
                                       CycleCount depth,
                                       int columns = 64);

} // namespace mst
