#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace mst {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    if (headers_.empty()) {
        throw ValidationError("a table needs at least one column");
    }
}

void Table::add_row(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        throw ValidationError("table row has " + std::to_string(cells.size()) +
                              " cells, expected " + std::to_string(headers_.size()));
    }
    rows_.push_back(std::move(cells));
}

std::string Table::to_string() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream out;
    const auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) {
                out << "  ";
            }
            const auto pad = widths[c] - row[c].size();
            if (c == 0) {
                out << row[c] << std::string(pad, ' ');
            } else {
                out << std::string(pad, ' ') << row[c];
            }
        }
        out << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (const std::size_t w : widths) {
        total += w;
    }
    total += 2 * (widths.size() - 1);
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) {
        emit(row);
    }
    return out.str();
}

std::ostream& operator<<(std::ostream& out, const Table& table)
{
    return out << table.to_string();
}

} // namespace mst
