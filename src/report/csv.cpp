#include "report/csv.hpp"

#include <ostream>

namespace mst {

std::string CsvWriter::escape(const std::string& cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
        return cell;
    }
    std::string escaped = "\"";
    for (const char ch : cell) {
        if (ch == '"') {
            escaped += "\"\"";
        } else {
            escaped += ch;
        }
    }
    escaped += '"';
    return escaped;
}

void CsvWriter::write_row(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) {
            *out_ << ',';
        }
        *out_ << escape(cells[i]);
    }
    *out_ << '\n';
}

} // namespace mst
