// Named (x, y) data series: the textual equivalent of the paper's
// figures. Each bench prints its figure as one series block per curve.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mst {

/// One plotted curve.
struct Series {
    std::string name;
    std::string x_label;
    std::string y_label;
    std::vector<std::pair<double, double>> points;
};

/// Print a series as a labeled two-column block:
///   # <name>  (<x_label> vs <y_label>)
///   <x> <y>
///   ...
void print_series(std::ostream& out, const Series& series);

/// Render an ASCII sparkline of y values (one char per point, 8 levels),
/// handy for eyeballing figure shapes in terminal output.
[[nodiscard]] std::string sparkline(const std::vector<std::pair<double, double>>& points);

} // namespace mst
