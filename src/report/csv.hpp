// CSV export for downstream plotting of the figure benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mst {

/// RFC-4180-ish CSV writer: cells containing commas, quotes, or newlines
/// are quoted, embedded quotes doubled.
class CsvWriter {
public:
    explicit CsvWriter(std::ostream& out) : out_(&out) {}

    void write_row(const std::vector<std::string>& cells);

    /// Quote/escape one cell (exposed for tests).
    [[nodiscard]] static std::string escape(const std::string& cell);

private:
    std::ostream* out_;
};

} // namespace mst
