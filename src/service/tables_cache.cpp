#include "service/tables_cache.hpp"

#include <cstdio>

#include "soc/writer.hpp"

namespace mst {

std::uint64_t soc_fingerprint(const Soc& soc)
{
    // The canonical .soc text is a stable, complete rendition of the
    // content (parse(write(soc)) == soc, see soc/writer.hpp), so hashing
    // it fingerprints exactly what the optimizer consumes.
    const std::string text = soc_to_string(soc);
    std::uint64_t hash = 1469598103934665603ULL; // FNV offset basis
    for (const char ch : text) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 1099511628211ULL; // FNV prime
    }
    return hash;
}

std::string fingerprint_hex(std::uint64_t fingerprint)
{
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return buffer;
}

} // namespace mst
