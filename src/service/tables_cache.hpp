// Cross-request cache of wrapper time tables.
//
// Building SocTimeTables dominates an optimize request's wall time, so
// the request service keys one immutable build per SOC *content*
// fingerprint and shares it across requests and worker threads via
// shared_ptr<const>. Two requests naming the same SOC differently (a
// benchmark name, a file path, inline text) hit the same entry as long
// as the parsed content matches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "arch/channel_group.hpp"
#include "service/lru_cache.hpp"
#include "soc/soc.hpp"

namespace mst {

/// 64-bit FNV-1a over the canonical .soc rendition of the SOC. Stable
/// across naming (name/path/inline) because it hashes parsed content.
[[nodiscard]] std::uint64_t soc_fingerprint(const Soc& soc);

/// Render a fingerprint as the fixed-width hex string used in responses.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint);

/// An SOC plus its wrapper time tables, bundled so the tables' internal
/// pointer to the SOC stays valid for the cache entry's whole lifetime.
class SocTables {
public:
    explicit SocTables(std::shared_ptr<const Soc> soc)
        : soc_(std::move(soc)), tables_(*soc_)
    {
    }

    [[nodiscard]] const Soc& soc() const noexcept { return *soc_; }
    [[nodiscard]] const SocTimeTables& tables() const noexcept { return tables_; }

private:
    std::shared_ptr<const Soc> soc_;
    SocTimeTables tables_;
};

/// LRU of immutable table builds keyed by SOC content fingerprint.
/// Thread-safe; concurrent requests for one fingerprint share a single
/// build (single-flight, see LruCache).
class TablesCache {
public:
    explicit TablesCache(std::size_t capacity) : cache_(capacity) {}

    /// Tables for `soc` (whose fingerprint the caller already computed).
    /// Throws whatever the underlying table build throws.
    [[nodiscard]] std::shared_ptr<const SocTables> get(std::uint64_t fingerprint,
                                                       const std::shared_ptr<const Soc>& soc)
    {
        return cache_.get_or_compute(
            fingerprint, [&] { return std::make_shared<const SocTables>(soc); });
    }

    [[nodiscard]] CacheStats stats() const { return cache_.stats(); }

private:
    LruCache<std::uint64_t, SocTables> cache_;
};

} // namespace mst
