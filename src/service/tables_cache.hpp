// Cross-request cache of wrapper time tables.
//
// Building SocTimeTables dominates an optimize request's wall time, so
// the request service keys one immutable build per SOC *content*
// fingerprint and shares it across requests and worker threads via
// shared_ptr<const>. Two requests naming the same SOC differently (a
// benchmark name, a file path, inline text) hit the same entry as long
// as the parsed content matches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "arch/channel_group.hpp"
#include "service/lru_cache.hpp"
#include "shm/store.hpp"
#include "soc/soc.hpp"

namespace mst {

/// 64-bit FNV-1a over the canonical .soc rendition of the SOC. Stable
/// across naming (name/path/inline) because it hashes parsed content.
[[nodiscard]] std::uint64_t soc_fingerprint(const Soc& soc);

/// Render a fingerprint as the fixed-width hex string used in responses.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint);

/// An SOC plus its wrapper time tables, bundled so the tables' internal
/// pointer to the SOC stays valid for the cache entry's whole lifetime.
class SocTables {
public:
    explicit SocTables(std::shared_ptr<const Soc> soc)
        : soc_(std::move(soc)), tables_(*soc_)
    {
    }

    /// Adopt tables restored from the shared-memory tier (they must
    /// reference *soc; see shm::ShmStore::load_tables).
    SocTables(std::shared_ptr<const Soc> soc, SocTimeTables tables)
        : soc_(std::move(soc)), tables_(std::move(tables))
    {
    }

    [[nodiscard]] const Soc& soc() const noexcept { return *soc_; }
    [[nodiscard]] const SocTimeTables& tables() const noexcept { return tables_; }

private:
    std::shared_ptr<const Soc> soc_;
    SocTimeTables tables_;
};

/// LRU of immutable table builds keyed by SOC content fingerprint.
/// Thread-safe; concurrent requests for one fingerprint share a single
/// build (single-flight, see LruCache).
///
/// With a shared-memory store configured, the store acts as a second
/// tier *under* the LRU: the compute lambda first tries to restore the
/// blob another process published, and publishes its own build on a
/// store miss. Because both happen inside the single-flight compute,
/// the LRU's hit/miss counters are identical with the store on or off —
/// the byte-identity contract of stats responses holds either way.
class TablesCache {
public:
    explicit TablesCache(std::size_t capacity, std::shared_ptr<shm::ShmStore> store = {})
        : cache_(capacity), store_(std::move(store))
    {
    }

    /// Tables for `soc` (whose fingerprint the caller already computed).
    /// Throws whatever the underlying table build throws.
    [[nodiscard]] std::shared_ptr<const SocTables> get(std::uint64_t fingerprint,
                                                       const std::shared_ptr<const Soc>& soc)
    {
        return cache_.get_or_compute(fingerprint, [&]() -> std::shared_ptr<const SocTables> {
            if (store_ != nullptr) {
                if (std::unique_ptr<SocTimeTables> restored =
                        store_->load_tables(fingerprint, *soc)) {
                    return std::make_shared<const SocTables>(soc, std::move(*restored));
                }
            }
            auto built = std::make_shared<const SocTables>(soc);
            if (store_ != nullptr) {
                store_->publish_tables(fingerprint, built->tables());
            }
            return built;
        });
    }

    [[nodiscard]] CacheStats stats() const { return cache_.stats(); }

private:
    LruCache<std::uint64_t, SocTables> cache_;
    std::shared_ptr<shm::ShmStore> store_;
};

} // namespace mst
