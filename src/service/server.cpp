#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <system_error>

#include <poll.h>

#include "common/executor.hpp"
#include "common/faultpoint.hpp"
#include "service/framing.hpp"

namespace mst {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ns()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
}

void bump_high_water(std::atomic<std::uint64_t>& high_water, std::uint64_t value)
{
    std::uint64_t current = high_water.load();
    while (value > current && !high_water.compare_exchange_weak(current, value)) {
    }
}

} // namespace

/// Per-connection state shared between the reader thread (frame loop,
/// admission, barriers) and the executor workers that complete its
/// requests.
struct Server::Connection {
    net::Socket socket;

    // Negotiated by a first-frame hello; fixed afterwards.
    protocol::Framing framing = protocol::Framing::ndjson;
    bool stream = true;

    /// Next response sequence number; reader thread only. In ordered
    /// mode, response order == frame order == seq order.
    std::uint64_t next_seq = 0;

    std::mutex mutex; ///< guards the socket writes, pending, write_failed
    std::condition_variable cv;
    std::map<std::uint64_t, std::string> pending; ///< ordered mode: not-yet-due responses
    std::uint64_t next_write = 0;
    bool write_failed = false;

    /// Admitted optimize requests not yet completed (barriers wait on 0).
    std::atomic<std::uint64_t> inflight{0};
    /// Set when the reader thread finished; the accept loop reaps then.
    std::atomic<bool> done{false};
    /// Last time the peer sent bytes (steady-clock ns); the shed policy
    /// picks the least-recently-active idle connection.
    std::atomic<std::int64_t> last_activity_ns{0};
};

Server::Server(ServerConfig config) : config_(config), service_(config.service) {}

Server::~Server()
{
    stop();
}

void Server::start()
{
    start(net::Listener::bind(config_.listen));
}

void Server::start(net::Listener listener)
{
    listener_ = std::move(listener);
    endpoint_ = listener_.local_endpoint();
    started_.store(true);
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::run(ShutdownLatch& latch)
{
    if (!started_.load()) {
        start();
    }
    while (!latch.requested() && !stopping_.load()) {
        pollfd pfd{};
        pfd.fd = latch.poll_fd();
        pfd.events = POLLIN;
        // A negative fd is ignored by poll, leaving the 200ms heartbeat
        // on latch.requested() as the fallback wake-up.
        (void)::poll(&pfd, 1, 200);
    }
    stop();
}

void Server::stop()
{
    if (!started_.load()) {
        return;
    }
    stopping_.store(true);
    listener_.close(); // wakes a blocked accept
    if (accept_thread_.joinable()) {
        accept_thread_.join();
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (ConnectionThread& entry : connections_) {
        if (entry.thread.joinable()) {
            entry.thread.join(); // reader drains in-flight work, then exits
        }
    }
    connections_.clear();
}

protocol::ServerCounters Server::counters() const
{
    protocol::ServerCounters counters;
    counters.connections_accepted = connections_accepted_.load();
    counters.connections_active = connections_active_.load();
    counters.requests_admitted = requests_admitted_.load();
    counters.requests_rejected = requests_rejected_.load();
    counters.global_queue_high_water = global_queue_high_water_.load();
    counters.connection_queue_high_water = connection_queue_high_water_.load();
    counters.accept_retries = accept_retries_.load();
    counters.connections_shed = connections_shed_.load();
    counters.load_shed_cache_hits = load_shed_cache_hits_.load();
    service_.fill_shm_section(counters);
    if (config_.pool_stats) {
        config_.pool_stats(counters);
    }
    return counters;
}

bool Server::shed_oldest_idle()
{
    std::shared_ptr<Connection> victim;
    std::int64_t oldest = 0;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        for (const ConnectionThread& entry : connections_) {
            const std::shared_ptr<Connection>& conn = entry.conn;
            if (conn->done.load() || conn->inflight.load() != 0) {
                continue; // gone already, or mid-request: not sheddable
            }
            const std::int64_t activity = conn->last_activity_ns.load();
            if (victim == nullptr || activity < oldest) {
                victim = conn;
                oldest = activity;
            }
        }
    }
    if (victim == nullptr) {
        return false;
    }
    // Shutdown (not close): the reader thread owns the fd and is woken
    // by the EOF to run its normal drain/close/reap path.
    victim->socket.shutdown_both();
    ++connections_shed_;
    return true;
}

void Server::reap_finished_locked()
{
    for (std::size_t i = 0; i < connections_.size();) {
        if (connections_[i].conn->done.load() && connections_[i].thread.joinable()) {
            connections_[i].thread.join();
            connections_[i] = std::move(connections_.back());
            connections_.pop_back();
        } else {
            ++i;
        }
    }
}

void Server::accept_loop()
{
    int consecutive_exhausted = 0;
    while (!stopping_.load()) {
        net::AcceptResult accepted = listener_.accept(200);
        {
            std::lock_guard<std::mutex> lock(connections_mutex_);
            reap_finished_locked();
        }
        if (stopping_.load()) {
            continue;
        }
        switch (accepted.status) {
        case net::AcceptResult::Status::timeout:
        case net::AcceptResult::Status::closed:
            continue;
        case net::AcceptResult::Status::transient:
            // Peer vanished mid-handshake (ECONNABORTED and friends):
            // a non-event, try again immediately.
            continue;
        case net::AcceptResult::Status::exhausted: {
            // Out of fds/buffers: recover instead of dying. Shed the
            // least-recently-active idle connection to free a descriptor,
            // then back off — capped exponential, derived from the
            // consecutive-failure count so the schedule is deterministic.
            ++accept_retries_;
            (void)shed_oldest_idle();
            if (config_.accept_backoff_ms > 0) {
                const int shift = consecutive_exhausted < 20 ? consecutive_exhausted : 20;
                const long long raw = static_cast<long long>(config_.accept_backoff_ms)
                                      << shift;
                const long long cap = std::max<long long>(config_.accept_backoff_cap_ms,
                                                          config_.accept_backoff_ms);
                long long remaining_ms = raw < cap ? raw : cap;
                // Sliced, stop-aware sleep: shutdown must never wait out
                // a long backoff.
                while (remaining_ms > 0 && !stopping_.load()) {
                    const long long slice = remaining_ms < 20 ? remaining_ms : 20;
                    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
                    remaining_ms -= slice;
                }
            }
            ++consecutive_exhausted;
            continue;
        }
        case net::AcceptResult::Status::accepted:
            break;
        }
        consecutive_exhausted = 0;
        net::Socket socket = std::move(accepted.socket);
        if (connections_active_.load() >= static_cast<std::uint64_t>(config_.max_connections)) {
            // Typed refusal, then close: the client learns why instead of
            // hanging in a kernel backlog.
            socket.set_write_timeout(config_.write_timeout_ms);
            (void)socket.write_all(encode_frame(
                protocol::Framing::ndjson,
                protocol::error_response(
                    "", protocol::ErrorKind::overloaded, "connection limit reached",
                    "max_connections=" + std::to_string(config_.max_connections))));
            continue;
        }
        ++connections_accepted_;
        ++connections_active_;
        auto conn = std::make_shared<Connection>();
        conn->socket = std::move(socket);
        conn->last_activity_ns.store(now_ns());
        std::lock_guard<std::mutex> lock(connections_mutex_);
        connections_.push_back(
            {std::thread([this, conn] { connection_main(conn); }), conn});
    }
}

void Server::connection_main(std::shared_ptr<Connection> conn)
{
    handle_connection(conn);
    --connections_active_;
    conn->done.store(true); // last touch: the accept loop may reap now
}

void Server::handle_connection(const std::shared_ptr<Connection>& conn)
{
    conn->socket.set_write_timeout(config_.write_timeout_ms);
    FrameReader reader(config_.max_frame_bytes);
    bool first_frame = true;
    bool alive = true;
    char buffer[16 * 1024];
    Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);

    while (alive && !stopping_.load()) {
        // Short poll slices so shutdown requests are noticed promptly.
        if (!conn->socket.wait_readable(200)) {
            if (Clock::now() >= deadline) {
                break; // idle (or mid-frame read) timeout
            }
            continue;
        }
        const long n = conn->socket.read_some(buffer, sizeof buffer);
        if (n <= 0) {
            break; // EOF (every buffered frame was already answered) or error
        }
        conn->last_activity_ns.store(now_ns());
        reader.feed(buffer, static_cast<std::size_t>(n));
        alive = process_buffered(conn, reader, first_frame);
        deadline = Clock::now() + std::chrono::milliseconds(reader.mid_frame()
                                                               ? config_.read_timeout_ms
                                                               : config_.idle_timeout_ms);
    }

    // Drain: every admitted request completes and (ordered mode) flushes
    // in sequence before the socket closes — shutdown refuses work, it
    // never swallows responses.
    {
        std::unique_lock<std::mutex> lock(conn->mutex);
        conn->cv.wait(lock, [&] { return conn->inflight.load() == 0; });
    }
    conn->socket.close();
}

bool Server::process_buffered(const std::shared_ptr<Connection>& conn, FrameReader& reader,
                              bool& first_frame)
{
    std::string frame;
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(conn->mutex);
            if (conn->write_failed) {
                return false; // peer stopped reading; stop parsing for it
            }
        }
        const FrameReader::Status status = reader.next(frame);
        if (status == FrameReader::Status::need_more) {
            return true;
        }
        const std::uint64_t seq = conn->next_seq++;
        if (status == FrameReader::Status::oversized) {
            ++requests_admitted_;
            if (!deliver(*conn, seq,
                         protocol::error_response("", protocol::ErrorKind::parse, frame))) {
                return false;
            }
            continue;
        }

        protocol::Request request = protocol::parse_request(frame);
        const bool was_first = first_frame;
        first_frame = false;

        if (request.error.kind == protocol::ErrorKind::none &&
            request.op == protocol::Request::Op::hello && was_first) {
            // Negotiate, answer in the *new* framing, and re-key the
            // splitter (safe mid-buffer: the switch is at a frame
            // boundary even if later frames are already buffered).
            if (request.has_framing) {
                conn->framing = request.framing;
            }
            if (request.has_stream) {
                conn->stream = request.stream;
            }
            reader.set_framing(conn->framing);
            ++requests_admitted_;
            if (!deliver(*conn, seq,
                         protocol::hello_response(request.id_json, conn->framing,
                                                  conn->stream))) {
                return false;
            }
            continue;
        }

        if (request.error.kind == protocol::ErrorKind::none &&
            request.op == protocol::Request::Op::stats) {
            // Barrier: every preceding admitted request completes first,
            // so the numbers are deterministic for an ordered replay.
            {
                std::unique_lock<std::mutex> lock(conn->mutex);
                conn->cv.wait(lock, [&] { return conn->inflight.load() == 0; });
            }
            ++requests_admitted_;
            const protocol::ServerCounters snapshot = counters();
            if (!deliver(*conn, seq, service_.stats_response(request, &snapshot))) {
                return false;
            }
            continue;
        }

        if (request.error.kind == protocol::ErrorKind::none &&
            request.op == protocol::Request::Op::health) {
            // Liveness/readiness probe: answered inline on the reader
            // thread without touching the optimizer pool, so a saturated
            // worker still responds to its supervisor.
            ++requests_admitted_;
            protocol::HealthInfo health = service_.health_info();
            health.inflight = global_inflight_.load();
            health.queue_limit = static_cast<std::uint64_t>(config_.global_queue_limit);
            if (!deliver(*conn, seq, protocol::health_response(request.id_json, health))) {
                return false;
            }
            continue;
        }

        if (request.error.kind != protocol::ErrorKind::none ||
            request.op != protocol::Request::Op::optimize) {
            // Interpretation failures and out-of-place hellos are cheap:
            // answer inline on the reader thread.
            ++requests_admitted_;
            if (!deliver(*conn, seq, service_.run_request(request))) {
                return false;
            }
            continue;
        }

        if (stopping_.load()) {
            ++requests_rejected_;
            if (!deliver(*conn, seq,
                         protocol::error_response(request.id_json,
                                                  protocol::ErrorKind::overloaded,
                                                  "server is shutting down"))) {
                return false;
            }
            continue;
        }

        // Admission control: refuse over-limit work with a typed error
        // now instead of stalling the socket behind an unbounded queue.
        const std::uint64_t global_inflight = ++global_inflight_;
        const std::uint64_t conn_inflight = ++conn->inflight;
        if (global_inflight > static_cast<std::uint64_t>(config_.global_queue_limit) ||
            conn_inflight > static_cast<std::uint64_t>(config_.connection_queue_limit)) {
            --global_inflight_;
            --conn->inflight;
            // Load-shedding degradation mode: a saturated queue refuses
            // new optimize work, but a request whose outcome already
            // sits in the solution memo is answered anyway — cache hits
            // cost no executor time, so overload never blinds clients to
            // results the server already has.
            if (std::optional<std::string> cached = service_.cached_response(request)) {
                ++requests_admitted_;
                ++load_shed_cache_hits_;
                if (!deliver(*conn, seq, *cached)) {
                    return false;
                }
                continue;
            }
            ++requests_rejected_;
            const bool global = global_inflight >
                                static_cast<std::uint64_t>(config_.global_queue_limit);
            if (!deliver(*conn, seq,
                         protocol::error_response(
                             request.id_json, protocol::ErrorKind::overloaded,
                             global ? "server request queue is full"
                                    : "connection request queue is full",
                             global ? "global_queue_limit=" +
                                          std::to_string(config_.global_queue_limit)
                                    : "connection_queue_limit=" +
                                          std::to_string(config_.connection_queue_limit)))) {
                return false;
            }
            continue;
        }
        ++requests_admitted_;
        bump_high_water(global_queue_high_water_, global_inflight);
        bump_high_water(connection_queue_high_water_, conn_inflight);

        Executor::global().submit(
            [this, conn, seq, request = std::move(request)]() mutable {
                // deliver() failure just marks the connection dead; the
                // request still completes and is counted.
                (void)deliver(*conn, seq, service_.run_request(request));
                finish_request(conn);
            });
    }
}

bool Server::deliver(Connection& conn, std::uint64_t seq, const std::string& payload)
{
    std::lock_guard<std::mutex> lock(conn.mutex);
    if (conn.write_failed) {
        return false;
    }
    // Injected send failure: exercises the same path as a vanished peer
    // (drop this connection, never the server).
    if (MST_FAULTPOINT("net.write") != std::errc{}) {
        conn.write_failed = true;
        return false;
    }
    if (conn.stream) {
        if (!conn.socket.write_all(encode_frame(conn.framing, payload))) {
            conn.write_failed = true;
            return false;
        }
        return true;
    }
    conn.pending.emplace(seq, payload);
    // Release the contiguous run that is now due, in request order.
    for (auto it = conn.pending.find(conn.next_write); it != conn.pending.end();
         it = conn.pending.find(conn.next_write)) {
        if (!conn.socket.write_all(encode_frame(conn.framing, it->second))) {
            conn.write_failed = true;
            return false;
        }
        conn.pending.erase(it);
        ++conn.next_write;
    }
    return true;
}

void Server::finish_request(const std::shared_ptr<Connection>& conn)
{
    --global_inflight_;
    --conn->inflight;
    {
        // Empty critical section: pairs the decrement with the waiter's
        // predicate check so the notify cannot slip between them.
        std::lock_guard<std::mutex> lock(conn->mutex);
    }
    conn->cv.notify_all();
}

} // namespace mst
