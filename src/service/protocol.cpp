#include "service/protocol.hpp"

#include <cstdio>
#include <limits>
#include <sstream>

#include "common/format.hpp"
#include "report/solution_json.hpp"
#include "service/json.hpp"

namespace mst::protocol {

const char* error_kind_name(ErrorKind kind) noexcept
{
    switch (kind) {
    case ErrorKind::none: return "none";
    case ErrorKind::parse: return "parse";
    case ErrorKind::validation: return "validation";
    case ErrorKind::version: return "version";
    case ErrorKind::infeasible: return "infeasible";
    case ErrorKind::exact_infeasible: return "exact_infeasible";
    case ErrorKind::overloaded: return "overloaded";
    case ErrorKind::internal: return "internal";
    }
    return "?";
}

const char* framing_name(Framing framing) noexcept
{
    switch (framing) {
    case Framing::ndjson: return "ndjson";
    case Framing::length_prefix: return "length_prefix";
    }
    return "?";
}

namespace {

/// Thrown inside parse_request to carry a full typed wire error (kind +
/// detail, not just a message); caught before the function returns.
struct WireErrorException {
    WireError error;
};

[[noreturn]] void fail(ErrorKind kind, std::string message, std::string detail = "")
{
    throw WireErrorException{WireError{kind, std::move(message), std::move(detail)}};
}

int require_int(const JsonValue& value, const std::string& field)
{
    if (!value.is_number()) {
        fail(ErrorKind::validation, "request field '" + field + "' expects an integer");
    }
    const std::int64_t wide = value.as_int();
    if (wide < std::numeric_limits<int>::min() || wide > std::numeric_limits<int>::max()) {
        fail(ErrorKind::validation,
             "request field '" + field + "' is out of range: '" + value.raw() + "'");
    }
    return static_cast<int>(wide);
}

double require_number(const JsonValue& value, const std::string& field)
{
    if (!value.is_number()) {
        fail(ErrorKind::validation, "request field '" + field + "' expects a number");
    }
    return value.as_number();
}

bool require_bool(const JsonValue& value, const std::string& field)
{
    if (!value.is_bool()) {
        fail(ErrorKind::validation, "request field '" + field + "' expects true or false");
    }
    return value.as_bool();
}

const std::string& require_string(const JsonValue& value, const std::string& field)
{
    if (!value.is_string()) {
        fail(ErrorKind::validation, "request field '" + field + "' expects a string");
    }
    return value.as_string();
}

/// %.17g round-trips doubles exactly: two values that differ anywhere
/// differ in the canonical JSON (which doubles as the memo key).
std::string canonical_number(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

/// Every field any op accepts, reusing the CLI's FlagSpec so unknown
/// fields get the same nearest-match suggestions as unknown flags.
const std::vector<cli::FlagSpec>& request_fields()
{
    static const std::vector<cli::FlagSpec> fields = [] {
        std::vector<cli::FlagSpec> all = {
            {"id", true},     {"v", true},       {"op", true},
            {"soc", true},    {"soc_text", true}, {"scope", true},
            {"framing", true}, {"stream", true},
        };
        for (const CellBinding& binding : cell_bindings()) {
            all.push_back({binding.field, true});
        }
        for (const OptionBinding& binding : option_bindings()) {
            all.push_back({binding.json_field, true});
        }
        return all;
    }();
    return fields;
}

[[noreturn]] void fail_unknown(const std::string& what, const std::string& input,
                               const std::vector<cli::FlagSpec>& candidates)
{
    const std::string suggestion = cli::nearest_flag_name(input, candidates);
    fail(ErrorKind::validation, "unknown " + what + " '" + input + "'",
         suggestion.empty() ? "" : "did you mean '" + suggestion + "'?");
}

const CellBinding* find_cell_binding(const std::string& field)
{
    for (const CellBinding& binding : cell_bindings()) {
        if (field == binding.field) {
            return &binding;
        }
    }
    return nullptr;
}

const OptionBinding* find_option_binding(const std::string& field)
{
    for (const OptionBinding& binding : option_bindings()) {
        if (field == binding.json_field) {
            return &binding;
        }
    }
    return nullptr;
}

void apply_cell_field(TestCell& cell, const CellBinding& binding, const JsonValue& value)
{
    switch (binding.kind) {
    case CellBinding::Kind::integer:
        binding.apply_int(cell, require_int(value, binding.field));
        break;
    case CellBinding::Kind::depth:
        // "7M"/"48K" shorthand or a plain vector count.
        binding.apply_depth(cell, value.is_string() ? parse_depth(value.as_string())
                                                    : value.as_int());
        break;
    case CellBinding::Kind::number:
        binding.apply_number(cell, require_number(value, binding.field));
        break;
    }
}

void apply_option_field(OptimizeOptions& options, const OptionBinding& binding,
                        const JsonValue& value)
{
    switch (binding.kind) {
    case OptionBinding::Kind::toggle:
        if (require_bool(value, binding.json_field)) {
            binding.apply_toggle(options);
        }
        break;
    case OptionBinding::Kind::integer:
        binding.apply_int(options, require_int(value, binding.json_field));
        break;
    case OptionBinding::Kind::number:
        binding.apply_number(options, require_number(value, binding.json_field));
        break;
    }
}

} // namespace

Request parse_request(const std::string& frame)
{
    Request request;
    using Op = Request::Op;
    try {
        const JsonValue root = JsonValue::parse(frame);
        if (!root.is_object()) {
            fail(ErrorKind::validation, "request must be a JSON object");
        }
        // id, v, and op first (member order in the frame is arbitrary):
        // later field errors echo the id, and field acceptance depends
        // on the op.
        if (const JsonValue* id = root.find("id")) {
            if (!id->is_string() && !id->is_number()) {
                fail(ErrorKind::validation, "request field 'id' expects a string or number");
            }
            request.id_json = id->raw();
        }
        if (const JsonValue* v = root.find("v")) {
            // Any value other than the integer 1 (wrong type included)
            // is a version error, typed so clients can react.
            bool supported = false;
            if (v->is_number()) {
                try {
                    supported = v->as_int() == version;
                } catch (const ValidationError&) {
                    supported = false; // fractional / out-of-range number
                }
            }
            if (!supported) {
                fail(ErrorKind::version, "unsupported protocol version " + v->raw(),
                     "supported versions: 1");
            }
        }
        if (const JsonValue* op = root.find("op")) {
            const std::string& name = require_string(*op, "op");
            if (name == "optimize") {
                request.op = Op::optimize;
            } else if (name == "stats") {
                request.op = Op::stats;
            } else if (name == "hello") {
                request.op = Op::hello;
            } else if (name == "health") {
                request.op = Op::health;
            } else {
                static const std::vector<cli::FlagSpec> ops = {{"optimize", false},
                                                               {"stats", false},
                                                               {"hello", false},
                                                               {"health", false}};
                fail_unknown("op", name, ops);
            }
        }

        for (const JsonValue::Member& member : root.as_object()) {
            const std::string& field = member.first;
            const JsonValue& value = member.second;
            if (field == "id" || field == "v" || field == "op") {
                continue;
            }
            if (field == "scope") {
                if (request.op != Op::stats) {
                    fail(ErrorKind::validation,
                         "field 'scope' is only valid on a stats request");
                }
                const std::string& scope = require_string(value, field);
                if (scope == "service") {
                    request.scope = StatsScope::service;
                } else if (scope == "server") {
                    request.scope = StatsScope::server;
                } else {
                    static const std::vector<cli::FlagSpec> scopes = {{"service", false},
                                                                      {"server", false}};
                    fail_unknown("stats scope", scope, scopes);
                }
                continue;
            }
            if (field == "framing") {
                if (request.op != Op::hello) {
                    fail(ErrorKind::validation,
                         "field 'framing' is only valid on a hello request");
                }
                const std::string& name = require_string(value, field);
                if (name == "ndjson") {
                    request.framing = Framing::ndjson;
                } else if (name == "length_prefix") {
                    request.framing = Framing::length_prefix;
                } else {
                    static const std::vector<cli::FlagSpec> framings = {
                        {"ndjson", false}, {"length_prefix", false}};
                    fail_unknown("framing", name, framings);
                }
                request.has_framing = true;
                continue;
            }
            if (field == "stream") {
                if (request.op != Op::hello) {
                    fail(ErrorKind::validation,
                         "field 'stream' is only valid on a hello request");
                }
                request.stream = require_bool(value, field);
                request.has_stream = true;
                continue;
            }
            // Everything below is optimize payload.
            if (request.op != Op::optimize) {
                fail(ErrorKind::validation,
                     std::string("field '") + field + "' is only valid on an optimize request");
            }
            if (field == "soc") {
                request.soc_spec = require_string(value, field);
            } else if (field == "soc_text") {
                request.soc_text = require_string(value, field);
                request.inline_soc = true;
            } else if (const CellBinding* cell = find_cell_binding(field)) {
                apply_cell_field(request.cell, *cell, value);
            } else if (const OptionBinding* option = find_option_binding(field)) {
                apply_option_field(request.options, *option, value);
            } else {
                fail_unknown("request field", field, request_fields());
            }
        }

        if (request.op == Op::optimize &&
            request.inline_soc == !request.soc_spec.empty()) {
            // both set, or neither
            fail(ErrorKind::validation,
                 "an optimize request needs exactly one of 'soc' (name or path) "
                 "and 'soc_text' (inline .soc)");
        }
    } catch (const WireErrorException& e) {
        request.error = e.error;
    } catch (const JsonParseError& e) {
        request.error = {ErrorKind::parse, e.what(), ""};
    } catch (const ValidationError& e) {
        request.error = {ErrorKind::validation, e.what(), ""};
    } catch (const std::exception& e) {
        request.error = {ErrorKind::internal, e.what(), ""};
    }
    return request;
}

namespace {

/// `{"id":<id>,"v":1,` — the fixed prefix of every response.
std::string response_prefix(const std::string& id_json)
{
    std::string prefix = "{";
    if (!id_json.empty()) {
        prefix += "\"id\":" + id_json + ",";
    }
    prefix += "\"v\":" + std::to_string(version) + ",";
    return prefix;
}

std::string cache_stats_json(const char* name, const CacheStats& stats)
{
    std::ostringstream out;
    out << '"' << name << "\":{\"capacity\":" << stats.capacity << ",\"size\":" << stats.size
        << ",\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
        << ",\"evictions\":" << stats.evictions << '}';
    return out.str();
}

} // namespace

std::string ok_response(const std::string& id_json, const std::string& fingerprint,
                        const std::string& solution_json)
{
    return response_prefix(id_json) + "\"ok\":true,\"fingerprint\":\"" + fingerprint +
           "\",\"solution\":" + solution_json + "}";
}

std::string error_response(const std::string& id_json, const WireError& error)
{
    std::ostringstream out;
    out << response_prefix(id_json) << "\"ok\":false,\"error\":{\"kind\":\""
        << error_kind_name(error.kind) << "\",\"message\":\"" << json_escape(error.message)
        << '"';
    if (!error.detail.empty()) {
        out << ",\"detail\":\"" << json_escape(error.detail) << '"';
    }
    out << "}}";
    return out.str();
}

std::string error_response(const std::string& id_json, ErrorKind kind,
                           const std::string& message, const std::string& detail)
{
    return error_response(id_json, WireError{kind, message, detail});
}

std::string stats_response(const std::string& id_json, const RequestCounters& requests,
                           const CacheStats& tables, const CacheStats& memo,
                           const ServerCounters* server)
{
    std::ostringstream out;
    out << response_prefix(id_json)
        << "\"ok\":true,\"stats\":{\"requests\":{\"received\":" << requests.received
        << ",\"ok\":" << requests.ok << ",\"failed\":" << requests.failed << "},"
        << cache_stats_json("tables_cache", tables) << ','
        << cache_stats_json("solution_memo", memo);
    if (server != nullptr) {
        out << ",\"server\":{\"connections_accepted\":" << server->connections_accepted
            << ",\"connections_active\":" << server->connections_active
            << ",\"requests_admitted\":" << server->requests_admitted
            << ",\"requests_rejected\":" << server->requests_rejected
            << ",\"global_queue_high_water\":" << server->global_queue_high_water
            << ",\"connection_queue_high_water\":" << server->connection_queue_high_water
            << ",\"accept_retries\":" << server->accept_retries
            << ",\"connections_shed\":" << server->connections_shed
            << ",\"load_shed_cache_hits\":" << server->load_shed_cache_hits;
        if (server->shm.enabled) {
            const auto& shm = server->shm;
            out << ",\"shm\":{\"attached\":" << (shm.attached ? "true" : "false")
                << ",\"hits\":" << shm.hits << ",\"misses\":" << shm.misses
                << ",\"publishes\":" << shm.publishes << ",\"fallbacks\":" << shm.fallbacks
                << ",\"checksum_failures\":" << shm.checksum_failures
                << ",\"generation\":" << shm.generation
                << ",\"committed_bytes\":" << shm.committed_bytes
                << ",\"arena_bytes\":" << shm.arena_bytes
                << ",\"recoveries\":" << shm.recoveries
                << ",\"truncated_bytes\":" << shm.truncated_bytes << '}';
        }
        if (server->pool.enabled) {
            const auto& pool = server->pool;
            out << ",\"pool\":{\"workers\":" << pool.workers << ",\"ready\":" << pool.ready
                << ",\"restarts\":" << pool.restarts
                << ",\"quarantined\":" << pool.quarantined << ",\"per_worker\":[";
            for (std::size_t i = 0; i < pool.per_worker.size(); ++i) {
                const ServerCounters::PoolWorker& worker = pool.per_worker[i];
                if (i != 0) {
                    out << ',';
                }
                out << "{\"pid\":" << worker.pid << ",\"state\":\"" << worker.state
                    << "\",\"heartbeat\":" << worker.heartbeat
                    << ",\"received\":" << worker.received << ",\"ok\":" << worker.ok
                    << ",\"failed\":" << worker.failed
                    << ",\"connections_accepted\":" << worker.connections_accepted
                    << ",\"requests_admitted\":" << worker.requests_admitted
                    << ",\"requests_rejected\":" << worker.requests_rejected
                    << ",\"shm_hits\":" << worker.shm_hits
                    << ",\"shm_misses\":" << worker.shm_misses
                    << ",\"shm_publishes\":" << worker.shm_publishes
                    << ",\"shm_fallbacks\":" << worker.shm_fallbacks << '}';
            }
            std::uint64_t total_received = 0;
            std::uint64_t total_ok = 0;
            std::uint64_t total_failed = 0;
            for (const ServerCounters::PoolWorker& worker : pool.per_worker) {
                total_received += worker.received;
                total_ok += worker.ok;
                total_failed += worker.failed;
            }
            out << "],\"totals\":{\"received\":" << total_received << ",\"ok\":" << total_ok
                << ",\"failed\":" << total_failed << "}}";
        }
        out << '}'; // closes "server": shm + pool nest inside it
    }
    out << "}}";
    return out.str();
}

std::string health_response(const std::string& id_json, const HealthInfo& health)
{
    std::ostringstream out;
    out << response_prefix(id_json) << "\"ok\":true,\"health\":{\"status\":\""
        << (health.ok ? "ok" : "degraded") << "\",\"shm\":\"" << health.shm
        << "\",\"executor_threads\":" << health.executor_threads
        << ",\"inflight\":" << health.inflight << ",\"queue_limit\":" << health.queue_limit
        << "}}";
    return out.str();
}

std::string hello_response(const std::string& id_json, Framing framing, bool stream)
{
    std::ostringstream out;
    out << response_prefix(id_json) << "\"ok\":true,\"hello\":{\"framing\":\""
        << framing_name(framing) << "\",\"stream\":" << (stream ? "true" : "false") << "}}";
    return out.str();
}

const std::vector<OptionBinding>& option_bindings()
{
    using Kind = OptionBinding::Kind;
    static const std::vector<OptionBinding> bindings = {
        {"broadcast", "broadcast", Kind::toggle, nullptr,
         [](OptimizeOptions& o) { o.broadcast = BroadcastMode::stimuli; }, nullptr, nullptr,
         [](const OptimizeOptions& o) { return o.broadcast != BroadcastMode::none; }, nullptr,
         nullptr},
        {"abort_on_fail", "abort-on-fail", Kind::toggle, nullptr,
         [](OptimizeOptions& o) { o.abort = AbortOnFail::on; }, nullptr, nullptr,
         [](const OptimizeOptions& o) { return o.abort == AbortOnFail::on; }, nullptr,
         nullptr},
        {"retest", "retest", Kind::toggle, nullptr,
         [](OptimizeOptions& o) { o.retest = RetestPolicy::retest_contact_failures; }, nullptr,
         nullptr, [](const OptimizeOptions& o) { return o.retest != RetestPolicy::none; },
         nullptr, nullptr},
        {"step1_only", "step1-only", Kind::toggle, nullptr,
         [](OptimizeOptions& o) { o.step1_only = true; }, nullptr, nullptr,
         [](const OptimizeOptions& o) { return o.step1_only; }, nullptr, nullptr},
        {"exact", "exact", Kind::toggle, nullptr, [](OptimizeOptions& o) { o.exact = true; },
         nullptr, nullptr, [](const OptimizeOptions& o) { return o.exact; }, nullptr, nullptr},
        {"exact_budget_ms", "exact-budget-ms", Kind::integer, "0", nullptr,
         [](OptimizeOptions& o, int v) {
             o.exact_budget_ms = v;
             if (v > 0) {
                 o.exact = true; // a budget implies the pass
             }
         },
         nullptr, nullptr,
         [](const OptimizeOptions& o) { return static_cast<std::int64_t>(o.exact_budget_ms); },
         nullptr},
        {"pc", "pc", Kind::number, "1.0", nullptr, nullptr,
         [](OptimizeOptions& o, double v) { o.yields.contact_yield_per_terminal = v; },
         nullptr, nullptr,
         [](const OptimizeOptions& o) { return o.yields.contact_yield_per_terminal; }},
        {"pm", "pm", Kind::number, "1.0", nullptr, nullptr,
         [](OptimizeOptions& o, double v) { o.yields.manufacturing_yield = v; }, nullptr,
         nullptr, [](const OptimizeOptions& o) { return o.yields.manufacturing_yield; }},
    };
    return bindings;
}

const std::vector<CellBinding>& cell_bindings()
{
    using Kind = CellBinding::Kind;
    static const std::vector<CellBinding> bindings = {
        {"channels", Kind::integer, "512",
         [](TestCell& c, int v) { c.ate.channels = v; }, nullptr, nullptr,
         [](const TestCell& c) { return static_cast<std::int64_t>(c.ate.channels); }, nullptr},
        {"depth", Kind::depth, "7M", nullptr,
         [](TestCell& c, CycleCount v) { c.ate.vector_memory_depth = v; }, nullptr,
         [](const TestCell& c) { return static_cast<std::int64_t>(c.ate.vector_memory_depth); },
         nullptr},
        {"clock", Kind::number, "5e6", nullptr, nullptr,
         [](TestCell& c, double v) { c.ate.test_clock_hz = v; }, nullptr,
         [](const TestCell& c) { return c.ate.test_clock_hz; }},
        {"index", Kind::number, "0.5", nullptr, nullptr,
         [](TestCell& c, double v) { c.prober.index_time = v; }, nullptr,
         [](const TestCell& c) { return c.prober.index_time; }},
        {"contact", Kind::number, "0.001", nullptr, nullptr,
         [](TestCell& c, double v) { c.prober.contact_test_time = v; }, nullptr,
         [](const TestCell& c) { return c.prober.contact_test_time; }},
    };
    return bindings;
}

std::vector<cli::FlagSpec> option_flag_specs()
{
    std::vector<cli::FlagSpec> specs;
    for (const OptionBinding& binding : option_bindings()) {
        specs.push_back({binding.cli_flag, binding.kind != OptionBinding::Kind::toggle});
    }
    return specs;
}

std::vector<cli::FlagSpec> cell_flag_specs()
{
    std::vector<cli::FlagSpec> specs;
    for (const CellBinding& binding : cell_bindings()) {
        specs.push_back({binding.field, true});
    }
    return specs;
}

OptimizeOptions options_from_flags(const cli::Flags& flags)
{
    OptimizeOptions options;
    for (const OptionBinding& binding : option_bindings()) {
        switch (binding.kind) {
        case OptionBinding::Kind::toggle:
            if (flags.count(binding.cli_flag) != 0) {
                binding.apply_toggle(options);
            }
            break;
        case OptionBinding::Kind::integer:
            binding.apply_int(options,
                              cli::parse_int_flag(binding.cli_flag,
                                                  cli::flag_or(flags, binding.cli_flag,
                                                               binding.cli_default)));
            break;
        case OptionBinding::Kind::number:
            binding.apply_number(options,
                                 cli::parse_double_flag(binding.cli_flag,
                                                        cli::flag_or(flags, binding.cli_flag,
                                                                     binding.cli_default)));
            break;
        }
    }
    return options;
}

TestCell cell_from_flags(const cli::Flags& flags)
{
    TestCell cell;
    for (const CellBinding& binding : cell_bindings()) {
        const std::string text = cli::flag_or(flags, binding.field, binding.cli_default);
        switch (binding.kind) {
        case CellBinding::Kind::integer:
            binding.apply_int(cell, cli::parse_int_flag(binding.field, text));
            break;
        case CellBinding::Kind::depth:
            binding.apply_depth(cell, parse_depth(text));
            break;
        case CellBinding::Kind::number:
            binding.apply_number(cell, cli::parse_double_flag(binding.field, text));
            break;
        }
    }
    return cell;
}

std::string options_to_json(const OptimizeOptions& options)
{
    std::ostringstream out;
    out << '{';
    bool first = true;
    for (const OptionBinding& binding : option_bindings()) {
        if (!first) {
            out << ',';
        }
        first = false;
        out << '"' << binding.json_field << "\":";
        switch (binding.kind) {
        case OptionBinding::Kind::toggle:
            out << (binding.read_toggle(options) ? "true" : "false");
            break;
        case OptionBinding::Kind::integer:
            out << binding.read_int(options);
            break;
        case OptionBinding::Kind::number:
            out << canonical_number(binding.read_number(options));
            break;
        }
    }
    out << '}';
    return out.str();
}

std::string cell_to_json(const TestCell& cell)
{
    std::ostringstream out;
    out << '{';
    bool first = true;
    for (const CellBinding& binding : cell_bindings()) {
        if (!first) {
            out << ',';
        }
        first = false;
        out << '"' << binding.field << "\":";
        switch (binding.kind) {
        case CellBinding::Kind::integer:
        case CellBinding::Kind::depth:
            out << binding.read_int(cell);
            break;
        case CellBinding::Kind::number:
            out << canonical_number(binding.read_number(cell));
            break;
        }
    }
    out << '}';
    return out.str();
}

} // namespace mst::protocol
