// Supervised prefork pool behind `mst serve --listen --processes N`.
//
// The parent binds the listening socket once, creates (or degrades
// without) the shared-memory segment, and forks N workers that each run
// a full Server on a dup of the inherited listener fd — the kernel
// balances accepts across them. The parent never serves requests; it
// supervises:
//
//   * a worker death (crash, OOM kill, injected fault) is detected by
//     waitpid and answered with a respawn on a capped exponential
//     backoff schedule; after max_restarts consecutive failures the
//     slot is quarantined (the pool keeps serving on the others),
//   * workers heartbeat through their shared-memory slot; a worker
//     whose heartbeat stalls is SIGKILLed and treated as a death,
//   * the port file is written only after every worker reported ready,
//     so a polling client never connects into an empty pool,
//   * SIGTERM/SIGINT fan out to the workers, which drain in-flight
//     requests and exit; stragglers past the drain timeout are
//     SIGKILLed and the supervisor exits nonzero.
//
// Crash tolerance of the cache tier (docs/shm.md) means a worker dying
// mid-publish never corrupts the segment: the next writer truncates the
// torn tail and recomputes. Byte-identity contract: one ordered
// connection replaying a request stream receives byte-identical
// responses at any process count, shm on or off, because a connection
// is served end-to-end by one worker and every response is a
// deterministic function of the request stream.
#pragma once

#include <cstddef>
#include <string>

#include "common/signals.hpp"
#include "service/server.hpp"

namespace mst {

struct PreforkOptions {
    ServerConfig server;  ///< per-worker server configuration
    int processes = 2;    ///< pool size (1..shm::Segment::max_workers)
    /// Shared-memory segment name ("" = supervise without a shared
    /// cache tier; heartbeats then degrade to waitpid-only liveness).
    std::string shm_name;
    std::size_t shm_bytes = std::size_t{8} << 20;
    /// Written (atomically, tmp+rename) once every worker is ready.
    std::string port_file;
    int max_restarts = 5;    ///< consecutive failures before quarantine
    int backoff_ms = 50;     ///< respawn backoff: min(base << k, cap)
    int backoff_cap_ms = 2000;
    /// SIGKILL a worker whose slot heartbeat stalls this long (0 = off;
    /// requires the shared segment).
    int heartbeat_timeout_ms = 30000;
    /// SIGTERM-to-SIGKILL grace during shutdown drain.
    int drain_timeout_ms = 10000;
};

/// Run the pool until `latch` requests shutdown. Returns the process
/// exit code: 0 on a clean drain, nonzero when any worker had to be
/// SIGKILLed during the drain or every slot ended up quarantined.
[[nodiscard]] int run_prefork(const PreforkOptions& options, ShutdownLatch& latch);

} // namespace mst
