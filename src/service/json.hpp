// Minimal JSON reader for the request service's wire format.
//
// Parses one RFC 8259 document into an immutable JsonValue tree. Scope
// is deliberately small (the repo writes JSON elsewhere by hand): no
// streaming, no comments, numbers are IEEE doubles, object key order is
// preserved for deterministic error messages. Errors throw
// JsonParseError with the byte offset of the offending character.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace mst {

/// A malformed request line (not valid JSON, or trailing garbage).
class JsonParseError : public Error {
public:
    JsonParseError(std::size_t offset, const std::string& message)
        : Error("malformed JSON at offset " + std::to_string(offset) + ": " + message),
          offset_(offset)
    {
    }

    [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

private:
    std::size_t offset_ = 0;
};

/// One JSON value: null, boolean, number, string, array, or object.
class JsonValue {
public:
    enum class Type { null, boolean, number, string, array, object };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    /// Parse a complete document; trailing non-whitespace is an error.
    [[nodiscard]] static JsonValue parse(const std::string& text);

    [[nodiscard]] Type type() const noexcept { return type_; }
    [[nodiscard]] bool is_null() const noexcept { return type_ == Type::null; }
    [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::boolean; }
    [[nodiscard]] bool is_number() const noexcept { return type_ == Type::number; }
    [[nodiscard]] bool is_string() const noexcept { return type_ == Type::string; }
    [[nodiscard]] bool is_array() const noexcept { return type_ == Type::array; }
    [[nodiscard]] bool is_object() const noexcept { return type_ == Type::object; }

    /// Typed accessors; throw ValidationError on type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    /// The number, required to be integral and in range.
    [[nodiscard]] std::int64_t as_int() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const std::vector<JsonValue>& as_array() const;
    [[nodiscard]] const std::vector<Member>& as_object() const;

    /// Object member lookup; nullptr when absent (or not an object).
    [[nodiscard]] const JsonValue* find(const std::string& key) const;

    /// The token as written in the source, for round-trip-faithful error
    /// messages ("got '512x'") and integer re-rendering.
    [[nodiscard]] const std::string& raw() const noexcept { return raw_; }

private:
    friend class JsonParser;

    Type type_ = Type::null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;  ///< decoded string value; also the raw token text
    std::string raw_;
    std::vector<JsonValue> array_;
    std::vector<Member> object_;
};

} // namespace mst
