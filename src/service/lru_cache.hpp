// Bounded LRU cache with single-flight computes, shared by the request
// service's TablesCache (SOC fingerprint -> wrapper time tables) and
// solution memo ((fingerprint, cell, options) -> serialized outcome).
//
// Single-flight: concurrent get_or_compute calls for one key run the
// compute once; the other callers block on the same shared_future. This
// is what makes the hit/miss counters deterministic across thread
// counts (as long as nothing is evicted): every distinct key is exactly
// one miss, every repeat - whether it joins the in-flight compute or
// finds the finished entry - is exactly one hit.
//
// A compute that throws is cached like a success (the exception is
// rethrown to every present and future caller). The service's computes
// are deterministic functions of the key, so a failure is permanent and
// re-running it would only burn time and make the counters depend on
// scheduling.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>

namespace mst {

/// Counter snapshot of one cache. hit + miss == lookups; eviction counts
/// entries dropped to keep the cache within capacity.
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
};

template <typename Key, typename Value>
class LruCache {
public:
    using ValuePtr = std::shared_ptr<const Value>;

    /// `capacity` is clamped to at least 1.
    explicit LruCache(std::size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

    /// Return the cached value for `key`, computing it via `compute()`
    /// on first use. Blocks on an in-flight compute of the same key
    /// instead of starting a second one.
    template <typename Compute>
    ValuePtr get_or_compute(const Key& key, Compute&& compute)
    {
        std::shared_future<ValuePtr> future;
        std::shared_ptr<std::promise<ValuePtr>> promise;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = entries_.find(key);
            if (it != entries_.end()) {
                ++hits_;
                lru_.splice(lru_.begin(), lru_, it->second.lru_position);
                future = it->second.future;
            } else {
                ++misses_;
                promise = std::make_shared<std::promise<ValuePtr>>();
                future = promise->get_future().share();
                lru_.push_front(key);
                entries_.emplace(key, Entry{future, lru_.begin()});
                while (entries_.size() > capacity_) {
                    // Evicting the LRU entry is safe even mid-compute:
                    // the shared state lives on in every waiter's future.
                    ++evictions_;
                    entries_.erase(lru_.back());
                    lru_.pop_back();
                }
            }
        }
        if (promise != nullptr) {
            try {
                promise->set_value(compute());
            } catch (...) {
                promise->set_exception(std::current_exception());
            }
        }
        return future.get(); // rethrows a cached compute failure
    }

    /// Read-only probe: the finished value for `key`, or nullptr when
    /// the key is absent, still computing, or computed to an exception.
    /// Deliberately touches neither the hit/miss counters nor the LRU
    /// order — peeks happen on the server's load-shedding path, whose
    /// timing is scheduling-dependent, and must not perturb the
    /// deterministic counter/eviction behavior of get_or_compute.
    [[nodiscard]] ValuePtr peek(const Key& key) const
    {
        std::shared_future<ValuePtr> future;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = entries_.find(key);
            if (it == entries_.end()) {
                return nullptr;
            }
            future = it->second.future;
        }
        if (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
            return nullptr;
        }
        try {
            return future.get();
        } catch (...) {
            return nullptr;
        }
    }

    [[nodiscard]] CacheStats stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        CacheStats stats;
        stats.hits = hits_;
        stats.misses = misses_;
        stats.evictions = evictions_;
        stats.size = entries_.size();
        stats.capacity = capacity_;
        return stats;
    }

private:
    struct Entry {
        std::shared_future<ValuePtr> future;
        typename std::list<Key>::iterator lru_position;
    };

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::map<Key, Entry> entries_;
    std::list<Key> lru_;  ///< front = most recently used
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace mst
