// Network front end of the request service: `mst serve --listen`.
//
// One TCP listener, one reader thread per connection, one shared
// RequestService. Requests execute on the process-wide Executor, so N
// connections share the same worker pool (and the same caches) as the
// stdio and replay front ends.
//
// Delivery modes (negotiated per connection by the protocol's `hello`
// request, first frame only):
//   * streaming (default): each response is written the moment its
//     request completes, out of order; clients correlate by `id`.
//   * ordered (`"stream": false`): responses are released strictly in
//     request order. A replayed request file produces byte-identical
//     output to `mst replay` at any thread count.
//
// Backpressure and admission control:
//   * bounded in-flight requests, per connection and server-wide; a
//     request over either bound gets a typed "overloaded" error
//     response immediately instead of stalling the socket,
//   * SO_SNDTIMEO bounds how long a slow-reading peer can block a
//     writer; a timed-out connection is dropped, never the server,
//   * idle and mid-frame read timeouts reclaim dead connections.
//
// Self-healing under resource pressure (docs/robustness.md):
//   * an exhausted accept (EMFILE/ENFILE/ENOBUFS) sheds the least-
//     recently-active idle connection to reclaim a descriptor and backs
//     off with a capped exponential schedule derived from the
//     consecutive-failure count — the accept loop never dies,
//   * load-shedding degradation mode: while the admission queue refuses
//     new optimize work, requests whose outcome already sits in the
//     solution memo are still answered (cache hits cost no executor
//     time); counted as load_shed_cache_hits in scope-"server" stats.
//
// Graceful shutdown (stop(), or SIGTERM/SIGINT via run()): the listener
// closes, buffered-but-unstarted optimize requests are refused with
// "overloaded", in-flight requests drain and their responses flush, then
// connections close.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/net.hpp"
#include "common/signals.hpp"
#include "service/service.hpp"

namespace mst {

class FrameReader;

struct ServerConfig {
    /// Address to listen on; port 0 picks a free port (see endpoint()).
    net::Endpoint listen;
    /// Concurrent connections; further accepts get an overloaded error.
    int max_connections = 64;
    /// In-flight optimize requests across all connections.
    int global_queue_limit = 256;
    /// In-flight optimize requests per connection.
    int connection_queue_limit = 32;
    /// Close a connection with no traffic at a frame boundary (ms).
    int idle_timeout_ms = 300000;
    /// Close a connection stalled in the middle of a frame (ms).
    int read_timeout_ms = 30000;
    /// Bound on how long a slow-reading peer may block a write (ms).
    int write_timeout_ms = 30000;
    /// Frames over this size are rejected (and skipped) as oversized.
    std::size_t max_frame_bytes = std::size_t{1} << 20;
    /// Backoff after an exhausted accept (EMFILE/ENFILE/...): retry k
    /// sleeps min(accept_backoff_ms << k, accept_backoff_cap_ms) — the
    /// schedule derives from the consecutive-failure count, not wall
    /// clock. 0 disables sleeping (tests).
    int accept_backoff_ms = 10;
    int accept_backoff_cap_ms = 500;
    /// Set by a prefork pool worker: augments scope-"server" stats with
    /// the pool section aggregated from the shared segment's slot table.
    std::function<void(protocol::ServerCounters&)> pool_stats;
    ServiceConfig service;
};

class Server {
public:
    explicit Server(ServerConfig config = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind the listener and start accepting. Throws mst::Error when the
    /// address is unavailable.
    void start();

    /// Start accepting on an already-bound listener (a prefork worker
    /// inherits the parent's listening fd instead of binding its own).
    void start(net::Listener listener);

    /// The bound address (resolves a port-0 request to the kernel pick).
    [[nodiscard]] net::Endpoint endpoint() const { return endpoint_; }

    /// start(), block until `latch` requests shutdown, then stop().
    void run(ShutdownLatch& latch);

    /// Graceful shutdown: refuse new work, drain in-flight requests,
    /// flush responses, close every connection, join all threads.
    /// Idempotent.
    void stop();

    /// Snapshot of the network-side counters (stats scope "server").
    [[nodiscard]] protocol::ServerCounters counters() const;

    [[nodiscard]] RequestService& service() { return service_; }

private:
    struct Connection;

    void accept_loop();
    void connection_main(std::shared_ptr<Connection> conn);
    void handle_connection(const std::shared_ptr<Connection>& conn);
    [[nodiscard]] bool process_buffered(const std::shared_ptr<Connection>& conn,
                                        FrameReader& reader, bool& first_frame);
    [[nodiscard]] bool deliver(Connection& conn, std::uint64_t seq,
                               const std::string& payload);
    void finish_request(const std::shared_ptr<Connection>& conn);
    void reap_finished_locked();
    /// Shed the least-recently-active connection with no in-flight work
    /// (shutdown wakes its reader, which closes it and frees the fd).
    /// False when every connection is busy.
    bool shed_oldest_idle();

    ServerConfig config_;
    RequestService service_;

    net::Listener listener_;
    net::Endpoint endpoint_;
    std::thread accept_thread_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};

    struct ConnectionThread {
        std::thread thread;
        std::shared_ptr<Connection> conn;
    };
    std::mutex connections_mutex_;
    std::vector<ConnectionThread> connections_;

    // Server-level counters (stats scope "server").
    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> connections_active_{0};
    std::atomic<std::uint64_t> requests_admitted_{0};
    std::atomic<std::uint64_t> requests_rejected_{0};
    std::atomic<std::uint64_t> global_inflight_{0};
    std::atomic<std::uint64_t> global_queue_high_water_{0};
    std::atomic<std::uint64_t> connection_queue_high_water_{0};
    std::atomic<std::uint64_t> accept_retries_{0};
    std::atomic<std::uint64_t> connections_shed_{0};
    std::atomic<std::uint64_t> load_shed_cache_hits_{0};
};

} // namespace mst
