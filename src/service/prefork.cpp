#include "service/prefork.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "shm/segment.hpp"
#include "shm/store.hpp"

namespace mst {

namespace {

using Clock = std::chrono::steady_clock;

/// EINTR-correct waitpid: a stray signal must not make the supervisor
/// misread a healthy worker as dead.
pid_t waitpid_retry(pid_t pid, int* status, int flags)
{
    for (;;) {
        const pid_t result = ::waitpid(pid, status, flags);
        if (result >= 0 || errno != EINTR) {
            return result;
        }
    }
}

const char* state_name(shm::WorkerState state)
{
    switch (state) {
    case shm::WorkerState::empty:
        return "empty";
    case shm::WorkerState::starting:
        return "starting";
    case shm::WorkerState::ready:
        return "ready";
    case shm::WorkerState::draining:
        return "draining";
    }
    return "unknown";
}

/// Aggregate the segment's slot table into the pool section of a
/// scope-"server" stats response (run by whichever worker answers it).
void fill_pool_section(const shm::Segment& segment, protocol::ServerCounters& counters)
{
    const shm::PoolMeta meta = segment.pool_meta();
    counters.pool.enabled = true;
    counters.pool.workers = meta.workers;
    counters.pool.restarts = meta.restarts;
    counters.pool.quarantined = meta.quarantined;
    for (const shm::WorkerSlotView& slot : segment.read_slots()) {
        if (slot.state == shm::WorkerState::empty) {
            continue;
        }
        if (slot.state == shm::WorkerState::ready) {
            ++counters.pool.ready;
        }
        protocol::ServerCounters::PoolWorker worker;
        worker.pid = slot.pid;
        worker.state = state_name(slot.state);
        worker.heartbeat = slot.heartbeat;
        worker.received = slot.received;
        worker.ok = slot.ok;
        worker.failed = slot.failed;
        worker.connections_accepted = slot.connections_accepted;
        worker.requests_admitted = slot.requests_admitted;
        worker.requests_rejected = slot.requests_rejected;
        worker.shm_hits = slot.shm_hits;
        worker.shm_misses = slot.shm_misses;
        worker.shm_publishes = slot.shm_publishes;
        worker.shm_fallbacks = slot.shm_fallbacks;
        counters.pool.per_worker.push_back(worker);
    }
}

bool write_port_file(const std::string& path, const net::Endpoint& bound)
{
    // Temp-then-rename so a polling reader sees either no file or the
    // complete endpoint, never a partial write (same dance as cmd_serve).
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp);
    out << bound.to_string() << '\n';
    out.flush();
    out.close();
    if (!out || std::rename(tmp.c_str(), path.c_str()) != 0) {
        (void)std::remove(tmp.c_str());
        return false;
    }
    return true;
}

/// Child side of one fork: a complete Server on the inherited listener
/// fd, a heartbeat ticker pushing counters into the worker's slot, and
/// a readiness byte once accepting. Never returns — _exit keeps the
/// parent's inherited stdio buffers from being flushed twice.
[[noreturn]] void worker_main(const PreforkOptions& options, std::size_t slot_index,
                              int attempt, int listener_fd,
                              const std::shared_ptr<shm::Segment>& segment, int ready_fd,
                              ShutdownLatch& latch)
{
    // The attempt number feeds the fault layer's *R gating: injected
    // crash rules stop firing in the respawned worker, so a chaos plan
    // kills a worker once instead of forever.
    fault::set_attempt(attempt);
    int exit_code = 0;
    {
        std::unique_ptr<Server> server;
        try {
            ServerConfig config = options.server;
            if (segment != nullptr) {
                segment->claim_slot(slot_index, static_cast<std::uint32_t>(::getpid()));
                config.service.shm = std::make_shared<shm::ShmStore>(segment);
                std::shared_ptr<shm::Segment> pool_segment = segment;
                config.pool_stats = [pool_segment](protocol::ServerCounters& counters) {
                    fill_pool_section(*pool_segment, counters);
                };
            }
            server = std::make_unique<Server>(config);
        } catch (const std::exception& error) {
            std::fprintf(stderr, "mst serve worker: %s\n", error.what());
            exit_code = 1;
        }

        std::atomic<bool> stop_ticker{false};
        std::thread ticker;
        if (server != nullptr && segment != nullptr) {
            Server* raw = server.get();
            ticker = std::thread([&stop_ticker, raw, segment, slot_index] {
                while (!stop_ticker.load(std::memory_order_acquire)) {
                    shm::WorkerSlotView view;
                    const protocol::RequestCounters requests =
                        raw->service().request_counters();
                    const protocol::ServerCounters counters = raw->counters();
                    view.received = requests.received;
                    view.ok = requests.ok;
                    view.failed = requests.failed;
                    view.connections_accepted = counters.connections_accepted;
                    view.requests_admitted = counters.requests_admitted;
                    view.requests_rejected = counters.requests_rejected;
                    view.shm_hits = counters.shm.hits;
                    view.shm_misses = counters.shm.misses;
                    view.shm_publishes = counters.shm.publishes;
                    view.shm_fallbacks = counters.shm.fallbacks;
                    segment->update_slot(slot_index, view);
                    std::this_thread::sleep_for(std::chrono::milliseconds(100));
                }
            });
        }

        if (server != nullptr) {
            try {
                server->start(net::Listener::adopt(listener_fd));
                if (segment != nullptr) {
                    segment->set_slot_state(slot_index, shm::WorkerState::ready);
                }
                const char byte = 1;
                (void)!::write(ready_fd, &byte, 1);
                server->run(latch); // blocks until SIGTERM, then drains
                if (segment != nullptr) {
                    segment->set_slot_state(slot_index, shm::WorkerState::draining);
                }
            } catch (const std::exception& error) {
                std::fprintf(stderr, "mst serve worker: %s\n", error.what());
                exit_code = 1;
            } catch (...) {
                exit_code = 1;
            }
        }
        // Join the ticker before the Server it reads is destroyed.
        stop_ticker.store(true, std::memory_order_release);
        if (ticker.joinable()) {
            ticker.join();
        }
        server.reset();
    }
    ::_exit(exit_code);
}

} // namespace

int run_prefork(const PreforkOptions& options, ShutdownLatch& latch)
{
    if (options.processes < 1 ||
        options.processes > static_cast<int>(shm::Segment::max_workers)) {
        throw ValidationError("--processes must be between 1 and " +
                              std::to_string(shm::Segment::max_workers));
    }

    // Bind once in the parent; workers adopt the inherited fd, so the
    // kernel balances accepts across them and port 0 resolves before
    // any worker exists. The parent keeps its descriptor for respawns.
    net::Listener listener = net::Listener::bind(options.server.listen);
    const net::Endpoint bound = listener.local_endpoint();

    std::shared_ptr<shm::Segment> segment;
    if (!options.shm_name.empty()) {
        try {
            segment = shm::Segment::create_or_attach(options.shm_name, options.shm_bytes);
        } catch (const std::exception& error) {
            // Degraded mode: workers run local-only caches and heartbeat
            // supervision falls back to waitpid liveness. Never fatal.
            std::fprintf(stderr, "mst serve: shared-memory tier degraded (%s)\n",
                         error.what());
        }
    }
    if (segment != nullptr) {
        shm::PoolMeta meta;
        meta.workers = static_cast<std::uint64_t>(options.processes);
        segment->set_pool_meta(meta);
    }

    // Readiness pipe: each worker writes one byte once it is accepting.
    // With a segment the slot states are authoritative; the pipe is the
    // fallback so the port file still gates on readiness without shm.
    int ready_pipe[2] = {-1, -1};
    if (::pipe(ready_pipe) != 0) {
        throw Error(std::string("cannot create readiness pipe: ") + std::strerror(errno));
    }
    (void)::fcntl(ready_pipe[0], F_SETFL, O_NONBLOCK);
    (void)::fcntl(ready_pipe[1], F_SETFL, O_NONBLOCK);

    struct Slot {
        pid_t pid = -1;
        int attempts = 0;             ///< worker executions started
        int consecutive_failures = 0; ///< reset on a clean drain only
        bool quarantined = false;
        Clock::time_point not_before{}; ///< respawn backoff gate
        std::uint64_t last_heartbeat = 0;
        Clock::time_point last_beat_change{};
    };
    std::vector<Slot> slots(static_cast<std::size_t>(options.processes));

    auto spawn = [&](std::size_t index) -> bool {
        Slot& slot = slots[index];
        const pid_t pid = ::fork();
        if (pid < 0) {
            return false;
        }
        if (pid == 0) {
            (void)::close(ready_pipe[0]);
            worker_main(options, index, slot.attempts, listener.fd(), segment,
                        ready_pipe[1], latch);
        }
        slot.pid = pid;
        ++slot.attempts;
        slot.last_heartbeat = 0;
        slot.last_beat_change = Clock::now();
        return true;
    };

    auto handle_failure = [&](std::size_t index, const char* what) {
        Slot& slot = slots[index];
        slot.pid = -1;
        ++slot.consecutive_failures;
        std::fprintf(stderr, "mst serve: worker %zu %s\n", index, what);
        if (slot.consecutive_failures > options.max_restarts) {
            // Give up on this slot; the pool keeps serving on the rest.
            slot.quarantined = true;
            if (segment != nullptr) {
                segment->add_pool_quarantine();
                segment->clear_slot(index);
            }
            std::fprintf(stderr,
                         "mst serve: worker %zu quarantined after %d consecutive failures\n",
                         index, slot.consecutive_failures);
            return;
        }
        // Capped exponential backoff derived from the failure count, so
        // the schedule is deterministic and a crash loop cannot spin.
        const int shift = std::min(slot.consecutive_failures - 1, 20);
        const long long raw = static_cast<long long>(std::max(options.backoff_ms, 1))
                              << shift;
        const long long cap =
            std::max<long long>(options.backoff_cap_ms, options.backoff_ms);
        slot.not_before = Clock::now() + std::chrono::milliseconds(std::min(raw, cap));
    };

    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!spawn(i)) {
            handle_failure(i, "failed to fork");
        }
    }

    bool port_file_written = options.port_file.empty();
    bool announced = false;
    bool gave_up = false;
    std::size_t ready_bytes = 0;

    while (!latch.requested()) {
        // Drain readiness bytes (level counter; only consulted when no
        // segment carries authoritative slot states).
        char buffer[64];
        long n = 0;
        while ((n = ::read(ready_pipe[0], buffer, sizeof buffer)) > 0) {
            ready_bytes += static_cast<std::size_t>(n);
        }

        bool all_quarantined = true;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            Slot& slot = slots[i];
            if (slot.quarantined) {
                continue;
            }
            all_quarantined = false;
            if (slot.pid >= 0) {
                int status = 0;
                const pid_t reaped = waitpid_retry(slot.pid, &status, WNOHANG);
                if (reaped == slot.pid) {
                    handle_failure(i, WIFSIGNALED(status) ? "died on a signal"
                                                          : "exited unexpectedly");
                    continue;
                }
                // Heartbeat watchdog: a worker whose slot stops ticking
                // (wedged, not dead) is killed and treated as a death.
                if (segment != nullptr && options.heartbeat_timeout_ms > 0) {
                    const shm::WorkerSlotView view = segment->read_slot(i);
                    if (view.pid == static_cast<std::uint32_t>(slot.pid)) {
                        if (view.heartbeat != slot.last_heartbeat) {
                            slot.last_heartbeat = view.heartbeat;
                            slot.last_beat_change = Clock::now();
                        } else if (Clock::now() - slot.last_beat_change >
                                   std::chrono::milliseconds(
                                       options.heartbeat_timeout_ms)) {
                            (void)::kill(slot.pid, SIGKILL);
                            (void)waitpid_retry(slot.pid, &status, 0);
                            handle_failure(i, "heartbeat stalled; killed");
                            continue;
                        }
                    }
                }
            } else if (Clock::now() >= slot.not_before) {
                if (segment != nullptr) {
                    segment->add_pool_restart();
                }
                if (!spawn(i)) {
                    handle_failure(i, "failed to fork");
                }
            }
        }
        if (all_quarantined) {
            std::fprintf(stderr,
                         "mst serve: every worker slot is quarantined; giving up\n");
            gave_up = true;
            break;
        }

        if (!port_file_written || !announced) {
            // Gate the port file on full readiness: a polling client
            // never connects into a pool that cannot serve yet.
            std::size_t live = 0;
            std::size_t ready = 0;
            for (std::size_t i = 0; i < slots.size(); ++i) {
                if (slots[i].quarantined) {
                    continue;
                }
                ++live;
                if (segment != nullptr) {
                    const shm::WorkerSlotView view = segment->read_slot(i);
                    if (slots[i].pid >= 0 &&
                        view.pid == static_cast<std::uint32_t>(slots[i].pid) &&
                        view.state == shm::WorkerState::ready) {
                        ++ready;
                    }
                }
            }
            if (segment == nullptr) {
                ready = std::min(ready_bytes, live);
            }
            if (live > 0 && ready >= live) {
                if (!port_file_written) {
                    if (!write_port_file(options.port_file, bound)) {
                        std::fprintf(stderr, "mst serve: cannot write '%s'\n",
                                     options.port_file.c_str());
                        gave_up = true;
                        break;
                    }
                    port_file_written = true;
                }
                if (!announced) {
                    std::fprintf(stderr,
                                 "mst serve: %zu workers listening on %s (protocol v%d); "
                                 "SIGTERM drains and exits\n",
                                 live, bound.to_string().c_str(), protocol::version);
                    announced = true;
                }
            }
        }

        // Sleep a short slice, waking early when the shutdown latch's
        // self-pipe becomes readable.
        pollfd pfd{};
        pfd.fd = latch.poll_fd();
        pfd.events = POLLIN;
        (void)::poll(&pfd, 1, 50);
    }

    // Shutdown fan-out: SIGTERM every live worker, reap with a drain
    // grace, SIGKILL stragglers — and say so via the exit code.
    for (Slot& slot : slots) {
        if (slot.pid >= 0) {
            (void)::kill(slot.pid, SIGTERM);
        }
    }
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(std::max(options.drain_timeout_ms, 0));
    for (;;) {
        bool any_live = false;
        for (Slot& slot : slots) {
            if (slot.pid < 0) {
                continue;
            }
            int status = 0;
            if (waitpid_retry(slot.pid, &status, WNOHANG) == slot.pid) {
                slot.pid = -1;
            } else {
                any_live = true;
            }
        }
        if (!any_live || Clock::now() >= deadline) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    bool killed_in_drain = false;
    for (Slot& slot : slots) {
        if (slot.pid >= 0) {
            (void)::kill(slot.pid, SIGKILL);
            int status = 0;
            (void)waitpid_retry(slot.pid, &status, 0);
            slot.pid = -1;
            killed_in_drain = true;
        }
    }
    if (killed_in_drain) {
        std::fprintf(stderr,
                     "mst serve: drain timeout expired; straggling workers SIGKILLed\n");
    }

    (void)::close(ready_pipe[0]);
    (void)::close(ready_pipe[1]);
    if (segment != nullptr && segment->created()) {
        segment->unlink();
    }
    return (killed_in_drain || gave_up) ? 1 : 0;
}

} // namespace mst
