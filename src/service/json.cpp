#include "service/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace mst {

namespace {

std::string type_name(JsonValue::Type type)
{
    switch (type) {
    case JsonValue::Type::null: return "null";
    case JsonValue::Type::boolean: return "boolean";
    case JsonValue::Type::number: return "number";
    case JsonValue::Type::string: return "string";
    case JsonValue::Type::array: return "array";
    case JsonValue::Type::object: return "object";
    }
    return "?";
}

void append_utf8(std::string& out, unsigned long code_point)
{
    if (code_point < 0x80) {
        out.push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
        out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
        out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
}

} // namespace

/// Recursive-descent parser over an in-memory document.
class JsonParser {
public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    JsonValue parse_document()
    {
        JsonValue value = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) {
            fail("trailing content after JSON value");
        }
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& message) const
    {
        throw JsonParseError(pos_, message);
    }

    void skip_whitespace()
    {
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') {
                break;
            }
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char ch)
    {
        if (peek() != ch) {
            fail(std::string("expected '") + ch + "', got '" + text_[pos_] + "'");
        }
        ++pos_;
    }

    bool consume_keyword(const char* keyword)
    {
        std::size_t len = 0;
        while (keyword[len] != '\0') {
            ++len;
        }
        if (text_.compare(pos_, len, keyword) != 0) {
            return false;
        }
        pos_ += len;
        return true;
    }

    JsonValue parse_value()
    {
        skip_whitespace();
        switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': return parse_string_value();
        case 't':
        case 'f': return parse_boolean();
        case 'n': return parse_null();
        default: return parse_number();
        }
    }

    JsonValue parse_object()
    {
        JsonValue value;
        value.type_ = JsonValue::Type::object;
        expect('{');
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        for (;;) {
            skip_whitespace();
            if (peek() != '"') {
                fail("expected a string object key");
            }
            std::string key = parse_string_literal();
            for (const JsonValue::Member& member : value.object_) {
                if (member.first == key) {
                    fail("duplicate object key \"" + key + "\"");
                }
            }
            skip_whitespace();
            expect(':');
            value.object_.emplace_back(std::move(key), parse_value());
            skip_whitespace();
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    JsonValue parse_array()
    {
        JsonValue value;
        value.type_ = JsonValue::Type::array;
        expect('[');
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        for (;;) {
            value.array_.push_back(parse_value());
            skip_whitespace();
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    JsonValue parse_string_value()
    {
        const std::size_t start = pos_;
        JsonValue value;
        value.type_ = JsonValue::Type::string;
        value.string_ = parse_string_literal();
        value.raw_ = text_.substr(start, pos_ - start);
        return value;
    }

    std::string parse_string_literal()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char ch = text_[pos_++];
            if (ch == '"') {
                return out;
            }
            if (static_cast<unsigned char>(ch) < 0x20) {
                --pos_;
                fail("unescaped control character in string");
            }
            if (ch != '\\') {
                out.push_back(ch);
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape sequence");
            }
            const char escape = text_[pos_++];
            switch (escape) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                unsigned long code_point = parse_hex4();
                // Surrogate pair: a high surrogate must be followed by
                // an escaped low surrogate.
                if (code_point >= 0xD800 && code_point <= 0xDBFF) {
                    if (text_.compare(pos_, 2, "\\u") != 0) {
                        fail("unpaired UTF-16 surrogate");
                    }
                    pos_ += 2;
                    const unsigned long low = parse_hex4();
                    if (low < 0xDC00 || low > 0xDFFF) {
                        fail("invalid UTF-16 surrogate pair");
                    }
                    code_point = 0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
                } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
                    fail("unpaired UTF-16 surrogate");
                }
                append_utf8(out, code_point);
                break;
            }
            default:
                --pos_;
                fail(std::string("invalid escape '\\") + escape + "'");
            }
        }
    }

    unsigned long parse_hex4()
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
        }
        unsigned long value = 0;
        for (int i = 0; i < 4; ++i) {
            const char ch = text_[pos_ + static_cast<std::size_t>(i)];
            value <<= 4;
            if (ch >= '0' && ch <= '9') {
                value |= static_cast<unsigned long>(ch - '0');
            } else if (ch >= 'a' && ch <= 'f') {
                value |= static_cast<unsigned long>(ch - 'a' + 10);
            } else if (ch >= 'A' && ch <= 'F') {
                value |= static_cast<unsigned long>(ch - 'A' + 10);
            } else {
                fail("invalid \\u escape digit");
            }
        }
        pos_ += 4;
        return value;
    }

    JsonValue parse_boolean()
    {
        JsonValue value;
        value.type_ = JsonValue::Type::boolean;
        if (consume_keyword("true")) {
            value.bool_ = true;
            value.raw_ = "true";
        } else if (consume_keyword("false")) {
            value.bool_ = false;
            value.raw_ = "false";
        } else {
            fail("invalid literal");
        }
        return value;
    }

    JsonValue parse_null()
    {
        if (!consume_keyword("null")) {
            fail("invalid literal");
        }
        JsonValue value;
        value.raw_ = "null";
        return value;
    }

    JsonValue parse_number()
    {
        const std::size_t start = pos_;
        // RFC 8259 grammar: -?int frac? exp?. Scan it first so strtod
        // cannot accept laxer forms (hex, inf, leading '+').
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
            pos_ = start;
            fail("invalid JSON value");
        }
        if (text_[pos_] == '0') {
            ++pos_;
        } else {
            while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                ++pos_;
            }
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
                fail("digits required after decimal point");
            }
            while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                ++pos_;
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
                fail("digits required in exponent");
            }
            while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                ++pos_;
            }
        }
        JsonValue value;
        value.type_ = JsonValue::Type::number;
        value.raw_ = text_.substr(start, pos_ - start);
        errno = 0;
        value.number_ = std::strtod(value.raw_.c_str(), nullptr);
        if (errno == ERANGE && !std::isfinite(value.number_)) {
            pos_ = start;
            fail("number out of range");
        }
        return value;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text)
{
    return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const
{
    if (type_ != Type::boolean) {
        throw ValidationError("expected a boolean, got " + type_name(type_));
    }
    return bool_;
}

double JsonValue::as_number() const
{
    if (type_ != Type::number) {
        throw ValidationError("expected a number, got " + type_name(type_));
    }
    return number_;
}

std::int64_t JsonValue::as_int() const
{
    const double value = as_number();
    if (std::nearbyint(value) != value ||
        value < -9007199254740992.0 || value > 9007199254740992.0) {
        throw ValidationError("expected an integer, got '" + raw_ + "'");
    }
    return static_cast<std::int64_t>(value);
}

const std::string& JsonValue::as_string() const
{
    if (type_ != Type::string) {
        throw ValidationError("expected a string, got " + type_name(type_));
    }
    return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const
{
    if (type_ != Type::array) {
        throw ValidationError("expected an array, got " + type_name(type_));
    }
    return array_;
}

const std::vector<JsonValue::Member>& JsonValue::as_object() const
{
    if (type_ != Type::object) {
        throw ValidationError("expected an object, got " + type_name(type_));
    }
    return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const
{
    if (type_ != Type::object) {
        return nullptr;
    }
    for (const Member& member : object_) {
        if (member.first == key) {
            return &member.second;
        }
    }
    return nullptr;
}

} // namespace mst
