// Versioned wire protocol of the request API (protocol version 1).
//
// This is the single definition of the request/response surface shared
// by every front end: `mst serve` over stdio, `mst serve --listen`
// over TCP, `mst replay`, and the in-library RequestService. Field
// names, option plumbing, and the error taxonomy live here and only
// here — the CLI's flag binding for the same knobs is generated from
// the same tables (option_bindings / cell_bindings), so the surfaces
// cannot drift.
//
// Requests (one JSON object per frame; all fields optional unless
// noted; unknown fields are rejected with a nearest-match suggestion):
//   {"id": <string|number>,       echoed verbatim in the response
//    "v": 1,                      protocol version (default 1; other
//                                 values are rejected with kind "version")
//    "op": "optimize"|"stats"|"hello"|"health",   default "optimize"
//    "soc": "<name|path>",        optimize: exactly one of soc/soc_text
//    "soc_text": "<.soc text>",
//    "channels": 512, "depth": "7M"|<vectors>, "clock": 5e6,
//    "index": 0.5, "contact": 0.001,
//    "broadcast": true, "abort_on_fail": true, "retest": true,
//    "step1_only": true, "pc": 1.0, "pm": 1.0,
//    "exact": true, "exact_budget_ms": 100,
//    "scope": "service"|"server",        stats only (default "service")
//    "framing": "ndjson"|"length_prefix", hello only
//    "stream": true|false}                hello only
//
// Responses (always carry "v"; key order is fixed so byte identity is
// meaningful):
//   {"id":..., "v":1, "ok":true, "fingerprint":"<16 hex>", "solution":{...}}
//   {"id":..., "v":1, "ok":false,
//    "error":{"kind":"<kind>", "message":"...", "detail":"..."}}
//   {"id":..., "v":1, "ok":true, "stats":{...}}
//   {"id":..., "v":1, "ok":true, "hello":{"framing":"...","stream":...}}
//   {"id":..., "v":1, "ok":true, "health":{"status":...,"shm":...,...}}
//
// `health` is the liveness/readiness probe (docs/protocol.md): answered
// inline on the connection's reader thread without touching the
// optimizer pool, so supervisors and load balancers can probe a busy
// worker cheaply. It reports executor readiness, the shared-memory
// tier's state (off/attached/degraded), and current queue depths.
//
// The error kind taxonomy (the one place it is defined):
//   parse            malformed frame JSON / .soc content / oversized frame
//   validation       well-formed but semantically invalid request
//   version          request declared an unsupported protocol version
//   infeasible       InfeasibleError: no solution on the given cell
//   exact_infeasible the exact certifier proved depth/budget infeasible
//   overloaded       admission control refused the request (queue full,
//                    connection limit, or server shutting down)
//   internal         anything else; the server never dies for one request
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ate/ate.hpp"
#include "cli/flags.hpp"
#include "core/problem.hpp"
#include "service/lru_cache.hpp"

namespace mst::protocol {

/// The protocol version this build speaks (echoed in every response).
inline constexpr int version = 1;

/// Error classes of one request. Documented in the header comment above;
/// `none` marks a request that parsed cleanly.
enum class ErrorKind {
    none,
    parse,
    validation,
    version,
    infeasible,
    exact_infeasible,
    overloaded,
    internal,
};

[[nodiscard]] const char* error_kind_name(ErrorKind kind) noexcept;

/// One wire error: the typed kind, a human-readable message, and an
/// optional supplementary detail (a nearest-match suggestion, the list
/// of supported versions, ...). Serialized by error_response().
struct WireError {
    ErrorKind kind = ErrorKind::none;
    std::string message;
    std::string detail;
};

/// Frame encodings a connection can negotiate (see service/framing.hpp).
enum class Framing {
    ndjson,        ///< newline-delimited JSON (the default)
    length_prefix, ///< 4-byte big-endian payload length, then the payload
};

[[nodiscard]] const char* framing_name(Framing framing) noexcept;

/// Which sections a stats response reports.
enum class StatsScope {
    service, ///< request counters + cache counters (transport-independent)
    server,  ///< service sections plus the network server's counters
};

/// One request after JSON interpretation. Interpretation failures are
/// captured in `error` instead of thrown, so a bad frame costs one error
/// response, never a dead server.
struct Request {
    enum class Op { optimize, stats, hello, health };

    std::string id_json; ///< the id value as written (raw token), "" = absent
    Op op = Op::optimize;

    // optimize payload
    std::string soc_spec;
    std::string soc_text;
    bool inline_soc = false;
    TestCell cell;
    OptimizeOptions options;

    // stats payload
    StatsScope scope = StatsScope::service;

    // hello payload (absent fields keep the connection's current mode)
    bool has_framing = false;
    Framing framing = Framing::ndjson;
    bool has_stream = false;
    bool stream = false;

    WireError error; ///< kind != none: the request failed interpretation
};

/// Interpret one request frame. Never throws; failures land in
/// `Request::error` with the taxonomy above.
[[nodiscard]] Request parse_request(const std::string& frame);

// --- Response serialization (the only writers of response JSON) ---

/// Request counter snapshot reported by stats responses.
struct RequestCounters {
    std::uint64_t received = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
};

/// Network-server counter snapshot, reported by stats responses with
/// `"scope":"server"`. Transport-dependent (and timing-dependent for the
/// high-water marks), which is why the default stats scope excludes it:
/// default-scope responses stay byte-identical across stdio and TCP.
struct ServerCounters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_active = 0;
    std::uint64_t requests_admitted = 0;
    std::uint64_t requests_rejected = 0;
    std::uint64_t global_queue_high_water = 0;
    std::uint64_t connection_queue_high_water = 0;
    /// Accept attempts that hit resource exhaustion (EMFILE/ENFILE/...)
    /// and were retried after shedding + backoff instead of dying.
    std::uint64_t accept_retries = 0;
    /// Idle connections closed to reclaim fds under accept exhaustion.
    std::uint64_t connections_shed = 0;
    /// Optimize requests answered from the solution memo while the
    /// admission queue was refusing new work (load-shedding mode).
    std::uint64_t load_shed_cache_hits = 0;

    /// Shared-memory cache tier section (serialized when `enabled`).
    /// Mixes this process's local store activity with the segment-wide
    /// shared counters (src/shm/store.hpp).
    struct ShmSection {
        bool enabled = false;
        bool attached = false; ///< false + enabled = degraded (local-only)
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t publishes = 0;
        std::uint64_t fallbacks = 0;
        std::uint64_t checksum_failures = 0;
        std::uint64_t generation = 0;
        std::uint64_t committed_bytes = 0;
        std::uint64_t arena_bytes = 0;
        std::uint64_t recoveries = 0;
        std::uint64_t truncated_bytes = 0;
    } shm;

    /// Prefork pool section (serialized when `enabled`): per-worker
    /// rows from the segment's slot table plus pool totals, aggregated
    /// by whichever worker answered the stats request.
    struct PoolWorker {
        std::uint64_t pid = 0;
        const char* state = "empty"; ///< starting|ready|draining
        std::uint64_t heartbeat = 0;
        std::uint64_t received = 0;
        std::uint64_t ok = 0;
        std::uint64_t failed = 0;
        std::uint64_t connections_accepted = 0;
        std::uint64_t requests_admitted = 0;
        std::uint64_t requests_rejected = 0;
        std::uint64_t shm_hits = 0;
        std::uint64_t shm_misses = 0;
        std::uint64_t shm_publishes = 0;
        std::uint64_t shm_fallbacks = 0;
    };
    struct PoolSection {
        bool enabled = false;
        std::uint64_t workers = 0;     ///< configured pool size
        std::uint64_t ready = 0;       ///< slots currently in state ready
        std::uint64_t restarts = 0;    ///< respawns since the pool started
        std::uint64_t quarantined = 0; ///< slots given up on
        std::vector<PoolWorker> per_worker;
    } pool;
};

/// Payload of a health response (liveness + readiness probe).
struct HealthInfo {
    bool ok = true;               ///< false = degraded (shm configured but down)
    const char* shm = "off";      ///< off|attached|degraded
    int executor_threads = 0;     ///< worker threads the executor resolves to
    std::uint64_t inflight = 0;   ///< optimize requests currently admitted
    std::uint64_t queue_limit = 0;///< global admission bound (0 over stdio)
};

[[nodiscard]] std::string ok_response(const std::string& id_json,
                                      const std::string& fingerprint,
                                      const std::string& solution_json);
[[nodiscard]] std::string error_response(const std::string& id_json, const WireError& error);
[[nodiscard]] std::string error_response(const std::string& id_json, ErrorKind kind,
                                         const std::string& message,
                                         const std::string& detail = "");
/// `server` == nullptr omits the "server" section (the default scope).
[[nodiscard]] std::string stats_response(const std::string& id_json,
                                         const RequestCounters& requests,
                                         const CacheStats& tables, const CacheStats& memo,
                                         const ServerCounters* server);
[[nodiscard]] std::string hello_response(const std::string& id_json, Framing framing,
                                         bool stream);
[[nodiscard]] std::string health_response(const std::string& id_json,
                                          const HealthInfo& health);

// --- The one options/cell surface shared by JSON requests and CLI flags ---

/// How one optimize knob is spelled on each surface and applied. The
/// JSON request field uses snake_case, the CLI flag kebab-case; both are
/// generated from this table, so adding a knob here adds it everywhere.
struct OptionBinding {
    const char* json_field; ///< request JSON member name
    const char* cli_flag;   ///< CLI flag name (without "--")
    enum class Kind {
        toggle,  ///< bare CLI flag / JSON boolean; true applies, false = default
        integer, ///< value flag / JSON integer
        number,  ///< value flag / JSON number
    } kind;
    const char* cli_default;                        ///< value flags: default token
    void (*apply_toggle)(OptimizeOptions&);         ///< toggle kind
    void (*apply_int)(OptimizeOptions&, int);       ///< integer kind
    void (*apply_number)(OptimizeOptions&, double); ///< number kind
    // Read accessors for the canonical options_to_json rendition.
    bool (*read_toggle)(const OptimizeOptions&);
    std::int64_t (*read_int)(const OptimizeOptions&);
    double (*read_number)(const OptimizeOptions&);
};

/// How one test-cell field is spelled (same name on both surfaces).
struct CellBinding {
    const char* field; ///< JSON member name == CLI flag name
    enum class Kind {
        integer,
        depth, ///< "7M"/"48K" shorthand or a plain vector count
        number,
    } kind;
    const char* cli_default;
    void (*apply_int)(TestCell&, int);
    void (*apply_depth)(TestCell&, CycleCount);
    void (*apply_number)(TestCell&, double);
    // Read accessors for the canonical cell_to_json rendition.
    std::int64_t (*read_int)(const TestCell&); ///< integer and depth kinds
    double (*read_number)(const TestCell&);
};

[[nodiscard]] const std::vector<OptionBinding>& option_bindings();
[[nodiscard]] const std::vector<CellBinding>& cell_bindings();

/// CLI flag specs generated from the binding tables (what `mst optimize`,
/// `batch`, and `flow` register with the strict flag parser).
[[nodiscard]] std::vector<cli::FlagSpec> option_flag_specs();
[[nodiscard]] std::vector<cli::FlagSpec> cell_flag_specs();

/// Apply the binding tables to a parsed CLI flag map. These replace the
/// per-subcommand hand-wiring: every surface that accepts optimize
/// options goes through here. Throws ValidationError on bad values.
[[nodiscard]] OptimizeOptions options_from_flags(const cli::Flags& flags);
[[nodiscard]] TestCell cell_from_flags(const cli::Flags& flags);

/// Canonical compact JSON renditions (one field per binding, fixed
/// order, %.17g numbers). Two cells/option sets that differ anywhere
/// differ in these strings, which is what makes them usable as the
/// solution-memo key.
[[nodiscard]] std::string options_to_json(const OptimizeOptions& options);
[[nodiscard]] std::string cell_to_json(const TestCell& cell);

} // namespace mst::protocol
