// Persistent request service: the engine behind `mst serve` (JSON-lines
// on stdin/stdout) and `mst replay <file>` (request files).
//
// Each request line is one JSON object naming an SOC (benchmark name,
// .soc file path, or inline .soc text), a test cell, and optimize
// options; the response line carries the existing solution JSON. The
// service layer adds what a one-shot CLI cannot:
//   * a TablesCache - LRU of immutable SocTimeTables keyed by SOC
//     content fingerprint, shared across requests and threads,
//   * a bounded solution memo keyed by (fingerprint, cell, options),
//     with hit/miss counters surfaced via `{"op": "stats"}` requests,
//   * concurrent request execution over the batch engine's fan-out with
//     deterministic per-request response ordering: responses[i] always
//     answers lines[i], and response bytes are identical at any thread
//     count (caches are single-flight, so even the stats counters are
//     stable as long as nothing is evicted),
//   * per-request error isolation mirroring BatchErrorKind: a malformed
//     request yields one error response, never a dead server.
//
// Request schema (all fields optional unless noted):
//   {"id": <string|number>,        echoed verbatim in the response
//    "op": "optimize"|"stats",     default "optimize"
//    "soc": "<name|path>",         optimize: exactly one of soc/soc_text
//    "soc_text": "<.soc text>",
//    "channels": 512, "depth": "7M"|<vectors>, "clock": 5e6,
//    "index": 0.5, "contact": 0.001,
//    "broadcast": true, "abort_on_fail": true, "retest": true,
//    "step1_only": true, "pc": 1.0, "pm": 1.0}
// Unknown fields are rejected (with a nearest-match suggestion), like
// the CLI's strict flag parsing.
//
// Response lines:
//   {"id": ..., "ok": true, "fingerprint": "<16 hex>", "solution": {...}}
//   {"id": ..., "ok": false, "error_kind": "parse|validation|infeasible|internal",
//    "error": "..."}
//   {"id": ..., "ok": true, "stats": {"requests": {...},
//    "tables_cache": {...}, "solution_memo": {...}}}
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "service/lru_cache.hpp"
#include "service/tables_cache.hpp"

namespace mst {

/// Error classes of one request, mirroring BatchErrorKind plus the
/// request-layer `parse` class (malformed JSON / .soc input).
enum class RequestErrorKind {
    none,
    parse,       ///< malformed request JSON or .soc content
    validation,  ///< well-formed but semantically invalid request
    infeasible,  ///< InfeasibleError: no solution on the given cell
    internal,    ///< anything else (mirrors BatchErrorKind::other)
};

[[nodiscard]] const char* request_error_kind_name(RequestErrorKind kind) noexcept;

struct ServiceConfig {
    /// Worker threads for execute(); <= 0 selects hardware_concurrency.
    int threads = 0;
    /// LRU capacity of the wrapper-time-tables cache (distinct SOCs).
    std::size_t tables_cache_capacity = 16;
    /// LRU capacity of the solution memo (distinct full requests).
    std::size_t memo_capacity = 256;
};

/// Memoized outcome of one distinct (SOC, cell, options) optimization:
/// either the serialized compact solution JSON or the captured error.
/// Stored (not recomputed) so repeated requests are byte-identical and
/// nearly free.
struct SolutionOutcome {
    bool ok = false;
    std::string solution_json;  ///< compact JSON object when ok
    std::string fingerprint;    ///< SOC content fingerprint, hex
    RequestErrorKind error_kind = RequestErrorKind::none;
    std::string error;
};

class RequestService {
public:
    explicit RequestService(ServiceConfig config = {});

    /// Execute a batch of request lines; responses[i] answers lines[i].
    /// `stats` requests act as barriers: they report the state after
    /// every preceding line completed. Never throws per-request errors.
    [[nodiscard]] std::vector<std::string> execute(const std::vector<std::string>& lines);

    /// One request line (the serve loop's unit of work).
    [[nodiscard]] std::string execute_one(const std::string& line);

    /// JSON-lines loop: one response per non-blank request line, flushed
    /// after each so the peer can pipeline. Returns at EOF.
    void serve(std::istream& in, std::ostream& out);

    /// Worker threads execute() will use for `jobs` requests.
    [[nodiscard]] int thread_count(std::size_t jobs) const noexcept;

    [[nodiscard]] CacheStats tables_cache_stats() const { return tables_.stats(); }
    [[nodiscard]] CacheStats memo_stats() const { return memo_.stats(); }

private:
    struct ParsedRequest;

    /// Interpret one request line; never throws (failures are captured
    /// in the returned request's error fields).
    [[nodiscard]] static ParsedRequest parse_request(const std::string& line);

    [[nodiscard]] std::string run_optimize(const ParsedRequest& request, bool& ok);
    [[nodiscard]] std::string stats_response(const ParsedRequest& request) const;
    [[nodiscard]] std::shared_ptr<const SolutionOutcome> outcome_for(const ParsedRequest& request);

    ServiceConfig config_;
    TablesCache tables_;
    LruCache<std::string, SolutionOutcome> memo_;

    // Request counters surfaced by stats requests. Only mutated at
    // barrier points / sequentially, so plain integers suffice.
    std::uint64_t received_ = 0;
    std::uint64_t ok_ = 0;
    std::uint64_t failed_ = 0;
};

} // namespace mst
