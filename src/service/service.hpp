// Persistent request service: the engine behind `mst serve` (stdio and
// TCP), `mst replay <file>` (request files), and the network server.
//
// The request/response wire format is owned by service/protocol.hpp —
// one parse/serialize path for every front end. This layer adds what a
// one-shot CLI cannot:
//   * a TablesCache - LRU of immutable SocTimeTables keyed by SOC
//     content fingerprint, shared across requests and threads,
//   * a bounded solution memo keyed by (fingerprint, cell, options),
//     with hit/miss counters surfaced via `{"op": "stats"}` requests,
//   * concurrent request execution over the shared executor with
//     deterministic per-request response ordering: responses[i] always
//     answers lines[i], and response bytes are identical at any thread
//     count (caches are single-flight, so even the stats counters are
//     stable as long as nothing is evicted),
//   * per-request error isolation: a malformed request yields one typed
//     error response (protocol::ErrorKind taxonomy), never a dead
//     server.
//
// The network server (service/server.hpp) runs on the same instance:
// run_request() executes one already-parsed request thread-safely, and
// stats_response() snapshots the counters for a stats barrier.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/lru_cache.hpp"
#include "service/protocol.hpp"
#include "service/tables_cache.hpp"

namespace mst {

struct ServiceConfig {
    /// Worker threads for execute(); <= 0 selects hardware_concurrency.
    int threads = 0;
    /// LRU capacity of the wrapper-time-tables cache (distinct SOCs).
    std::size_t tables_cache_capacity = 16;
    /// LRU capacity of the solution memo (distinct full requests).
    std::size_t memo_capacity = 256;
    /// Shared-memory cache tier, a second level *under* both LRUs
    /// (docs/shm.md); nullptr = local-only. A degraded store (configured
    /// but unattached) stays set so stats can report the degradation.
    std::shared_ptr<shm::ShmStore> shm;
};

/// Memoized outcome of one distinct (SOC, cell, options) optimization:
/// either the serialized compact solution JSON or the captured error.
/// Stored (not recomputed) so repeated requests are byte-identical and
/// nearly free.
struct SolutionOutcome {
    bool ok = false;
    std::string solution_json;  ///< compact JSON object when ok
    std::string fingerprint;    ///< SOC content fingerprint, hex
    protocol::WireError error;  ///< kind != none when !ok
};

class RequestService {
public:
    explicit RequestService(ServiceConfig config = {});

    /// Execute a batch of request lines; responses[i] answers lines[i].
    /// `stats` requests act as barriers: they report the state after
    /// every preceding line completed. Never throws per-request errors.
    [[nodiscard]] std::vector<std::string> execute(const std::vector<std::string>& lines);

    /// One request line (the stdio serve loop's unit of work).
    [[nodiscard]] std::string execute_one(const std::string& line);

    /// JSON-lines loop: one response per non-blank request line, flushed
    /// after each so the peer can pipeline. Returns at EOF.
    void serve(std::istream& in, std::ostream& out);

    /// Run one already-parsed request (optimize, or a request that
    /// failed interpretation) to its response line, counting it.
    /// Thread-safe; never throws. `hello` requests are rejected here —
    /// negotiation belongs to the network connection, not the service.
    [[nodiscard]] std::string run_request(const protocol::Request& request);

    /// Load-shedding probe: the response for an optimize request whose
    /// outcome already sits in the solution memo, or nullopt when it
    /// would need real work (unknown key, compute still in flight, SOC
    /// unreadable). Never optimizes, never blocks on a compute — cheap
    /// enough for the server to answer cache hits even while the
    /// admission queue refuses new work. A served hit is counted like a
    /// completed request.
    [[nodiscard]] std::optional<std::string> cached_response(
        const protocol::Request& request);

    /// Stats response for a barrier point: snapshots the counters, then
    /// counts the stats request itself. The caller guarantees barrier
    /// semantics (all prior requests completed, none admitted after).
    /// `server` adds the network server's section (scope "server").
    [[nodiscard]] std::string stats_response(const protocol::Request& request,
                                             const protocol::ServerCounters* server);

    /// Worker threads execute() will use for `jobs` requests.
    [[nodiscard]] int thread_count(std::size_t jobs) const noexcept;

    [[nodiscard]] CacheStats tables_cache_stats() const { return tables_.stats(); }
    [[nodiscard]] CacheStats memo_stats() const { return memo_.stats(); }

    /// Raw request counters (the prefork worker's heartbeat pushes
    /// these into its shared-memory slot between stats barriers).
    [[nodiscard]] protocol::RequestCounters request_counters() const
    {
        protocol::RequestCounters counters;
        counters.received = received_.load();
        counters.ok = ok_.load();
        counters.failed = failed_.load();
        return counters;
    }

    /// The shared-memory store this service was configured with (may be
    /// null, or degraded — see shm::ShmStore::attached()).
    [[nodiscard]] const std::shared_ptr<shm::ShmStore>& shm_store() const noexcept
    {
        return config_.shm;
    }

    /// Fill the "shm" section of a scope-"server" stats snapshot from
    /// the configured store (no-op when no store is configured).
    void fill_shm_section(protocol::ServerCounters& server) const;

    /// Service-level health snapshot (the server overlays its queue
    /// depths before serialization; over stdio these stay zero).
    [[nodiscard]] protocol::HealthInfo health_info() const;

private:
    [[nodiscard]] std::string run_optimize(const protocol::Request& request, bool& ok);
    [[nodiscard]] std::shared_ptr<const SolutionOutcome> outcome_for(
        const protocol::Request& request);

    ServiceConfig config_;
    TablesCache tables_;
    LruCache<std::string, SolutionOutcome> memo_;

    // Request counters surfaced by stats requests. Atomic because the
    // network server counts from many connection/worker threads; the
    // totals a barrier reads are scheduling-independent either way.
    std::atomic<std::uint64_t> received_{0};
    std::atomic<std::uint64_t> ok_{0};
    std::atomic<std::uint64_t> failed_{0};
};

} // namespace mst
