// Frame splitting/encoding for the network server's byte streams.
//
// Two encodings, negotiated per connection via the protocol's `hello`
// request (service/protocol.hpp):
//   * ndjson (default): one JSON document per '\n'-terminated line.
//     Blank/whitespace-only lines are ignored, a trailing '\r' is
//     stripped (telnet-friendly). An overlong line is reported once as
//     an oversized frame and discarded up to the next '\n', so one bad
//     request costs one error response, not the connection.
//   * length_prefix: a 4-byte big-endian payload length followed by the
//     payload bytes. An overlong frame is skipped by trusting the
//     declared length, so the stream stays in sync here too.
//
// FrameReader is push-based and transport-agnostic: feed() received
// bytes, next() pulls complete frames. This keeps the splitter unit
// testable without sockets and reusable by any future transport.
#pragma once

#include <cstddef>
#include <string>

#include "service/protocol.hpp"

namespace mst {

class FrameReader {
public:
    using Framing = protocol::Framing;

    /// Frames larger than `max_frame_bytes` are reported as oversized
    /// and skipped (capacity is clamped to at least 1).
    explicit FrameReader(std::size_t max_frame_bytes);

    /// Switch encodings. Only valid at a frame boundary (the negotiated
    /// switch happens right after the hello exchange).
    void set_framing(Framing framing);
    [[nodiscard]] Framing framing() const noexcept { return framing_; }

    /// Append bytes received from the transport.
    void feed(const char* data, std::size_t size);

    enum class Status {
        need_more, ///< no complete frame buffered; feed more bytes
        frame,     ///< `frame` holds the next payload
        oversized, ///< a frame exceeded the cap and was (or is being)
                   ///< discarded; `frame` holds a short description
    };

    /// Extract the next complete frame. Call repeatedly until it
    /// returns need_more.
    [[nodiscard]] Status next(std::string& frame);

    /// True when no partially received frame is buffered (distinguishes
    /// the idle timeout from the mid-frame read timeout).
    [[nodiscard]] bool mid_frame() const noexcept;

private:
    [[nodiscard]] Status next_ndjson(std::string& frame);
    [[nodiscard]] Status next_length_prefix(std::string& frame);
    void consume(std::size_t bytes);

    Framing framing_ = Framing::ndjson;
    std::size_t max_frame_bytes_;
    std::string buffer_;
    std::size_t skip_remaining_ = 0; ///< length_prefix: payload bytes left to discard
    bool skipping_line_ = false;     ///< ndjson: discarding until the next '\n'
};

/// Encode one response payload in the given framing (what the writer
/// sends back over the transport).
[[nodiscard]] std::string encode_frame(protocol::Framing framing, const std::string& payload);

} // namespace mst
