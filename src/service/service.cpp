#include "service/service.hpp"

#include <istream>
#include <ostream>

#include "batch/batch_runner.hpp"
#include "common/executor.hpp"
#include "common/faultpoint.hpp"
#include "core/optimizer.hpp"
#include "exact/branch_bound.hpp"
#include "report/solution_json.hpp"
#include "soc/parser.hpp"
#include "soc/profiles.hpp"

namespace mst {

namespace {

/// The canonical protocol renditions double as the memo key: two
/// requests agree on (fingerprint, cell, options) iff they agree on
/// this string.
std::string memo_key(const std::string& fingerprint_text, const protocol::Request& request)
{
    return fingerprint_text + '|' + protocol::cell_to_json(request.cell) + '|' +
           protocol::options_to_json(request.options);
}

} // namespace

RequestService::RequestService(ServiceConfig config)
    : config_(config),
      tables_(config.tables_cache_capacity, config.shm),
      memo_(config.memo_capacity)
{
}

int RequestService::thread_count(std::size_t jobs) const noexcept
{
    return resolve_thread_count(config_.threads, jobs);
}

std::shared_ptr<const SolutionOutcome> RequestService::outcome_for(
    const protocol::Request& request)
{
    // Resolve the SOC outside the memo: name/path/inline forms of the
    // same content must land on one memo entry, and .soc problems are
    // request errors, not cacheable optimization outcomes.
    std::shared_ptr<const Soc> soc;
    try {
        soc = share_soc(request.inline_soc ? parse_soc_string(request.soc_text, "<request>")
                                           : load_soc_spec(request.soc_spec));
    } catch (const ParseError& e) {
        auto outcome = std::make_shared<SolutionOutcome>();
        outcome->error = {protocol::ErrorKind::parse, e.what(), ""};
        return outcome;
    } catch (const ValidationError& e) {
        auto outcome = std::make_shared<SolutionOutcome>();
        outcome->error = {protocol::ErrorKind::validation, e.what(), ""};
        return outcome;
    } catch (const std::exception& e) {
        // e.g. bad_alloc loading a huge .soc file: still one error
        // response, not a dead server.
        auto outcome = std::make_shared<SolutionOutcome>();
        outcome->error = {protocol::ErrorKind::internal, e.what(), ""};
        return outcome;
    }

    const std::uint64_t fingerprint = soc_fingerprint(*soc);
    const std::string fingerprint_text = fingerprint_hex(fingerprint);
    const std::string key = memo_key(fingerprint_text, request);
    if (const std::errc fault = MST_FAULTPOINT("cache.tables_build"); fault != std::errc{}) {
        // Transient by construction, so deliberately NOT memoized: the
        // memo caches deterministic functions of the key, and poisoning
        // it with a one-shot injected failure would break that contract
        // (and every later request for this key).
        auto outcome = std::make_shared<SolutionOutcome>();
        outcome->fingerprint = fingerprint_text;
        outcome->error = {protocol::ErrorKind::internal,
                          "injected fault: tables build failed: " +
                              std::make_error_code(fault).message(),
                          ""};
        return outcome;
    }
    return memo_.get_or_compute(key, [&]() -> std::shared_ptr<const SolutionOutcome> {
        auto outcome = std::make_shared<SolutionOutcome>();
        outcome->fingerprint = fingerprint_text;
        try {
            request.cell.validate();
            const std::shared_ptr<const SocTables> shared = tables_.get(fingerprint, soc);
            // Shared-memory lookaside inside the single-flight compute,
            // and only after the tables fetch above: whether the outcome
            // is restored or computed, the local memo AND tables-cache
            // counters (which the stats goldens pin) are identical.
            if (config_.shm != nullptr) {
                if (std::shared_ptr<SolutionOutcome> restored =
                        config_.shm->load_outcome(key)) {
                    return restored;
                }
            }
            // The service's --threads cap applies inside each request
            // too (one flag meaning across the CLI). Not part of the
            // memo key: solutions are identical at any thread count.
            OptimizeOptions run_options = request.options;
            run_options.threads = config_.threads;
            const Solution solution =
                optimize_multi_site(shared->tables(), request.cell, run_options);
            outcome->ok = true;
            outcome->solution_json = solution_to_json(solution, JsonStyle::compact);
        } catch (const ExactInfeasibleError& e) {
            outcome->error = {protocol::ErrorKind::exact_infeasible, e.what(), ""};
        } catch (const InfeasibleError& e) {
            outcome->error = {protocol::ErrorKind::infeasible, e.what(), ""};
        } catch (const ValidationError& e) {
            outcome->error = {protocol::ErrorKind::validation, e.what(), ""};
        } catch (const std::exception& e) {
            outcome->error = {protocol::ErrorKind::internal, e.what(), ""};
        } catch (...) {
            outcome->error = {protocol::ErrorKind::internal, "unknown exception", ""};
        }
        if (config_.shm != nullptr) {
            config_.shm->publish_outcome(key, *outcome);
        }
        return outcome;
    });
}

void RequestService::fill_shm_section(protocol::ServerCounters& server) const
{
    if (config_.shm == nullptr) {
        return;
    }
    const shm::StoreCounters store = config_.shm->counters();
    const shm::SegmentCounters segment = config_.shm->segment_counters();
    server.shm.enabled = true;
    server.shm.attached = store.attached;
    server.shm.hits = store.hits;
    server.shm.misses = store.misses;
    server.shm.publishes = store.publishes;
    server.shm.fallbacks = store.fallbacks;
    server.shm.checksum_failures = store.checksum_failures;
    server.shm.generation = segment.generation;
    server.shm.committed_bytes = segment.committed_bytes;
    server.shm.arena_bytes = segment.arena_bytes;
    server.shm.recoveries = segment.recoveries;
    server.shm.truncated_bytes = segment.truncated_bytes;
}

protocol::HealthInfo RequestService::health_info() const
{
    protocol::HealthInfo health;
    // Uncapped by a job count: report what a full batch would fan out to.
    health.executor_threads = thread_count(~std::size_t{0});
    if (config_.shm != nullptr) {
        health.shm = config_.shm->attached() ? "attached" : "degraded";
        health.ok = config_.shm->attached();
    }
    return health;
}

std::string RequestService::run_optimize(const protocol::Request& request, bool& ok)
{
    const std::shared_ptr<const SolutionOutcome> outcome = outcome_for(request);
    ok = outcome->ok;
    if (!outcome->ok) {
        return protocol::error_response(request.id_json, outcome->error);
    }
    return protocol::ok_response(request.id_json, outcome->fingerprint,
                                 outcome->solution_json);
}

std::string RequestService::run_request(const protocol::Request& request)
{
    using Op = protocol::Request::Op;
    ++received_;
    // An exception escaping a request would kill its worker (or abort a
    // whole batch), so this is the last-resort net under the per-stage
    // handlers: every failure becomes that request's error response.
    try {
        if (request.error.kind != protocol::ErrorKind::none) {
            ++failed_;
            return protocol::error_response(request.id_json, request.error);
        }
        if (request.op == Op::hello) {
            ++failed_;
            return protocol::error_response(
                request.id_json, protocol::ErrorKind::validation,
                "'hello' is only accepted as the first frame of a network connection");
        }
        if (request.op == Op::stats) {
            // Defensive only: callers route stats through stats_response
            // at a barrier. A lone stats request has trivially quiesced.
            --received_; // stats_response counts itself
            return stats_response(request, nullptr);
        }
        if (request.op == Op::health) {
            ++ok_;
            return protocol::health_response(request.id_json, health_info());
        }
        bool ok = false;
        std::string response = run_optimize(request, ok);
        if (ok) {
            ++ok_;
        } else {
            ++failed_;
        }
        return response;
    } catch (const std::exception& e) {
        ++failed_;
        return protocol::error_response(request.id_json, protocol::ErrorKind::internal,
                                        e.what());
    } catch (...) {
        ++failed_;
        return protocol::error_response(request.id_json, protocol::ErrorKind::internal,
                                        "unknown exception");
    }
}

std::optional<std::string> RequestService::cached_response(const protocol::Request& request)
{
    if (request.error.kind != protocol::ErrorKind::none ||
        request.op != protocol::Request::Op::optimize) {
        return std::nullopt;
    }
    std::shared_ptr<const Soc> soc;
    try {
        soc = share_soc(request.inline_soc ? parse_soc_string(request.soc_text, "<request>")
                                           : load_soc_spec(request.soc_spec));
    } catch (...) {
        return std::nullopt; // not a memoized outcome; let admission decide
    }
    const std::string fingerprint_text = fingerprint_hex(soc_fingerprint(*soc));
    const std::shared_ptr<const SolutionOutcome> outcome =
        memo_.peek(memo_key(fingerprint_text, request));
    if (outcome == nullptr) {
        return std::nullopt;
    }
    ++received_;
    if (outcome->ok) {
        ++ok_;
        return protocol::ok_response(request.id_json, outcome->fingerprint,
                                     outcome->solution_json);
    }
    ++failed_;
    return protocol::error_response(request.id_json, outcome->error);
}

std::string RequestService::stats_response(const protocol::Request& request,
                                           const protocol::ServerCounters* server)
{
    // Snapshot before counting: a stats response reports the state after
    // every preceding request and before itself...
    protocol::RequestCounters counters;
    counters.received = received_.load();
    counters.ok = ok_.load();
    counters.failed = failed_.load();
    const CacheStats tables = tables_.stats();
    const CacheStats memo = memo_.stats();
    // ...and then counts itself, so a following stats request sees it.
    ++received_;
    ++ok_;
    if (server != nullptr && request.scope != protocol::StatsScope::server) {
        server = nullptr; // default scope: transport-independent sections only
    }
    return protocol::stats_response(request.id_json, counters, tables, memo, server);
}

std::vector<std::string> RequestService::execute(const std::vector<std::string>& lines)
{
    std::vector<protocol::Request> parsed;
    parsed.reserve(lines.size());
    for (const std::string& line : lines) {
        parsed.push_back(protocol::parse_request(line));
    }

    std::vector<std::string> responses(lines.size());
    std::size_t begin = 0;
    while (begin < lines.size()) {
        // A stats request is a barrier: everything before it runs (and
        // is counted) first, so its numbers are deterministic at any
        // thread count.
        std::size_t end = begin;
        while (end < lines.size() &&
               !(parsed[end].error.kind == protocol::ErrorKind::none &&
                 parsed[end].op == protocol::Request::Op::stats)) {
            ++end;
        }
        const std::size_t count = end - begin;
        parallel_for_index(count, thread_count(count), [&](std::size_t i) {
            responses[begin + i] = run_request(parsed[begin + i]);
        });
        if (end < lines.size()) {
            responses[end] = stats_response(parsed[end], nullptr);
            ++end;
        }
        begin = end;
    }
    return responses;
}

std::string RequestService::execute_one(const std::string& line)
{
    return execute(std::vector<std::string>{line}).front();
}

void RequestService::serve(std::istream& in, std::ostream& out)
{
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
            continue;
        }
        out << execute_one(line) << '\n' << std::flush;
    }
}

} // namespace mst
