#include "service/service.hpp"

#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "batch/batch_runner.hpp"
#include "common/executor.hpp"
#include "cli/flags.hpp"
#include "common/format.hpp"
#include "core/optimizer.hpp"
#include "report/solution_json.hpp"
#include "service/json.hpp"
#include "soc/parser.hpp"
#include "soc/profiles.hpp"

namespace mst {

const char* request_error_kind_name(RequestErrorKind kind) noexcept
{
    switch (kind) {
    case RequestErrorKind::none: return "none";
    case RequestErrorKind::parse: return "parse";
    case RequestErrorKind::validation: return "validation";
    case RequestErrorKind::infeasible: return "infeasible";
    case RequestErrorKind::internal: return "internal";
    }
    return "?";
}

/// One request line after JSON interpretation. Interpretation failures
/// are captured in error_kind/error instead of thrown, so a bad line is
/// one error response, never a dead server.
struct RequestService::ParsedRequest {
    enum class Op { optimize, stats };

    std::string id_json;  ///< the id value as written (raw token), "" = absent
    Op op = Op::optimize;
    std::string soc_spec;
    std::string soc_text;
    bool inline_soc = false;
    TestCell cell;
    OptimizeOptions options;

    RequestErrorKind error_kind = RequestErrorKind::none;
    std::string error;
};

namespace {

/// Known request fields, reusing the CLI's FlagSpec so unknown-field
/// errors get the same nearest-match suggestions as unknown flags.
const std::vector<cli::FlagSpec>& request_fields()
{
    static const std::vector<cli::FlagSpec> fields = {
        {"id", true},        {"op", true},      {"soc", true},
        {"soc_text", true},  {"channels", true}, {"depth", true},
        {"clock", true},     {"index", true},   {"contact", true},
        {"broadcast", true}, {"abort_on_fail", true}, {"retest", true},
        {"step1_only", true}, {"pc", true},     {"pm", true},
        {"exact", true},     {"exact_budget_ms", true},
    };
    return fields;
}

int require_int(const JsonValue& value, const std::string& field)
{
    if (!value.is_number()) {
        throw ValidationError("request field '" + field + "' expects an integer");
    }
    const std::int64_t wide = value.as_int();
    if (wide < std::numeric_limits<int>::min() || wide > std::numeric_limits<int>::max()) {
        throw ValidationError("request field '" + field + "' is out of range: '" +
                              value.raw() + "'");
    }
    return static_cast<int>(wide);
}

double require_number(const JsonValue& value, const std::string& field)
{
    if (!value.is_number()) {
        throw ValidationError("request field '" + field + "' expects a number");
    }
    return value.as_number();
}

bool require_bool(const JsonValue& value, const std::string& field)
{
    if (!value.is_bool()) {
        throw ValidationError("request field '" + field + "' expects true or false");
    }
    return value.as_bool();
}

const std::string& require_string(const JsonValue& value, const std::string& field)
{
    if (!value.is_string()) {
        throw ValidationError("request field '" + field + "' expects a string");
    }
    return value.as_string();
}

/// %.17g round-trips doubles exactly: two cells that differ anywhere
/// differ in the memo key.
std::string key_number(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string memo_key(const std::string& fingerprint, const TestCell& cell,
                     const OptimizeOptions& options)
{
    std::ostringstream key;
    key << fingerprint << "|ch=" << cell.ate.channels << "|d=" << cell.ate.vector_memory_depth
        << "|clk=" << key_number(cell.ate.test_clock_hz)
        << "|idx=" << key_number(cell.prober.index_time)
        << "|ct=" << key_number(cell.prober.contact_test_time)
        << "|b=" << static_cast<int>(options.broadcast)
        << "|a=" << static_cast<int>(options.abort)
        << "|r=" << static_cast<int>(options.retest)
        << "|s1=" << (options.step1_only ? 1 : 0)
        << "|pc=" << key_number(options.yields.contact_yield_per_terminal)
        << "|pm=" << key_number(options.yields.manufacturing_yield)
        << "|ex=" << (options.exact ? 1 : 0) << "|exms=" << options.exact_budget_ms;
    return key.str();
}

std::string cache_stats_json(const char* name, const CacheStats& stats)
{
    std::ostringstream out;
    out << '"' << name << "\":{\"capacity\":" << stats.capacity << ",\"size\":" << stats.size
        << ",\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
        << ",\"evictions\":" << stats.evictions << '}';
    return out.str();
}

std::string error_response(const std::string& id_json, RequestErrorKind kind,
                           const std::string& message)
{
    std::ostringstream out;
    out << '{';
    if (!id_json.empty()) {
        out << "\"id\":" << id_json << ',';
    }
    out << "\"ok\":false,\"error_kind\":\"" << request_error_kind_name(kind)
        << "\",\"error\":\"" << json_escape(message) << "\"}";
    return out.str();
}

} // namespace

RequestService::RequestService(ServiceConfig config)
    : config_(config),
      tables_(config.tables_cache_capacity),
      memo_(config.memo_capacity)
{
}

int RequestService::thread_count(std::size_t jobs) const noexcept
{
    return resolve_thread_count(config_.threads, jobs);
}

RequestService::ParsedRequest RequestService::parse_request(const std::string& line)
{
    ParsedRequest request;
    using Op = ParsedRequest::Op;
    try {
        const JsonValue root = JsonValue::parse(line);
        if (!root.is_object()) {
            throw ValidationError("request must be a JSON object");
        }
        // id first, so later field errors can echo it.
        if (const JsonValue* id = root.find("id")) {
            if (!id->is_string() && !id->is_number()) {
                throw ValidationError("request field 'id' expects a string or number");
            }
            request.id_json = id->raw();
        }
        bool has_payload_fields = false;
        for (const JsonValue::Member& member : root.as_object()) {
            const std::string& field = member.first;
            const JsonValue& value = member.second;
            if (field == "id") {
                continue;
            }
            if (field == "op") {
                const std::string& op = require_string(value, field);
                if (op == "optimize") {
                    request.op = Op::optimize;
                } else if (op == "stats") {
                    request.op = Op::stats;
                } else {
                    throw ValidationError("unknown op '" + op + "' (optimize, stats)");
                }
                continue;
            }
            has_payload_fields = true;
            if (field == "soc") {
                request.soc_spec = require_string(value, field);
            } else if (field == "soc_text") {
                request.soc_text = require_string(value, field);
                request.inline_soc = true;
            } else if (field == "channels") {
                request.cell.ate.channels = require_int(value, field);
            } else if (field == "depth") {
                // "7M"/"48K" shorthand or a plain vector count.
                request.cell.ate.vector_memory_depth =
                    value.is_string() ? parse_depth(value.as_string())
                                      : value.as_int();
            } else if (field == "clock") {
                request.cell.ate.test_clock_hz = require_number(value, field);
            } else if (field == "index") {
                request.cell.prober.index_time = require_number(value, field);
            } else if (field == "contact") {
                request.cell.prober.contact_test_time = require_number(value, field);
            } else if (field == "broadcast") {
                if (require_bool(value, field)) {
                    request.options.broadcast = BroadcastMode::stimuli;
                }
            } else if (field == "abort_on_fail") {
                if (require_bool(value, field)) {
                    request.options.abort = AbortOnFail::on;
                }
            } else if (field == "retest") {
                if (require_bool(value, field)) {
                    request.options.retest = RetestPolicy::retest_contact_failures;
                }
            } else if (field == "step1_only") {
                request.options.step1_only = require_bool(value, field);
            } else if (field == "exact") {
                request.options.exact = require_bool(value, field);
            } else if (field == "exact_budget_ms") {
                request.options.exact_budget_ms = require_int(value, field);
                if (request.options.exact_budget_ms > 0) {
                    request.options.exact = true; // a budget implies the pass
                }
            } else if (field == "pc") {
                request.options.yields.contact_yield_per_terminal =
                    require_number(value, field);
            } else if (field == "pm") {
                request.options.yields.manufacturing_yield = require_number(value, field);
            } else {
                std::string message = "unknown request field '" + field + "'";
                const std::string suggestion = cli::nearest_flag_name(field, request_fields());
                if (!suggestion.empty()) {
                    message += " (did you mean '" + suggestion + "'?)";
                }
                throw ValidationError(message);
            }
        }
        if (request.op == Op::stats) {
            if (has_payload_fields) {
                throw ValidationError("a stats request accepts only 'id' and 'op'");
            }
            return request;
        }
        if (request.inline_soc == !request.soc_spec.empty()) {
            // both set, or neither
            throw ValidationError(
                "an optimize request needs exactly one of 'soc' (name or path) "
                "and 'soc_text' (inline .soc)");
        }
    } catch (const JsonParseError& e) {
        request.error_kind = RequestErrorKind::parse;
        request.error = e.what();
    } catch (const ValidationError& e) {
        request.error_kind = RequestErrorKind::validation;
        request.error = e.what();
    } catch (const std::exception& e) {
        request.error_kind = RequestErrorKind::internal;
        request.error = e.what();
    }
    return request;
}

std::shared_ptr<const SolutionOutcome> RequestService::outcome_for(const ParsedRequest& request)
{
    // Resolve the SOC outside the memo: name/path/inline forms of the
    // same content must land on one memo entry, and .soc problems are
    // request errors, not cacheable optimization outcomes.
    std::shared_ptr<const Soc> soc;
    try {
        soc = share_soc(request.inline_soc ? parse_soc_string(request.soc_text, "<request>")
                                           : load_soc_spec(request.soc_spec));
    } catch (const ParseError& e) {
        auto outcome = std::make_shared<SolutionOutcome>();
        outcome->error_kind = RequestErrorKind::parse;
        outcome->error = e.what();
        return outcome;
    } catch (const ValidationError& e) {
        auto outcome = std::make_shared<SolutionOutcome>();
        outcome->error_kind = RequestErrorKind::validation;
        outcome->error = e.what();
        return outcome;
    } catch (const std::exception& e) {
        // e.g. bad_alloc loading a huge .soc file: still one error
        // response, not a dead server.
        auto outcome = std::make_shared<SolutionOutcome>();
        outcome->error_kind = RequestErrorKind::internal;
        outcome->error = e.what();
        return outcome;
    }

    const std::uint64_t fingerprint = soc_fingerprint(*soc);
    const std::string fingerprint_text = fingerprint_hex(fingerprint);
    const std::string key = memo_key(fingerprint_text, request.cell, request.options);
    return memo_.get_or_compute(key, [&]() -> std::shared_ptr<const SolutionOutcome> {
        auto outcome = std::make_shared<SolutionOutcome>();
        outcome->fingerprint = fingerprint_text;
        try {
            request.cell.validate();
            const std::shared_ptr<const SocTables> shared = tables_.get(fingerprint, soc);
            // The service's --threads cap applies inside each request
            // too (one flag meaning across the CLI). Not part of the
            // memo key: solutions are identical at any thread count.
            OptimizeOptions run_options = request.options;
            run_options.threads = config_.threads;
            const Solution solution =
                optimize_multi_site(shared->tables(), request.cell, run_options);
            outcome->ok = true;
            outcome->solution_json = solution_to_json(solution, JsonStyle::compact);
        } catch (const InfeasibleError& e) {
            outcome->error_kind = RequestErrorKind::infeasible;
            outcome->error = e.what();
        } catch (const ValidationError& e) {
            outcome->error_kind = RequestErrorKind::validation;
            outcome->error = e.what();
        } catch (const std::exception& e) {
            outcome->error_kind = RequestErrorKind::internal;
            outcome->error = e.what();
        } catch (...) {
            outcome->error_kind = RequestErrorKind::internal;
            outcome->error = "unknown exception";
        }
        return outcome;
    });
}

std::string RequestService::run_optimize(const ParsedRequest& request, bool& ok)
{
    const std::shared_ptr<const SolutionOutcome> outcome = outcome_for(request);
    ok = outcome->ok;
    if (!outcome->ok) {
        return error_response(request.id_json, outcome->error_kind, outcome->error);
    }
    std::ostringstream out;
    out << '{';
    if (!request.id_json.empty()) {
        out << "\"id\":" << request.id_json << ',';
    }
    out << "\"ok\":true,\"fingerprint\":\"" << outcome->fingerprint
        << "\",\"solution\":" << outcome->solution_json << '}';
    return out.str();
}

std::string RequestService::stats_response(const ParsedRequest& request) const
{
    std::ostringstream out;
    out << '{';
    if (!request.id_json.empty()) {
        out << "\"id\":" << request.id_json << ',';
    }
    out << "\"ok\":true,\"stats\":{\"requests\":{\"received\":" << received_
        << ",\"ok\":" << ok_ << ",\"failed\":" << failed_ << "},"
        << cache_stats_json("tables_cache", tables_.stats()) << ','
        << cache_stats_json("solution_memo", memo_.stats()) << "}}";
    return out.str();
}

std::vector<std::string> RequestService::execute(const std::vector<std::string>& lines)
{
    std::vector<ParsedRequest> parsed;
    parsed.reserve(lines.size());
    for (const std::string& line : lines) {
        parsed.push_back(parse_request(line));
    }

    std::vector<std::string> responses(lines.size());
    std::vector<char> succeeded(lines.size(), 0);
    std::size_t begin = 0;
    while (begin < lines.size()) {
        // A stats request is a barrier: everything before it runs (and
        // is counted) first, so its numbers are deterministic at any
        // thread count.
        std::size_t end = begin;
        while (end < lines.size() &&
               !(parsed[end].error_kind == RequestErrorKind::none &&
                 parsed[end].op == ParsedRequest::Op::stats)) {
            ++end;
        }
        const std::size_t count = end - begin;
        parallel_for_index(count, thread_count(count), [&](std::size_t i) {
            // An exception escaping a request would abort the whole
            // batch once the fan-out rethrows it, so this is the
            // last-resort net under the per-stage handlers: every
            // failure becomes that request's error response.
            const ParsedRequest& request = parsed[begin + i];
            try {
                if (request.error_kind != RequestErrorKind::none) {
                    responses[begin + i] =
                        error_response(request.id_json, request.error_kind, request.error);
                } else {
                    bool ok = false;
                    responses[begin + i] = run_optimize(request, ok);
                    succeeded[begin + i] = ok ? 1 : 0;
                }
            } catch (const std::exception& e) {
                succeeded[begin + i] = 0;
                responses[begin + i] =
                    error_response(request.id_json, RequestErrorKind::internal, e.what());
            } catch (...) {
                succeeded[begin + i] = 0;
                responses[begin + i] = error_response(
                    request.id_json, RequestErrorKind::internal, "unknown exception");
            }
        });
        for (std::size_t i = begin; i < end; ++i) {
            ++received_;
            if (succeeded[i] != 0) {
                ++ok_;
            } else {
                ++failed_;
            }
        }
        if (end < lines.size()) {
            responses[end] = stats_response(parsed[end]);
            ++received_;
            ++ok_;
            ++end;
        }
        begin = end;
    }
    return responses;
}

std::string RequestService::execute_one(const std::string& line)
{
    return execute(std::vector<std::string>{line}).front();
}

void RequestService::serve(std::istream& in, std::ostream& out)
{
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
            continue;
        }
        out << execute_one(line) << '\n' << std::flush;
    }
}

} // namespace mst
