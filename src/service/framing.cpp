#include "service/framing.hpp"

#include <cstdint>
#include <system_error>

#include "common/faultpoint.hpp"

namespace mst {

namespace {

constexpr std::size_t length_prefix_bytes = 4;

bool is_blank(const std::string& line)
{
    return line.find_first_not_of(" \t\r") == std::string::npos;
}

} // namespace

FrameReader::FrameReader(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes < 1 ? 1 : max_frame_bytes)
{
}

void FrameReader::set_framing(Framing framing)
{
    framing_ = framing;
    skipping_line_ = false;
    skip_remaining_ = 0;
}

void FrameReader::feed(const char* data, std::size_t size)
{
    buffer_.append(data, size);
}

bool FrameReader::mid_frame() const noexcept
{
    return !buffer_.empty() || skip_remaining_ != 0 || skipping_line_;
}

void FrameReader::consume(std::size_t bytes)
{
    buffer_.erase(0, bytes);
}

FrameReader::Status FrameReader::next(std::string& frame)
{
    const Status status =
        framing_ == Framing::ndjson ? next_ndjson(frame) : next_length_prefix(frame);
    // Injected decode failure, probed only when a complete frame was
    // decoded (the Nth *frame*, not the Nth poll or partial read): the
    // frame degrades to a typed per-request parse error, the stream
    // stays in sync, and the connection lives on.
    if (status == Status::frame) {
        if (const std::errc fault = MST_FAULTPOINT("framing.read"); fault != std::errc{}) {
            frame = "injected framing fault: " + std::make_error_code(fault).message();
            return Status::oversized;
        }
    }
    return status;
}

FrameReader::Status FrameReader::next_ndjson(std::string& frame)
{
    for (;;) {
        const std::size_t newline = buffer_.find('\n');
        if (skipping_line_) {
            // Discarding the remainder of an oversized line.
            if (newline == std::string::npos) {
                buffer_.clear();
                return Status::need_more;
            }
            consume(newline + 1);
            skipping_line_ = false;
            continue;
        }
        if (newline == std::string::npos) {
            if (buffer_.size() > max_frame_bytes_) {
                // Longer than any acceptable line and still no
                // terminator: report now, discard until the next '\n'.
                buffer_.clear();
                skipping_line_ = true;
                frame = "line exceeds " + std::to_string(max_frame_bytes_) + " bytes";
                return Status::oversized;
            }
            return Status::need_more;
        }
        if (newline > max_frame_bytes_) {
            consume(newline + 1);
            frame = "line exceeds " + std::to_string(max_frame_bytes_) + " bytes";
            return Status::oversized;
        }
        std::string line = buffer_.substr(0, newline);
        consume(newline + 1);
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        if (is_blank(line)) {
            continue; // blank lines are not requests (stdio serve parity)
        }
        frame = std::move(line);
        return Status::frame;
    }
}

FrameReader::Status FrameReader::next_length_prefix(std::string& frame)
{
    for (;;) {
        if (skip_remaining_ != 0) {
            // Discarding an oversized payload; the declared length keeps
            // the stream in sync.
            const std::size_t drop =
                buffer_.size() < skip_remaining_ ? buffer_.size() : skip_remaining_;
            consume(drop);
            skip_remaining_ -= drop;
            if (skip_remaining_ != 0) {
                return Status::need_more;
            }
            continue;
        }
        if (buffer_.size() < length_prefix_bytes) {
            return Status::need_more;
        }
        const auto* bytes = reinterpret_cast<const unsigned char*>(buffer_.data());
        const std::uint32_t length = (static_cast<std::uint32_t>(bytes[0]) << 24) |
                                     (static_cast<std::uint32_t>(bytes[1]) << 16) |
                                     (static_cast<std::uint32_t>(bytes[2]) << 8) |
                                     static_cast<std::uint32_t>(bytes[3]);
        if (length > max_frame_bytes_) {
            consume(length_prefix_bytes);
            skip_remaining_ = length;
            frame = "frame of " + std::to_string(length) + " bytes exceeds " +
                    std::to_string(max_frame_bytes_) + " bytes";
            return Status::oversized;
        }
        if (buffer_.size() < length_prefix_bytes + length) {
            return Status::need_more;
        }
        frame = buffer_.substr(length_prefix_bytes, length);
        consume(length_prefix_bytes + length);
        if (is_blank(frame)) {
            continue;
        }
        return Status::frame;
    }
}

std::string encode_frame(protocol::Framing framing, const std::string& payload)
{
    if (framing == protocol::Framing::ndjson) {
        return payload + '\n';
    }
    const auto length = static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(length_prefix_bytes + payload.size());
    frame.push_back(static_cast<char>((length >> 24) & 0xff));
    frame.push_back(static_cast<char>((length >> 16) & 0xff));
    frame.push_back(static_cast<char>((length >> 8) & 0xff));
    frame.push_back(static_cast<char>(length & 0xff));
    frame += payload;
    return frame;
}

} // namespace mst
