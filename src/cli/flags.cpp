#include "cli/flags.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"

namespace mst::cli {

namespace {

const FlagSpec* find_spec(const std::vector<FlagSpec>& known, const std::string& name)
{
    for (const FlagSpec& spec : known) {
        if (spec.name == name) {
            return &spec;
        }
    }
    return nullptr;
}

std::size_t edit_distance(const std::string& a, const std::string& b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) {
        row[j] = j;
    }
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diagonal = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
            diagonal = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
        }
    }
    return row[b.size()];
}

} // namespace

std::string nearest_flag_name(const std::string& input, const std::vector<FlagSpec>& candidates)
{
    std::string best;
    std::size_t best_distance = 3; // suggest only within distance 2
    for (const FlagSpec& spec : candidates) {
        const std::size_t distance = edit_distance(input, spec.name);
        if (distance < best_distance) {
            best_distance = distance;
            best = spec.name;
        }
    }
    return best;
}

Flags parse_flags(const std::vector<std::string>& args, const std::string& command,
                  const std::vector<FlagSpec>& known)
{
    Flags flags;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (arg.rfind("--", 0) != 0) {
            throw ValidationError("unexpected argument '" + arg + "' for '" + command +
                                  "' (flags start with --)");
        }
        const std::string name = arg.substr(2);
        const FlagSpec* spec = find_spec(known, name);
        if (spec == nullptr) {
            std::string message = "unknown flag '--" + name + "' for '" + command + "'";
            const std::string suggestion = nearest_flag_name(name, known);
            if (!suggestion.empty()) {
                message += " (did you mean '--" + suggestion + "'?)";
            } else {
                message += "; see 'mst help'";
            }
            throw ValidationError(message);
        }
        if (flags.count(name) != 0) {
            throw ValidationError("duplicate flag '--" + name + "' for '" + command + "'");
        }
        if (spec->takes_value) {
            const bool has_value =
                (i + 1 < args.size()) && args[i + 1].rfind("--", 0) != 0;
            if (!has_value) {
                throw ValidationError("flag '--" + name + "' requires a value");
            }
            flags[name] = args[++i];
        } else {
            flags[name] = "";
        }
    }
    return flags;
}

std::string flag_or(const Flags& flags, const std::string& key, const std::string& fallback)
{
    const auto it = flags.find(key);
    return (it != flags.end()) ? it->second : fallback;
}

namespace {

/// strtol/strtod silently skip leading whitespace; a flag value never
/// legitimately has any.
bool leading_space(const std::string& text)
{
    return !text.empty() && std::isspace(static_cast<unsigned char>(text.front())) != 0;
}

} // namespace

int parse_int_flag(const std::string& flag, const std::string& text)
{
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    const bool consumed =
        (end != text.c_str()) && (*end == '\0') && !text.empty() && !leading_space(text);
    if (!consumed || errno == ERANGE || value < std::numeric_limits<int>::min() ||
        value > std::numeric_limits<int>::max()) {
        throw ValidationError("--" + flag + " expects an integer, got '" + text + "'");
    }
    return static_cast<int>(value);
}

double parse_double_flag(const std::string& flag, const std::string& text)
{
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    const bool consumed =
        (end != text.c_str()) && (*end == '\0') && !text.empty() && !leading_space(text);
    if (!consumed || errno == ERANGE || !std::isfinite(value)) {
        throw ValidationError("--" + flag + " expects a number, got '" + text + "'");
    }
    return value;
}

} // namespace mst::cli
