// mst_cli: command-line front end of the mst library.
//
//   mst_cli optimize --soc d695 --channels 256 --depth 48K [--broadcast]
//   mst_cli batch    --socs d695,p22810 --channels 256,512 --depths 8M,32M
//   mst_cli sweep    --spec grid.sweep --out results/ --shards 16 --workers 4
//   mst_cli serve                        # JSON-lines request loop on stdin
//   mst_cli replay requests.jsonl        # request file, concurrent, in-order
//   mst_cli inspect  --soc data/d695.soc
//   mst_cli generate --profile p93791 --out p93791.soc
//
// --soc accepts either a benchmark name (d695, p22810, p34392, p93791,
// pnx8550) or a path to a .soc file.
//
// Flags are validated per subcommand (see cli/flags.hpp): unknown or
// duplicate flags and malformed numeric values are hard errors, never
// silently ignored or truncated.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "arch/channel_group.hpp"
#include "ate/ate.hpp"
#include "batch/batch_runner.hpp"
#include "cli/flags.hpp"
#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "common/format.hpp"
#include "core/optimizer.hpp"
#include "core/step1.hpp"
#include "flow/test_flow.hpp"
#include "perf/bench_json.hpp"
#include "perf/bench_suite.hpp"
#include "common/net.hpp"
#include "common/signals.hpp"
#include "report/gantt.hpp"
#include "report/solution_json.hpp"
#include "report/table.hpp"
#include "scenario/scenario_spec.hpp"
#include "scenario/sweep.hpp"
#include "service/prefork.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "shm/store.hpp"
#include "soc/profiles.hpp"
#include "soc/writer.hpp"

namespace {

using namespace mst;
using cli::FlagSpec;
using cli::Flags;
using cli::flag_or;
using cli::parse_double_flag;
using cli::parse_int_flag;

/// Append `extra` to `base` (flag-set composition).
std::vector<FlagSpec> operator+(std::vector<FlagSpec> base, const std::vector<FlagSpec>& extra)
{
    base.insert(base.end(), extra.begin(), extra.end());
    return base;
}

/// Optimize-option flags shared by optimize, batch, and flow — generated
/// from the protocol binding tables, so the CLI surface and the request
/// API cannot drift (see service/protocol.hpp).
const std::vector<FlagSpec> option_flags = protocol::option_flag_specs();

/// Test-cell flags shared by optimize and flow (batch re-declares the
/// list-valued ones). Same source of truth as the request fields.
const std::vector<FlagSpec> cell_flags = protocol::cell_flag_specs();

/// Service-tuning flags shared by serve and replay.
const std::vector<FlagSpec> service_flags = {
    {"threads", true}, {"tables-cache", true}, {"memo", true},
};

/// Network flags accepted by `serve` (active with --listen).
const std::vector<FlagSpec> server_flags = {
    {"listen", true},          {"port-file", true},        {"max-connections", true},
    {"queue", true},           {"conn-queue", true},       {"idle-timeout-ms", true},
    {"read-timeout-ms", true}, {"write-timeout-ms", true}, {"max-frame-bytes", true},
    {"processes", true},       {"shm", true},              {"shm-name", true},
};

/// --fault-plan wins over the MST_FAULT_PLAN environment variable (the
/// env plan, if any, was installed before dispatch; re-installing here
/// replaces it wholesale). Same strict parser either way: a typo is a
/// hard error with a nearest-match suggestion, never an inert plan.
void install_fault_plan_flag(const Flags& flags)
{
    const std::string plan = flag_or(flags, "fault-plan", "");
    if (!plan.empty()) {
        fault::install_plan(fault::parse_plan(plan));
    }
}

Soc load_soc_argument(const Flags& flags)
{
    const std::string spec = flag_or(flags, "soc", "");
    if (spec.empty()) {
        throw ValidationError("--soc <name|path> is required");
    }
    return load_soc_spec(spec);
}

// Cell/option flag interpretation is the protocol's binding tables
// applied to the parsed flag map — one implementation for every
// subcommand and for JSON requests.
using protocol::cell_from_flags;
using protocol::options_from_flags;

int cmd_optimize(const Flags& flags)
{
    const Soc soc = load_soc_argument(flags);
    const TestCell cell = cell_from_flags(flags);
    OptimizeOptions options = options_from_flags(flags);
    // Intra-scenario concurrency cap; the solution is byte-identical at
    // any value (deterministic task schedule), so 0 = all cores is safe.
    options.threads = parse_int_flag("threads", flag_or(flags, "threads", "0"));
    cell.validate(); // fail fast: the table build below is the expensive part
    const SocTimeTables tables(soc, TableBuild::fast, options.threads);
    const Solution solution = optimize_multi_site(tables, cell, options);

    if (flags.count("json") != 0) {
        write_solution_json(std::cout, solution);
        return 0;
    }

    std::cout << "SOC " << solution.soc_name << " on ATE with " << cell.ate.channels
              << " channels x " << format_depth(cell.ate.vector_memory_depth)
              << " vectors @ " << cell.ate.test_clock_hz / 1e6 << " MHz\n\n";
    std::cout << "Step 1: k = " << solution.channels_step1
              << " channels, n_max = " << solution.max_sites_step1 << "\n";
    if (solution.exact) {
        std::cout << "Exact:  " << solution.exact->wires << " wires vs greedy "
                  << solution.exact->greedy_wires << " (gap " << solution.exact->gap << ", "
                  << solution.exact->nodes_explored << " B&B nodes, "
                  << (solution.exact->certified ? "certified optimum"
                                                : "not certified: node budget hit")
                  << ")\n";
    }
    std::cout << "Optimal: n_opt = " << solution.sites
              << " sites, k = " << solution.channels_per_site << " channels/site\n";
    std::cout << "Test length: " << solution.test_cycles << " cycles = "
              << format_seconds(solution.manufacturing_time) << "\n";
    std::cout << "Throughput: " << format_throughput(solution.throughput.devices_per_hour)
              << " devices/hour";
    if (options.retest == RetestPolicy::retest_contact_failures) {
        std::cout << " (" << format_throughput(solution.throughput.unique_devices_per_hour)
                  << " unique)";
    }
    std::cout << "\n\nE-RPCT wrapper: " << solution.erpct.external_channels
              << " external channels -> " << solution.erpct.internal_wires
              << " TAM wires, " << solution.erpct.contacted_pads() << " pads probed, ~"
              << static_cast<long>(solution.erpct.area_gate_equivalents()) << " GE\n\n";

    Table table({"group", "wires", "channels", "fill (cycles)", "modules"});
    int index = 0;
    for (const GroupSummary& group : solution.groups) {
        std::string names;
        for (const std::string& name : group.module_names) {
            if (!names.empty()) {
                names += ' ';
            }
            names += name;
        }
        table.add_row({"TAM " + std::to_string(++index), std::to_string(group.wires),
                       std::to_string(group.channels), std::to_string(group.fill), names});
    }
    std::cout << table;

    if (flags.count("gantt") != 0) {
        // Re-derive the Step-1 architecture for the drawing; widths match
        // the solution at n = n_max, which is what the chart illustrates.
        const Step1Result step1 = run_step1(tables, cell.ate, options);
        std::cout << '\n'
                  << render_gantt(step1.architecture, cell.ate.vector_memory_depth);
    }
    return 0;
}

std::vector<std::string> split_csv(const std::string& text)
{
    std::vector<std::string> items;
    std::stringstream stream(text);
    std::string item;
    while (std::getline(stream, item, ',')) {
        if (!item.empty()) {
            items.push_back(item);
        }
    }
    return items;
}

/// The option-variant label of a CLI-built spec: the toggled option
/// flags joined with '+' ("broadcast+retest"), or "plain" when the run
/// uses pure defaults. Derived from the protocol binding tables like
/// the flags themselves.
std::string variant_label_from_flags(const Flags& flags)
{
    std::string label;
    for (const protocol::OptionBinding& binding : protocol::option_bindings()) {
        if (flags.count(binding.cli_flag) == 0) {
            continue;
        }
        if (!label.empty()) {
            label += '+';
        }
        label += binding.cli_flag;
    }
    return label.empty() ? "plain" : label;
}

/// `batch`: build the --socs x --channels x --depths cross product as a
/// ScenarioSpec, expand it, and fan it out across a thread pool — one
/// row per scenario. Infeasible combinations report as such instead of
/// aborting the sweep.
int cmd_batch(const Flags& flags)
{
    const std::vector<std::string> soc_specs = split_csv(flag_or(flags, "socs", ""));
    if (soc_specs.empty()) {
        throw ValidationError("batch requires --socs <name|path>[,<name|path>...]");
    }
    const std::vector<std::string> channel_list = split_csv(flag_or(flags, "channels", "512"));
    // Accept the singular optimize-style --depth as the list default, so
    // flags carried over from `optimize` are honored rather than ignored.
    const std::vector<std::string> depth_list =
        split_csv(flag_or(flags, "depths", flag_or(flags, "depth", "7M")));
    if (channel_list.empty()) {
        throw ValidationError("--channels expects a non-empty list, e.g. --channels 256,512");
    }
    if (depth_list.empty()) {
        throw ValidationError("--depths expects a non-empty list, e.g. --depths 8M,32M");
    }
    const int threads = parse_int_flag("threads", flag_or(flags, "threads", "0"));

    // The clock/prober flags are scenario-invariant; parse them once.
    // --channels and --depth hold comma-separated lists here, so they
    // must not reach cell_from_flags's single-value parsers.
    Flags scenario_invariant = flags;
    scenario_invariant.erase("channels");
    scenario_invariant.erase("depth");
    const TestCell base_cell = cell_from_flags(scenario_invariant);

    ScenarioSpec spec;
    spec.name = "batch";
    for (const std::string& soc_spec : soc_specs) {
        spec.socs.push_back(SocSource::by_spec(soc_spec));
    }
    for (const std::string& channels : channel_list) {
        for (const std::string& depth : depth_list) {
            CellPoint point;
            point.cell = base_cell;
            point.cell.ate.channels = parse_int_flag("channels", channels);
            point.cell.ate.vector_memory_depth = parse_depth(depth);
            spec.cells.push_back(point); // label derived: "<channels>x<depth>"
        }
    }
    OptionVariant variant;
    variant.label = variant_label_from_flags(flags);
    variant.options = options_from_flags(flags);
    // One meaning for --threads across the CLI: it caps this process's
    // optimizer concurrency, so the per-scenario search inherits the
    // same cap as the scenario fan-out (results are identical either
    // way; the shared pool bounds the total in any case).
    variant.options.threads = threads;
    spec.variants.push_back(std::move(variant));

    const std::vector<Scenario> scenarios = expand(spec);
    const BatchRunner runner(threads);
    const std::vector<BatchResult> results = runner.run(to_batch_scenarios(scenarios));

    if (flags.count("json") != 0) {
        std::cout << "[\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const BatchResult& result = results[i];
            std::cout << "{ \"label\": \"" << json_escape(result.label) << "\", ";
            if (result.ok()) {
                std::cout << "\"solution\": " << solution_to_json(*result.solution);
            } else {
                std::cout << "\"error\": \"" << json_escape(result.error) << "\"";
            }
            std::cout << " }" << (i + 1 < results.size() ? "," : "") << "\n";
        }
        std::cout << "]\n";
        return 0;
    }

    Table table({"scenario", "k/site", "n_opt", "t_m", "D_th"});
    int failures = 0;
    for (const BatchResult& result : results) {
        if (result.ok()) {
            const Solution& s = *result.solution;
            table.add_row({result.label, std::to_string(s.channels_per_site),
                           std::to_string(s.sites), format_seconds(s.manufacturing_time),
                           format_throughput(s.best_throughput())});
        } else {
            // Infeasibility is an expected grid outcome; anything else
            // surfaces its message so the row is diagnosable on its own.
            const std::string what = result.error_kind == BatchErrorKind::infeasible
                                         ? "infeasible"
                                         : "error: " + result.error;
            table.add_row({result.label, "-", "-", "-", what});
            ++failures;
        }
    }
    std::cout << table;
    std::cout << '\n' << results.size() << " scenarios on "
              << runner.thread_count(scenarios.size()) << " threads";
    if (failures != 0) {
        std::cout << ", " << failures << " not solvable";
    }
    std::cout << '\n';
    return 0;
}

/// `sweep`: expand a spec file and run it through the sharded,
/// resumable sweep engine (see docs/sweep.md). Rerunning with the same
/// --out directory resumes: complete shard checkpoints are reused, and
/// the final report.json is byte-identical to an uninterrupted run.
int cmd_sweep(const Flags& flags)
{
    const std::string spec_path = flag_or(flags, "spec", "");
    if (spec_path.empty()) {
        throw ValidationError("sweep requires --spec <file>");
    }
    const ScenarioSpec spec = load_scenario_spec(spec_path);
    const std::vector<Scenario> scenarios = expand(spec);

    if (flags.count("list") != 0) {
        for (const Scenario& scenario : scenarios) {
            std::cout << scenario.name << '\n';
        }
        std::cout << scenarios.size() << " scenarios in sweep '" << spec.name << "'\n";
        return 0;
    }

    SweepOptions options;
    options.out_dir = flag_or(flags, "out", "");
    if (options.out_dir.empty()) {
        throw ValidationError("sweep requires --out <dir> (or --list to preview)");
    }
    options.shards = parse_int_flag("shards", flag_or(flags, "shards", "8"));
    options.workers = parse_int_flag("workers", flag_or(flags, "workers", "1"));
    options.threads = parse_int_flag("threads", flag_or(flags, "threads", "0"));
    options.max_restarts =
        parse_int_flag("max-restarts", flag_or(flags, "max-restarts", "3"));
    options.backoff_base_ms = parse_int_flag("backoff-ms", flag_or(flags, "backoff-ms", "100"));
    options.hang_timeout_ms =
        parse_int_flag("hang-timeout-ms", flag_or(flags, "hang-timeout-ms", "30000"));
    options.drain_timeout_ms =
        parse_int_flag("drain-timeout-ms", flag_or(flags, "drain-timeout-ms", "5000"));
    install_fault_plan_flag(flags);

    if (options.workers > 1) {
        // Supervised runs turn SIGTERM/SIGINT into a worker drain: the
        // supervisor forwards the signal, reaps, and resumes later from
        // the checkpoints. Inline runs keep default signal semantics.
        ShutdownLatch::global().install_handlers();
    }

    const SweepOutcome outcome = run_sweep(spec.name, scenarios, options);

    if (outcome.interrupted) {
        std::cerr << "sweep interrupted by signal; shard checkpoints kept for resume"
                  << (outcome.drain_killed ? " (straggling workers SIGKILLed)" : "")
                  << '\n';
        return outcome.drain_killed ? 137 : 130;
    }

    if (flags.count("json") != 0) {
        // The latency summary is intentionally separate from the
        // deterministic report.json: wall times differ run to run.
        std::cout << "{ \"schema\": \"mst.sweep.summary\", \"sweep\": \""
                  << json_escape(spec.name) << "\", \"scenarios\": " << outcome.scenario_count
                  << ", \"executed\": " << outcome.executed
                  << ", \"resumed\": " << outcome.resumed
                  << ", \"failed\": " << outcome.failed
                  << ", \"worker_failures\": " << outcome.worker_failures
                  << ", \"restarts\": " << outcome.restarts << ", \"quarantined\": [";
        for (std::size_t i = 0; i < outcome.quarantined.size(); ++i) {
            std::cout << (i == 0 ? "" : ", ") << outcome.quarantined[i];
        }
        std::cout << "], \"report\": \""
                  << json_escape(outcome.report_path) << "\", \"wall\": { \"p50_s\": "
                  << outcome.total_wall.p50 << ", \"p95_s\": " << outcome.total_wall.p95
                  << ", \"p99_s\": " << outcome.total_wall.p99 << " } }\n";
        return 0;
    }

    Table table({"shard", "scenarios", "failed", "from", "t_p50", "t_p95", "t_p99", "t_max"});
    for (const ShardTiming& shard : outcome.shards) {
        table.add_row({std::to_string(shard.shard), std::to_string(shard.scenarios),
                       std::to_string(shard.failed), shard.resumed ? "checkpoint" : "run",
                       format_seconds(shard.wall.p50), format_seconds(shard.wall.p95),
                       format_seconds(shard.wall.p99), format_seconds(shard.wall.max)});
    }
    std::cout << table;
    std::cout << '\n' << outcome.scenario_count << " scenarios (" << outcome.executed
              << " executed, " << outcome.resumed << " from checkpoints";
    if (outcome.failed != 0) {
        std::cout << ", " << outcome.failed << " not solvable";
    }
    std::cout << "), total p50/p95/p99 " << format_seconds(outcome.total_wall.p50) << "/"
              << format_seconds(outcome.total_wall.p95) << "/"
              << format_seconds(outcome.total_wall.p99) << '\n';
    if (outcome.worker_failures != 0 || outcome.restarts != 0 ||
        !outcome.quarantined.empty()) {
        std::cout << "supervision: " << outcome.worker_failures << " worker failures, "
                  << outcome.restarts << " restarts";
        if (!outcome.quarantined.empty()) {
            std::cout << ", quarantined scenarios:";
            for (const std::uint32_t index : outcome.quarantined) {
                std::cout << ' ' << index;
            }
        }
        std::cout << '\n';
    }
    std::cout << "wrote " << outcome.report_path << '\n';
    return 0;
}

ServiceConfig service_config_from_flags(const Flags& flags)
{
    ServiceConfig config;
    config.threads = parse_int_flag("threads", flag_or(flags, "threads", "0"));
    const int tables = parse_int_flag("tables-cache", flag_or(flags, "tables-cache", "16"));
    const int memo = parse_int_flag("memo", flag_or(flags, "memo", "256"));
    if (tables < 1 || memo < 1) {
        throw ValidationError("cache capacities must be at least 1");
    }
    config.tables_cache_capacity = static_cast<std::size_t>(tables);
    config.memo_capacity = static_cast<std::size_t>(memo);
    return config;
}

/// `serve`: persistent JSON-lines request loop. Without --listen it runs
/// on stdin/stdout; with --listen it becomes a TCP server speaking the
/// same protocol (see service/server.hpp for delivery modes, admission
/// control, and graceful shutdown). Caches live for the whole session.
int cmd_serve(const Flags& flags)
{
    install_fault_plan_flag(flags);
    const std::string listen = flag_or(flags, "listen", "");
    if (listen.empty()) {
        for (const FlagSpec& spec : server_flags) {
            if (spec.name != std::string("listen") && flags.count(spec.name) != 0) {
                throw ValidationError(std::string("--") + spec.name +
                                      " requires --listen <host:port>");
            }
        }
        RequestService service(service_config_from_flags(flags));
        service.serve(std::cin, std::cout);
        return 0;
    }

    ServerConfig config;
    config.listen = net::parse_endpoint(listen);
    config.service = service_config_from_flags(flags);
    config.max_connections =
        parse_int_flag("max-connections", flag_or(flags, "max-connections", "64"));
    config.global_queue_limit = parse_int_flag("queue", flag_or(flags, "queue", "256"));
    config.connection_queue_limit =
        parse_int_flag("conn-queue", flag_or(flags, "conn-queue", "32"));
    config.idle_timeout_ms =
        parse_int_flag("idle-timeout-ms", flag_or(flags, "idle-timeout-ms", "300000"));
    config.read_timeout_ms =
        parse_int_flag("read-timeout-ms", flag_or(flags, "read-timeout-ms", "30000"));
    config.write_timeout_ms =
        parse_int_flag("write-timeout-ms", flag_or(flags, "write-timeout-ms", "30000"));
    const int max_frame =
        parse_int_flag("max-frame-bytes", flag_or(flags, "max-frame-bytes", "1048576"));
    if (config.max_connections < 1 || config.global_queue_limit < 1 ||
        config.connection_queue_limit < 1 || max_frame < 1) {
        throw ValidationError("server limits must be at least 1");
    }
    config.max_frame_bytes = static_cast<std::size_t>(max_frame);

    // Shared-memory cache tier: --shm <bytes> enables it; the segment
    // name defaults to a per-invocation one so unrelated servers never
    // collide (pass --shm-name to share deliberately).
    const int shm_bytes = parse_int_flag("shm", flag_or(flags, "shm", "0"));
    std::string shm_name = flag_or(flags, "shm-name", "");
    if (shm_bytes < 0) {
        throw ValidationError("--shm must be a size in bytes (0 disables)");
    }
    if (!shm_name.empty() && shm_bytes == 0) {
        throw ValidationError("--shm-name requires --shm <bytes>");
    }
    if (shm_bytes > 0 && shm_name.empty()) {
        shm_name = "/mst-serve-" + std::to_string(::getpid());
    }

    ShutdownLatch& latch = ShutdownLatch::global();
    latch.install_handlers();

    const int processes = parse_int_flag("processes", flag_or(flags, "processes", "1"));
    if (processes > 1) {
        // Supervised prefork pool (docs/shm.md): the parent binds once,
        // forks workers over the shared listener, restarts the ones
        // that die, and writes --port-file only when all are ready.
        PreforkOptions prefork;
        prefork.server = config;
        prefork.processes = processes;
        prefork.port_file = flag_or(flags, "port-file", "");
        if (shm_bytes > 0) {
            prefork.shm_name = shm_name;
            prefork.shm_bytes = static_cast<std::size_t>(shm_bytes);
        }
        return run_prefork(prefork, latch);
    }
    if (processes < 1) {
        throw ValidationError("--processes must be at least 1");
    }

    if (shm_bytes > 0) {
        // Single process: attach the tier directly (degrades to
        // local-only with a warning rather than failing the server).
        config.service.shm =
            shm::ShmStore::open(shm_name, static_cast<std::size_t>(shm_bytes));
        if (!config.service.shm->attached()) {
            std::cerr << "mst serve: shared-memory tier degraded; running local-only\n";
        }
    }
    Server server(config);
    server.start();
    const net::Endpoint bound = server.endpoint();
    const std::string port_file = flag_or(flags, "port-file", "");
    if (!port_file.empty()) {
        // Written after bind so a port-0 request records the kernel pick;
        // scripts can poll for this file instead of parsing stderr. The
        // temp-then-rename dance makes the appearance atomic: a polling
        // reader sees either no file or the complete endpoint, never a
        // partial write.
        const std::string tmp = port_file + ".tmp";
        std::ofstream out(tmp);
        out << bound.to_string() << '\n';
        out.flush();
        out.close();
        if (!out || std::rename(tmp.c_str(), port_file.c_str()) != 0) {
            std::remove(tmp.c_str());
            server.stop();
            throw ValidationError("cannot write '" + port_file + "'");
        }
    }
    std::cerr << "mst serve: listening on " << bound.to_string() << " (protocol v"
              << protocol::version << "); SIGTERM drains and exits\n";
    server.run(latch); // blocks until SIGTERM/SIGINT, then drains
    if (config.service.shm != nullptr && config.service.shm->attached() &&
        config.service.shm->segment()->created()) {
        config.service.shm->segment()->unlink(); // creator cleans up the name
    }
    return 0;
}

/// `replay`: execute a request file. Requests fan out across the thread
/// pool; responses print in request order regardless of thread count.
int cmd_replay(const std::string& path, const Flags& flags)
{
    std::ifstream file(path);
    if (!file) {
        throw ValidationError("cannot open request file '" + path + "'");
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(file, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
            continue; // blank / whitespace-only lines are not requests
        }
        lines.push_back(line);
    }
    RequestService service(service_config_from_flags(flags));
    for (const std::string& response : service.execute(lines)) {
        std::cout << response << '\n';
    }
    return 0;
}

/// `bench`: run the canonical perf suite and emit the machine-readable
/// BENCH JSON that records the repo's optimizer-latency trajectory.
int cmd_bench(const Flags& flags)
{
    BenchOptions options;
    options.quick = flags.count("quick") != 0;
    options.compare_baseline = flags.count("compare") != 0;
    options.filter = flag_or(flags, "filter", "");
    options.threads = parse_int_flag("threads", flag_or(flags, "threads", "0"));
    const std::string repeat = flag_or(flags, "repeat", "");
    if (!repeat.empty()) {
        options.repetitions = parse_int_flag("repeat", repeat);
        if (options.repetitions < 1) {
            throw ValidationError("--repeat expects a positive iteration count");
        }
    }

    // Open the output before the (potentially minutes-long) suite runs,
    // so a bad path fails in milliseconds instead of after the work.
    const std::string out_path = flag_or(flags, "out", "");
    std::ofstream out_file;
    if (!out_path.empty()) {
        out_file.open(out_path);
        if (!out_file) {
            throw ValidationError("cannot open '" + out_path + "' for writing");
        }
    }

    const BenchReport report = run_bench(options);
    if (report.results.empty()) {
        std::cerr << "error: --filter '" << options.filter << "' matched no scenarios\n";
        return 1;
    }

    if (!out_path.empty()) {
        write_bench_json(out_file, report);
        out_file.flush();
        if (!out_file.good()) {
            throw ValidationError("failed writing '" + out_path + "'");
        }
    }
    if (flags.count("json") != 0) {
        write_bench_json(std::cout, report);
    } else {
        Table table({"scenario", "t_p50", "t_min", "speedup", "n_opt", "k/site", "pack calls",
                     "cache hits"});
        for (const BenchCaseResult& result : report.results) {
            if (!result.ok) {
                table.add_row({result.name, "-", "-", "-", "-", "-", "-",
                               "error: " + result.error});
                continue;
            }
            std::string speedup = "-";
            if (result.baseline_wall && result.wall.p50 > 0) {
                char text[32];
                std::snprintf(text, sizeof text, "%.1fx",
                              result.baseline_wall->p50 / result.wall.p50);
                speedup = text;
            }
            table.add_row({result.name, format_seconds(result.wall.p50),
                           format_seconds(result.wall.min), speedup,
                           std::to_string(result.fingerprint.sites),
                           std::to_string(result.fingerprint.channels_per_site),
                           std::to_string(result.stats.packing.pack_calls),
                           std::to_string(result.stats.packing.pack_cache_hits)});
        }
        std::cout << table;
        std::cout << '\n' << report.results.size() << " scenarios (" << report.suite
                  << " suite), " << report.repetitions << " repetitions, "
                  << format_seconds(report.total_seconds) << " total";
        if (!out_path.empty()) {
            std::cout << ", wrote " << out_path;
        }
        std::cout << '\n';
    }
    if (!report.all_ok()) {
        std::cerr << "error: bench suite had failing scenarios or fingerprint mismatches\n";
        return 1;
    }
    return 0;
}

int cmd_certify(const Flags& flags)
{
    BenchOptions options;
    options.filter = flag_or(flags, "filter", "");
    options.threads = parse_int_flag("threads", flag_or(flags, "threads", "0"));
    const std::string repeat = flag_or(flags, "repeat", "");
    if (!repeat.empty()) {
        options.repetitions = parse_int_flag("repeat", repeat);
        if (options.repetitions < 1) {
            throw ValidationError("--repeat expects a positive iteration count");
        }
    }

    const std::string out_path = flag_or(flags, "out", "");
    std::ofstream out_file;
    if (!out_path.empty()) {
        out_file.open(out_path);
        if (!out_file) {
            throw ValidationError("cannot open '" + out_path + "' for writing");
        }
    }

    const BenchReport report = run_certify(options);
    if (report.results.empty()) {
        std::cerr << "error: --filter '" << options.filter << "' matched no scenarios\n";
        return 1;
    }

    if (!out_path.empty()) {
        write_bench_json(out_file, report);
        out_file.flush();
        if (!out_file.good()) {
            throw ValidationError("failed writing '" + out_path + "'");
        }
    }
    if (flags.count("json") != 0) {
        write_bench_json(std::cout, report);
    } else {
        Table table({"scenario", "LB", "exact", "step1", "binpack", "gap", "B&B nodes",
                     "certified", "t_p50"});
        for (const BenchCaseResult& result : report.results) {
            if (!result.ok) {
                table.add_row({result.name, "-", "-", "-", "-", "-", "-", "-",
                               "error: " + result.error});
                continue;
            }
            if (!result.exact) {
                table.add_row(
                    {result.name, "-", "-", "-", "-", "-", "-", "-", "no exact record"});
                continue;
            }
            const ExactGapInfo& gap = *result.exact;
            table.add_row({result.name, std::to_string(gap.lower_bound_wires),
                           std::to_string(gap.exact_wires), std::to_string(gap.step1_wires),
                           std::to_string(gap.binpack_wires), std::to_string(gap.exact_gap),
                           std::to_string(gap.bnb_nodes), gap.certified ? "yes" : "NO",
                           format_seconds(result.wall.p50)});
        }
        std::cout << table;
        std::cout << '\n' << report.results.size() << " scenarios (" << report.suite
                  << " suite), " << report.repetitions << " repetitions, "
                  << format_seconds(report.total_seconds) << " total";
        if (!out_path.empty()) {
            std::cout << ", wrote " << out_path;
        }
        std::cout << '\n';
    }
    if (!report.all_ok()) {
        std::cerr << "error: certify suite had failing scenarios\n";
        return 1;
    }
    return 0;
}

int cmd_flow(const Flags& flags)
{
    const Soc soc = load_soc_argument(flags);
    const TestCell wafer_cell = cell_from_flags(flags);
    FinalTestCell final_cell;
    final_cell.channels =
        parse_int_flag("final-channels", flag_or(flags, "final-channels", "1024"));
    final_cell.max_handler_sites =
        parse_int_flag("handler-sites", flag_or(flags, "handler-sites", "8"));

    FlowOptions options;
    options.wafer = options_from_flags(flags);
    options.wafer.yields.manufacturing_yield =
        parse_double_flag("pm", flag_or(flags, "pm", "0.9"));
    if (flags.count("final-retest") != 0) {
        options.final_retest = FinalRetest::through_erpct;
    }

    const FlowPlan plan = plan_flow(soc, wafer_cell, final_cell, options);
    Table table({"stage", "sites", "touchdown", "devices/hour"});
    table.add_row({"wafer (E-RPCT)", std::to_string(plan.wafer.sites),
                   format_seconds(plan.wafer.touchdown_time),
                   format_throughput(plan.wafer.devices_per_hour)});
    table.add_row({"final (all pins)", std::to_string(plan.final.sites),
                   format_seconds(plan.final.touchdown_time),
                   format_throughput(plan.final.devices_per_hour)});
    std::cout << table << '\n';
    std::cout << "final testers per wafer tester: " << plan.final_testers_per_wafer_tester
              << "\ntester time per shipped device: "
              << format_seconds(plan.tester_seconds_per_shipped_device) << '\n';
    return 0;
}

int cmd_inspect(const Flags& flags)
{
    const Soc soc = load_soc_argument(flags);
    const SocStats stats = soc.stats();
    std::cout << "SOC " << soc.name() << ": " << stats.module_count << " modules ("
              << stats.scan_tested_modules << " scan-tested)\n"
              << "scan flip-flops: " << stats.total_scan_flip_flops << "\n"
              << "patterns:        " << stats.total_patterns << "\n"
              << "test data:       " << stats.total_test_data_volume_bits << " bits\n\n";

    Table table({"module", "in", "out", "bidir", "chains", "scan FFs", "patterns"});
    for (const Module& m : soc.modules()) {
        table.add_row({m.name(), std::to_string(m.inputs()), std::to_string(m.outputs()),
                       std::to_string(m.bidirs()), std::to_string(m.scan_chain_count()),
                       std::to_string(m.total_scan_flip_flops()), std::to_string(m.patterns())});
    }
    std::cout << table;
    return 0;
}

int cmd_generate(const Flags& flags)
{
    const std::string profile = flag_or(flags, "profile", "");
    const std::string out = flag_or(flags, "out", "");
    if (profile.empty() || out.empty()) {
        throw ValidationError("generate requires --profile <name> and --out <file>");
    }
    const Soc soc = make_benchmark_soc(profile);
    save_soc_file(out, soc);
    std::cout << "wrote " << out << " (" << soc.module_count() << " modules)\n";
    return 0;
}

int cmd_help()
{
    std::cout <<
        "mst_cli - on-chip test infrastructure design for multi-site testing\n"
        "\n"
        "commands:\n"
        "  optimize --soc <name|path> [--channels N] [--depth 7M] [--clock HZ]\n"
        "           [--index S] [--contact S] [--broadcast] [--abort-on-fail]\n"
        "           [--retest] [--pc P] [--pm P] [--step1-only] [--gantt] [--json]\n"
        "           [--threads N] [--exact] [--exact-budget-ms N]\n"
        "           (--threads caps the intra-scenario search concurrency;\n"
        "            the solution is byte-identical at any thread count;\n"
        "            --exact certifies Step 1 with the branch-and-bound solver,\n"
        "            --exact-budget-ms caps it by a deterministic node budget)\n"
        "  batch    --socs <list> [--channels <list>] [--depths <list>]\n"
        "           [--threads N] [optimize flags] [--json]\n"
        "           (cross product of comma-separated lists, run in parallel)\n"
        "  sweep    --spec <file> --out <dir> [--shards N] [--workers N]\n"
        "           [--threads N] [--list] [--json] [--max-restarts N]\n"
        "           [--backoff-ms N] [--hang-timeout-ms N] [--drain-timeout-ms N]\n"
        "           [--fault-plan P]\n"
        "           (sharded, resumable scenario sweep from a declarative spec\n"
        "            file; completed shards checkpoint to <dir>/shard-*.msr and\n"
        "            a rerun resumes instead of recomputing — the final\n"
        "            report.json is byte-identical to an uninterrupted run at\n"
        "            any shard/worker/thread count. Crashed or hung workers\n"
        "            are restarted with capped backoff; a scenario that keeps\n"
        "            killing its worker is quarantined after --max-restarts\n"
        "            consecutive failures. SIGTERM/SIGINT drains workers\n"
        "            (--drain-timeout-ms, then SIGKILL) and exits 130/137 with\n"
        "            checkpoints kept for resume. --list previews the\n"
        "            expansion; see docs/sweep.md and docs/robustness.md)\n"
        "  serve    [--threads N] [--tables-cache N] [--memo N]\n"
        "           [--listen host:port] [--port-file F] [--max-connections N]\n"
        "           [--queue N] [--conn-queue N] [--idle-timeout-ms N]\n"
        "           [--read-timeout-ms N] [--write-timeout-ms N]\n"
        "           [--max-frame-bytes N] [--processes N] [--shm BYTES]\n"
        "           [--shm-name /name] [--fault-plan P]\n"
        "           (persistent request loop: one JSON request per line, one\n"
        "            JSON response per line; SOC time tables and solutions are\n"
        "            cached across requests. --listen serves the same protocol\n"
        "            over TCP: streaming or ordered responses, bounded request\n"
        "            queues, graceful SIGTERM drain; see docs/protocol.md.\n"
        "            exhausted accepts shed an idle connection and back off;\n"
        "            memoized answers are still served while the admission\n"
        "            queue refuses new optimize work. --processes N forks a\n"
        "            supervised prefork pool over one shared listener: dead\n"
        "            workers restart with capped backoff, --port-file appears\n"
        "            only when the pool is ready. --shm attaches a crash-safe\n"
        "            shared-memory cache tier (docs/shm.md); when the segment\n"
        "            is unusable the server degrades to local caches instead\n"
        "            of failing. responses are byte-identical for the same\n"
        "            ordered request stream at any process/thread count,\n"
        "            shm on or off)\n"
        "  replay   <file> [--threads N] [--tables-cache N] [--memo N]\n"
        "           (run a JSON-lines request file concurrently; responses\n"
        "            print in request order at any thread count)\n"
        "  bench    [--quick] [--repeat N] [--filter substr] [--compare]\n"
        "           [--threads N] [--out BENCH_optimizer.json] [--json]\n"
        "           (canonical perf suite; --compare also times the\n"
        "            from-scratch baseline and cross-checks fingerprints;\n"
        "            --threads caps the intra-scenario concurrency)\n"
        "  certify  [--filter substr] [--repeat N] [--threads N]\n"
        "           [--out BENCH_certify.json] [--json]\n"
        "           (exact-optimality gap suite: branch-and-bound vs Step 1 vs\n"
        "            bin-packing on every <= 14-module scenario; B&B node\n"
        "            counts are byte-identical at any thread count)\n"
        "  flow     --soc <name|path> [optimize flags] [--final-channels N]\n"
        "           [--handler-sites N] [--final-retest]\n"
        "  inspect  --soc <name|path>\n"
        "  generate --profile <name> --out <file>\n"
        "  help\n"
        "\n"
        "benchmark SOCs: d695 p22810 p34392 p93791 pnx8550\n"
        "request schema: protocol v1, see docs/protocol.md and README.md\n"
        "fault injection: --fault-plan / MST_FAULT_PLAN \"point:action@N[*R][=ERR]\"\n"
        "                 (deterministic test-only failures; docs/robustness.md)\n";
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    try {
        // Process-wide fault plan from the environment (--fault-plan on
        // sweep/serve replaces it). Installed before dispatch so every
        // instrumented code path, whichever subcommand reaches it, sees
        // the same armed plan (docs/robustness.md).
        if (const char* env = std::getenv("MST_FAULT_PLAN");
            env != nullptr && *env != '\0') {
            mst::fault::install_plan(mst::fault::parse_plan(env));
        }
        if (const char* env = std::getenv("MST_FAULT_ATTEMPT");
            env != nullptr && *env != '\0') {
            mst::fault::set_attempt(std::atoi(env));
        }
        if (argc < 2) {
            return cmd_help();
        }
        const std::string command = argv[1];
        std::vector<std::string> args(argv + 2, argv + argc);

        if (command == "optimize") {
            return cmd_optimize(cli::parse_flags(
                args, command,
                std::vector<FlagSpec>{{"soc", true}, {"gantt", false}, {"json", false},
                                      {"threads", true}} +
                    cell_flags + option_flags));
        }
        if (command == "batch") {
            return cmd_batch(cli::parse_flags(
                args, command,
                std::vector<FlagSpec>{{"socs", true}, {"channels", true}, {"depths", true},
                                      {"depth", true}, {"threads", true}, {"clock", true},
                                      {"index", true}, {"contact", true}, {"json", false}} +
                    option_flags));
        }
        if (command == "sweep") {
            return cmd_sweep(cli::parse_flags(
                args, command,
                {{"spec", true}, {"out", true}, {"shards", true}, {"workers", true},
                 {"threads", true}, {"list", false}, {"json", false},
                 {"max-restarts", true}, {"backoff-ms", true}, {"hang-timeout-ms", true},
                 {"drain-timeout-ms", true}, {"fault-plan", true}}));
        }
        if (command == "serve") {
            return cmd_serve(cli::parse_flags(
                args, command,
                std::vector<FlagSpec>{{"fault-plan", true}} + service_flags + server_flags));
        }
        if (command == "replay") {
            if (args.empty() || args.front().rfind("--", 0) == 0) {
                throw ValidationError("replay requires a request file: mst replay <file>");
            }
            const std::string path = args.front();
            args.erase(args.begin());
            return cmd_replay(path, cli::parse_flags(args, command, service_flags));
        }
        if (command == "bench") {
            return cmd_bench(cli::parse_flags(
                args, command,
                {{"quick", false}, {"compare", false}, {"filter", true},
                 {"repeat", true}, {"out", true}, {"json", false}, {"threads", true}}));
        }
        if (command == "certify") {
            return cmd_certify(cli::parse_flags(
                args, command,
                {{"filter", true}, {"repeat", true}, {"out", true}, {"json", false},
                 {"threads", true}}));
        }
        if (command == "flow") {
            return cmd_flow(cli::parse_flags(
                args, command,
                std::vector<FlagSpec>{{"soc", true}, {"final-channels", true},
                                      {"handler-sites", true}, {"final-retest", false}} +
                    cell_flags + option_flags));
        }
        if (command == "inspect") {
            return cmd_inspect(cli::parse_flags(args, command, {{"soc", true}}));
        }
        if (command == "generate") {
            return cmd_generate(
                cli::parse_flags(args, command, {{"profile", true}, {"out", true}}));
        }
        if (command == "help" || command == "--help") {
            return cmd_help();
        }
        std::cerr << "unknown command '" << command << "'\n";
        return 2;
    } catch (const mst::Error& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "unexpected error: " << e.what() << '\n';
        return 1;
    }
}
