// Strict command-line flag parsing for the mst CLI.
//
// Every subcommand declares its known flags as a FlagSpec list;
// parse_flags validates the raw argument vector against it:
//   * unknown flags are rejected (with a nearest-match suggestion, so a
//     typo like `--brodcast` cannot silently change results),
//   * duplicate flags are rejected,
//   * a flag declared with FlagSpec::takes_value must be followed by a
//     value, and a bare flag must not be,
//   * stray positional arguments are rejected.
//
// Numeric flag values go through the strict full-consumption parsers
// below, which name the offending flag ("--channels expects an integer,
// got '512x'") instead of truncating at the first bad character or
// surfacing a bare std::stoi/stod exception.
//
// Lives outside main.cpp so cli_flags_test can drive it directly.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mst::cli {

/// One flag a subcommand accepts, without the leading "--".
struct FlagSpec {
    std::string name;
    bool takes_value = false;
};

/// Parsed command line: flag -> value ("" for bare flags).
using Flags = std::map<std::string, std::string>;

/// Parse `args` (the argv tail after the subcommand name) against the
/// subcommand's known flag set. Throws ValidationError on unknown or
/// duplicate flags, missing or unexpected values, and stray positional
/// arguments; `command` names the subcommand in the error message.
[[nodiscard]] Flags parse_flags(const std::vector<std::string>& args,
                                const std::string& command,
                                const std::vector<FlagSpec>& known);

/// Value of `key`, or `fallback` when the flag was not given.
[[nodiscard]] std::string flag_or(const Flags& flags, const std::string& key,
                                  const std::string& fallback);

/// Strict integer: the whole token must parse, no trailing junk.
/// Throws ValidationError naming `flag` otherwise.
[[nodiscard]] int parse_int_flag(const std::string& flag, const std::string& text);

/// Strict floating-point number: the whole token must parse and be
/// finite. Throws ValidationError naming `flag` otherwise.
[[nodiscard]] double parse_double_flag(const std::string& flag, const std::string& text);

/// Levenshtein-nearest name out of `candidates` within distance 2 of
/// `input`, or "" when nothing is close. Used for typo suggestions.
[[nodiscard]] std::string nearest_flag_name(const std::string& input,
                                            const std::vector<FlagSpec>& candidates);

} // namespace mst::cli
