// The `mst bench` suite: canonical optimizer scenarios timed end to end
// (wrapper time tables + Step 1 + Step 2), with solution fingerprints
// guarding against "fast because wrong" and optional from-scratch
// baseline runs quantifying what the memoized pipeline buys.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ate/ate.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"
#include "perf/stopwatch.hpp"
#include "scenario/scenario_spec.hpp"
#include "soc/soc.hpp"

namespace mst {

/// One named bench scenario: an SOC on a test cell under one option
/// variant — the scenario layer's expansion unit, e.g.
/// "d695/512x7M/broadcast". Both canonical suites below are built as
/// ScenarioSpecs and expanded, like every other scenario surface.
using BenchCase = Scenario;

/// Compact solution identity: enough to detect any change in the chosen
/// operating point across code versions and pipeline modes.
struct SolutionFingerprint {
    SiteCount sites = 0;
    ChannelCount channels_per_site = 0;
    CycleCount test_cycles = 0;
    DevicesPerHour devices_per_hour = 0;

    [[nodiscard]] bool operator==(const SolutionFingerprint& other) const noexcept
    {
        return sites == other.sites && channels_per_site == other.channels_per_site &&
               test_cycles == other.test_cycles && devices_per_hour == other.devices_per_hour;
    }
};

/// Optimality-gap record of one certify scenario: the exact
/// branch-and-bound answer bracketed by the theoretical lower bound,
/// the Step-1 greedy, and the rectangle bin-packing baseline. Part of
/// the fingerprint family: bench_diff.py compares every field exactly,
/// so a node-count drift (lost determinism) or a gap drift (changed
/// answer) fails the diff just like a solution fingerprint mismatch.
struct ExactGapInfo {
    WireCount exact_wires = 0;       ///< B&B optimum (certified) or best found
    WireCount step1_wires = 0;       ///< greedy Step-1 wires
    WireCount binpack_wires = 0;     ///< bin-packing baseline wires
    WireCount lower_bound_wires = 0; ///< theoretical LB of [7]
    WireCount exact_gap = 0;         ///< step1_wires - exact_wires
    std::int64_t bnb_nodes = 0;      ///< thread-count-invariant node count
    bool certified = false;          ///< tree exhausted within budget
};

/// Measured outcome of one bench case.
struct BenchCaseResult {
    std::string name;
    std::string soc_name;
    std::string variant;
    ChannelCount channels = 0;
    CycleCount depth = 0;

    bool ok = false;
    std::string error; ///< set when !ok

    TimingStats wall;                          ///< memoized pipeline, full run
    std::optional<TimingStats> baseline_wall;  ///< from-scratch pipeline (--compare)
    std::optional<bool> fingerprint_matches_baseline;

    SolutionFingerprint fingerprint;
    OptimizerStats stats;
    std::optional<ExactGapInfo> exact; ///< set for certify scenarios
};

/// A full bench run, serialized by write_bench_json().
struct BenchReport {
    /// "quick" | "full" for unfiltered canonical runs; "custom" for
    /// filtered or caller-supplied case lists.
    std::string suite;
    int repetitions = 0;
    bool compared_baseline = false;
    /// Configured intra-scenario concurrency cap (0 = executor-wide).
    int threads = 0;
    Seconds total_seconds = 0;
    std::vector<BenchCaseResult> results;

    /// True when every case succeeded and (under --compare) every
    /// fingerprint matched its baseline.
    [[nodiscard]] bool all_ok() const noexcept;
};

/// Knobs of one bench invocation.
struct BenchOptions {
    bool quick = false;            ///< smaller suite, fewer repetitions
    int repetitions = 0;           ///< 0 = suite default (quick: 2, full: 5)
    bool compare_baseline = false; ///< also run the from-scratch pipeline
    std::string filter;            ///< substring filter on case names
    /// Intra-scenario concurrency cap (OptimizeOptions::threads) applied
    /// to every case; <= 0 uses the whole shared executor. Results are
    /// byte-identical at any value — this knob exists to measure how the
    /// fixed task schedule scales.
    int threads = 0;
};

/// The canonical scenario list: the four ITC'02 SOCs across
/// representative test cells and broadcast/abort/retest variants, plus
/// generator-scaled SOCs at 10x up to 1000x the d695 module count (the
/// 300x/1000x ones in wide-shallow and narrow-deep shapes). The quick
/// suite (>= 16 cases) drops the second cell and all large scaled SOCs
/// except gen300x-deep, which stays so CI smoke guards the large-scale
/// asymptotics.
[[nodiscard]] std::vector<BenchCase> canonical_bench_cases(bool quick);

/// Run `cases` under `options` (the filter applies here too).
[[nodiscard]] BenchReport run_bench(const std::vector<BenchCase>& cases,
                                    const BenchOptions& options);

/// Run the canonical suite selected by options.quick.
[[nodiscard]] BenchReport run_bench(const BenchOptions& options);

/// The certify scenario list: every ≤14-module view of the ITC'02 SOCs
/// (d695 whole, 12-module subsets of the larger three) plus small
/// generated SOCs, each run with OptimizeOptions::exact at depths tight
/// enough that the greedy is not trivially optimal. All scenarios are
/// sized to exhaust the B&B tree, so every gap is certified.
[[nodiscard]] std::vector<BenchCase> certify_bench_cases();

/// Run the certify suite (suite name "certify"; "custom" when filtered).
[[nodiscard]] BenchReport run_certify(const BenchOptions& options);

} // namespace mst
