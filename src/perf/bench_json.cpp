#include "perf/bench_json.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "report/solution_json.hpp"

namespace mst {

namespace {

std::string number(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    return buffer;
}

void write_timing(std::ostream& out, const TimingStats& stats)
{
    out << "{ \"iterations\": " << stats.iterations << ", \"min_s\": " << number(stats.min)
        << ", \"p50_s\": " << number(stats.p50) << ", \"p95_s\": " << number(stats.p95)
        << ", \"p99_s\": " << number(stats.p99) << ", \"mean_s\": " << number(stats.mean)
        << ", \"max_s\": " << number(stats.max) << " }";
}

void write_case(std::ostream& out, const BenchCaseResult& result)
{
    out << "    {\n";
    out << "      \"name\": \"" << json_escape(result.name) << "\",\n";
    out << "      \"soc\": \"" << json_escape(result.soc_name) << "\",\n";
    out << "      \"variant\": \"" << json_escape(result.variant) << "\",\n";
    out << "      \"channels\": " << result.channels << ",\n";
    out << "      \"depth_vectors\": " << result.depth << ",\n";
    out << "      \"ok\": " << (result.ok ? "true" : "false");
    if (!result.ok) {
        out << ",\n      \"error\": \"" << json_escape(result.error) << "\"\n    }";
        return;
    }
    out << ",\n      \"wall_seconds\": ";
    write_timing(out, result.wall);
    if (result.baseline_wall) {
        out << ",\n      \"baseline_wall_seconds\": ";
        write_timing(out, *result.baseline_wall);
        if (result.wall.p50 > 0) {
            out << ",\n      \"speedup_p50\": " << number(result.baseline_wall->p50 /
                                                          result.wall.p50);
        }
    }
    if (result.fingerprint_matches_baseline) {
        out << ",\n      \"fingerprint_matches_baseline\": "
            << (*result.fingerprint_matches_baseline ? "true" : "false");
    }
    if (result.exact) {
        out << ",\n      \"exact\": { \"exact_wires\": " << result.exact->exact_wires
            << ", \"step1_wires\": " << result.exact->step1_wires
            << ", \"binpack_wires\": " << result.exact->binpack_wires
            << ", \"lower_bound_wires\": " << result.exact->lower_bound_wires
            << ", \"exact_gap\": " << result.exact->exact_gap
            << ", \"bnb_nodes\": " << result.exact->bnb_nodes
            << ", \"certified\": " << (result.exact->certified ? "true" : "false") << " }";
    }
    out << ",\n      \"fingerprint\": { \"sites\": " << result.fingerprint.sites
        << ", \"channels_per_site\": " << result.fingerprint.channels_per_site
        << ", \"test_cycles\": " << result.fingerprint.test_cycles
        << ", \"devices_per_hour\": " << number(result.fingerprint.devices_per_hour) << " },\n";
    out << "      \"optimizer_stats\": { \"pack_calls\": " << result.stats.packing.pack_calls
        << ", \"pack_cache_hits\": " << result.stats.packing.pack_cache_hits
        << ", \"greedy_passes\": " << result.stats.packing.greedy_passes
        << ", \"depth_profiles\": " << result.stats.packing.depth_profiles
        << ", \"pruned_packs\": " << result.stats.packing.pruned_packs
        << ", \"site_points\": " << result.stats.site_points
        << ", \"threads\": " << result.stats.threads << " }\n";
    out << "    }";
}

} // namespace

void write_bench_json(std::ostream& out, const BenchReport& report)
{
    out << "{\n";
    out << "  \"schema\": \"" << bench_schema_name << "\",\n";
    out << "  \"schema_version\": " << bench_schema_version << ",\n";
    out << "  \"suite\": \"" << json_escape(report.suite) << "\",\n";
    out << "  \"repetitions\": " << report.repetitions << ",\n";
    out << "  \"compared_baseline\": " << (report.compared_baseline ? "true" : "false") << ",\n";
    out << "  \"threads\": " << report.threads << ",\n";
    out << "  \"total_seconds\": " << number(report.total_seconds) << ",\n";
    out << "  \"scenario_count\": " << report.results.size() << ",\n";
    out << "  \"scenarios\": [";
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        out << (i == 0 ? "\n" : ",\n");
        write_case(out, report.results[i]);
    }
    out << "\n  ]\n";
    out << "}\n";
}

std::string bench_report_to_json(const BenchReport& report)
{
    std::ostringstream stream;
    write_bench_json(stream, report);
    return stream.str();
}

} // namespace mst
