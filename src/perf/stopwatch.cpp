#include "perf/stopwatch.hpp"

#include <algorithm>

namespace mst {

Seconds TimingStats::percentile(const std::vector<Seconds>& sorted, double q)
{
    if (sorted.empty()) {
        return 0;
    }
    if (q <= 0) {
        return sorted.front();
    }
    if (q >= 1) {
        return sorted.back();
    }
    const double rank = static_cast<double>(sorted.size() - 1) * q;
    const auto below = static_cast<std::size_t>(rank);
    const double fraction = rank - static_cast<double>(below);
    if (below + 1 >= sorted.size() || fraction == 0) {
        return sorted[below];
    }
    return sorted[below] + fraction * (sorted[below + 1] - sorted[below]);
}

TimingStats TimingStats::from_samples(std::vector<Seconds> samples)
{
    TimingStats stats;
    if (samples.empty()) {
        return stats;
    }
    std::sort(samples.begin(), samples.end());
    stats.iterations = static_cast<int>(samples.size());
    stats.min = samples.front();
    stats.max = samples.back();
    stats.p50 = percentile(samples, 0.50);
    stats.p95 = percentile(samples, 0.95);
    stats.p99 = percentile(samples, 0.99);

    Seconds total = 0;
    for (const Seconds sample : samples) {
        total += sample;
    }
    stats.mean = total / static_cast<double>(samples.size());
    return stats;
}

} // namespace mst
