#include "perf/stopwatch.hpp"

#include <algorithm>

namespace mst {

TimingStats TimingStats::from_samples(std::vector<Seconds> samples)
{
    TimingStats stats;
    if (samples.empty()) {
        return stats;
    }
    std::sort(samples.begin(), samples.end());
    stats.iterations = static_cast<int>(samples.size());
    stats.min = samples.front();
    stats.max = samples.back();

    const std::size_t half = samples.size() / 2;
    stats.p50 = (samples.size() % 2 == 1)
                    ? samples[half]
                    : 0.5 * (samples[half - 1] + samples[half]);

    Seconds total = 0;
    for (const Seconds sample : samples) {
        total += sample;
    }
    stats.mean = total / static_cast<double>(samples.size());
    return stats;
}

} // namespace mst
