// Lightweight wall-clock timing for the bench harness: a monotonic
// stopwatch plus order statistics over repeated samples.
#pragma once

#include <chrono>
#include <vector>

#include "common/types.hpp"

namespace mst {

/// Monotonic wall-clock timer; starts on construction.
class Stopwatch {
public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    void restart() { start_ = std::chrono::steady_clock::now(); }

    [[nodiscard]] Seconds elapsed() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Order statistics of repeated wall-time samples. The median (p50) is
/// the headline number — robust against a cold first iteration — with
/// min as the "best achievable" floor CI trend lines use and p95/p99
/// as the tail-latency numbers the sweep engine and CI gate watch.
struct TimingStats {
    int iterations = 0;
    Seconds min = 0;
    Seconds p50 = 0;
    Seconds p95 = 0;
    Seconds p99 = 0;
    Seconds mean = 0;
    Seconds max = 0;

    /// Compute the stats from raw samples (order irrelevant; the vector
    /// is copied and sorted). Returns all-zero stats for no samples.
    [[nodiscard]] static TimingStats from_samples(std::vector<Seconds> samples);

    /// Quantile q in [0, 1] of an ascending-sorted sample vector, with
    /// linear interpolation between the two nearest order statistics
    /// (rank h = (n-1)*q — the numpy/R type-7 default). Well defined
    /// for any n >= 1: with one sample every quantile is that sample,
    /// and p50 of an even count is the usual mid-pair average.
    [[nodiscard]] static Seconds percentile(const std::vector<Seconds>& sorted, double q);
};

} // namespace mst
