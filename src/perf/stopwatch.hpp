// Lightweight wall-clock timing for the bench harness: a monotonic
// stopwatch plus order statistics over repeated samples.
#pragma once

#include <chrono>
#include <vector>

#include "common/types.hpp"

namespace mst {

/// Monotonic wall-clock timer; starts on construction.
class Stopwatch {
public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    void restart() { start_ = std::chrono::steady_clock::now(); }

    [[nodiscard]] Seconds elapsed() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Order statistics of repeated wall-time samples. The median (p50) is
/// the headline number — robust against a cold first iteration — with
/// min as the "best achievable" floor CI trend lines use.
struct TimingStats {
    int iterations = 0;
    Seconds min = 0;
    Seconds p50 = 0;
    Seconds mean = 0;
    Seconds max = 0;

    /// Compute the stats from raw samples (order irrelevant; the vector
    /// is copied and sorted). Returns all-zero stats for no samples.
    [[nodiscard]] static TimingStats from_samples(std::vector<Seconds> samples);
};

} // namespace mst
