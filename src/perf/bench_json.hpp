// Machine-readable BENCH JSON: the perf trajectory record `mst bench`
// emits (BENCH_optimizer.json) and CI uploads as an artifact. The format
// is schema-versioned so downstream tooling (tools/validate_bench.py,
// trend dashboards) can reject incompatible files instead of
// misreading them.
#pragma once

#include <iosfwd>
#include <string>

#include "perf/bench_suite.hpp"

namespace mst {

/// Schema identity embedded in every report. Bump the version on any
/// backwards-incompatible change and teach tools/validate_bench.py the
/// new layout in the same commit.
/// v2: top-level "threads" (configured intra-scenario concurrency cap,
/// 0 = executor-wide) and per-scenario optimizer_stats gained
/// "pruned_packs" (area-floor prune hits) and "threads" (resolved cap).
/// v3: optional per-scenario "exact" block (the certify suite's
/// optimality-gap record: exact/step1/binpack/lower-bound wires,
/// "exact_gap", "bnb_nodes", "certified").
/// v4: timing blocks gained tail-latency percentiles "p95_s" and
/// "p99_s" (type-7 interpolated order statistics; equal to "p50_s" at
/// iterations = 1), gated by tools/bench_diff.py alongside p50.
inline constexpr const char* bench_schema_name = "mst.bench";
inline constexpr int bench_schema_version = 4;

/// Serialize a bench report as one self-contained JSON object with a
/// deterministic key order.
void write_bench_json(std::ostream& out, const BenchReport& report);

/// Convenience: serialize to a string.
[[nodiscard]] std::string bench_report_to_json(const BenchReport& report);

} // namespace mst
