#include "perf/bench_suite.hpp"

#include <utility>

#include "arch/channel_group.hpp"
#include "baseline/bin_packing.hpp"
#include "baseline/lower_bound.hpp"
#include "common/error.hpp"
#include "core/optimizer.hpp"
#include "soc/generator.hpp"
#include "soc/profiles.hpp"

namespace mst {

namespace {

struct BenchCell {
    const char* name;
    ChannelCount channels;
    CycleCount depth;
};

struct BenchVariant {
    const char* name;
    OptimizeOptions options;
};

/// The four option variants of the suite. Abort-on-fail and re-test only
/// change behavior under imperfect yield, so those variants carry the
/// paper's typical contact/manufacturing yields.
std::vector<BenchVariant> bench_variants()
{
    std::vector<BenchVariant> variants;
    variants.push_back({"plain", {}});

    OptimizeOptions broadcast;
    broadcast.broadcast = BroadcastMode::stimuli;
    variants.push_back({"broadcast", broadcast});

    OptimizeOptions abort_on_fail;
    abort_on_fail.abort = AbortOnFail::on;
    abort_on_fail.yields.contact_yield_per_terminal = 0.9999;
    abort_on_fail.yields.manufacturing_yield = 0.9;
    variants.push_back({"abort", abort_on_fail});

    OptimizeOptions retest;
    retest.retest = RetestPolicy::retest_contact_failures;
    retest.yields.contact_yield_per_terminal = 0.9999;
    retest.yields.manufacturing_yield = 0.9;
    variants.push_back({"retest", retest});
    return variants;
}

/// Generator-scaled SOC built from the shared preset (soc/generator):
/// the golden-fingerprint tests rebuild the very same SOCs.
Soc scaled_soc(const std::string& name, int modules, ScaledShape shape)
{
    return generate_soc(scaled_benchmark_config(name, modules, shape));
}

/// The first `module_count` modules of an ITC'02 SOC, renamed — the
/// exact solver's module-count ceiling makes the full p-chips
/// intractable, so the certify suite works their prefixes.
Soc subset_soc(const std::string& name, const Soc& full, int module_count)
{
    std::vector<Module> modules(full.modules().begin(),
                                full.modules().begin() + module_count);
    return Soc(name, std::move(modules));
}

SolutionFingerprint fingerprint_of(const Solution& solution)
{
    SolutionFingerprint fingerprint;
    fingerprint.sites = solution.sites;
    fingerprint.channels_per_site = solution.channels_per_site;
    fingerprint.test_cycles = solution.test_cycles;
    fingerprint.devices_per_hour = solution.throughput.devices_per_hour;
    return fingerprint;
}

BenchCaseResult run_case(const BenchCase& bench_case, int repetitions, bool compare_baseline,
                         int threads)
{
    BenchCaseResult result;
    result.name = bench_case.name;
    result.soc_name = bench_case.soc_name;
    result.variant = bench_case.variant;
    result.channels = bench_case.cell.ate.channels;
    result.depth = bench_case.cell.ate.vector_memory_depth;

    OptimizeOptions case_options = bench_case.options;
    case_options.threads = threads;

    try {
        // Memoized pipeline, timed end to end: wrapper time tables are
        // rebuilt inside the loop because table construction is part of
        // the optimizer latency a DfT planning loop experiences.
        std::vector<Seconds> samples;
        samples.reserve(static_cast<std::size_t>(repetitions));
        for (int rep = 0; rep < repetitions; ++rep) {
            Stopwatch stopwatch;
            const Solution solution =
                optimize_multi_site(*bench_case.soc, bench_case.cell, case_options);
            samples.push_back(stopwatch.elapsed());
            const SolutionFingerprint fingerprint = fingerprint_of(solution);
            if (rep == 0) {
                result.fingerprint = fingerprint;
                result.stats = solution.stats;
                if (solution.exact) {
                    ExactGapInfo gap;
                    gap.exact_wires = solution.exact->wires;
                    gap.step1_wires = solution.exact->greedy_wires;
                    gap.exact_gap = solution.exact->gap;
                    gap.bnb_nodes = solution.exact->nodes_explored;
                    gap.certified = solution.exact->certified;
                    result.exact = gap;
                }
            } else if (!(fingerprint == result.fingerprint)) {
                throw ValidationError("nondeterministic solution across bench repetitions");
            } else if (solution.exact && result.exact &&
                       solution.exact->nodes_explored != result.exact->bnb_nodes) {
                throw ValidationError("nondeterministic B&B node count across repetitions");
            }
        }
        if (result.exact) {
            // Bracket the gap with the two reference answers; tables are
            // rebuilt once outside the timing loop on purpose.
            const SocTimeTables tables(*bench_case.soc, TableBuild::fast, threads);
            result.exact->binpack_wires =
                pack_rectangles(tables, bench_case.cell.ate, case_options.broadcast).channels /
                2;
            const std::optional<WireCount> bound =
                lower_bound_wires(tables, bench_case.cell.ate.vector_memory_depth);
            result.exact->lower_bound_wires = bound.value_or(0);
        }
        result.wall = TimingStats::from_samples(std::move(samples));

        if (compare_baseline) {
            // Seed-equivalent from-scratch pipeline: reference table
            // build (full wrapper design per width) and no packing memo.
            OptimizeOptions baseline_options = case_options;
            baseline_options.memoize = false;
            std::vector<Seconds> baseline_samples;
            baseline_samples.reserve(static_cast<std::size_t>(repetitions));
            SolutionFingerprint baseline_fingerprint;
            for (int rep = 0; rep < repetitions; ++rep) {
                Stopwatch stopwatch;
                const SocTimeTables reference_tables(*bench_case.soc, TableBuild::reference,
                                                     threads);
                const Solution solution =
                    optimize_multi_site(reference_tables, bench_case.cell, baseline_options);
                baseline_samples.push_back(stopwatch.elapsed());
                if (rep == 0) {
                    baseline_fingerprint = fingerprint_of(solution);
                }
            }
            result.baseline_wall = TimingStats::from_samples(std::move(baseline_samples));
            result.fingerprint_matches_baseline = (baseline_fingerprint == result.fingerprint);
        }
        result.ok = true;
    } catch (const std::exception& e) {
        result.ok = false;
        result.error = e.what();
    }
    return result;
}

} // namespace

bool BenchReport::all_ok() const noexcept
{
    for (const BenchCaseResult& result : results) {
        if (!result.ok) {
            return false;
        }
        if (result.fingerprint_matches_baseline && !*result.fingerprint_matches_baseline) {
            return false;
        }
    }
    return !results.empty();
}

std::vector<BenchCase> canonical_bench_cases(bool quick)
{
    std::vector<BenchCell> cells = {{"512x7M", 512, 7 * mebi}};
    if (!quick) {
        cells.push_back({"256x32M", 256, 32 * mebi});
    }
    const std::vector<BenchVariant> variants = bench_variants();

    std::vector<BenchCase> cases;
    for (const char* soc_name : {"d695", "p22810", "p34392", "p93791"}) {
        const std::shared_ptr<const Soc> soc =
            std::make_shared<const Soc>(make_benchmark_soc(soc_name));
        for (const BenchCell& cell : cells) {
            for (const BenchVariant& variant : variants) {
                BenchCase bench_case;
                bench_case.name =
                    std::string(soc_name) + "/" + cell.name + "/" + variant.name;
                bench_case.soc_name = soc_name;
                bench_case.variant = variant.name;
                bench_case.soc = soc;
                bench_case.cell.ate.channels = cell.channels;
                bench_case.cell.ate.vector_memory_depth = cell.depth;
                bench_case.options = variant.options;
                cases.push_back(std::move(bench_case));
            }
        }
    }

    // Generator-scaled SOCs: 10x up to 1000x the d695 module count,
    // probing how the pipeline scales with modules. The 300x/1000x
    // scenarios come in the two extreme shapes (wide-shallow and
    // narrow-deep, see ScaledShape) so both ends of the packing loop
    // are on the scaling record; the quick suite keeps one large-scale
    // scenario so CI smoke guards the asymptotics too.
    const auto add_scaled = [&cases](const std::string& soc_name, int modules,
                                     ScaledShape shape) {
        BenchCase bench_case;
        bench_case.name = soc_name + "/512x7M/plain";
        bench_case.soc_name = soc_name;
        bench_case.variant = "plain";
        bench_case.soc = std::make_shared<const Soc>(scaled_soc(soc_name, modules, shape));
        cases.push_back(std::move(bench_case));
    };
    add_scaled("gen10x", 100, ScaledShape::classic);
    add_scaled("gen300x-deep", 3000, ScaledShape::narrow_deep);
    if (!quick) {
        add_scaled("gen100x", 1000, ScaledShape::classic);
        add_scaled("gen300x-wide", 3000, ScaledShape::wide_shallow);
        add_scaled("gen1000x-wide", 10000, ScaledShape::wide_shallow);
        add_scaled("gen1000x-deep", 10000, ScaledShape::narrow_deep);
    }
    return cases;
}

BenchReport run_bench(const std::vector<BenchCase>& cases, const BenchOptions& options)
{
    BenchReport report;
    // Caller-supplied or filtered case lists are "custom"; the canonical
    // overload below overrides this for unfiltered quick/full runs, so
    // trend tooling never mistakes a subset for a full-suite datapoint.
    report.suite = "custom";
    report.repetitions = options.repetitions > 0 ? options.repetitions : (options.quick ? 2 : 5);
    report.compared_baseline = options.compare_baseline;
    report.threads = options.threads;

    Stopwatch total;
    for (const BenchCase& bench_case : cases) {
        if (!options.filter.empty() &&
            bench_case.name.find(options.filter) == std::string::npos) {
            continue;
        }
        report.results.push_back(run_case(bench_case, report.repetitions,
                                          options.compare_baseline, options.threads));
    }
    report.total_seconds = total.elapsed();
    return report;
}

BenchReport run_bench(const BenchOptions& options)
{
    BenchReport report = run_bench(canonical_bench_cases(options.quick), options);
    if (options.filter.empty()) {
        report.suite = options.quick ? "quick" : "full";
    }
    return report;
}

std::vector<BenchCase> certify_bench_cases()
{
    std::vector<BenchCase> cases;
    const auto add = [&cases](const std::string& soc_name, std::shared_ptr<const Soc> soc,
                              const char* cell_name, CycleCount depth) {
        BenchCase bench_case;
        bench_case.name = soc_name + "/" + cell_name + "/exact";
        bench_case.soc_name = soc_name;
        bench_case.variant = "exact";
        bench_case.soc = std::move(soc);
        bench_case.cell.ate.channels = 512;
        bench_case.cell.ate.vector_memory_depth = depth;
        bench_case.options.exact = true;
        cases.push_back(std::move(bench_case));
    };

    // Depths are deliberately tight: at the stock 7M vectors one wire
    // fits everything and every gap is trivially zero. Near the packing
    // floor the greedy has real decisions to get wrong, which is where a
    // certifier earns its keep.
    const auto d695 = std::make_shared<const Soc>(make_benchmark_soc("d695"));
    add("d695", d695, "512x30K", 30'000);
    add("d695", d695, "512x12K", 12'000);

    struct SubsetSpec {
        const char* soc;
        CycleCount depth;
        const char* cell_name;
    };
    for (const SubsetSpec& spec : {SubsetSpec{"p22810", 180'000, "512x180K"},
                                   SubsetSpec{"p34392", 550'000, "512x550K"},
                                   SubsetSpec{"p93791", 400'000, "512x400K"}}) {
        const std::string name = std::string(spec.soc) + "x12";
        const auto soc =
            std::make_shared<const Soc>(subset_soc(name, make_benchmark_soc(spec.soc), 12));
        add(name, soc, spec.cell_name, spec.depth);
    }

    // Small generated SOCs: same generator the property tests draw from.
    add("gen12a", std::make_shared<const Soc>(random_soc(17, 12)), "512x40K", 40'000);
    add("gen12b", std::make_shared<const Soc>(random_soc(23, 12)), "512x58K", 58'000);
    add("gen14", std::make_shared<const Soc>(random_soc(31, 14)), "512x35K", 35'000);
    return cases;
}

BenchReport run_certify(const BenchOptions& options)
{
    BenchReport report = run_bench(certify_bench_cases(), options);
    if (options.filter.empty()) {
        report.suite = "certify";
    }
    return report;
}

} // namespace mst
