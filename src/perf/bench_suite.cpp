#include "perf/bench_suite.hpp"

#include <utility>

#include "arch/channel_group.hpp"
#include "baseline/bin_packing.hpp"
#include "baseline/lower_bound.hpp"
#include "common/error.hpp"
#include "core/optimizer.hpp"

namespace mst {

namespace {

/// The four option variants of the suite. Abort-on-fail and re-test only
/// change behavior under imperfect yield, so those variants carry the
/// paper's typical contact/manufacturing yields.
std::vector<OptionVariant> bench_variants()
{
    std::vector<OptionVariant> variants;
    variants.push_back({"plain", {}});

    OptimizeOptions broadcast;
    broadcast.broadcast = BroadcastMode::stimuli;
    variants.push_back({"broadcast", broadcast});

    OptimizeOptions abort_on_fail;
    abort_on_fail.abort = AbortOnFail::on;
    abort_on_fail.yields.contact_yield_per_terminal = 0.9999;
    abort_on_fail.yields.manufacturing_yield = 0.9;
    variants.push_back({"abort", abort_on_fail});

    OptimizeOptions retest;
    retest.retest = RetestPolicy::retest_contact_failures;
    retest.yields.contact_yield_per_terminal = 0.9999;
    retest.yields.manufacturing_yield = 0.9;
    variants.push_back({"retest", retest});
    return variants;
}

CellPoint cell_point(ChannelCount channels, CycleCount depth, std::string label = "")
{
    CellPoint point;
    point.label = std::move(label);
    point.cell.ate.channels = channels;
    point.cell.ate.vector_memory_depth = depth;
    return point;
}

SolutionFingerprint fingerprint_of(const Solution& solution)
{
    SolutionFingerprint fingerprint;
    fingerprint.sites = solution.sites;
    fingerprint.channels_per_site = solution.channels_per_site;
    fingerprint.test_cycles = solution.test_cycles;
    fingerprint.devices_per_hour = solution.throughput.devices_per_hour;
    return fingerprint;
}

BenchCaseResult run_case(const BenchCase& bench_case, int repetitions, bool compare_baseline,
                         int threads)
{
    BenchCaseResult result;
    result.name = bench_case.name;
    result.soc_name = bench_case.soc_name;
    result.variant = bench_case.variant;
    result.channels = bench_case.cell.ate.channels;
    result.depth = bench_case.cell.ate.vector_memory_depth;

    OptimizeOptions case_options = bench_case.options;
    case_options.threads = threads;

    try {
        // Memoized pipeline, timed end to end: wrapper time tables are
        // rebuilt inside the loop because table construction is part of
        // the optimizer latency a DfT planning loop experiences.
        std::vector<Seconds> samples;
        samples.reserve(static_cast<std::size_t>(repetitions));
        for (int rep = 0; rep < repetitions; ++rep) {
            Stopwatch stopwatch;
            const Solution solution =
                optimize_multi_site(*bench_case.soc, bench_case.cell, case_options);
            samples.push_back(stopwatch.elapsed());
            const SolutionFingerprint fingerprint = fingerprint_of(solution);
            if (rep == 0) {
                result.fingerprint = fingerprint;
                result.stats = solution.stats;
                if (solution.exact) {
                    ExactGapInfo gap;
                    gap.exact_wires = solution.exact->wires;
                    gap.step1_wires = solution.exact->greedy_wires;
                    gap.exact_gap = solution.exact->gap;
                    gap.bnb_nodes = solution.exact->nodes_explored;
                    gap.certified = solution.exact->certified;
                    result.exact = gap;
                }
            } else if (!(fingerprint == result.fingerprint)) {
                throw ValidationError("nondeterministic solution across bench repetitions");
            } else if (solution.exact && result.exact &&
                       solution.exact->nodes_explored != result.exact->bnb_nodes) {
                throw ValidationError("nondeterministic B&B node count across repetitions");
            }
        }
        if (result.exact) {
            // Bracket the gap with the two reference answers; tables are
            // rebuilt once outside the timing loop on purpose.
            const SocTimeTables tables(*bench_case.soc, TableBuild::fast, threads);
            result.exact->binpack_wires =
                pack_rectangles(tables, bench_case.cell.ate, case_options.broadcast).channels /
                2;
            const std::optional<WireCount> bound =
                lower_bound_wires(tables, bench_case.cell.ate.vector_memory_depth);
            result.exact->lower_bound_wires = bound.value_or(0);
        }
        result.wall = TimingStats::from_samples(std::move(samples));

        if (compare_baseline) {
            // Seed-equivalent from-scratch pipeline: reference table
            // build (full wrapper design per width) and no packing memo.
            OptimizeOptions baseline_options = case_options;
            baseline_options.memoize = false;
            std::vector<Seconds> baseline_samples;
            baseline_samples.reserve(static_cast<std::size_t>(repetitions));
            SolutionFingerprint baseline_fingerprint;
            for (int rep = 0; rep < repetitions; ++rep) {
                Stopwatch stopwatch;
                const SocTimeTables reference_tables(*bench_case.soc, TableBuild::reference,
                                                     threads);
                const Solution solution =
                    optimize_multi_site(reference_tables, bench_case.cell, baseline_options);
                baseline_samples.push_back(stopwatch.elapsed());
                if (rep == 0) {
                    baseline_fingerprint = fingerprint_of(solution);
                }
            }
            result.baseline_wall = TimingStats::from_samples(std::move(baseline_samples));
            result.fingerprint_matches_baseline = (baseline_fingerprint == result.fingerprint);
        }
        result.ok = true;
    } catch (const std::exception& e) {
        result.ok = false;
        result.error = e.what();
    }
    return result;
}

} // namespace

bool BenchReport::all_ok() const noexcept
{
    for (const BenchCaseResult& result : results) {
        if (!result.ok) {
            return false;
        }
        if (result.fingerprint_matches_baseline && !*result.fingerprint_matches_baseline) {
            return false;
        }
    }
    return !results.empty();
}

std::vector<BenchCase> canonical_bench_cases(bool quick)
{
    // The ITC'02 product: four SOCs x cells x four variants.
    ScenarioSpec itc;
    itc.name = quick ? "quick" : "full";
    for (const char* soc_name : {"d695", "p22810", "p34392", "p93791"}) {
        itc.socs.push_back(SocSource::by_spec(soc_name));
    }
    itc.cells.push_back(cell_point(512, 7 * mebi));
    if (!quick) {
        itc.cells.push_back(cell_point(256, 32 * mebi));
    }
    itc.variants = bench_variants();

    // Generator-scaled SOCs: 10x up to 1000x the d695 module count,
    // probing how the pipeline scales with modules. The 300x/1000x
    // scenarios come in the two extreme shapes (wide-shallow and
    // narrow-deep, see ScaledShape) so both ends of the packing loop
    // are on the scaling record; the quick suite keeps one large-scale
    // scenario so CI smoke guards the asymptotics too.
    ScenarioSpec scaled;
    scaled.name = itc.name;
    scaled.socs.push_back(SocSource::generated("gen10x", 100, ScaledShape::classic));
    scaled.socs.push_back(SocSource::generated("gen300x-deep", 3000, ScaledShape::narrow_deep));
    if (!quick) {
        scaled.socs.push_back(SocSource::generated("gen100x", 1000, ScaledShape::classic));
        scaled.socs.push_back(
            SocSource::generated("gen300x-wide", 3000, ScaledShape::wide_shallow));
        scaled.socs.push_back(
            SocSource::generated("gen1000x-wide", 10000, ScaledShape::wide_shallow));
        scaled.socs.push_back(
            SocSource::generated("gen1000x-deep", 10000, ScaledShape::narrow_deep));
    }
    scaled.cells.push_back(cell_point(512, 7 * mebi));
    scaled.variants.push_back({"plain", {}});

    return expand_all({itc, scaled});
}

BenchReport run_bench(const std::vector<BenchCase>& cases, const BenchOptions& options)
{
    BenchReport report;
    // Caller-supplied or filtered case lists are "custom"; the canonical
    // overload below overrides this for unfiltered quick/full runs, so
    // trend tooling never mistakes a subset for a full-suite datapoint.
    report.suite = "custom";
    report.repetitions = options.repetitions > 0 ? options.repetitions : (options.quick ? 2 : 5);
    report.compared_baseline = options.compare_baseline;
    report.threads = options.threads;

    Stopwatch total;
    for (const BenchCase& bench_case : cases) {
        if (!options.filter.empty() &&
            bench_case.name.find(options.filter) == std::string::npos) {
            continue;
        }
        report.results.push_back(run_case(bench_case, report.repetitions,
                                          options.compare_baseline, options.threads));
    }
    report.total_seconds = total.elapsed();
    return report;
}

BenchReport run_bench(const BenchOptions& options)
{
    BenchReport report = run_bench(canonical_bench_cases(options.quick), options);
    if (options.filter.empty()) {
        report.suite = options.quick ? "quick" : "full";
    }
    return report;
}

std::vector<BenchCase> certify_bench_cases()
{
    const OptionVariant exact = [] {
        OptionVariant variant;
        variant.label = "exact";
        variant.options.exact = true;
        return variant;
    }();
    // One spec per SOC because the suite is not a product: each SOC is
    // paired with its own tight depths. At the stock 7M vectors one
    // wire fits everything and every gap is trivially zero; near the
    // packing floor the greedy has real decisions to get wrong, which
    // is where a certifier earns its keep.
    const auto single = [&exact](SocSource source, std::vector<CellPoint> cells) {
        ScenarioSpec spec;
        spec.name = "certify";
        spec.socs.push_back(std::move(source));
        spec.cells = std::move(cells);
        spec.variants.push_back(exact);
        return spec;
    };

    std::vector<ScenarioSpec> specs;
    specs.push_back(single(SocSource::by_spec("d695"),
                           {cell_point(512, 30'000, "512x30K"),
                            cell_point(512, 12'000, "512x12K")}));

    // 12-module prefixes of the big ITC'02 chips — the exact solver's
    // module-count ceiling makes the full p-chips intractable.
    struct SubsetSpec {
        const char* soc;
        CycleCount depth;
        const char* cell_name;
    };
    for (const SubsetSpec& subset : {SubsetSpec{"p22810", 180'000, "512x180K"},
                                     SubsetSpec{"p34392", 550'000, "512x550K"},
                                     SubsetSpec{"p93791", 400'000, "512x400K"}}) {
        SocSource source = SocSource::by_spec(subset.soc, std::string(subset.soc) + "x12");
        source.subset_modules = 12;
        specs.push_back(single(std::move(source),
                               {cell_point(512, subset.depth, subset.cell_name)}));
    }

    // Small generated SOCs: same generator the property tests draw from.
    specs.push_back(single(SocSource::random("gen12a", 17, 12),
                           {cell_point(512, 40'000, "512x40K")}));
    specs.push_back(single(SocSource::random("gen12b", 23, 12),
                           {cell_point(512, 58'000, "512x58K")}));
    specs.push_back(single(SocSource::random("gen14", 31, 14),
                           {cell_point(512, 35'000, "512x35K")}));
    return expand_all(specs);
}

BenchReport run_certify(const BenchOptions& options)
{
    BenchReport report = run_bench(certify_bench_cases(), options);
    if (options.filter.empty()) {
        report.suite = "certify";
    }
    return report;
}

} // namespace mst
