// Writer for the .soc benchmark format; inverse of parser.hpp.
#pragma once

#include <iosfwd>
#include <string>

#include "soc/soc.hpp"

namespace mst {

/// Serialize an SOC in the .soc format accepted by parse_soc().
/// parse_soc(write_soc(s)) reproduces s exactly (round-trip property).
void write_soc(std::ostream& out, const Soc& soc);

/// Serialize to a string.
[[nodiscard]] std::string soc_to_string(const Soc& soc);

/// Write to a file; throws Error if the file cannot be created.
void save_soc_file(const std::string& path, const Soc& soc);

} // namespace mst
