#include "soc/d695.hpp"

#include <vector>

namespace mst {

namespace {

/// Split `total` flip-flops into `chains` near-equal scan chains,
/// longest-first, as the published benchmark does.
std::vector<FlipFlopCount> balanced_chains(int chains, FlipFlopCount total)
{
    std::vector<FlipFlopCount> lengths;
    lengths.reserve(static_cast<std::size_t>(chains));
    FlipFlopCount remaining = total;
    for (int c = chains; c > 0; --c) {
        const FlipFlopCount length = (remaining + c - 1) / c;
        lengths.push_back(length);
        remaining -= length;
    }
    return lengths;
}

} // namespace

Soc make_d695()
{
    std::vector<Module> modules;
    // name, inputs, outputs, bidirs, patterns, scan chains
    modules.emplace_back("c6288", 32, 32, 0, 12, std::vector<FlipFlopCount>{});
    modules.emplace_back("c7552", 207, 108, 0, 73, std::vector<FlipFlopCount>{});
    modules.emplace_back("s838", 34, 1, 0, 75, std::vector<FlipFlopCount>{32});
    modules.emplace_back("s9234", 36, 39, 0, 105, std::vector<FlipFlopCount>{54, 53, 52, 52});
    modules.emplace_back("s38584", 38, 304, 0, 110, balanced_chains(32, 1426));
    modules.emplace_back("s13207", 62, 152, 0, 234, balanced_chains(16, 638));
    modules.emplace_back("s15850", 77, 150, 0, 95, balanced_chains(16, 534));
    modules.emplace_back("s5378", 35, 49, 0, 97, std::vector<FlipFlopCount>{46, 45, 44, 44});
    modules.emplace_back("s35932", 35, 320, 0, 12, balanced_chains(32, 1728));
    modules.emplace_back("s38417", 28, 106, 0, 68, balanced_chains(32, 1636));
    return Soc("d695", std::move(modules));
}

} // namespace mst
