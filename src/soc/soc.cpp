#include "soc/soc.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace mst {

Soc::Soc(std::string name, std::vector<Module> modules)
    : name_(std::move(name)), modules_(std::move(modules))
{
    if (name_.empty()) {
        throw ValidationError("SOC must have a non-empty name");
    }
    if (modules_.empty()) {
        throw ValidationError("SOC '" + name_ + "' must contain at least one module");
    }
    std::unordered_set<std::string> seen;
    for (const Module& m : modules_) {
        if (!seen.insert(m.name()).second) {
            throw ValidationError("SOC '" + name_ + "' has duplicate module name '" + m.name() + "'");
        }
    }
}

SocStats Soc::stats() const
{
    SocStats s;
    s.module_count = module_count();
    for (const Module& m : modules_) {
        if (m.scan_chain_count() > 0) {
            ++s.scan_tested_modules;
        }
        s.total_scan_flip_flops += m.total_scan_flip_flops();
        s.total_patterns += m.patterns();
        s.total_test_data_volume_bits += m.test_data_volume_bits();
        s.max_scan_chains = std::max(s.max_scan_chains, m.scan_chain_count());
        s.max_patterns = std::max(s.max_patterns, m.patterns());
    }
    return s;
}

} // namespace mst
