#include "soc/module.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace mst {

Module::Module(std::string name,
               int inputs,
               int outputs,
               int bidirs,
               PatternCount patterns,
               std::vector<FlipFlopCount> scan_chain_lengths)
    : name_(std::move(name)),
      inputs_(inputs),
      outputs_(outputs),
      bidirs_(bidirs),
      patterns_(patterns),
      scan_chain_lengths_(std::move(scan_chain_lengths))
{
    if (name_.empty()) {
        throw ValidationError("module must have a non-empty name");
    }
    if (inputs_ < 0 || outputs_ < 0 || bidirs_ < 0) {
        throw ValidationError("module '" + name_ + "' has a negative terminal count");
    }
    if (patterns_ <= 0) {
        throw ValidationError("module '" + name_ + "' must have at least one test pattern");
    }
    const bool bad_chain = std::any_of(scan_chain_lengths_.begin(), scan_chain_lengths_.end(),
                                       [](FlipFlopCount l) { return l <= 0; });
    if (bad_chain) {
        throw ValidationError("module '" + name_ + "' has a scan chain of non-positive length");
    }
    if (inputs_ + outputs_ + bidirs_ == 0 && scan_chain_lengths_.empty()) {
        throw ValidationError("module '" + name_ + "' has neither terminals nor scan chains");
    }
}

FlipFlopCount Module::total_scan_flip_flops() const noexcept
{
    return std::accumulate(scan_chain_lengths_.begin(), scan_chain_lengths_.end(),
                           FlipFlopCount{0});
}

WireCount Module::max_useful_width() const noexcept
{
    // Each scan chain is indivisible; functional cells can be spread one
    // per wrapper chain. More wires than (chains + max(in-cells, out-cells))
    // leaves wires idle.
    const int cells = std::max(scan_in_cells(), scan_out_cells());
    const WireCount width = scan_chain_count() + cells;
    return std::max(width, 1);
}

std::int64_t Module::test_data_volume_bits() const noexcept
{
    const std::int64_t scan_in_bits = total_scan_flip_flops() + scan_in_cells();
    const std::int64_t scan_out_bits = total_scan_flip_flops() + scan_out_cells();
    return patterns_ * (scan_in_bits + scan_out_bits);
}

} // namespace mst
