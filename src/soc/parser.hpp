// Reader for the .soc benchmark format.
//
// The format is a line-oriented rendition of the ITC'02 SOC Test
// Benchmarks [13], carrying exactly the fields the DATE'05 algorithm
// consumes. Grammar (one statement per line, '#' starts a comment):
//
//   soc <name>
//   module <name> inputs <n> outputs <n> bidirs <n> patterns <n> [scan <l1> <l2> ...]
//   end            # required terminator (guards against truncated files)
//
// Example:
//
//   soc d695
//   module c6288 inputs 32 outputs 32 bidirs 0 patterns 12
//   module s9234 inputs 36 outputs 39 bidirs 0 patterns 105 scan 54 53 52 52
//   end
#pragma once

#include <iosfwd>
#include <string>

#include "soc/soc.hpp"

namespace mst {

/// Parse a .soc description from a stream. `origin` is used in error
/// messages only. Throws ParseError on malformed input and
/// ValidationError on semantically invalid data.
[[nodiscard]] Soc parse_soc(std::istream& in, std::string_view origin = "<stream>");

/// Parse a .soc description held in a string.
[[nodiscard]] Soc parse_soc_string(const std::string& text, std::string_view origin = "<string>");

/// Load a .soc file from disk. Throws ParseError if the file cannot be
/// opened or is malformed.
[[nodiscard]] Soc load_soc_file(const std::string& path);

} // namespace mst
