// The ITC'02 benchmark SOC d695, reconstructed from its widely published
// module table (10 ISCAS-85/89 cores). See DESIGN.md §5 for provenance:
// the original benchmark file is not redistributable in this offline
// environment, so the module data below was re-entered from the numbers
// reprinted in the ITC'02 benchmark paper [13] and follow-up TAM papers.
#pragma once

#include "soc/soc.hpp"

namespace mst {

/// Build the d695 benchmark SOC (10 modules, ~0.6 Mbit stimulus volume).
[[nodiscard]] Soc make_d695();

} // namespace mst
