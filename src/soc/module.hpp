// Module (embedded core) description: the per-module inputs of Problem 1.
//
// A module carries exactly the data the DATE'05 algorithm consumes:
// functional terminal counts, internal scan chain lengths, and the number
// of test patterns. This matches the per-module fields of the ITC'02 SOC
// Test Benchmarks [13] that the paper evaluates on.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace mst {

/// One embedded module (core) of an SOC.
class Module {
public:
    Module() = default;

    /// Construct and validate; throws ValidationError on negative counts,
    /// non-positive pattern count, or non-positive scan chain lengths.
    Module(std::string name,
           int inputs,
           int outputs,
           int bidirs,
           PatternCount patterns,
           std::vector<FlipFlopCount> scan_chain_lengths);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] int inputs() const noexcept { return inputs_; }
    [[nodiscard]] int outputs() const noexcept { return outputs_; }
    [[nodiscard]] int bidirs() const noexcept { return bidirs_; }
    [[nodiscard]] PatternCount patterns() const noexcept { return patterns_; }
    [[nodiscard]] const std::vector<FlipFlopCount>& scan_chain_lengths() const noexcept
    {
        return scan_chain_lengths_;
    }

    /// Number of internal scan chains.
    [[nodiscard]] int scan_chain_count() const noexcept
    {
        return static_cast<int>(scan_chain_lengths_.size());
    }

    /// Total internal scan flip-flops.
    [[nodiscard]] FlipFlopCount total_scan_flip_flops() const noexcept;

    /// Wrapper scan-in cell count: functional inputs + bidirs each get a
    /// wrapper input cell (as in the wrapper model of [11]/[14]).
    [[nodiscard]] int scan_in_cells() const noexcept { return inputs_ + bidirs_; }

    /// Wrapper scan-out cell count: functional outputs + bidirs.
    [[nodiscard]] int scan_out_cells() const noexcept { return outputs_ + bidirs_; }

    /// Elements that can be placed on distinct wrapper chains; beyond this
    /// width, widening the wrapper cannot reduce test time further.
    [[nodiscard]] WireCount max_useful_width() const noexcept;

    /// Approximate test-data volume in bits: patterns * (scan load per
    /// pattern), counting both stimulus and response directions once.
    /// Used for deterministic tie-breaking and for the baseline's
    /// minimum-area accounting.
    [[nodiscard]] std::int64_t test_data_volume_bits() const noexcept;

private:
    std::string name_;
    int inputs_ = 0;
    int outputs_ = 0;
    int bidirs_ = 0;
    PatternCount patterns_ = 0;
    std::vector<FlipFlopCount> scan_chain_lengths_;
};

} // namespace mst
