#include "soc/parser.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace mst {

namespace {

/// Tokenize one logical line, dropping everything after a '#'.
std::vector<std::string> tokenize(const std::string& line)
{
    std::vector<std::string> tokens;
    std::istringstream stream(line.substr(0, line.find('#')));
    std::string token;
    while (stream >> token) {
        tokens.push_back(token);
    }
    return tokens;
}

std::int64_t parse_count(const std::string& token, std::string_view origin, int line_no,
                         const std::string& field)
{
    long long value = 0;
    try {
        std::size_t consumed = 0;
        value = std::stoll(token, &consumed);
        if (consumed != token.size()) {
            throw std::invalid_argument(token);
        }
    } catch (const std::exception&) {
        throw ParseError(origin, line_no, "expected an integer for '" + field + "', got '" + token + "'");
    }
    // Negative terminal counts, chain lengths, and pattern counts are
    // never meaningful; diagnose them here with the line number instead
    // of relying on downstream Module validation to notice.
    if (value < 0) {
        throw ParseError(origin, line_no,
                         "expected a non-negative integer for '" + field + "', got '" + token + "'");
    }
    return value;
}

Module parse_module_line(const std::vector<std::string>& tokens, std::string_view origin, int line_no)
{
    if (tokens.size() < 2) {
        throw ParseError(origin, line_no, "'module' requires a name");
    }
    const std::string& name = tokens[1];
    std::optional<int> inputs;
    std::optional<int> outputs;
    std::optional<int> bidirs;
    std::optional<PatternCount> patterns;
    std::vector<FlipFlopCount> chains;

    std::size_t i = 2;
    while (i < tokens.size()) {
        const std::string& key = tokens[i];
        if (key == "scan") {
            for (++i; i < tokens.size(); ++i) {
                chains.push_back(parse_count(tokens[i], origin, line_no, "scan chain length"));
            }
            break;
        }
        if (i + 1 >= tokens.size()) {
            throw ParseError(origin, line_no, "field '" + key + "' is missing its value");
        }
        const std::int64_t value = parse_count(tokens[i + 1], origin, line_no, key);
        if (key == "inputs") {
            inputs = static_cast<int>(value);
        } else if (key == "outputs") {
            outputs = static_cast<int>(value);
        } else if (key == "bidirs") {
            bidirs = static_cast<int>(value);
        } else if (key == "patterns") {
            patterns = value;
        } else {
            throw ParseError(origin, line_no, "unknown module field '" + key + "'");
        }
        i += 2;
    }

    if (!inputs || !outputs || !patterns) {
        throw ParseError(origin, line_no,
                         "module '" + name + "' must define inputs, outputs, and patterns");
    }
    try {
        return Module(name, *inputs, *outputs, bidirs.value_or(0), *patterns, std::move(chains));
    } catch (const ValidationError& e) {
        throw ParseError(origin, line_no, e.what());
    }
}

} // namespace

Soc parse_soc(std::istream& in, std::string_view origin)
{
    std::string soc_name;
    std::vector<Module> modules;
    bool ended = false;

    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::vector<std::string> tokens = tokenize(line);
        if (tokens.empty()) {
            continue;
        }
        if (ended) {
            throw ParseError(origin, line_no, "content after 'end'");
        }
        const std::string& keyword = tokens[0];
        if (keyword == "soc") {
            if (!soc_name.empty()) {
                throw ParseError(origin, line_no, "duplicate 'soc' statement");
            }
            if (tokens.size() != 2) {
                throw ParseError(origin, line_no, "'soc' requires exactly one name");
            }
            soc_name = tokens[1];
        } else if (keyword == "module") {
            if (soc_name.empty()) {
                throw ParseError(origin, line_no, "'module' before 'soc' statement");
            }
            modules.push_back(parse_module_line(tokens, origin, line_no));
        } else if (keyword == "end") {
            ended = true;
        } else {
            throw ParseError(origin, line_no, "unknown statement '" + keyword + "'");
        }
    }

    if (soc_name.empty()) {
        throw ParseError(origin, line_no, "missing 'soc' statement");
    }
    if (!ended) {
        // A file that just stops is indistinguishable from one cut off
        // mid-transfer; require the 'end' terminator so truncation is a
        // diagnosed error instead of a silently shorter SOC.
        throw ParseError(origin, line_no, "missing 'end' statement (truncated file?)");
    }
    try {
        return Soc(soc_name, std::move(modules));
    } catch (const ValidationError& e) {
        throw ParseError(origin, line_no, e.what());
    }
}

Soc parse_soc_string(const std::string& text, std::string_view origin)
{
    std::istringstream stream(text);
    return parse_soc(stream, origin);
}

Soc load_soc_file(const std::string& path)
{
    std::ifstream file(path);
    if (!file) {
        throw ParseError(path, 0, "cannot open file");
    }
    return parse_soc(file, path);
}

} // namespace mst
