#include "soc/profiles.hpp"

#include "common/error.hpp"
#include "soc/d695.hpp"
#include "soc/parser.hpp"

namespace mst {

GeneratorConfig p22810_profile()
{
    GeneratorConfig config;
    config.name = "p22810";
    config.seed = 0x22810;
    config.logic_modules = 28;
    config.logic_volume_bits = 6'500'000;
    config.volume_sigma = 1.1;
    config.min_chains = 1;
    config.max_chains = 32;
    config.pattern_exponent = 0.42;
    config.min_io = 8;
    config.max_io = 200;
    return config;
}

GeneratorConfig p34392_profile()
{
    GeneratorConfig config;
    config.name = "p34392";
    config.seed = 0x34392;
    config.logic_modules = 19;
    config.logic_volume_bits = 14'500'000;
    config.volume_sigma = 1.0;
    // The real p34392 is dominated by one large module whose minimal
    // width sets the channel floor at small memory depths.
    config.dominant_fraction = 0.34;
    config.min_chains = 2;
    config.max_chains = 32;
    config.pattern_exponent = 0.42;
    config.min_io = 8;
    config.max_io = 160;
    return config;
}

GeneratorConfig p93791_profile()
{
    GeneratorConfig config;
    config.name = "p93791";
    config.seed = 0x93791;
    config.logic_modules = 32;
    config.logic_volume_bits = 26'500'000;
    config.volume_sigma = 1.2;
    config.min_chains = 2;
    config.max_chains = 46;
    config.pattern_exponent = 0.40;
    config.min_io = 8;
    config.max_io = 220;
    return config;
}

GeneratorConfig pnx8550_profile()
{
    GeneratorConfig config;
    config.name = "pnx8550";
    config.seed = 0x8550;
    config.logic_modules = 62;
    config.logic_volume_bits = 226'000'000;
    config.volume_sigma = 1.0;
    // Scan stitching on the real chip was chosen to match the TAM plan,
    // so every logic module parallelizes well.
    config.min_chains = 40;
    config.max_chains = 64;
    config.pattern_exponent = 0.45;
    config.min_io = 16;
    config.max_io = 256;
    config.memory_modules = 212;
    config.memory_volume_bits = 29'000'000;
    config.memory_min_io = 16;
    config.memory_max_io = 72;
    return config;
}

Soc make_benchmark_soc(const std::string& name)
{
    if (name == "d695") {
        return make_d695();
    }
    if (name == "p22810") {
        return generate_soc(p22810_profile());
    }
    if (name == "p34392") {
        return generate_soc(p34392_profile());
    }
    if (name == "p93791") {
        return generate_soc(p93791_profile());
    }
    if (name == "pnx8550") {
        return generate_soc(pnx8550_profile());
    }
    throw ValidationError("unknown benchmark SOC '" + name + "'");
}

std::vector<std::string> benchmark_soc_names()
{
    return {"d695", "p22810", "p34392", "p93791", "pnx8550"};
}

Soc load_soc_spec(const std::string& spec)
{
    for (const std::string& name : benchmark_soc_names()) {
        if (spec == name) {
            return make_benchmark_soc(spec);
        }
    }
    return load_soc_file(spec);
}

} // namespace mst
