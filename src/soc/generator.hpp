// Synthetic SOC generator.
//
// Produces deterministic, statistically calibrated SOCs for the
// benchmarks the paper evaluates but whose data files are not available
// offline (p22810 / p34392 / p93791) and for the proprietary Philips
// PNX8550 (see DESIGN.md §5). Also provides random SOCs for property
// tests and scaling benchmarks.
#pragma once

#include <cstdint>
#include <string>

#include "soc/soc.hpp"

namespace mst {

/// Parameters of the synthetic SOC generator. Volumes are "stimulus
/// volumes" in bits: sum over modules of patterns * (scan flip-flops +
/// input cells), which is what fills ATE vector memory.
struct GeneratorConfig {
    std::string name = "synthetic";
    std::uint64_t seed = 1;

    /// Scan-tested logic modules.
    int logic_modules = 10;
    std::int64_t logic_volume_bits = 1'000'000;
    double volume_sigma = 1.0;        ///< lognormal spread of module volumes
    double dominant_fraction = 0.0;   ///< share of logic volume forced into module 0
    int min_chains = 1;
    int max_chains = 32;
    double pattern_exponent = 0.45;   ///< patterns ~ volume^exponent (jittered)
    int min_io = 8;                   ///< functional inputs and outputs, each
    int max_io = 256;

    /// Non-scan "memory interface" modules (PNX8550-style): tested through
    /// a narrow functional interface with a long pattern sequence.
    int memory_modules = 0;
    std::int64_t memory_volume_bits = 0;
    int memory_min_io = 16;
    int memory_max_io = 72;
};

/// Generate an SOC from a configuration. Deterministic in the seed.
/// Throws ValidationError on nonsensical configurations (no modules,
/// non-positive volume for a non-zero module count, bad ranges).
[[nodiscard]] Soc generate_soc(const GeneratorConfig& config);

/// Shape presets for the generator-scaled benchmark SOCs (gen10x …
/// gen1000x): the two extreme shapes stress opposite ends of the greedy
/// packing loop, which is why the scaling suite carries both.
enum class ScaledShape {
    /// gen10x/gen100x vintage: mixed chain counts, moderate io.
    classic,
    /// Many splittable chains and wide io: wide wrappers, so groups stay
    /// shallow and the optimizer juggles many narrow-ish groups.
    wide_shallow,
    /// Few chains and narrow io: narrow wrappers, so many modules share
    /// each group and the per-group member lists grow long.
    narrow_deep,
};

/// Configuration of one scaled benchmark SOC: `modules` logic modules at
/// ~20 kbit of stimulus volume each (the gen100x calibration), shaped by
/// `shape`. Deterministic: the bench suite and the golden-fingerprint
/// tests build byte-identical SOCs from it.
[[nodiscard]] GeneratorConfig scaled_benchmark_config(const std::string& name, int modules,
                                                      ScaledShape shape);

/// Convenience: a small random SOC for property tests. Deterministic in
/// the seed; module count in [1, 40], moderate volumes.
[[nodiscard]] Soc random_soc(std::uint64_t seed, int module_count);

} // namespace mst
