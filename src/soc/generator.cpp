#include "soc/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mst {

namespace {

void validate_config(const GeneratorConfig& config)
{
    if (config.name.empty()) {
        throw ValidationError("generator config must have a name");
    }
    if (config.logic_modules < 0 || config.memory_modules < 0) {
        throw ValidationError("generator module counts must be non-negative");
    }
    if (config.logic_modules + config.memory_modules == 0) {
        throw ValidationError("generator config produces an empty SOC");
    }
    if (config.logic_modules > 0 && config.logic_volume_bits <= 0) {
        throw ValidationError("logic volume must be positive when logic modules are requested");
    }
    if (config.memory_modules > 0 && config.memory_volume_bits <= 0) {
        throw ValidationError("memory volume must be positive when memory modules are requested");
    }
    if (config.min_chains < 1 || config.max_chains < config.min_chains) {
        throw ValidationError("bad scan chain count range");
    }
    if (config.min_io < 1 || config.max_io < config.min_io) {
        throw ValidationError("bad io range");
    }
    if (config.dominant_fraction < 0.0 || config.dominant_fraction >= 1.0) {
        throw ValidationError("dominant_fraction must be in [0, 1)");
    }
    if (config.pattern_exponent <= 0.0 || config.pattern_exponent >= 1.0) {
        throw ValidationError("pattern_exponent must be in (0, 1)");
    }
}

/// Split `total` into `parts` shares proportional to lognormal weights;
/// optionally forcing share 0 to `dominant` of the total.
std::vector<std::int64_t> split_volume(Rng& rng, std::int64_t total, int parts,
                                       double sigma, double dominant)
{
    std::vector<double> weights(static_cast<std::size_t>(parts));
    for (double& w : weights) {
        w = rng.log_normal(0.0, sigma);
    }
    const double weight_sum = std::accumulate(weights.begin(), weights.end(), 0.0);
    std::vector<std::int64_t> shares(weights.size());
    std::int64_t body = total;
    std::size_t first = 0;
    if (dominant > 0.0 && parts > 1) {
        shares[0] = static_cast<std::int64_t>(dominant * static_cast<double>(total));
        body -= shares[0];
        first = 1;
    }
    const double body_weights = weight_sum - (first == 1 ? weights[0] : 0.0);
    std::int64_t assigned = 0;
    for (std::size_t i = first; i < weights.size(); ++i) {
        const auto share = static_cast<std::int64_t>(weights[i] / body_weights * static_cast<double>(body));
        shares[i] = std::max<std::int64_t>(share, 64); // keep every module testable
        assigned += shares[i];
    }
    // Distribute rounding remainder onto the largest body share.
    if (assigned < body) {
        auto largest = std::max_element(shares.begin() + static_cast<std::ptrdiff_t>(first), shares.end());
        *largest += body - assigned;
    }
    return shares;
}

Module make_logic_module(Rng& rng, const GeneratorConfig& config, int index,
                         std::int64_t volume_bits)
{
    // patterns ~ volume^exponent with +/-30% jitter; at least 8.
    const double raw_patterns = std::pow(static_cast<double>(volume_bits), config.pattern_exponent);
    const double jitter = rng.uniform_real(0.7, 1.3);
    const auto patterns = std::max<PatternCount>(8, static_cast<PatternCount>(raw_patterns * jitter));

    const int inputs = static_cast<int>(rng.uniform_int(config.min_io, config.max_io));
    const int outputs = static_cast<int>(rng.uniform_int(config.min_io, config.max_io));
    const int bidirs = rng.chance(0.25) ? static_cast<int>(rng.uniform_int(0, config.min_io)) : 0;

    // Flip-flops so that patterns * (ffs + input cells) ~= volume.
    const std::int64_t load_per_pattern = std::max<std::int64_t>(1, volume_bits / patterns);
    const FlipFlopCount total_ffs = std::max<FlipFlopCount>(1, load_per_pattern - (inputs + bidirs));

    int chains = static_cast<int>(rng.uniform_int(config.min_chains, config.max_chains));
    chains = static_cast<int>(std::min<FlipFlopCount>(chains, total_ffs));
    std::vector<FlipFlopCount> lengths;
    lengths.reserve(static_cast<std::size_t>(chains));
    FlipFlopCount remaining = total_ffs;
    for (int c = chains; c > 0; --c) {
        FlipFlopCount length = (remaining + c - 1) / c;
        if (c > 1) {
            // +/-20% imbalance, as real scan stitching is rarely perfect.
            const auto wiggle = static_cast<FlipFlopCount>(static_cast<double>(length) * rng.uniform_real(-0.2, 0.2));
            length = std::clamp<FlipFlopCount>(length + wiggle, 1, remaining - (c - 1));
        } else {
            length = remaining;
        }
        lengths.push_back(length);
        remaining -= length;
    }

    return Module("logic" + std::to_string(index), inputs, outputs, bidirs, patterns,
                  std::move(lengths));
}

Module make_memory_module(Rng& rng, const GeneratorConfig& config, int index,
                          std::int64_t volume_bits)
{
    // A memory tested through its functional interface: no scan chains,
    // pattern count = volume / interface width.
    const int io = static_cast<int>(rng.uniform_int(config.memory_min_io, config.memory_max_io));
    const int inputs = io;
    const int outputs = std::max(1, io / 2);
    const auto patterns = std::max<PatternCount>(4, volume_bits / inputs);
    return Module("mem" + std::to_string(index), inputs, outputs, 0, patterns,
                  std::vector<FlipFlopCount>{});
}

} // namespace

Soc generate_soc(const GeneratorConfig& config)
{
    validate_config(config);
    Rng rng(config.seed);
    std::vector<Module> modules;
    modules.reserve(static_cast<std::size_t>(config.logic_modules + config.memory_modules));

    if (config.logic_modules > 0) {
        const std::vector<std::int64_t> volumes =
            split_volume(rng, config.logic_volume_bits, config.logic_modules,
                         config.volume_sigma, config.dominant_fraction);
        for (int i = 0; i < config.logic_modules; ++i) {
            modules.push_back(make_logic_module(rng, config, i, volumes[static_cast<std::size_t>(i)]));
        }
    }
    if (config.memory_modules > 0) {
        const std::vector<std::int64_t> volumes =
            split_volume(rng, config.memory_volume_bits, config.memory_modules,
                         config.volume_sigma * 0.5, 0.0);
        for (int i = 0; i < config.memory_modules; ++i) {
            modules.push_back(make_memory_module(rng, config, i, volumes[static_cast<std::size_t>(i)]));
        }
    }
    return Soc(config.name, std::move(modules));
}

GeneratorConfig scaled_benchmark_config(const std::string& name, int modules,
                                        ScaledShape shape)
{
    if (modules < 1) {
        throw ValidationError("scaled benchmark config needs at least one module");
    }
    GeneratorConfig config;
    config.name = name;
    config.seed = 2005; // DATE'05 vintage; fixed so runs are comparable
    config.logic_modules = modules;
    // ~20 kbit of stimulus volume per module: the gen100x calibration
    // (20 Mbit over 1000 modules), kept constant per module so scaling
    // the module count scales the packing problem, not the module sizes.
    config.logic_volume_bits = 20'000LL * modules;
    switch (shape) {
    case ScaledShape::classic:
        config.logic_volume_bits = 20'000'000;
        config.max_chains = 24;
        break;
    case ScaledShape::wide_shallow:
        config.min_chains = 16;
        config.max_chains = 48;
        config.min_io = 32;
        config.max_io = 256;
        break;
    case ScaledShape::narrow_deep:
        config.min_chains = 1;
        config.max_chains = 4;
        config.min_io = 4;
        config.max_io = 32;
        break;
    }
    return config;
}

Soc random_soc(std::uint64_t seed, int module_count)
{
    if (module_count < 1) {
        throw ValidationError("random_soc needs at least one module");
    }
    GeneratorConfig config;
    config.name = "random" + std::to_string(seed);
    config.seed = seed;
    config.logic_modules = module_count;
    config.logic_volume_bits = 40'000LL * module_count;
    config.volume_sigma = 0.8;
    config.min_chains = 1;
    config.max_chains = 12;
    config.min_io = 4;
    config.max_io = 64;
    return generate_soc(config);
}

} // namespace mst
