// SOC: a named collection of modules plus chip-level statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "soc/module.hpp"

namespace mst {

/// Aggregate statistics of an SOC, used for calibration, reporting, and
/// the baseline's area lower bound.
struct SocStats {
    int module_count = 0;
    int scan_tested_modules = 0; ///< modules with at least one scan chain
    std::int64_t total_scan_flip_flops = 0;
    std::int64_t total_patterns = 0;
    std::int64_t total_test_data_volume_bits = 0;
    int max_scan_chains = 0;
    PatternCount max_patterns = 0;
};

/// A system chip under test: the paper's set of modules M.
/// A "flattened" SOC (Problem 2) is simply an Soc with one module.
class Soc {
public:
    Soc() = default;

    /// Construct and validate; throws ValidationError if the name is empty,
    /// the module list is empty, or module names collide.
    Soc(std::string name, std::vector<Module> modules);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<Module>& modules() const noexcept { return modules_; }
    [[nodiscard]] int module_count() const noexcept { return static_cast<int>(modules_.size()); }
    [[nodiscard]] const Module& module(int index) const { return modules_.at(static_cast<std::size_t>(index)); }

    /// True for Problem 2's degenerate single-module ("flattened") case.
    [[nodiscard]] bool is_flat() const noexcept { return modules_.size() == 1; }

    [[nodiscard]] SocStats stats() const;

private:
    std::string name_;
    std::vector<Module> modules_;
};

} // namespace mst
