#include "soc/writer.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace mst {

void write_soc(std::ostream& out, const Soc& soc)
{
    out << "# " << soc.name() << ": " << soc.module_count() << " modules\n";
    out << "soc " << soc.name() << '\n';
    for (const Module& m : soc.modules()) {
        out << "module " << m.name()
            << " inputs " << m.inputs()
            << " outputs " << m.outputs()
            << " bidirs " << m.bidirs()
            << " patterns " << m.patterns();
        if (m.scan_chain_count() > 0) {
            out << " scan";
            for (const FlipFlopCount length : m.scan_chain_lengths()) {
                out << ' ' << length;
            }
        }
        out << '\n';
    }
    out << "end\n";
}

std::string soc_to_string(const Soc& soc)
{
    std::ostringstream stream;
    write_soc(stream, soc);
    return stream.str();
}

void save_soc_file(const std::string& path, const Soc& soc)
{
    std::ofstream file(path);
    if (!file) {
        throw Error("cannot create file '" + path + "'");
    }
    write_soc(file, soc);
    if (!file.good()) {
        throw Error("error while writing '" + path + "'");
    }
}

} // namespace mst
