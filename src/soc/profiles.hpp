// Calibrated generator profiles for the SOCs of the paper's evaluation.
//
// The ITC'02 p-SOCs and the Philips PNX8550 are reconstructed
// synthetically (DESIGN.md §5): module counts and total stimulus volumes
// are matched to published aggregate statistics so that the channel-count
// staircases of Table 1 and the PNX8550 operating point of Figures 5-7
// have the right shape and magnitude.
#pragma once

#include <string>
#include <vector>

#include "soc/generator.hpp"
#include "soc/soc.hpp"

namespace mst {

/// Generator configuration for ITC'02 SOC p22810 (~6.5 Mbit stimulus).
[[nodiscard]] GeneratorConfig p22810_profile();

/// Generator configuration for ITC'02 SOC p34392 (~14.5 Mbit stimulus,
/// one dominant module, as in the real benchmark).
[[nodiscard]] GeneratorConfig p34392_profile();

/// Generator configuration for ITC'02 SOC p93791 (~26.5 Mbit stimulus).
[[nodiscard]] GeneratorConfig p93791_profile();

/// Generator configuration for the Philips PNX8550 "monster chip" [1]:
/// 62 scan-tested logic modules + 212 memory-interface modules,
/// calibrated to t_m ~= 1.4 s at 36 TAM wires and a 5 MHz test clock.
[[nodiscard]] GeneratorConfig pnx8550_profile();

/// Build a benchmark SOC by name: "d695" (embedded real data), "p22810",
/// "p34392", "p93791", "pnx8550" (synthetic profiles).
/// Throws ValidationError for unknown names.
[[nodiscard]] Soc make_benchmark_soc(const std::string& name);

/// Names accepted by make_benchmark_soc, in canonical order.
[[nodiscard]] std::vector<std::string> benchmark_soc_names();

/// Resolve a user-supplied SOC spec: a benchmark name from
/// benchmark_soc_names(), otherwise a .soc file path. Shared by the CLI
/// front end and the request service so both accept the same specs.
/// Throws ParseError when the path cannot be opened or parsed.
[[nodiscard]] Soc load_soc_spec(const std::string& spec);

} // namespace mst
