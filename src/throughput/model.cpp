#include "throughput/model.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace mst {

void YieldModel::validate() const
{
    if (contact_yield_per_terminal < 0.0 || contact_yield_per_terminal > 1.0) {
        throw ValidationError("contact yield must be a probability");
    }
    if (manufacturing_yield < 0.0 || manufacturing_yield > 1.0) {
        throw ValidationError("manufacturing yield must be a probability");
    }
}

Probability contact_pass_probability(Probability contact_yield, int terminals, SiteCount sites) noexcept
{
    // eq 4.2: P_c(n) = 1 - (1 - p_c^I)^n
    const Probability single_passes = pow_prob(contact_yield, terminals);
    return at_least_one_of(single_passes, sites);
}

Probability manufacturing_pass_probability(Probability manufacturing_yield, SiteCount sites) noexcept
{
    // eq 4.3: P_m(n) = 1 - (1 - p_m)^n
    return at_least_one_of(manufacturing_yield, sites);
}

ThroughputResult evaluate_throughput(const ThroughputInputs& inputs,
                                     const ProbeStation& prober,
                                     const YieldModel& yields,
                                     AbortOnFail abort)
{
    prober.validate();
    yields.validate();
    if (inputs.sites < 1) {
        throw ValidationError("throughput needs at least one site");
    }
    if (inputs.manufacturing_test_time < 0.0) {
        throw ValidationError("manufacturing test time cannot be negative");
    }
    if (inputs.contacted_terminals_per_soc < 0) {
        throw ValidationError("contacted terminal count cannot be negative");
    }

    ThroughputResult result;
    if (abort == AbortOnFail::on) {
        // eq 4.4: failing SOCs are assumed to take zero time, so the
        // contact test runs in full only if at least one site passes it,
        // and likewise for the manufacturing test. This is the paper's
        // deliberately optimistic lower bound.
        const Probability pass_contact = contact_pass_probability(
            yields.contact_yield_per_terminal, inputs.contacted_terminals_per_soc, inputs.sites);
        const Probability pass_manufacturing =
            manufacturing_pass_probability(yields.manufacturing_yield, inputs.sites);
        result.contact_test_time = prober.contact_test_time * pass_contact;
        result.manufacturing_time = inputs.manufacturing_test_time * pass_manufacturing;
    } else {
        // eq 4.1: t_t = t_c + t_m.
        result.contact_test_time = prober.contact_test_time;
        result.manufacturing_time = inputs.manufacturing_test_time;
    }
    result.total_test_time = result.contact_test_time + result.manufacturing_time;
    result.touchdown_time = prober.index_time + result.total_test_time;

    // eq 4.5: D_th = 3600 * n / (t_i + t_t).
    result.devices_per_hour = 3600.0 * inputs.sites / result.touchdown_time;

    // eq 4.6: contact failures are re-tested once, so a fraction
    // r = 1 - p_c^I of the hourly slots is spent on repeats:
    // D^u_th = D_th / (1 + r).
    const Probability single_passes_contact =
        pow_prob(yields.contact_yield_per_terminal, inputs.contacted_terminals_per_soc);
    result.retest_fraction = clamp_probability(1.0 - single_passes_contact);
    result.unique_devices_per_hour = result.devices_per_hour / (1.0 + result.retest_fraction);
    return result;
}

DevicesPerHour figure_of_merit(const ThroughputResult& result, RetestPolicy policy) noexcept
{
    return (policy == RetestPolicy::retest_contact_failures) ? result.unique_devices_per_hour
                                                             : result.devices_per_hour;
}

} // namespace mst
