// Multi-site test throughput model: Section 4 of the paper,
// Equations 4.1 - 4.6.
//
// Given the per-touchdown times (index, contact test, manufacturing
// test), the yields, and the number of sites n, the model computes the
// devices-per-hour throughput D_th and its re-test-aware variant D^u_th,
// with or without the abort-on-fail strategy.
#pragma once

#include "ate/ate.hpp"
#include "common/types.hpp"

namespace mst {

/// Whether ATE stimuli are broadcast to all sites (Section 3).
enum class BroadcastMode {
    none,    ///< every site has private stimulus + response channels
    stimuli, ///< stimulus channels shared by all sites, responses private
};

/// Whether the test aborts at the first failing vector (Section 4).
enum class AbortOnFail {
    off,
    on,
};

/// Whether contact-test failures are re-tested once (Section 4, eq 4.6).
enum class RetestPolicy {
    none,
    retest_contact_failures,
};

/// Yield and contact parameters of the throughput model.
struct YieldModel {
    Probability contact_yield_per_terminal = 1.0; ///< p_c
    Probability manufacturing_yield = 1.0;        ///< p_m

    /// Throws ValidationError if a probability is outside [0, 1].
    void validate() const;
};

/// Inputs of one throughput evaluation.
struct ThroughputInputs {
    SiteCount sites = 1;                  ///< n
    Seconds manufacturing_test_time = 0;  ///< t_m for one (multi-site) touchdown
    int contacted_terminals_per_soc = 0;  ///< I of eq 4.2 (E-RPCT pads probed)
};

/// Per-touchdown and per-hour results.
struct ThroughputResult {
    Seconds contact_test_time = 0;       ///< t_c actually accounted
    Seconds manufacturing_time = 0;      ///< t_m actually accounted (may shrink under abort-on-fail)
    Seconds total_test_time = 0;         ///< t_t = contact + manufacturing
    Seconds touchdown_time = 0;          ///< t_i + t_t
    DevicesPerHour devices_per_hour = 0; ///< D_th (eq 4.5)
    DevicesPerHour unique_devices_per_hour = 0; ///< D^u_th (eq 4.6)
    Probability retest_fraction = 0;     ///< 1 - p_c^I
};

/// Equation 4.2: probability that at least one of n SOCs with I contacted
/// terminals passes the contact test.
[[nodiscard]] Probability contact_pass_probability(Probability contact_yield,
                                                   int terminals,
                                                   SiteCount sites) noexcept;

/// Equation 4.3: probability that at least one of n SOCs passes the
/// manufacturing test.
[[nodiscard]] Probability manufacturing_pass_probability(Probability manufacturing_yield,
                                                         SiteCount sites) noexcept;

/// Evaluate the model. `abort` selects between the plain eq 4.1 time and
/// the abort-on-fail lower bound of eq 4.4; the result always carries
/// both D_th (eq 4.5) and D^u_th (eq 4.6). Throws ValidationError on
/// invalid inputs.
[[nodiscard]] ThroughputResult evaluate_throughput(const ThroughputInputs& inputs,
                                                   const ProbeStation& prober,
                                                   const YieldModel& yields,
                                                   AbortOnFail abort = AbortOnFail::off);

/// The figure of merit selected by a re-test policy: D_th when re-testing
/// is off, D^u_th when contact failures are re-tested.
[[nodiscard]] DevicesPerHour figure_of_merit(const ThroughputResult& result,
                                             RetestPolicy policy) noexcept;

} // namespace mst
