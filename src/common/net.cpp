#include "common/net.hpp"

#include <cerrno>
#include <cstring>
#include <system_error>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/faultpoint.hpp"

namespace mst::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what)
{
    throw Error(what + ": " + std::strerror(errno));
}

/// getaddrinfo for one numeric-or-named host. The caller frees with
/// freeaddrinfo.
addrinfo* resolve(const Endpoint& endpoint, bool passive)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = passive ? AI_PASSIVE : 0;
    addrinfo* result = nullptr;
    const std::string port = std::to_string(endpoint.port);
    const int rc = ::getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints, &result);
    if (rc != 0) {
        throw Error("cannot resolve '" + endpoint.host + "': " + ::gai_strerror(rc));
    }
    return result;
}

Endpoint endpoint_of(const sockaddr_storage& storage)
{
    Endpoint endpoint;
    char host[INET6_ADDRSTRLEN] = {};
    if (storage.ss_family == AF_INET) {
        const auto* v4 = reinterpret_cast<const sockaddr_in*>(&storage);
        ::inet_ntop(AF_INET, &v4->sin_addr, host, sizeof host);
        endpoint.port = ntohs(v4->sin_port);
    } else if (storage.ss_family == AF_INET6) {
        const auto* v6 = reinterpret_cast<const sockaddr_in6*>(&storage);
        ::inet_ntop(AF_INET6, &v6->sin6_addr, host, sizeof host);
        endpoint.port = ntohs(v6->sin6_port);
    }
    endpoint.host = host;
    return endpoint;
}

bool poll_one(int fd, short events, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0) {
            return true;
        }
        if (rc == 0) {
            return false; // timeout
        }
        if (errno != EINTR) {
            return true; // let the subsequent syscall surface the error
        }
    }
}

} // namespace

std::string Endpoint::to_string() const
{
    if (host.find(':') != std::string::npos) {
        return "[" + host + "]:" + std::to_string(port);
    }
    return host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& text)
{
    Endpoint endpoint;
    std::string port_text;
    if (!text.empty() && text.front() == '[') {
        const std::size_t close = text.find(']');
        if (close == std::string::npos || close + 1 >= text.size() || text[close + 1] != ':') {
            throw ValidationError("malformed listen address '" + text +
                                  "' (expected [host]:port)");
        }
        endpoint.host = text.substr(1, close - 1);
        port_text = text.substr(close + 2);
    } else {
        const std::size_t colon = text.rfind(':');
        if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size() ||
            text.find(':') != colon) {
            throw ValidationError("malformed listen address '" + text +
                                  "' (expected host:port)");
        }
        endpoint.host = text.substr(0, colon);
        port_text = text.substr(colon + 1);
    }
    long port = -1;
    std::size_t consumed = 0;
    try {
        port = std::stol(port_text, &consumed);
    } catch (const std::exception&) {
        consumed = 0;
    }
    if (consumed != port_text.size() || port_text.empty() || port < 0 || port > 65535) {
        throw ValidationError("listen address '" + text + "' has an invalid port '" +
                              port_text + "'");
    }
    endpoint.port = static_cast<std::uint16_t>(port);
    return endpoint;
}

Socket::~Socket()
{
    close();
}

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

bool Socket::wait_readable(int timeout_ms) const
{
    return poll_one(fd_, POLLIN, timeout_ms);
}

long Socket::read_some(char* data, std::size_t size) const
{
    for (;;) {
        const ssize_t n = ::recv(fd_, data, size, 0);
        if (n >= 0) {
            return static_cast<long>(n);
        }
        if (errno != EINTR) {
            return -1;
        }
    }
}

bool Socket::write_all(const char* data, std::size_t size) const
{
    std::size_t written = 0;
    while (written < size) {
        // MSG_NOSIGNAL: a vanished peer is a false return, not SIGPIPE.
        const ssize_t n = ::send(fd_, data + written, size - written, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false; // peer gone, or SO_SNDTIMEO expired (EAGAIN)
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

void Socket::set_write_timeout(int timeout_ms) const
{
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

void Socket::shutdown_write() const
{
    (void)::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_both() const
{
    (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept
{
    if (fd_ >= 0) {
        (void)::close(fd_);
        fd_ = -1;
    }
}

Listener::~Listener()
{
    close();
}

Listener::Listener(Listener&& other) noexcept : fd_(other.fd_), shared_(other.shared_)
{
    other.fd_ = -1;
    other.shared_ = false;
}

Listener& Listener::operator=(Listener&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        shared_ = other.shared_;
        other.fd_ = -1;
        other.shared_ = false;
    }
    return *this;
}

Listener Listener::bind(const Endpoint& endpoint, int backlog)
{
    addrinfo* addresses = resolve(endpoint, /*passive=*/true);
    int fd = -1;
    std::string error = "cannot bind " + endpoint.to_string();
    for (const addrinfo* address = addresses; address != nullptr; address = address->ai_next) {
        fd = ::socket(address->ai_family, address->ai_socktype | SOCK_CLOEXEC,
                      address->ai_protocol);
        if (fd < 0) {
            continue;
        }
        const int enable = 1;
        (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
        if (::bind(fd, address->ai_addr, address->ai_addrlen) == 0 &&
            ::listen(fd, backlog) == 0) {
            break;
        }
        error += std::string(": ") + std::strerror(errno);
        (void)::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(addresses);
    if (fd < 0) {
        throw Error(error);
    }
    return Listener(fd);
}

Listener Listener::adopt(int fd)
{
    if (fd < 0) {
        throw ValidationError("cannot adopt a negative listener fd");
    }
    Listener listener(fd);
    listener.shared_ = true;
    return listener;
}

int Listener::dup_fd() const
{
    if (fd_ < 0) {
        throw Error("cannot dup an invalid listener");
    }
    const int copy = ::fcntl(fd_, F_DUPFD_CLOEXEC, 0);
    if (copy < 0) {
        fail_errno("dup listener fd");
    }
    return copy;
}

Endpoint Listener::local_endpoint() const
{
    sockaddr_storage storage{};
    socklen_t length = sizeof storage;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&storage), &length) != 0) {
        fail_errno("getsockname");
    }
    return endpoint_of(storage);
}

AcceptResult Listener::accept(int timeout_ms) const
{
    AcceptResult result;
    if (fd_ < 0) {
        result.status = AcceptResult::Status::closed;
        return result;
    }
    if (!poll_one(fd_, POLLIN, timeout_ms)) {
        return result; // timeout
    }
    // Probe only once a connection is actually ready: the fault fires on
    // the Nth arriving connection, not the Nth poll timeout, so injected
    // plans are independent of accept-loop timing.
    if (const std::errc fault = MST_FAULTPOINT("net.accept"); fault != std::errc{}) {
        result.status = AcceptResult::Status::exhausted;
        result.error = static_cast<int>(fault);
        return result;
    }
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
        switch (errno) {
        case EINTR:
        case ECONNABORTED:
#ifdef EPROTO
        case EPROTO:
#endif
        case EAGAIN:
#if EWOULDBLOCK != EAGAIN
        case EWOULDBLOCK:
#endif
            result.status = AcceptResult::Status::transient;
            break;
        case EBADF:
        case EINVAL:
            result.status = AcceptResult::Status::closed;
            break;
        default:
            // EMFILE/ENFILE/ENOBUFS/ENOMEM and anything unexpected:
            // resource exhaustion semantics (shed + back off) never
            // spin hot and never kill the server.
            result.status = AcceptResult::Status::exhausted;
            break;
        }
        result.error = errno;
        return result;
    }
    int enable = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
    result.status = AcceptResult::Status::accepted;
    result.socket = Socket(fd);
    return result;
}

void Listener::close() noexcept
{
    if (fd_ >= 0) {
        // shutdown() wakes a thread blocked in poll/accept on this fd —
        // but only for an exclusively owned description: an adopted
        // (fork-shared) listener must not shut down accepts pool-wide,
        // so it relies on the accept loop's poll timeout instead.
        if (!shared_) {
            (void)::shutdown(fd_, SHUT_RDWR);
        }
        (void)::close(fd_);
        fd_ = -1;
    }
}

Socket connect(const Endpoint& endpoint, int timeout_ms)
{
    addrinfo* addresses = resolve(endpoint, /*passive=*/false);
    int fd = -1;
    std::string error = "cannot connect to " + endpoint.to_string();
    for (const addrinfo* address = addresses; address != nullptr; address = address->ai_next) {
        fd = ::socket(address->ai_family, address->ai_socktype | SOCK_CLOEXEC,
                      address->ai_protocol);
        if (fd < 0) {
            continue;
        }
        int rc = ::connect(fd, address->ai_addr, address->ai_addrlen);
        if (rc != 0 && errno == EINTR) {
            // EINTR on a blocking connect does NOT abort the attempt —
            // the handshake continues in the background. Retrying
            // connect() here would be wrong (EALREADY/EISCONN races);
            // the portable recovery is to wait for writability and read
            // the final status from SO_ERROR.
            (void)poll_one(fd, POLLOUT, timeout_ms);
            int so_error = 0;
            socklen_t length = sizeof so_error;
            if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &length) == 0 &&
                so_error == 0) {
                rc = 0;
            } else {
                errno = so_error != 0 ? so_error : ETIMEDOUT;
            }
        }
        if (rc == 0) {
            break;
        }
        error += std::string(": ") + std::strerror(errno);
        (void)::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(addresses);
    if (fd < 0) {
        throw Error(error);
    }
    int enable = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
    (void)timeout_ms; // blocking connect; the loopback uses are instant
    return Socket(fd);
}

} // namespace mst::net
