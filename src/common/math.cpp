#include "common/math.hpp"

namespace mst {

Probability pow_prob(Probability p, std::int64_t exponent) noexcept
{
    if (exponent <= 0) {
        return 1.0;
    }
    Probability result = 1.0;
    Probability base = p;
    std::int64_t e = exponent;
    while (e > 0) {
        if ((e & 1) != 0) {
            result *= base;
        }
        base *= base;
        e >>= 1;
    }
    return clamp_probability(result);
}

Probability at_least_one_of(Probability p, SiteCount n) noexcept
{
    if (n <= 0) {
        return 0.0;
    }
    const Probability all_fail = pow_prob(1.0 - p, n);
    return clamp_probability(1.0 - all_fail);
}

Probability clamp_probability(Probability p) noexcept
{
    if (p < 0.0) {
        return 0.0;
    }
    if (p > 1.0) {
        return 1.0;
    }
    return p;
}

} // namespace mst
