// Strong domain vocabulary used across the mst library.
//
// The paper (Goel & Marinissen, DATE 2005) mixes several unit systems:
// ATE channels (always even, two per TAM wire), TAM wires, test clock
// cycles, vector-memory depth (in vectors == cycles), seconds, and
// devices/hour. Keeping them as distinct aliases (and converting at
// well-named call sites) prevents the classic off-by-2x channel/wire bug.
#pragma once

#include <cstdint>

namespace mst {

/// Number of ATE channels. One TAM wire consumes two channels
/// (one stimulus, one response), so architecture-level channel counts
/// are always even.
using ChannelCount = int;

/// Number of TAM wires (stimulus/response pairs). channels == 2 * wires.
using WireCount = int;

/// Test clock cycles; also the unit of ATE vector-memory depth,
/// since one stored vector is applied per test clock cycle.
using CycleCount = std::int64_t;

/// Number of test patterns of a module test.
using PatternCount = std::int64_t;

/// Number of flip-flops in a scan chain.
using FlipFlopCount = std::int64_t;

/// Wall-clock seconds.
using Seconds = double;

/// Devices per hour (the paper's D_th / D^u_th).
using DevicesPerHour = double;

/// Probability in [0, 1].
using Probability = double;

/// US dollars, for the ATE economics model of Section 7.
using UsDollars = double;

/// Number of test sites probed in parallel (the paper's n).
using SiteCount = int;

/// Convert TAM wires to ATE channels (each wire needs stimulus + response).
[[nodiscard]] constexpr ChannelCount channels_from_wires(WireCount wires) noexcept
{
    return 2 * wires;
}

/// Convert ATE channels to TAM wires; channels are expected to be even.
[[nodiscard]] constexpr WireCount wires_from_channels(ChannelCount channels) noexcept
{
    return channels / 2;
}

/// Binary kilo/mega multipliers used for vector memory depths
/// ("48K" = 48 * 1024 vectors, "7M" = 7 * 2^20 vectors), matching the
/// depth axis labels of Table 1 and Figures 6-7.
inline constexpr CycleCount kibi = 1024;
inline constexpr CycleCount mebi = 1024 * 1024;

} // namespace mst
