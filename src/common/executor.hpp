// Process-wide task executor: one lazily-started thread pool shared by
// every parallel surface of the library (BatchRunner scenario fan-out,
// RequestService request fan-out, the intra-scenario Step-1/Step-2
// search, SocTimeTables construction, `mst bench`).
//
// Design rules:
//   * The process owns exactly one pool (Executor::global()); explicit
//     instances exist for tests. Workers start on first use, so programs
//     that never go parallel never spawn a thread.
//   * for_index() is the blocking fan-out primitive: the calling thread
//     participates in the loop, so nesting a for_index inside a pool
//     task can never deadlock — if every worker is busy, the nested
//     caller simply runs all its own indices inline.
//   * submit() enqueues a one-off task and returns its future. Submitting
//     from inside a pool task is fine (the task is queued like any
//     other); *waiting* on a future from inside a pool task is not —
//     use for_index for nested blocking parallelism.
//   * Determinism: for_index always runs every index exactly once and
//     writes nothing itself; callers index into pre-sized output slots,
//     which makes results independent of scheduling. If callbacks throw,
//     every index still runs and the exception thrown by the *lowest*
//     index is rethrown in the caller — the same exception a serial loop
//     that defers throwing would pick, at any thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mst {

/// Resolve a user-configured thread count for `jobs` work items:
/// `configured` <= 0 selects hardware_concurrency; the result is at
/// least 1 and never more than there are jobs (an empty job list
/// reports 0). Shared by BatchRunner and RequestService so both
/// surfaces pick fan-out widths identically.
[[nodiscard]] inline int resolve_thread_count(int configured, std::size_t jobs) noexcept
{
    int threads = configured;
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (threads < 1) {
        threads = 1;
    }
    if (jobs < static_cast<std::size_t>(threads)) {
        threads = static_cast<int>(jobs);
    }
    return threads;
}

/// A fixed-size worker pool with a shared FIFO task queue.
class Executor {
public:
    /// Pool with exactly `workers` worker threads (0 = everything runs
    /// inline on the calling thread). Workers start lazily.
    explicit Executor(int workers);
    ~Executor();

    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    /// The process-wide pool: hardware_concurrency - 1 workers (the
    /// calling thread is the extra lane), at least 1 so single-core
    /// machines still exercise the cross-thread paths.
    [[nodiscard]] static Executor& global();

    [[nodiscard]] int worker_count() const noexcept { return worker_target_; }

    /// Run fn(i) for every i in [0, count) on the calling thread plus up
    /// to max_threads - 1 pool workers (max_threads <= 0 means "as many
    /// as the pool has"). Blocks until every index completed; rethrows
    /// the lowest-index exception, if any.
    ///
    /// The cap is per fan-out, not per process: each nested for_index
    /// (scenario fan-out -> pack batch -> greedy passes) may claim up to
    /// max_threads - 1 helpers of its own, so a process running several
    /// capped loops at once can occupy more than max_threads workers in
    /// total. The pool's fixed worker count is the hard bound; the cap
    /// limits how much of it one loop may grab.
    void for_index(std::size_t count, int max_threads,
                   const std::function<void(std::size_t)>& fn);

    /// Enqueue a task; returns its future. With a zero-worker pool the
    /// task runs inline before returning.
    template <typename Fn>
    auto submit(Fn fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(std::move(fn));
        std::future<Result> future = task->get_future();
        if (worker_target_ == 0) {
            (*task)();
            return future;
        }
        enqueue([task]() { (*task)(); });
        return future;
    }

private:
    /// Shared state of one for_index call. Helper tasks hold it by
    /// shared_ptr: a helper popped after the loop already finished sees
    /// next >= count and exits without touching anything else.
    struct LoopState {
        std::function<void(std::size_t)> fn;
        std::size_t count = 0;
        /// Indices are claimed in runs of `chunk` to keep large loops of
        /// tiny callbacks off the shared counter's cache line.
        std::size_t chunk = 1;
        std::atomic<std::size_t> next{0};
        std::mutex mutex;
        std::condition_variable all_done;
        std::size_t done = 0;
        std::exception_ptr error;
        std::size_t error_index = 0;
    };

    static void run_loop(const std::shared_ptr<LoopState>& state);
    void enqueue(std::function<void()> task);
    void worker_main();

    const int worker_target_;
    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

/// Index-parallel fan-out on the global executor. `threads` caps the
/// concurrency (<= 0: use the whole pool); outputs must be written into
/// per-index slots so results are identical at any thread count.
template <typename Fn>
void parallel_for_index(std::size_t count, int threads, Fn&& fn)
{
    Executor::global().for_index(count, threads,
                                 std::function<void(std::size_t)>(std::forward<Fn>(fn)));
}

} // namespace mst
