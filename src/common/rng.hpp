// Deterministic random number generation for the synthetic SOC generator.
//
// All randomized components of the library draw from this wrapper rather
// than from std::random_device so that every benchmark table, example and
// property test is bit-for-bit reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <random>

namespace mst {

/// A seeded, deterministic RNG with the handful of distributions the SOC
/// generator needs. Thin wrapper over std::mt19937_64 with explicit
/// helpers so call sites read as domain statements.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Uniform real in [lo, hi).
    [[nodiscard]] double uniform_real(double lo, double hi);

    /// Log-normal draw with the given underlying normal mean/sigma.
    /// Used to give module test-data volumes the heavy-tailed spread
    /// observed in the ITC'02 benchmark SOCs.
    [[nodiscard]] double log_normal(double mean, double sigma);

    /// Bernoulli draw with probability p of returning true.
    [[nodiscard]] bool chance(double p);

private:
    std::mt19937_64 engine_;
};

} // namespace mst
