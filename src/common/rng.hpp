// Deterministic random number generation for the synthetic SOC generator.
//
// All randomized components of the library draw from this wrapper rather
// than from std::random_device so that every benchmark table, example and
// property test is bit-for-bit reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <random>

namespace mst {

/// A seeded, deterministic RNG with the handful of distributions the SOC
/// generator needs. Thin wrapper over std::mt19937_64 with explicit
/// helpers so call sites read as domain statements.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Uniform real in [lo, hi).
    [[nodiscard]] double uniform_real(double lo, double hi);

    /// Log-normal draw with the given underlying normal mean/sigma.
    /// Used to give module test-data volumes the heavy-tailed spread
    /// observed in the ITC'02 benchmark SOCs.
    [[nodiscard]] double log_normal(double mean, double sigma);

    /// Bernoulli draw with probability p of returning true.
    [[nodiscard]] bool chance(double p);

private:
    std::mt19937_64 engine_;
};

/// Pinned seeds for every randomized test and benchmark input. Property
/// suites run sharded under `ctest -j`, so each case must derive its SOC
/// from a fixed seed here rather than from process-local entropy --
/// otherwise two shards (or two machines) would disagree about which
/// SOCs "the random population" contains.
namespace test_seeds {

/// Parameterized property cases (tests/property_test.cpp): one random
/// SOC per seed, sized by the accompanying module count.
inline constexpr std::uint64_t property_cases[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

/// Depth-monotonicity sweep seeds (tests/property_test.cpp).
inline constexpr std::uint64_t depth_monotone[] = {31, 41, 59, 26, 53, 58, 97, 93};

/// Generator unit tests (tests/soc_generator_test.cpp): the baseline
/// config seed, a variant that must produce a different SOC, and the
/// seed of the random_soc() determinism check.
inline constexpr std::uint64_t generator_baseline = 42;
inline constexpr std::uint64_t generator_variant = 43;
inline constexpr std::uint64_t generator_random_soc = 5;

/// Incremental packing-core properties (tests/incremental_pack_test.cpp):
/// base seed of the staircase / gallop-search random SOC population.
inline constexpr std::uint64_t incremental_pack = 7100;

} // namespace test_seeds

} // namespace mst
