// Human-readable formatting of domain quantities, used by the report
// layer, the CLI, and the benchmark harnesses.
#pragma once

#include <string>

#include "common/types.hpp"

namespace mst {

/// Format a vector-memory depth the way the paper labels it:
/// multiples of 1024 print as "48K", multiples of 2^20 as "7M",
/// other values as plain integers. "1.256M"-style fractional megas are
/// printed with three decimals, matching Table 1's depth column.
[[nodiscard]] std::string format_depth(CycleCount depth);

/// Parse a depth label ("48K", "1.256M", "7340032") back to cycles.
/// Throws ValidationError on malformed input.
[[nodiscard]] CycleCount parse_depth(const std::string& text);

/// Format devices/hour in the paper's engineering style, e.g. "1.3e4".
[[nodiscard]] std::string format_throughput(DevicesPerHour value);

/// Format seconds with millisecond resolution, e.g. "1.468 s".
[[nodiscard]] std::string format_seconds(Seconds value);

/// Format a US dollar amount, e.g. "$24,000".
[[nodiscard]] std::string format_dollars(UsDollars value);

} // namespace mst
