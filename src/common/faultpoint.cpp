#include "common/faultpoint.hpp"

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <utility>

#include "cli/flags.hpp"
#include "common/error.hpp"

namespace mst::fault {

namespace {

struct Registry {
    std::mutex mutex;
    std::vector<Rule> rules;
    std::map<std::string, std::uint64_t> hits;
};

Registry& registry()
{
    static Registry instance;
    return instance;
}

std::atomic<int> g_attempt{0};

struct NamedErrc {
    const char* name;
    std::errc code;
};

// The errno spellings a plan may use after '='. Deliberately short: these
// are the failures the instrumented call sites actually see in the wild.
constexpr NamedErrc kErrcNames[] = {
    {"EIO", std::errc::io_error},
    {"EMFILE", std::errc::too_many_files_open},
    {"ENFILE", std::errc::too_many_files_open_in_system},
    {"ENOSPC", std::errc::no_space_on_device},
    {"ENOMEM", std::errc::not_enough_memory},
    {"ECONNABORTED", std::errc::connection_aborted},
    {"ECONNRESET", std::errc::connection_reset},
    {"EPIPE", std::errc::broken_pipe},
    {"EAGAIN", std::errc::resource_unavailable_try_again},
    {"EINTR", std::errc::interrupted},
    {"ETIMEDOUT", std::errc::timed_out},
};

std::string known_errc_names()
{
    std::string out;
    for (const auto& entry : kErrcNames) {
        if (!out.empty()) out += ", ";
        out += entry.name;
    }
    return out;
}

std::string trim(const std::string& text)
{
    std::size_t begin = text.find_first_not_of(" \t");
    if (begin == std::string::npos) return "";
    std::size_t end = text.find_last_not_of(" \t");
    return text.substr(begin, end - begin + 1);
}

std::uint64_t parse_ordinal(const std::string& rule_text, const std::string& what,
                            const std::string& token)
{
    if (token.empty()) {
        throw ValidationError("fault plan rule '" + rule_text + "': missing " + what);
    }
    std::uint64_t value = 0;
    for (char c : token) {
        if (c < '0' || c > '9') {
            throw ValidationError("fault plan rule '" + rule_text + "': " + what +
                                  " must be a positive integer, got '" + token + "'");
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (value == 0) {
        throw ValidationError("fault plan rule '" + rule_text + "': " + what +
                              " must be >= 1");
    }
    return value;
}

Rule parse_rule(const std::string& raw)
{
    const std::string text = trim(raw);
    Rule rule;

    std::size_t colon = text.find(':');
    if (colon == std::string::npos) {
        throw ValidationError("fault plan rule '" + text +
                              "': expected <point>:<action>[@<N>][*<R>][=<ERRNO>]");
    }
    rule.point = trim(text.substr(0, colon));

    bool known = false;
    for (const char* name : known_points()) {
        if (rule.point == name) {
            known = true;
            break;
        }
    }
    if (!known) {
        std::vector<cli::FlagSpec> candidates;
        for (const char* name : known_points()) candidates.push_back({name, false});
        std::string message =
            "fault plan names unknown fault point '" + rule.point + "'";
        const std::string suggestion = cli::nearest_flag_name(rule.point, candidates);
        if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
        throw ValidationError(message);
    }

    std::string rest = trim(text.substr(colon + 1));
    const std::size_t at = rest.find('@');
    const std::string action =
        trim(at == std::string::npos ? rest : rest.substr(0, at));
    if (action == "fail") {
        rule.action = Action::fail;
    } else if (action == "crash") {
        rule.action = Action::crash;
    } else if (action == "hang") {
        rule.action = Action::hang;
    } else {
        throw ValidationError("fault plan rule '" + text + "': unknown action '" +
                              action + "' (expected fail, crash, or hang)");
    }

    // '@<N>' is optional (default: the first hit). '*<R>' and '=<ERRNO>'
    // ride on the ordinal clause when present.
    rest = at == std::string::npos ? "" : trim(rest.substr(at + 1));
    std::string errc_name;
    std::size_t eq = rest.find('=');
    if (eq != std::string::npos) {
        errc_name = trim(rest.substr(eq + 1));
        rest = trim(rest.substr(0, eq));
    }
    std::size_t star = rest.find('*');
    if (star != std::string::npos) {
        rule.attempts = static_cast<int>(
            parse_ordinal(text, "attempt window '*<R>'", trim(rest.substr(star + 1))));
        rest = trim(rest.substr(0, star));
    }
    if (at != std::string::npos || !rest.empty()) {
        rule.at = parse_ordinal(text, "hit ordinal '@<N>'", rest);
    }

    if (!errc_name.empty()) {
        if (rule.action != Action::fail) {
            throw ValidationError("fault plan rule '" + text +
                                  "': '=<ERRNO>' only applies to the fail action");
        }
        bool found = false;
        for (const auto& entry : kErrcNames) {
            if (errc_name == entry.name) {
                rule.code = entry.code;
                found = true;
                break;
            }
        }
        if (!found) {
            throw ValidationError("fault plan rule '" + text + "': unknown errno name '" +
                                  errc_name + "' (known: " + known_errc_names() + ")");
        }
    }
    return rule;
}

} // namespace

namespace detail {

std::atomic<bool> armed{false};

std::errc fire(const char* point)
{
    Action action = Action::fail;
    std::errc code{};
    bool due = false;
    {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        const std::uint64_t hit = ++reg.hits[point];
        const int attempt = g_attempt.load(std::memory_order_relaxed);
        for (const Rule& rule : reg.rules) {
            if (rule.point == point && rule.at == hit && attempt < rule.attempts) {
                action = rule.action;
                code = rule.code;
                due = true;
                break;
            }
        }
    }
    if (!due) return std::errc{};
    switch (action) {
    case Action::fail:
        return code;
    case Action::crash:
        // Simulated worker death: no unwinding, no atexit — the closest
        // a test can get to SIGKILL while staying sanitizer-clean.
        ::_exit(70);
    case Action::hang:
        for (int i = 0; i < 36000; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        return std::errc{};
    }
    return std::errc{};
}

} // namespace detail

const std::vector<const char*>& known_points()
{
    static const std::vector<const char*> points = {
        "net.accept",             // Listener::accept, per ready connection
        "net.write",              // server response write, per delivery
        "framing.read",           // FrameReader, per decoded frame
        "cache.tables_build",     // RequestService, per optimize tables lookup
        "sweep.checkpoint_write", // ShardWriter, per result record
        "sweep.trailer_write",    // ShardWriter::finish, per shard trailer
        "sweep.worker_spawn",     // sweep supervisor, per worker fork
        "sweep.scenario",         // sweep worker, per scenario executed
        "sweep.report_write",     // sweep coordinator, per report.json write
        "shm.map",                // Segment create/attach, per mapping attempt
        "shm.publish",            // Segment::publish, between write and commit
        "shm.truncate_recover",   // torn-tail recovery, per truncation
        "shm.checksum",           // Segment::lookup, per entry validation
    };
    return points;
}

Plan parse_plan(const std::string& text)
{
    Plan plan;
    std::string current;
    auto flush = [&] {
        if (!trim(current).empty()) plan.rules.push_back(parse_rule(current));
        current.clear();
    };
    for (char c : text) {
        if (c == ',' || c == ';') {
            flush();
        } else {
            current += c;
        }
    }
    flush();
    if (plan.rules.empty()) {
        // A plan that parses to nothing is a mistake, not a no-op: the
        // chaos run it was meant to drive would silently test nothing.
        throw ValidationError("fault plan '" + text + "' contains no rules");
    }
    return plan;
}

void install_plan(Plan plan)
{
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.rules = std::move(plan.rules);
    reg.hits.clear();
    detail::armed.store(!reg.rules.empty(), std::memory_order_relaxed);
}

void clear_plan()
{
    install_plan(Plan{});
}

void set_attempt(int attempt) noexcept
{
    g_attempt.store(attempt, std::memory_order_relaxed);
}

int attempt() noexcept
{
    return g_attempt.load(std::memory_order_relaxed);
}

std::uint64_t hit_count(const std::string& point)
{
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.hits.find(point);
    return it == reg.hits.end() ? 0 : it->second;
}

} // namespace mst::fault
