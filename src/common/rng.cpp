#include "common/rng.hpp"

namespace mst {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double Rng::uniform_real(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

double Rng::log_normal(double mean, double sigma)
{
    std::lognormal_distribution<double> dist(mean, sigma);
    return dist(engine_);
}

bool Rng::chance(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

} // namespace mst
