#include "common/signals.hpp"

#include <csignal>

#include <fcntl.h>
#include <unistd.h>

namespace mst {

namespace {

void handle_shutdown_signal(int)
{
    ShutdownLatch::global().request();
}

} // namespace

ShutdownLatch& ShutdownLatch::global()
{
    static ShutdownLatch latch;
    return latch;
}

ShutdownLatch::ShutdownLatch()
{
    int fds[2] = {-1, -1};
    if (::pipe(fds) == 0) {
        pipe_read_ = fds[0];
        pipe_write_ = fds[1];
        for (const int fd : fds) {
            const int flags = ::fcntl(fd, F_GETFL);
            (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
            (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
        }
    }
}

void ShutdownLatch::install_handlers()
{
    struct sigaction action = {};
    action.sa_handler = handle_shutdown_signal;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // no SA_RESTART: blocked accept/poll calls wake
    (void)::sigaction(SIGTERM, &action, nullptr);
    (void)::sigaction(SIGINT, &action, nullptr);
}

void ShutdownLatch::request() noexcept
{
    requested_.store(true, std::memory_order_release);
    if (pipe_write_ >= 0) {
        const char byte = 1;
        // Best effort: the pipe full just means it is already signaled.
        [[maybe_unused]] const auto n = ::write(pipe_write_, &byte, 1);
    }
}

void ShutdownLatch::reset() noexcept
{
    requested_.store(false, std::memory_order_release);
    if (pipe_read_ >= 0) {
        char drain[16];
        while (::read(pipe_read_, drain, sizeof drain) > 0) {
        }
    }
}

} // namespace mst
