#include "common/error.hpp"

namespace mst {

namespace {

std::string make_parse_message(std::string_view file, int line, const std::string& message)
{
    std::string out;
    out += file;
    out += ':';
    out += std::to_string(line);
    out += ": ";
    out += message;
    return out;
}

} // namespace

ParseError::ParseError(std::string_view file, int line, const std::string& message)
    : Error(make_parse_message(file, line, message)), file_(file), line_(line)
{
}

} // namespace mst
