#include "common/format.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace mst {

std::string format_depth(CycleCount depth)
{
    char buffer[64];
    if (depth >= mebi) {
        if (depth % mebi == 0) {
            std::snprintf(buffer, sizeof buffer, "%lldM", static_cast<long long>(depth / mebi));
        } else {
            std::snprintf(buffer, sizeof buffer, "%.3fM", static_cast<double>(depth) / static_cast<double>(mebi));
        }
        return buffer;
    }
    if (depth >= kibi && depth % kibi == 0) {
        std::snprintf(buffer, sizeof buffer, "%lldK", static_cast<long long>(depth / kibi));
        return buffer;
    }
    std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(depth));
    return buffer;
}

CycleCount parse_depth(const std::string& text)
{
    if (text.empty()) {
        throw ValidationError("empty vector-memory depth");
    }
    CycleCount multiplier = 1;
    std::string digits = text;
    const char suffix = static_cast<char>(std::toupper(static_cast<unsigned char>(text.back())));
    if (suffix == 'K' || suffix == 'M') {
        multiplier = (suffix == 'K') ? kibi : mebi;
        digits.pop_back();
    }
    if (digits.empty()) {
        throw ValidationError("malformed vector-memory depth: '" + text + "'");
    }
    std::size_t consumed = 0;
    double value = 0.0;
    try {
        value = std::stod(digits, &consumed);
    } catch (const std::exception&) {
        throw ValidationError("malformed vector-memory depth: '" + text + "'");
    }
    if (consumed != digits.size() || value <= 0.0) {
        throw ValidationError("malformed vector-memory depth: '" + text + "'");
    }
    return static_cast<CycleCount>(std::llround(value * static_cast<double>(multiplier)));
}

std::string format_throughput(DevicesPerHour value)
{
    char buffer[64];
    if (value >= 1000.0) {
        const double exponent = std::floor(std::log10(value));
        const double mantissa = value / std::pow(10.0, exponent);
        std::snprintf(buffer, sizeof buffer, "%.2fe%d", mantissa, static_cast<int>(exponent));
    } else {
        std::snprintf(buffer, sizeof buffer, "%.1f", value);
    }
    return buffer;
}

std::string format_seconds(Seconds value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.3f s", value);
    return buffer;
}

std::string format_dollars(UsDollars value)
{
    char digits[64];
    std::snprintf(digits, sizeof digits, "%.0f", value);
    std::string raw = digits;
    std::string out;
    const bool negative = !raw.empty() && raw.front() == '-';
    if (negative) {
        raw.erase(raw.begin());
    }
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count != 0 && count % 3 == 0) {
            out.push_back(',');
        }
        out.push_back(*it);
        ++count;
    }
    if (negative) {
        out.push_back('-');
    }
    out.push_back('$');
    return {out.rbegin(), out.rend()};
}

} // namespace mst
