// Small numeric helpers shared across the library.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace mst {

/// Ceiling division for non-negative integers: ceil(numerator/denominator).
/// Precondition: denominator > 0, numerator >= 0.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t numerator, std::int64_t denominator) noexcept
{
    return (numerator + denominator - 1) / denominator;
}

/// pow(p, e) for a probability p and non-negative integer exponent e,
/// computed by square-and-multiply. Exact enough for the contact-yield
/// term p_c^I of Equation 4.2, where I can be a few hundred terminals.
[[nodiscard]] Probability pow_prob(Probability p, std::int64_t exponent) noexcept;

/// Probability that at least one of n independent trials with success
/// probability p succeeds: 1 - (1 - p)^n. Used by Equations 4.2 and 4.3.
[[nodiscard]] Probability at_least_one_of(Probability p, SiteCount n) noexcept;

/// Clamp a probability into [0, 1]; guards against floating-point drift.
[[nodiscard]] Probability clamp_probability(Probability p) noexcept;

} // namespace mst
