// Thin POSIX TCP wrappers for the network server (service/server.hpp).
//
// Scope is deliberately small: blocking stream sockets with poll-based
// readiness waits and full-write semantics, RAII ownership of the file
// descriptor, and IPv4/IPv6 endpoint parsing. No frameworks — the repo
// serves newline-delimited JSON, not HTTP.
//
// Error model: setup failures (bind, listen, bad endpoint text) throw
// mst::Error/ValidationError with the errno text; per-connection I/O
// failures are return values (a dropped peer is a normal event for a
// server, not an exception).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/error.hpp"

namespace mst::net {

/// A host:port pair. `host` is a numeric IPv4/IPv6 address or a name
/// resolvable by getaddrinfo; port 0 asks the kernel for a free port.
struct Endpoint {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    [[nodiscard]] std::string to_string() const;
};

/// Parse "host:port" ("[v6]:port" for bracketed IPv6). Throws
/// ValidationError on malformed text or an out-of-range port.
[[nodiscard]] Endpoint parse_endpoint(const std::string& text);

/// One connected TCP stream. Move-only; closes on destruction.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) noexcept : fd_(fd) {}
    ~Socket();

    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int fd() const noexcept { return fd_; }

    /// Wait until the socket is readable. timeout_ms < 0 waits forever;
    /// returns false on timeout, true on readable/EOF/error (a read
    /// will then not block).
    [[nodiscard]] bool wait_readable(int timeout_ms) const;

    /// Read up to `size` bytes. Returns the byte count, 0 at EOF, -1 on
    /// a connection error. Retries EINTR.
    [[nodiscard]] long read_some(char* data, std::size_t size) const;

    /// Write the whole buffer (handling partial writes and EINTR;
    /// SIGPIPE is suppressed). False when the peer is gone or a send
    /// timeout configured via set_write_timeout expired.
    [[nodiscard]] bool write_all(const char* data, std::size_t size) const;
    [[nodiscard]] bool write_all(const std::string& data) const
    {
        return write_all(data.data(), data.size());
    }

    /// SO_SNDTIMEO: bound how long write_all may block on a peer that
    /// stopped reading (0 disables the bound).
    void set_write_timeout(int timeout_ms) const;

    /// Half-close: no more writes, reads still drain (client side).
    void shutdown_write() const;

    /// Full shutdown: wakes a thread blocked in poll/read on this
    /// socket (it sees EOF) without closing the descriptor, so the
    /// owning thread can still run its normal teardown. Used to shed
    /// idle connections under fd exhaustion.
    void shutdown_both() const;

    void close() noexcept;

private:
    int fd_ = -1;
};

/// Outcome of one Listener::accept call. Transient failures are split
/// from resource exhaustion so the server can react differently:
/// transient errors (ECONNABORTED, EINTR, EPROTO) just mean "try
/// again"; exhaustion (EMFILE, ENFILE, ENOBUFS, ENOMEM — and anything
/// unclassified, so an unexpected errno backs off instead of spinning
/// or dying) calls for shedding + backoff.
struct AcceptResult {
    enum class Status {
        accepted,  ///< `socket` holds the new connection
        timeout,   ///< nothing arrived within timeout_ms
        transient, ///< harmless race (peer vanished mid-handshake); retry now
        exhausted, ///< out of fds/buffers; shed + back off, `error` has errno
        closed,    ///< the listener was closed concurrently
    };

    Status status = Status::timeout;
    Socket socket;
    int error = 0;
};

/// A listening TCP socket. Move-only; closes on destruction.
class Listener {
public:
    Listener() = default;
    ~Listener();

    Listener(Listener&& other) noexcept;
    Listener& operator=(Listener&& other) noexcept;
    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    /// Bind + listen on `endpoint` (SO_REUSEADDR set). Throws mst::Error
    /// with the errno text when the address is unavailable.
    [[nodiscard]] static Listener bind(const Endpoint& endpoint, int backlog = 64);

    /// The actual bound address — resolves port 0 to the kernel's pick.
    [[nodiscard]] Endpoint local_endpoint() const;

    /// Accept one connection, waiting at most timeout_ms (< 0: forever).
    /// Never throws: every errno is classified into AcceptResult::Status
    /// (probed by the `net.accept` fault point once a connection is
    /// actually ready, so injected EMFILE exercises the shed path
    /// deterministically).
    [[nodiscard]] AcceptResult accept(int timeout_ms) const;

    /// Adopt an already-listening descriptor (a forked prefork worker
    /// inherits the parent's fd; the adopting Listener owns and closes
    /// it). The underlying open file description is shared with the
    /// parent and sibling workers, so close() on an adopted listener
    /// skips the shutdown() wake — it must not tear down accepts
    /// pool-wide. Throws ValidationError on a negative fd.
    [[nodiscard]] static Listener adopt(int fd);

    /// Duplicate the listening descriptor (the prefork parent keeps its
    /// own copy alive for respawns while each worker adopts a dup).
    /// Throws mst::Error when dup fails or the listener is invalid.
    [[nodiscard]] int dup_fd() const;

    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int fd() const noexcept { return fd_; }

    /// Close the listening socket (wakes a blocked accept with nullopt).
    void close() noexcept;

private:
    explicit Listener(int fd) noexcept : fd_(fd) {}

    int fd_ = -1;
    bool shared_ = false; ///< adopted: the description outlives this copy
};

/// Connect to `endpoint` (test clients; timeout_ms < 0 waits forever).
/// Throws mst::Error when the connection is refused or times out.
[[nodiscard]] Socket connect(const Endpoint& endpoint, int timeout_ms = 5000);

} // namespace mst::net
