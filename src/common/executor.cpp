#include "common/executor.hpp"

#include <algorithm>

namespace mst {

Executor::Executor(int workers) : worker_target_(std::max(workers, 0)) {}

Executor::~Executor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

Executor& Executor::global()
{
    // hardware_concurrency - 1 workers: the thread calling for_index is
    // the remaining lane. At least one worker even on single-core
    // machines, so the cross-thread code paths always run.
    static Executor instance(
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()) - 1));
    return instance;
}

void Executor::run_loop(const std::shared_ptr<LoopState>& state)
{
    for (;;) {
        const std::size_t begin =
            state->next.fetch_add(state->chunk, std::memory_order_relaxed);
        if (begin >= state->count) {
            return;
        }
        const std::size_t end = std::min(state->count, begin + state->chunk);
        std::exception_ptr error;
        std::size_t error_index = 0;
        for (std::size_t i = begin; i < end; ++i) {
            try {
                state->fn(i);
            } catch (...) {
                if (!error) {
                    error = std::current_exception();
                    error_index = i;
                }
            }
        }
        std::lock_guard<std::mutex> lock(state->mutex);
        if (error && (!state->error || error_index < state->error_index)) {
            state->error = error;
            state->error_index = error_index;
        }
        state->done += end - begin;
        if (state->done == state->count) {
            state->all_done.notify_all();
        }
    }
}

void Executor::for_index(std::size_t count, int max_threads,
                         const std::function<void(std::size_t)>& fn)
{
    if (count == 0) {
        return;
    }
    int helpers = (max_threads <= 0) ? worker_target_
                                     : std::min(max_threads - 1, worker_target_);
    helpers = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(std::max(helpers, 0)), count - 1));

    if (helpers == 0) {
        // Inline path with the same semantics as the pooled one: every
        // index runs, the lowest-index exception is rethrown afterwards.
        std::exception_ptr error;
        for (std::size_t i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!error) {
                    error = std::current_exception();
                }
            }
        }
        if (error) {
            std::rethrow_exception(error);
        }
        return;
    }

    auto state = std::make_shared<LoopState>();
    state->fn = fn;
    state->count = count;
    // Roughly eight claims per participant: coarse enough to amortize
    // the shared counter, fine enough to balance uneven callbacks.
    state->chunk = std::max<std::size_t>(
        1, count / (static_cast<std::size_t>(helpers + 1) * 8));
    for (int h = 0; h < helpers; ++h) {
        enqueue([state]() { run_loop(state); });
    }
    run_loop(state);
    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->all_done.wait(lock, [&]() { return state->done == state->count; });
    }
    if (state->error) {
        std::rethrow_exception(state->error);
    }
}

void Executor::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        // Lazy start: the first task spawns the whole worker set.
        while (static_cast<int>(workers_.size()) < worker_target_) {
            workers_.emplace_back([this]() { worker_main(); });
        }
    }
    work_ready_.notify_one();
}

void Executor::worker_main()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [&]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return; // stopping
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // loop helpers never throw (run_loop captures per index)
    }
}

} // namespace mst
