// Error types thrown by the mst library.
//
// The library follows the C++ Core Guidelines error-handling advice
// (E.2): errors that a caller can reasonably be expected to handle are
// reported by throwing exceptions derived from mst::Error, so that call
// sites can distinguish "your SOC does not fit on this ATE" from
// programming errors (which use assertions / std::logic_error).
#pragma once

#include <stdexcept>
#include <string>
#include <system_error>

namespace mst {

/// Base class of all mst library errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A .soc benchmark file (or in-memory description) is malformed.
class ParseError : public Error {
public:
    ParseError(std::string_view file, int line, const std::string& message);

    [[nodiscard]] const std::string& file() const noexcept { return file_; }
    [[nodiscard]] int line() const noexcept { return line_; }

private:
    std::string file_;
    int line_ = 0;
};

/// An SOC, module, ATE, or parameter set violates a domain invariant
/// (e.g. negative terminal count, zero test clock frequency).
class ValidationError : public Error {
public:
    explicit ValidationError(const std::string& message) : Error(message) {}
};

/// A sweep shard checkpoint could not be persisted (disk full, torn
/// write, injected fault). Carries the failing std::errc so supervisors
/// can distinguish retriable I/O exhaustion from programming errors.
class CheckpointWriteError : public Error {
public:
    CheckpointWriteError(const std::string& message, std::errc code)
        : Error(message), code_(code)
    {
    }

    [[nodiscard]] std::errc code() const noexcept { return code_; }

private:
    std::errc code_;
};

/// The optimization problem has no solution on the given ATE: some module
/// cannot fit in the vector memory at any width, or the channel budget is
/// exceeded. Mirrors the "procedure is exited" cases of Section 6 Step 1.
class InfeasibleError : public Error {
public:
    explicit InfeasibleError(const std::string& message) : Error(message) {}
};

} // namespace mst
