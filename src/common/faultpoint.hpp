// Deterministic fault injection: a process-wide registry of named fault
// points that hot paths probe via a zero-cost-when-disabled macro.
//
// A *fault plan* — parsed from `--fault-plan` / the MST_FAULT_PLAN
// environment variable — arms the registry with rules of the form
//
//   <point>:<action>[@<N>][*<R>][=<ERRNO>]
//
// separated by ',' or ';'. A rule fires on exactly the N-th hit of its
// point (1-based, counted per process, default: the first hit), and
// only while the process's
// *attempt* number (see set_attempt) is below R (default 1, so a rule
// fires once and never again on a supervised restart). Actions:
//
//   fail   the probe returns the given std::errc (default EIO); the
//          call site maps it into its natural failure path (errno,
//          a typed exception, a false return),
//   crash  the process exits immediately with status 70 — a stand-in
//          for SIGKILL/OOM on a sweep worker (never returns),
//   hang   the probe blocks for an hour — a stand-in for a wedged
//          worker, for exercising watchdog kills (worker points only).
//
// Determinism contract: hit ordinals are counted per process, so a
// fault plan replayed against the same single-threaded request stream
// fires at exactly the same operation every run, byte for byte. Points
// hit concurrently from several threads (e.g. per-connection writes
// under parallel clients) still fire exactly once, but *which* thread
// trips the ordinal depends on scheduling — deterministic chaos tests
// drive such points from one connection at a time.
//
// When no plan is installed, MST_FAULTPOINT is one relaxed atomic load
// and a predictable branch — cheap enough for accept/write/checkpoint
// paths, which is the whole point: the probes stay compiled in, so the
// chaos CI exercises the exact binaries production runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <system_error>
#include <vector>

namespace mst::fault {

enum class Action {
    fail,  ///< return the rule's std::errc from the probe
    crash, ///< _exit(70) — simulated worker death
    hang,  ///< block ~1h — simulated wedge (watchdog fodder)
};

/// One parsed plan rule. `at` is the 1-based hit ordinal that trips it;
/// `attempts` gates it to process attempts 0..attempts-1.
struct Rule {
    std::string point;
    Action action = Action::fail;
    std::uint64_t at = 1;
    int attempts = 1;
    std::errc code = std::errc::io_error;
};

struct Plan {
    std::vector<Rule> rules;
};

/// The catalog of fault points compiled into the binary. Plans may only
/// name these (typos get a nearest-match suggestion).
[[nodiscard]] const std::vector<const char*>& known_points();

/// Parse a plan string (syntax above). Throws ValidationError on an
/// unknown point/action/errno name or a malformed ordinal.
[[nodiscard]] Plan parse_plan(const std::string& text);

/// Install (and arm) a plan, replacing any previous one. Hit counters
/// are reset. An empty plan disarms.
void install_plan(Plan plan);

/// Disarm and forget the plan and all counters (tests).
void clear_plan();

/// The process attempt number used by `*R` gating. The sweep supervisor
/// sets this in a respawned worker (fork child) to its restart count, so
/// "fail on attempt 0 only" rules stop firing after a restart. Defaults
/// to 0; MST_FAULT_ATTEMPT seeds it for exec'd processes.
void set_attempt(int attempt) noexcept;
[[nodiscard]] int attempt() noexcept;

/// Hits recorded for `point` since the plan was installed (tests/stats).
[[nodiscard]] std::uint64_t hit_count(const std::string& point);

namespace detail {
extern std::atomic<bool> armed;
/// Slow path behind the macro: count the hit, fire a due rule.
[[nodiscard]] std::errc fire(const char* point);
} // namespace detail

/// True when a non-empty plan is installed.
[[nodiscard]] inline bool armed() noexcept
{
    return detail::armed.load(std::memory_order_relaxed);
}

} // namespace mst::fault

/// Probe a fault point. Evaluates to std::errc{} (no fault) on the fast
/// path; under an armed plan it may return an injected errc, or not
/// return at all (crash/hang actions).
#define MST_FAULTPOINT(point)                                                                 \
    (::mst::fault::armed() ? ::mst::fault::detail::fire(point) : std::errc{})
