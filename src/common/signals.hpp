// Graceful-shutdown latch: turns SIGTERM/SIGINT into a pollable,
// checkable "please drain and exit" request for the network server.
//
// The handler is async-signal-safe (an atomic flag plus one write() to
// a self-pipe); everything else happens on normal threads. request()
// can also be called programmatically, which is what the server tests
// use instead of delivering real signals.
#pragma once

#include <atomic>

namespace mst {

class ShutdownLatch {
public:
    /// The process-wide latch (what the signal handlers flip).
    [[nodiscard]] static ShutdownLatch& global();

    /// Route SIGTERM and SIGINT to this latch. Idempotent.
    void install_handlers();

    /// Request shutdown. Safe from signal handlers and any thread.
    void request() noexcept;

    [[nodiscard]] bool requested() const noexcept
    {
        return requested_.load(std::memory_order_acquire);
    }

    /// Readable when shutdown was requested; poll alongside sockets.
    [[nodiscard]] int poll_fd() const noexcept { return pipe_read_; }

    /// Re-arm for the next test (not used in production).
    void reset() noexcept;

private:
    ShutdownLatch();

    std::atomic<bool> requested_{false};
    int pipe_read_ = -1;
    int pipe_write_ = -1;
};

} // namespace mst
