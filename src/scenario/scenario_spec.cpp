#include "scenario/scenario_spec.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>
#include <utility>

#include "cli/flags.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "service/protocol.hpp"
#include "soc/profiles.hpp"

namespace mst {

namespace {

/// Default scenario-name component of a cell: "512x7M", the historical
/// bench naming scheme.
std::string default_cell_label(const TestCell& cell)
{
    return std::to_string(cell.ate.channels) + "x" + format_depth(cell.ate.vector_memory_depth);
}

// --- Sectioned text config parsing -------------------------------------

/// One raw `key = value` line, kept with its line number so every
/// interpretation error is line-accurate.
struct RawEntry {
    int line = 0;
    std::string key;
    std::string value;
};

/// One raw `[kind arg]` section with its body.
struct RawSection {
    int line = 0;
    std::string kind;
    std::string arg;
    std::vector<RawEntry> entries;
};

[[noreturn]] void fail_at(int line, const std::string& message)
{
    throw ValidationError("scenario spec line " + std::to_string(line) + ": " + message);
}

std::string trim(const std::string& text)
{
    const std::size_t first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
        return "";
    }
    const std::size_t last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

/// Split a list value on commas and/or whitespace: "256, 512" == "256 512".
std::vector<std::string> split_list(const std::string& text)
{
    std::vector<std::string> items;
    std::string item;
    for (const char c : text) {
        if (c == ',' || c == ' ' || c == '\t') {
            if (!item.empty()) {
                items.push_back(std::move(item));
                item.clear();
            }
        } else {
            item += c;
        }
    }
    if (!item.empty()) {
        items.push_back(std::move(item));
    }
    return items;
}

std::vector<RawSection> read_sections(std::istream& in)
{
    std::vector<RawSection> sections;
    std::string line;
    int number = 0;
    while (std::getline(in, line)) {
        ++number;
        const std::string text = trim(line);
        if (text.empty() || text.front() == '#' || text.front() == ';') {
            continue;
        }
        if (text.front() == '[') {
            if (text.back() != ']') {
                fail_at(number, "unterminated section header '" + text + "'");
            }
            const std::string inside = trim(text.substr(1, text.size() - 2));
            if (inside.empty()) {
                fail_at(number, "empty section header");
            }
            RawSection section;
            section.line = number;
            const std::size_t space = inside.find_first_of(" \t");
            section.kind = inside.substr(0, space);
            section.arg = space == std::string::npos ? "" : trim(inside.substr(space + 1));
            sections.push_back(std::move(section));
            continue;
        }
        const std::size_t eq = text.find('=');
        if (eq == std::string::npos) {
            fail_at(number, "expected 'key = value', got '" + text + "'");
        }
        if (sections.empty()) {
            fail_at(number, "'" + trim(text.substr(0, eq)) +
                                "' appears before any [section] header");
        }
        RawEntry entry;
        entry.line = number;
        entry.key = trim(text.substr(0, eq));
        entry.value = trim(text.substr(eq + 1));
        if (entry.key.empty()) {
            fail_at(number, "empty key");
        }
        sections.back().entries.push_back(std::move(entry));
    }
    return sections;
}

/// Reject `key` with a nearest-match suggestion drawn from `known`.
[[noreturn]] void fail_unknown_key(const RawEntry& entry, const std::string& where,
                                   const std::vector<cli::FlagSpec>& known)
{
    const std::string suggestion = cli::nearest_flag_name(entry.key, known);
    fail_at(entry.line, "unknown " + where + " key '" + entry.key + "'" +
                            (suggestion.empty() ? "" : "; did you mean '" + suggestion + "'?"));
}

bool parse_bool(const RawEntry& entry)
{
    if (entry.value == "true" || entry.value == "1" || entry.value == "yes") {
        return true;
    }
    if (entry.value == "false" || entry.value == "0" || entry.value == "no") {
        return false;
    }
    fail_at(entry.line, "'" + entry.key + "' expects true or false, got '" + entry.value + "'");
}

int parse_int_entry(const RawEntry& entry)
{
    try {
        return cli::parse_int_flag(entry.key, entry.value);
    } catch (const ValidationError& e) {
        fail_at(entry.line, e.what());
    }
}

double parse_double_entry(const RawEntry& entry)
{
    try {
        return cli::parse_double_flag(entry.key, entry.value);
    } catch (const ValidationError& e) {
        fail_at(entry.line, e.what());
    }
}

CycleCount parse_depth_entry(const RawEntry& entry)
{
    try {
        return parse_depth(entry.value);
    } catch (const ValidationError& e) {
        fail_at(entry.line, e.what());
    }
}

SocSource interpret_soc(const RawSection& section)
{
    static const std::vector<cli::FlagSpec> known = {
        {"name", true},  {"generate", true}, {"random", true}, {"label", true},
        {"modules", true}, {"shape", true},  {"seed", true},   {"subset", true},
    };
    SocSource source;
    bool has_kind = false;
    for (const RawEntry& entry : section.entries) {
        if (entry.key == "name") {
            if (has_kind) {
                fail_at(entry.line, "a [soc] section declares exactly one of name/generate/random");
            }
            has_kind = true;
            source.kind = SocSource::Kind::spec;
            source.spec = entry.value;
        } else if (entry.key == "generate") {
            if (has_kind) {
                fail_at(entry.line, "a [soc] section declares exactly one of name/generate/random");
            }
            has_kind = true;
            source.kind = SocSource::Kind::generator;
            source.label = entry.value;
        } else if (entry.key == "random") {
            if (has_kind) {
                fail_at(entry.line, "a [soc] section declares exactly one of name/generate/random");
            }
            has_kind = true;
            source.kind = SocSource::Kind::random;
            source.label = entry.value;
        } else if (entry.key == "label") {
            source.label = entry.value;
        } else if (entry.key == "modules") {
            source.modules = parse_int_entry(entry);
        } else if (entry.key == "seed") {
            const int seed = parse_int_entry(entry);
            if (seed < 0) {
                fail_at(entry.line, "'seed' must be non-negative");
            }
            source.seed = static_cast<std::uint64_t>(seed);
        } else if (entry.key == "subset") {
            source.subset_modules = parse_int_entry(entry);
            if (source.subset_modules < 1) {
                fail_at(entry.line, "'subset' expects a positive module count");
            }
        } else if (entry.key == "shape") {
            if (entry.value == "classic") {
                source.shape = ScaledShape::classic;
            } else if (entry.value == "wide_shallow") {
                source.shape = ScaledShape::wide_shallow;
            } else if (entry.value == "narrow_deep") {
                source.shape = ScaledShape::narrow_deep;
            } else {
                fail_at(entry.line, "'shape' expects classic, wide_shallow, or narrow_deep; "
                                    "got '" + entry.value + "'");
            }
        } else {
            fail_unknown_key(entry, "[soc]", known);
        }
    }
    if (!has_kind) {
        fail_at(section.line, "[soc] section needs one of name/generate/random");
    }
    if (source.kind != SocSource::Kind::spec && source.modules < 1) {
        fail_at(section.line, "[soc] generate/random sections need 'modules = N'");
    }
    if (source.label.empty()) {
        source.label = source.spec;
    }
    return source;
}

/// Apply a scalar cell field through the protocol's cell bindings, so
/// the spec speaks exactly the request-API field names.
void apply_cell_entry(TestCell& cell, const RawEntry& entry)
{
    for (const protocol::CellBinding& binding : protocol::cell_bindings()) {
        if (entry.key != binding.field) {
            continue;
        }
        switch (binding.kind) {
        case protocol::CellBinding::Kind::integer:
            binding.apply_int(cell, parse_int_entry(entry));
            return;
        case protocol::CellBinding::Kind::depth:
            binding.apply_depth(cell, parse_depth_entry(entry));
            return;
        case protocol::CellBinding::Kind::number:
            binding.apply_number(cell, parse_double_entry(entry));
            return;
        }
    }
    fail_unknown_key(entry, "[cell]", protocol::cell_flag_specs());
}

std::vector<CellPoint> interpret_cell_grid(const RawSection& section)
{
    static const std::vector<cli::FlagSpec> known = {
        {"channels", true}, {"depths", true}, {"clock", true},
        {"index", true},    {"contact", true},
    };
    std::vector<std::string> channels = {"512"};
    std::vector<std::string> depths = {"7M"};
    TestCell base;
    for (const RawEntry& entry : section.entries) {
        if (entry.key == "channels") {
            channels = split_list(entry.value);
            if (channels.empty()) {
                fail_at(entry.line, "'channels' expects a non-empty list");
            }
        } else if (entry.key == "depths") {
            depths = split_list(entry.value);
            if (depths.empty()) {
                fail_at(entry.line, "'depths' expects a non-empty list");
            }
        } else if (entry.key == "clock" || entry.key == "index" || entry.key == "contact") {
            apply_cell_entry(base, entry);
        } else {
            fail_unknown_key(entry, "[cells]", known);
        }
    }
    // Channels-major order, matching the historical `mst batch` grid.
    std::vector<CellPoint> points;
    for (const std::string& channel_text : channels) {
        for (const std::string& depth_text : depths) {
            CellPoint point;
            point.cell = base;
            RawEntry channel_entry{section.line, "channels", channel_text};
            point.cell.ate.channels = parse_int_entry(channel_entry);
            RawEntry depth_entry{section.line, "depths", depth_text};
            point.cell.ate.vector_memory_depth = parse_depth_entry(depth_entry);
            points.push_back(std::move(point));
        }
    }
    return points;
}

CellPoint interpret_cell(const RawSection& section)
{
    CellPoint point;
    point.label = section.arg;
    for (const RawEntry& entry : section.entries) {
        apply_cell_entry(point.cell, entry);
    }
    return point;
}

OptionVariant interpret_variant(const RawSection& section)
{
    if (section.arg.empty()) {
        fail_at(section.line, "[variant] needs a name: [variant plain]");
    }
    OptionVariant variant;
    variant.label = section.arg;
    for (const RawEntry& entry : section.entries) {
        bool applied = false;
        for (const protocol::OptionBinding& binding : protocol::option_bindings()) {
            if (entry.key != binding.json_field) {
                continue;
            }
            switch (binding.kind) {
            case protocol::OptionBinding::Kind::toggle:
                if (parse_bool(entry)) {
                    binding.apply_toggle(variant.options);
                }
                break;
            case protocol::OptionBinding::Kind::integer:
                binding.apply_int(variant.options, parse_int_entry(entry));
                break;
            case protocol::OptionBinding::Kind::number:
                binding.apply_number(variant.options, parse_double_entry(entry));
                break;
            }
            applied = true;
            break;
        }
        if (!applied) {
            std::vector<cli::FlagSpec> known;
            for (const protocol::OptionBinding& binding : protocol::option_bindings()) {
                known.push_back({binding.json_field, true});
            }
            fail_unknown_key(entry, "[variant]", known);
        }
    }
    return variant;
}

} // namespace

SocSource SocSource::by_spec(std::string spec, std::string label)
{
    SocSource source;
    source.kind = Kind::spec;
    source.label = label.empty() ? spec : std::move(label);
    source.spec = std::move(spec);
    return source;
}

SocSource SocSource::generated(std::string label, int modules, ScaledShape shape)
{
    SocSource source;
    source.kind = Kind::generator;
    source.label = std::move(label);
    source.modules = modules;
    source.shape = shape;
    return source;
}

SocSource SocSource::random(std::string label, std::uint64_t seed, int modules)
{
    SocSource source;
    source.kind = Kind::random;
    source.label = std::move(label);
    source.seed = seed;
    source.modules = modules;
    return source;
}

Soc SocSource::resolve() const
{
    Soc soc = [this] {
        switch (kind) {
        case Kind::generator:
            return generate_soc(scaled_benchmark_config(label, modules, shape));
        case Kind::random:
            return random_soc(seed, modules);
        case Kind::spec:
            break;
        }
        return load_soc_spec(spec);
    }();
    if (subset_modules <= 0) {
        return soc;
    }
    if (subset_modules > soc.module_count()) {
        throw ValidationError("SOC source '" + label + "': subset of " +
                              std::to_string(subset_modules) + " modules exceeds the SOC's " +
                              std::to_string(soc.module_count()));
    }
    // Prefix subset, renamed to the source label (the certify suite's
    // "p22810x12" idiom): downstream reports name the view, not the chip.
    std::vector<Module> modules_prefix(soc.modules().begin(),
                                       soc.modules().begin() + subset_modules);
    return Soc(label, std::move(modules_prefix));
}

std::vector<Scenario> expand(const ScenarioSpec& spec)
{
    if (spec.socs.empty()) {
        throw ValidationError("scenario spec '" + spec.name + "' has no SOC sources");
    }
    if (spec.cells.empty()) {
        throw ValidationError("scenario spec '" + spec.name + "' has no cells");
    }
    if (spec.variants.empty()) {
        throw ValidationError("scenario spec '" + spec.name + "' has no option variants");
    }
    std::vector<Scenario> scenarios;
    scenarios.reserve(spec.socs.size() * spec.cells.size() * spec.variants.size());
    for (const SocSource& source : spec.socs) {
        // One resolve per source: every scenario of this SOC shares one
        // immutable object, so table builds are shared downstream too.
        const std::shared_ptr<const Soc> soc = std::make_shared<const Soc>(source.resolve());
        const std::string soc_label = source.label.empty() ? soc->name() : source.label;
        for (const CellPoint& point : spec.cells) {
            const std::string cell_label =
                point.label.empty() ? default_cell_label(point.cell) : point.label;
            for (const OptionVariant& variant : spec.variants) {
                Scenario scenario;
                scenario.name = soc_label + "/" + cell_label + "/" + variant.label;
                scenario.soc_name = soc_label;
                scenario.variant = variant.label;
                scenario.soc = soc;
                scenario.cell = point.cell;
                scenario.options = variant.options;
                scenarios.push_back(std::move(scenario));
            }
        }
    }
    std::vector<std::string> names;
    names.reserve(scenarios.size());
    for (const Scenario& scenario : scenarios) {
        names.push_back(scenario.name);
    }
    std::sort(names.begin(), names.end());
    const auto duplicate = std::adjacent_find(names.begin(), names.end());
    if (duplicate != names.end()) {
        throw ValidationError("scenario spec '" + spec.name + "' expands to duplicate name '" +
                              *duplicate + "'");
    }
    return scenarios;
}

std::vector<Scenario> expand_all(const std::vector<ScenarioSpec>& specs)
{
    std::vector<Scenario> all;
    for (const ScenarioSpec& spec : specs) {
        std::vector<Scenario> scenarios = expand(spec);
        all.insert(all.end(), std::make_move_iterator(scenarios.begin()),
                   std::make_move_iterator(scenarios.end()));
    }
    std::vector<std::string> names;
    names.reserve(all.size());
    for (const Scenario& scenario : all) {
        names.push_back(scenario.name);
    }
    std::sort(names.begin(), names.end());
    const auto duplicate = std::adjacent_find(names.begin(), names.end());
    if (duplicate != names.end()) {
        throw ValidationError("scenario specs expand to duplicate name '" + *duplicate + "'");
    }
    return all;
}

ScenarioSpec parse_scenario_spec(std::istream& in)
{
    static const std::vector<cli::FlagSpec> section_kinds = {
        {"sweep", false}, {"soc", false}, {"cells", false},
        {"cell", false},  {"variant", false},
    };
    ScenarioSpec spec;
    for (const RawSection& section : read_sections(in)) {
        if (section.kind == "sweep") {
            for (const RawEntry& entry : section.entries) {
                if (entry.key == "name") {
                    spec.name = entry.value;
                } else {
                    fail_unknown_key(entry, "[sweep]", {{"name", true}});
                }
            }
        } else if (section.kind == "soc") {
            spec.socs.push_back(interpret_soc(section));
        } else if (section.kind == "cells") {
            std::vector<CellPoint> points = interpret_cell_grid(section);
            spec.cells.insert(spec.cells.end(), std::make_move_iterator(points.begin()),
                              std::make_move_iterator(points.end()));
        } else if (section.kind == "cell") {
            spec.cells.push_back(interpret_cell(section));
        } else if (section.kind == "variant") {
            spec.variants.push_back(interpret_variant(section));
        } else {
            const std::string suggestion = cli::nearest_flag_name(section.kind, section_kinds);
            fail_at(section.line,
                    "unknown section '[" + section.kind + "]'" +
                        (suggestion.empty() ? "" : "; did you mean '[" + suggestion + "]'?"));
        }
    }
    if (spec.variants.empty()) {
        // A spec with no [variant] sections sweeps the paper defaults.
        spec.variants.push_back({"plain", {}});
    }
    return spec;
}

ScenarioSpec load_scenario_spec(const std::string& path)
{
    std::ifstream file(path);
    if (!file) {
        throw ValidationError("cannot open scenario spec '" + path + "'");
    }
    ScenarioSpec spec = parse_scenario_spec(file);
    if (spec.name.empty()) {
        const std::size_t slash = path.find_last_of('/');
        spec.name = slash == std::string::npos ? path : path.substr(slash + 1);
    }
    return spec;
}

std::uint64_t scenario_list_fingerprint(const std::vector<Scenario>& scenarios)
{
    std::uint64_t hash = 1469598103934665603ull; // FNV-1a 64 offset basis
    const auto mix = [&hash](const char* data, std::size_t size) {
        for (std::size_t i = 0; i < size; ++i) {
            hash ^= static_cast<unsigned char>(data[i]);
            hash *= 1099511628211ull;
        }
    };
    for (const Scenario& scenario : scenarios) {
        mix(scenario.name.data(), scenario.name.size());
        mix("\n", 1);
    }
    return hash;
}

} // namespace mst
