// Compact binary record format of the sweep engine's per-shard result
// files (shard-NNNN.msr). One file per shard, streamed record by record
// as scenarios complete, so a killed run loses at most the scenario in
// flight; a trailer written on completion marks the file as a valid
// checkpoint a resumed run can reuse without recomputation.
//
// Layout (all integers little-endian; layout documented in docs/sweep.md):
//
//   header   "MSTSWP02" | shard u32 | shard_count u32 |
//            spec_fingerprint u64 | expected_records u32
//   records  index u32 | status u8 (1 ok / 0 error / 2 heartbeat) | payload
//     ok:    sites u32 | channels_per_site u32 | test_cycles u64 |
//            devices_per_hour f64 | pack_calls u64 | pack_cache_hits u64 |
//            greedy_passes u64 | depth_profiles u64 | pruned_packs u64 |
//            site_points u64 | wall_ns u64
//     error: kind u8 (1 infeasible / 2 validation / 3 other /
//            4 worker_crash) | message_length u32 | message bytes
//     heartbeat: attempt u32 — "scenario `index` is starting on worker
//            attempt N". Written before each scenario runs, so after a
//            worker crash the supervisor can read the partial file and
//            name the scenario that was in flight (the poison candidate).
//   trailer  "MSTSWPOK" | record_count u32 | checksum u64
//            (record_count counts result records only; the FNV-1a
//            checksum covers every record-section byte, heartbeats
//            included)
//
// Durability: shard data is fsync'd before the trailer goes out, so a
// trailer that validates can never describe records a torn write lost.
// wall_ns is the one non-deterministic field; the merged report.json
// deliberately excludes it (see sweep.hpp), so checkpoint reuse cannot
// perturb the deterministic final report. Heartbeat records likewise
// never reach the report — they exist only for crash forensics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mst {

/// Error classification of a failed sweep scenario (mirrors
/// BatchErrorKind, pinned to stable wire values).
enum class SweepErrorKind : std::uint8_t {
    infeasible = 1,   ///< InfeasibleError: no solution on the given cell
    validation = 2,   ///< ValidationError: malformed scenario
    other = 3,        ///< anything else
    worker_crash = 4, ///< scenario quarantined after repeated worker deaths
};

[[nodiscard]] const char* sweep_error_kind_name(SweepErrorKind kind) noexcept;

/// One scenario outcome, as stored in a shard file.
struct SweepRecord {
    std::uint32_t index = 0; ///< global scenario index in the expanded spec
    bool ok = false;

    // ok payload: the solution fingerprint + optimizer work counters.
    std::uint32_t sites = 0;
    std::uint32_t channels_per_site = 0;
    std::uint64_t test_cycles = 0;
    double devices_per_hour = 0;
    std::uint64_t pack_calls = 0;
    std::uint64_t pack_cache_hits = 0;
    std::uint64_t greedy_passes = 0;
    std::uint64_t depth_profiles = 0;
    std::uint64_t pruned_packs = 0;
    std::uint64_t site_points = 0;
    /// Wall time of the optimize call in nanoseconds. Feeds the
    /// per-shard latency percentiles; never part of report.json.
    std::uint64_t wall_ns = 0;

    // error payload
    SweepErrorKind error_kind = SweepErrorKind::other;
    std::string error;
};

/// Streaming shard-file writer. Records are appended and flushed one by
/// one; finish() writes the trailer that marks the checkpoint complete.
/// A file without a valid trailer (crash, SIGKILL, disk full) is not a
/// checkpoint and gets recomputed on resume.
class ShardWriter {
public:
    /// Opens `path` for writing (truncating any stale partial file) and
    /// writes the header. Throws ValidationError on I/O failure.
    ShardWriter(const std::string& path, std::uint32_t shard, std::uint32_t shard_count,
                std::uint64_t spec_fingerprint, std::uint32_t expected_records);
    ~ShardWriter();

    ShardWriter(const ShardWriter&) = delete;
    ShardWriter& operator=(const ShardWriter&) = delete;

    /// Append one record and flush it to disk. Throws
    /// CheckpointWriteError on I/O failure (or an injected
    /// `sweep.checkpoint_write` fault).
    void write(const SweepRecord& record);

    /// Append a heartbeat marking scenario `index` as starting on worker
    /// `attempt`, and flush it. Heartbeats count toward the checksum but
    /// not toward the trailer's record count.
    void heartbeat(std::uint32_t index, std::uint32_t attempt);

    /// fsync the record data, then write the trailer and close. Throws
    /// ValidationError if the record count does not match the header's
    /// expectation, CheckpointWriteError on I/O failure.
    void finish();

private:
    struct Impl;
    Impl* impl_;
};

/// A heartbeat read back from a shard file.
struct SweepHeartbeat {
    std::uint32_t index = 0;   ///< global scenario index that was starting
    std::uint32_t attempt = 0; ///< worker attempt number that started it
};

/// A fully parsed shard file.
struct ShardFile {
    std::uint32_t shard = 0;
    std::uint32_t shard_count = 0;
    std::uint64_t spec_fingerprint = 0;
    std::uint32_t expected_records = 0;
    bool complete = false; ///< trailer present, counts and checksum valid
    std::vector<SweepRecord> records; ///< result records only
    std::vector<SweepHeartbeat> heartbeats;

    /// The scenario a crashed worker was executing: the latest heartbeat
    /// whose scenario has no result record. nullopt for a file that ends
    /// cleanly between scenarios (or has no heartbeats at all).
    [[nodiscard]] std::optional<std::uint32_t> poison_index() const;
};

/// Read a shard file. Returns nullopt when the file is missing or its
/// header is unreadable; a file with a good header but no valid trailer
/// comes back with complete == false (a partial checkpoint to discard).
[[nodiscard]] std::optional<ShardFile> read_shard_file(const std::string& path);

} // namespace mst
