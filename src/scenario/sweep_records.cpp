#include "scenario/sweep_records.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include "common/error.hpp"
#include "common/faultpoint.hpp"

namespace mst {

namespace {

constexpr char kHeaderMagic[8] = {'M', 'S', 'T', 'S', 'W', 'P', '0', '2'};

// Record-section status bytes. Result records (ok/error) count toward
// the trailer's record_count; heartbeats do not.
constexpr std::uint8_t kStatusError = 0;
constexpr std::uint8_t kStatusOk = 1;
constexpr std::uint8_t kStatusHeartbeat = 2;
constexpr char kTrailerMagic[8] = {'M', 'S', 'T', 'S', 'W', 'P', 'O', 'K'};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& hash, const unsigned char* bytes, std::size_t count) noexcept
{
    for (std::size_t i = 0; i < count; ++i) {
        hash ^= bytes[i];
        hash *= kFnvPrime;
    }
}

/// Serializes integers explicitly little-endian so shard files written
/// on any host decode identically.
class ByteBuffer {
public:
    void u8(std::uint8_t value) { bytes_.push_back(static_cast<unsigned char>(value)); }

    void u32(std::uint32_t value)
    {
        for (int shift = 0; shift < 32; shift += 8) {
            bytes_.push_back(static_cast<unsigned char>((value >> shift) & 0xffU));
        }
    }

    void u64(std::uint64_t value)
    {
        for (int shift = 0; shift < 64; shift += 8) {
            bytes_.push_back(static_cast<unsigned char>((value >> shift) & 0xffU));
        }
    }

    void f64(double value)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(value));
        std::memcpy(&bits, &value, sizeof(bits));
        u64(bits);
    }

    void raw(const void* data, std::size_t count)
    {
        const auto* p = static_cast<const unsigned char*>(data);
        bytes_.insert(bytes_.end(), p, p + count);
    }

    [[nodiscard]] const unsigned char* data() const noexcept { return bytes_.data(); }
    [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
    void clear() noexcept { bytes_.clear(); }

private:
    std::vector<unsigned char> bytes_;
};

void encode_record(ByteBuffer& out, const SweepRecord& record)
{
    out.u32(record.index);
    out.u8(record.ok ? kStatusOk : kStatusError);
    if (record.ok) {
        out.u32(record.sites);
        out.u32(record.channels_per_site);
        out.u64(record.test_cycles);
        out.f64(record.devices_per_hour);
        out.u64(record.pack_calls);
        out.u64(record.pack_cache_hits);
        out.u64(record.greedy_passes);
        out.u64(record.depth_profiles);
        out.u64(record.pruned_packs);
        out.u64(record.site_points);
        out.u64(record.wall_ns);
    } else {
        out.u8(static_cast<std::uint8_t>(record.error_kind));
        out.u32(static_cast<std::uint32_t>(record.error.size()));
        out.raw(record.error.data(), record.error.size());
    }
}

/// Sequential reader over a fully loaded file image. Reads past the end
/// flip `ok`; callers check once per logical unit instead of per field.
class ByteReader {
public:
    explicit ByteReader(std::vector<unsigned char> bytes) : bytes_(std::move(bytes)) {}

    [[nodiscard]] bool ok() const noexcept { return ok_; }
    [[nodiscard]] std::size_t position() const noexcept { return position_; }
    [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - position_; }
    [[nodiscard]] const unsigned char* at(std::size_t offset) const noexcept
    {
        return bytes_.data() + offset;
    }

    std::uint8_t u8() noexcept
    {
        if (!take(1)) {
            return 0;
        }
        return bytes_[position_ - 1];
    }

    std::uint32_t u32() noexcept
    {
        if (!take(4)) {
            return 0;
        }
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            value |= static_cast<std::uint32_t>(bytes_[position_ - 4 + i]) << (8 * i);
        }
        return value;
    }

    std::uint64_t u64() noexcept
    {
        if (!take(8)) {
            return 0;
        }
        std::uint64_t value = 0;
        for (int i = 0; i < 8; ++i) {
            value |= static_cast<std::uint64_t>(bytes_[position_ - 8 + i]) << (8 * i);
        }
        return value;
    }

    double f64() noexcept
    {
        const std::uint64_t bits = u64();
        double value = 0;
        std::memcpy(&value, &bits, sizeof(value));
        return value;
    }

    std::string str(std::size_t count) noexcept
    {
        if (!take(count)) {
            return {};
        }
        return std::string(reinterpret_cast<const char*>(bytes_.data() + position_ - count),
                           count);
    }

    bool magic(const char (&expected)[8]) noexcept
    {
        if (!take(8)) {
            return false;
        }
        if (std::memcmp(bytes_.data() + position_ - 8, expected, 8) != 0) {
            ok_ = false;
        }
        return ok_;
    }

private:
    bool take(std::size_t count) noexcept
    {
        if (!ok_ || bytes_.size() - position_ < count) {
            ok_ = false;
            return false;
        }
        position_ += count;
        return true;
    }

    std::vector<unsigned char> bytes_;
    std::size_t position_ = 0;
    bool ok_ = true;
};

} // namespace

const char* sweep_error_kind_name(SweepErrorKind kind) noexcept
{
    switch (kind) {
    case SweepErrorKind::infeasible:
        return "infeasible";
    case SweepErrorKind::validation:
        return "validation";
    case SweepErrorKind::worker_crash:
        return "worker_crash";
    case SweepErrorKind::other:
        break;
    }
    return "other";
}

std::optional<std::uint32_t> ShardFile::poison_index() const
{
    for (auto it = heartbeats.rbegin(); it != heartbeats.rend(); ++it) {
        bool answered = false;
        for (const SweepRecord& record : records) {
            if (record.index == it->index) {
                answered = true;
                break;
            }
        }
        if (!answered) {
            return it->index;
        }
    }
    return std::nullopt;
}

struct ShardWriter::Impl {
    std::string path;
    std::FILE* file = nullptr;
    std::uint32_t expected = 0;
    std::uint32_t written = 0;
    std::uint64_t checksum = kFnvOffset;
    bool finished = false;
    ByteBuffer scratch;

    void put(const ByteBuffer& buffer)
    {
        if (std::fwrite(buffer.data(), 1, buffer.size(), file) != buffer.size()) {
            throw CheckpointWriteError("sweep shard write failed: " + path,
                                       static_cast<std::errc>(errno));
        }
    }
};

ShardWriter::ShardWriter(const std::string& path, std::uint32_t shard, std::uint32_t shard_count,
                         std::uint64_t spec_fingerprint, std::uint32_t expected_records)
    : impl_(new Impl)
{
    impl_->path = path;
    impl_->expected = expected_records;
    impl_->file = std::fopen(path.c_str(), "wb");
    if (impl_->file == nullptr) {
        delete impl_;
        throw ValidationError("cannot open sweep shard file for writing: " + path);
    }
    ByteBuffer header;
    header.raw(kHeaderMagic, sizeof(kHeaderMagic));
    header.u32(shard);
    header.u32(shard_count);
    header.u64(spec_fingerprint);
    header.u32(expected_records);
    impl_->put(header);
    std::fflush(impl_->file);
}

ShardWriter::~ShardWriter()
{
    if (impl_->file != nullptr) {
        std::fclose(impl_->file);
    }
    delete impl_;
}

void ShardWriter::write(const SweepRecord& record)
{
    if (const std::errc fault = MST_FAULTPOINT("sweep.checkpoint_write");
        fault != std::errc{}) {
        throw CheckpointWriteError("sweep shard write failed (injected fault): " +
                                       impl_->path,
                                   fault);
    }
    ByteBuffer& buffer = impl_->scratch;
    buffer.clear();
    encode_record(buffer, record);
    impl_->put(buffer);
    // Flush per record: a killed run keeps every completed scenario on
    // disk (the file is still incomplete without a trailer, but cheap
    // to diagnose and safe to discard).
    std::fflush(impl_->file);
    fnv_mix(impl_->checksum, buffer.data(), buffer.size());
    ++impl_->written;
}

void ShardWriter::heartbeat(std::uint32_t index, std::uint32_t attempt)
{
    ByteBuffer& buffer = impl_->scratch;
    buffer.clear();
    buffer.u32(index);
    buffer.u8(kStatusHeartbeat);
    buffer.u32(attempt);
    impl_->put(buffer);
    std::fflush(impl_->file);
    fnv_mix(impl_->checksum, buffer.data(), buffer.size());
}

void ShardWriter::finish()
{
    if (impl_->finished) {
        return;
    }
    if (impl_->written != impl_->expected) {
        throw ValidationError("sweep shard record count mismatch in " + impl_->path);
    }
    if (const std::errc fault = MST_FAULTPOINT("sweep.trailer_write");
        fault != std::errc{}) {
        throw CheckpointWriteError("sweep shard trailer write failed (injected fault): " +
                                       impl_->path,
                                   fault);
    }
    // The trailer is the checkpoint's validity marker: make sure every
    // record byte is durably on disk before it becomes observable, so a
    // trailer that validates can never describe records a torn write
    // lost.
    std::fflush(impl_->file);
    if (::fsync(::fileno(impl_->file)) != 0) {
        throw CheckpointWriteError("sweep shard fsync failed: " + impl_->path,
                                   static_cast<std::errc>(errno));
    }
    ByteBuffer trailer;
    trailer.raw(kTrailerMagic, sizeof(kTrailerMagic));
    trailer.u32(impl_->written);
    trailer.u64(impl_->checksum);
    impl_->put(trailer);
    std::fflush(impl_->file);
    if (::fsync(::fileno(impl_->file)) != 0) {
        throw CheckpointWriteError("sweep shard fsync failed: " + impl_->path,
                                   static_cast<std::errc>(errno));
    }
    std::fclose(impl_->file);
    impl_->file = nullptr;
    impl_->finished = true;
}

std::optional<ShardFile> read_shard_file(const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        return std::nullopt;
    }
    std::vector<unsigned char> bytes;
    unsigned char chunk[4096];
    std::size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
        bytes.insert(bytes.end(), chunk, chunk + got);
    }
    std::fclose(file);

    ByteReader reader(std::move(bytes));
    if (!reader.magic(kHeaderMagic)) {
        return std::nullopt;
    }
    ShardFile shard;
    shard.shard = reader.u32();
    shard.shard_count = reader.u32();
    shard.spec_fingerprint = reader.u64();
    shard.expected_records = reader.u32();
    if (!reader.ok()) {
        return std::nullopt;
    }

    std::uint64_t checksum = kFnvOffset;
    shard.records.reserve(shard.expected_records);
    while (shard.records.size() < shard.expected_records) {
        const std::size_t start = reader.position();
        SweepRecord record;
        record.index = reader.u32();
        const std::uint8_t status = reader.u8();
        if (status == kStatusHeartbeat) {
            SweepHeartbeat beat;
            beat.index = record.index;
            beat.attempt = reader.u32();
            if (!reader.ok()) {
                return shard;
            }
            fnv_mix(checksum, reader.at(start), reader.position() - start);
            shard.heartbeats.push_back(beat);
            continue;
        }
        record.ok = status != kStatusError;
        if (record.ok) {
            record.sites = reader.u32();
            record.channels_per_site = reader.u32();
            record.test_cycles = reader.u64();
            record.devices_per_hour = reader.f64();
            record.pack_calls = reader.u64();
            record.pack_cache_hits = reader.u64();
            record.greedy_passes = reader.u64();
            record.depth_profiles = reader.u64();
            record.pruned_packs = reader.u64();
            record.site_points = reader.u64();
            record.wall_ns = reader.u64();
        } else {
            const auto kind = reader.u8();
            record.error_kind = (kind >= 1 && kind <= 4) ? static_cast<SweepErrorKind>(kind)
                                                         : SweepErrorKind::other;
            const std::uint32_t length = reader.u32();
            record.error = reader.str(length);
        }
        if (!reader.ok()) {
            // Truncated mid-record: a killed run. Everything up to here
            // parsed, but without a trailer the file stays incomplete.
            return shard;
        }
        fnv_mix(checksum, reader.at(start), reader.position() - start);
        shard.records.push_back(std::move(record));
    }

    if (!reader.magic(kTrailerMagic)) {
        return shard;
    }
    const std::uint32_t trailer_count = reader.u32();
    const std::uint64_t trailer_checksum = reader.u64();
    if (!reader.ok() || trailer_count != shard.records.size() || trailer_checksum != checksum) {
        return shard;
    }
    shard.complete = true;
    return shard;
}

} // namespace mst
