// Sharded, resumable sweep engine over an expanded ScenarioSpec — the
// ROADMAP item-5 workhorse behind `mst sweep`.
//
// An expanded scenario list is partitioned round-robin into S shards
// (scenario i lands in shard i % S). Each shard streams its results
// into a compact binary checkpoint file (shard-NNNN.msr, format in
// sweep_records.hpp); a shard whose file carries a valid trailer is
// complete and a resumed run reuses it without recomputation. With
// W > 1 workers a supervisor forks one worker process per pending
// shard (at most W in flight) and watches each of them.
//
// Supervision (docs/robustness.md): every scenario execution is
// preceded by a heartbeat record in the shard file, so the supervisor
// always knows which scenario a dead worker was running. A worker that
// exits abnormally, or whose shard file stops growing for longer than
// the hang timeout (it is then SIGKILLed), is restarted with capped
// exponential backoff derived from the retry count — never from wall
// clock, so a fault-riddled run stays deterministic. After
// `max_restarts` consecutive failures of one shard the scenario in
// flight is quarantined: subsequent attempts record it as a typed
// `worker_crash` error instead of executing it, so one poison scenario
// cannot sink the run. Inline (workers == 1) execution gets the same
// retry/quarantine treatment for checkpoint-write failures.
//
// Determinism contract: the merged report.json contains scenario
// results only — name, solution fingerprint, optimizer work counters,
// or the error — never wall times, shard indices, shard counts, or
// thread counts. The report is therefore byte-identical across any
// combination of shard count, worker count, thread count, and
// kill/resume cycles of the same spec. Latency (per-shard and total
// p50/p95/p99 over per-scenario wall times) is returned in the
// SweepOutcome for the CLI to print, and is explicitly outside the
// determinism contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perf/stopwatch.hpp"
#include "scenario/scenario_spec.hpp"

namespace mst {

struct SweepOptions {
    /// Directory for shard checkpoints and the final report.json;
    /// created if missing. Required.
    std::string out_dir;
    int shards = 8;
    /// Worker processes. 1 runs everything inline in the calling
    /// process; W > 1 forks W children. Fork happens before the parent
    /// does any optimizer work, so the lazily-started executor pool is
    /// never cloned into a child.
    int workers = 1;
    /// Intra-scenario optimizer threads (OptimizeOptions::threads);
    /// 0 = hardware concurrency.
    int threads = 0;
    /// Test hook: stop the run abruptly (no trailer, no report) after
    /// this many records have been written by this invocation — a
    /// deterministic stand-in for SIGKILL mid-shard. 0 = disabled.
    /// Honored only by inline (workers <= 1) runs.
    std::size_t abort_after_records = 0;

    // Supervision knobs (see the header comment).

    /// Consecutive failures of one shard before the scenario in flight
    /// is quarantined as a worker_crash record.
    int max_restarts = 3;
    /// Restart backoff for retry k is min(backoff_base_ms << k,
    /// backoff_cap_ms) milliseconds. 0 disables sleeping (tests, CI).
    int backoff_base_ms = 100;
    int backoff_cap_ms = 2000;
    /// A supervised worker whose shard file has not grown for this long
    /// is declared hung and SIGKILLed (counts as a crash). 0 disables
    /// the watchdog.
    int hang_timeout_ms = 30000;
    /// SIGTERM-to-SIGKILL grace when a shutdown request interrupts the
    /// supervisor (SweepOutcome::interrupted / drain_killed).
    int drain_timeout_ms = 5000;
};

/// Latency summary of one shard (outside the determinism contract).
struct ShardTiming {
    int shard = 0;
    int scenarios = 0;
    int failed = 0;
    /// True when the shard was reloaded from a complete checkpoint
    /// instead of executed by this invocation.
    bool resumed = false;
    /// Percentiles over the shard's per-scenario optimize wall times.
    TimingStats wall;
};

struct SweepOutcome {
    std::size_t scenario_count = 0;
    std::size_t executed = 0; ///< scenarios computed by this invocation
    std::size_t resumed = 0;  ///< scenarios reloaded from checkpoints
    std::size_t failed = 0;   ///< scenarios that ended in an error record
    /// True when abort_after_records tripped: shard files up to the
    /// abort point are on disk, no report was written.
    bool aborted = false;
    /// True when SIGTERM/SIGINT interrupted the supervisor: live
    /// workers were signaled and reaped, no report was written.
    bool interrupted = false;
    /// True when a worker ignored SIGTERM past the drain grace and had
    /// to be SIGKILLed (the CLI exits nonzero in that case).
    bool drain_killed = false;
    std::string report_path;
    std::vector<ShardTiming> shards;
    /// Worker deaths / hangs / checkpoint-write failures the supervisor
    /// absorbed (each one triggered a shard restart).
    std::size_t worker_failures = 0;
    /// Shard executions restarted by supervision.
    std::size_t restarts = 0;
    /// Scenario indices quarantined as worker_crash records, ascending.
    /// These are the only entries allowed to differ from a fault-free
    /// run's report.
    std::vector<std::uint32_t> quarantined;
    /// Percentiles over every scenario's wall time (resumed ones report
    /// the wall time recorded when they originally ran).
    TimingStats total_wall;
};

/// Run (or resume) a sweep. `sweep_name` is echoed into report.json.
/// Throws ValidationError on unusable options, an unwritable out_dir,
/// or a worker process that died abnormally.
[[nodiscard]] SweepOutcome run_sweep(const std::string& sweep_name,
                                     const std::vector<Scenario>& scenarios,
                                     const SweepOptions& options);

} // namespace mst
