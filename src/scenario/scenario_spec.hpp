// The one scenario layer: a declarative ScenarioSpec (SOC sources x
// test-cell grid x option variants, with optional exact knobs) expanded
// into concrete scenario lists.
//
// Every surface that runs "many optimizations" — the `mst bench`
// canonical suite, the certify suite, `mst batch`, `mst sweep`, and the
// sweep examples — builds its scenarios through this layer instead of
// hand-rolling its own grid loops, so a new workload family lands in
// one place and shows up everywhere.
//
// A spec is a cross product: every SOC source x every cell x every
// variant, in soc-major / cell / variant-minor order. Scenario lists
// that are not a product (the certify suite pairs each SOC with its own
// depth) are unions of single-point specs; expand_all() concatenates.
//
// Specs can be built programmatically (the bench suites do) or parsed
// from a sectioned text config (see parse_scenario_spec; format
// documented in docs/sweep.md):
//
//   [sweep]
//   name = demo
//
//   [soc]                      # one SOC per section, repeatable
//   name = d695                # benchmark name or .soc path
//
//   [soc]
//   generate = gen300x-deep    # scaled generator preset
//   modules = 3000
//   shape = narrow_deep        # classic | wide_shallow | narrow_deep
//
//   [cells]                    # channels x depths grid
//   channels = 256, 512
//   depths = 8M, 32M
//   clock = 20e6               # optional scalars for the whole grid
//
//   [cell big-mem]             # or one named cell per section
//   channels = 512
//   depth = 32M
//
//   [variant plain]            # option variants; empty body = defaults
//   [variant broadcast]
//   broadcast = true
//
// Variant keys are the protocol's option-binding JSON fields
// (service/protocol.hpp), so the spec surface cannot drift from the
// request API or the CLI flags.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ate/ate.hpp"
#include "core/problem.hpp"
#include "soc/generator.hpp"
#include "soc/soc.hpp"

namespace mst {

/// Where a scenario's SOC comes from. Exactly one kind per source; the
/// factory helpers below are the intended constructors.
struct SocSource {
    enum class Kind {
        spec,      ///< benchmark name or .soc file path (load_soc_spec)
        generator, ///< scaled_benchmark_config(label, modules, shape)
        random,    ///< random_soc(seed, modules) — property-test population
    };

    Kind kind = Kind::spec;
    std::string label; ///< scenario-name component; defaults to `spec`
    std::string spec;  ///< Kind::spec: the name|path to load
    int modules = 0;   ///< generator/random module count
    ScaledShape shape = ScaledShape::classic; ///< generator shape preset
    std::uint64_t seed = 0;                   ///< random seed
    /// Keep only the first N modules of the loaded/generated SOC
    /// (0 = whole SOC). The certify suite works 12-module prefixes of
    /// the big ITC'02 chips this way.
    int subset_modules = 0;

    [[nodiscard]] static SocSource by_spec(std::string spec, std::string label = "");
    [[nodiscard]] static SocSource generated(std::string label, int modules,
                                             ScaledShape shape);
    [[nodiscard]] static SocSource random(std::string label, std::uint64_t seed, int modules);

    /// Resolve this source to an SOC (load / generate / subset). Throws
    /// ParseError or ValidationError on unresolvable sources.
    [[nodiscard]] Soc resolve() const;
};

/// One test cell of the grid. An empty label is derived at expansion as
/// "<channels>x<depth>" (e.g. "512x7M"), matching the historical bench
/// scenario names.
struct CellPoint {
    std::string label;
    TestCell cell;
};

/// One named option set ("plain", "broadcast", "exact", ...).
struct OptionVariant {
    std::string label;
    OptimizeOptions options;
};

/// The declarative sweep spec: expand() runs the full cross product.
struct ScenarioSpec {
    std::string name; ///< sweep name; free-form, echoed into reports
    std::vector<SocSource> socs;
    std::vector<CellPoint> cells;
    std::vector<OptionVariant> variants;
};

/// One concrete scenario of an expanded spec. This is the shape every
/// runner consumes: the bench suite's BenchCase is an alias of it, and
/// batch/sweep execution converts it directly.
struct Scenario {
    std::string name;     ///< "<soc>/<cell>/<variant>"
    std::string soc_name; ///< SOC source label
    std::string variant;  ///< option-variant label
    std::shared_ptr<const Soc> soc;
    TestCell cell;
    OptimizeOptions options;
};

/// Expand the cross product in soc-major, cell, variant-minor order.
/// Each SocSource is resolved exactly once and shared (one Soc object
/// per source), so downstream table builds are shared too. Throws
/// ValidationError on an empty spec (no socs/cells/variants) or on
/// duplicate scenario names.
[[nodiscard]] std::vector<Scenario> expand(const ScenarioSpec& spec);

/// Concatenate the expansions of several specs (non-product scenario
/// lists). Duplicate names across specs are rejected like within one.
[[nodiscard]] std::vector<Scenario> expand_all(const std::vector<ScenarioSpec>& specs);

/// Parse the sectioned text config format (header comment above and
/// docs/sweep.md). Errors are line-accurate ValidationErrors, with
/// nearest-match suggestions for misspelled keys.
[[nodiscard]] ScenarioSpec parse_scenario_spec(std::istream& in);

/// Load and parse a spec file; the sweep name defaults to the file name
/// when the [sweep] section does not set one.
[[nodiscard]] ScenarioSpec load_scenario_spec(const std::string& path);

/// Identity fingerprint of an expanded scenario list (FNV-1a over the
/// scenario names): the sweep engine stamps it into checkpoint shard
/// files so a resumed run never mixes results from a different spec.
[[nodiscard]] std::uint64_t scenario_list_fingerprint(const std::vector<Scenario>& scenarios);

} // namespace mst
