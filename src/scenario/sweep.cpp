#include "scenario/sweep.hpp"

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/optimizer.hpp"
#include "report/solution_json.hpp"
#include "scenario/sweep_records.hpp"

namespace mst {

namespace {

std::string shard_path(const std::string& out_dir, int shard)
{
    char name[32];
    std::snprintf(name, sizeof name, "shard-%04d.msr", shard);
    return out_dir + "/" + name;
}

/// The scenario indices of one round-robin shard, ascending.
std::vector<std::uint32_t> shard_indices(std::size_t scenario_count, int shard, int shards)
{
    std::vector<std::uint32_t> indices;
    for (std::size_t i = static_cast<std::size_t>(shard); i < scenario_count;
         i += static_cast<std::size_t>(shards)) {
        indices.push_back(static_cast<std::uint32_t>(i));
    }
    return indices;
}

/// A complete checkpoint is reusable only if every identity field
/// matches the current run: same spec, same partition, same indices.
bool checkpoint_matches(const ShardFile& file, int shard, int shards,
                        std::uint64_t spec_fingerprint,
                        const std::vector<std::uint32_t>& indices)
{
    if (!file.complete || file.shard != static_cast<std::uint32_t>(shard) ||
        file.shard_count != static_cast<std::uint32_t>(shards) ||
        file.spec_fingerprint != spec_fingerprint ||
        file.records.size() != indices.size()) {
        return false;
    }
    for (std::size_t i = 0; i < indices.size(); ++i) {
        if (file.records[i].index != indices[i]) {
            return false;
        }
    }
    return true;
}

SweepRecord run_one(const Scenario& scenario, std::uint32_t index, int threads)
{
    SweepRecord record;
    record.index = index;
    OptimizeOptions options = scenario.options;
    options.threads = threads;

    Stopwatch stopwatch;
    try {
        const Solution solution = optimize_multi_site(*scenario.soc, scenario.cell, options);
        record.ok = true;
        record.sites = static_cast<std::uint32_t>(solution.sites);
        record.channels_per_site = static_cast<std::uint32_t>(solution.channels_per_site);
        record.test_cycles = static_cast<std::uint64_t>(solution.test_cycles);
        record.devices_per_hour = solution.throughput.devices_per_hour;
        record.pack_calls = static_cast<std::uint64_t>(solution.stats.packing.pack_calls);
        record.pack_cache_hits =
            static_cast<std::uint64_t>(solution.stats.packing.pack_cache_hits);
        record.greedy_passes = static_cast<std::uint64_t>(solution.stats.packing.greedy_passes);
        record.depth_profiles =
            static_cast<std::uint64_t>(solution.stats.packing.depth_profiles);
        record.pruned_packs = static_cast<std::uint64_t>(solution.stats.packing.pruned_packs);
        record.site_points = static_cast<std::uint64_t>(solution.stats.site_points);
    } catch (const InfeasibleError& error) {
        record.error_kind = SweepErrorKind::infeasible;
        record.error = error.what();
    } catch (const ValidationError& error) {
        record.error_kind = SweepErrorKind::validation;
        record.error = error.what();
    } catch (const std::exception& error) {
        record.error_kind = SweepErrorKind::other;
        record.error = error.what();
    }
    record.wall_ns = static_cast<std::uint64_t>(stopwatch.elapsed() * 1e9);
    return record;
}

/// Execute one shard into its checkpoint file. Returns false when the
/// abort_after_records test hook tripped mid-shard (the file is left
/// without a trailer, exactly like a killed process would).
bool run_shard(const std::vector<Scenario>& scenarios, const std::string& out_dir, int shard,
               int shards, std::uint64_t spec_fingerprint, int threads,
               std::size_t abort_after_records, std::size_t& written_total)
{
    const std::vector<std::uint32_t> indices = shard_indices(scenarios.size(), shard, shards);
    ShardWriter writer(shard_path(out_dir, shard), static_cast<std::uint32_t>(shard),
                       static_cast<std::uint32_t>(shards), spec_fingerprint,
                       static_cast<std::uint32_t>(indices.size()));
    for (const std::uint32_t index : indices) {
        if (abort_after_records != 0 && written_total >= abort_after_records) {
            return false;
        }
        writer.write(run_one(scenarios[index], index, threads));
        ++written_total;
    }
    writer.finish();
    return true;
}

std::string fixed_number(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    return buffer;
}

/// The deterministic merged report: scenario identities and results
/// only. No wall times, shard geometry, or thread counts — see the
/// determinism contract in sweep.hpp.
void write_report(const std::string& path, const std::string& sweep_name,
                  const std::vector<Scenario>& scenarios,
                  const std::vector<SweepRecord>& by_index)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"mst.sweep\",\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"sweep\": \"" << json_escape(sweep_name) << "\",\n";
    out << "  \"scenario_count\": " << scenarios.size() << ",\n";
    out << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < by_index.size(); ++i) {
        const SweepRecord& record = by_index[i];
        out << "    { \"index\": " << record.index << ", \"name\": \""
            << json_escape(scenarios[record.index].name) << "\", \"ok\": "
            << (record.ok ? "true" : "false");
        if (record.ok) {
            out << ",\n      \"fingerprint\": { \"sites\": " << record.sites
                << ", \"channels_per_site\": " << record.channels_per_site
                << ", \"test_cycles\": " << record.test_cycles
                << ", \"devices_per_hour\": " << fixed_number(record.devices_per_hour)
                << " },\n";
            out << "      \"optimizer_stats\": { \"pack_calls\": " << record.pack_calls
                << ", \"pack_cache_hits\": " << record.pack_cache_hits
                << ", \"greedy_passes\": " << record.greedy_passes
                << ", \"depth_profiles\": " << record.depth_profiles
                << ", \"pruned_packs\": " << record.pruned_packs
                << ", \"site_points\": " << record.site_points << " } }";
        } else {
            out << ", \"error_kind\": \"" << sweep_error_kind_name(record.error_kind)
                << "\", \"error\": \"" << json_escape(record.error) << "\" }";
        }
        out << (i + 1 < by_index.size() ? ",\n" : "\n");
    }
    out << "  ]\n";
    out << "}\n";

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) {
        throw ValidationError("cannot write sweep report: " + path);
    }
    file << out.str();
    if (!file.flush()) {
        throw ValidationError("sweep report write failed: " + path);
    }
}

void ensure_directory(const std::string& path)
{
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
        return;
    }
    throw ValidationError("cannot create sweep output directory " + path + ": " +
                          std::strerror(errno));
}

TimingStats stats_over(const std::vector<SweepRecord>& records)
{
    std::vector<Seconds> samples;
    samples.reserve(records.size());
    for (const SweepRecord& record : records) {
        samples.push_back(static_cast<Seconds>(record.wall_ns) * 1e-9);
    }
    return TimingStats::from_samples(std::move(samples));
}

} // namespace

SweepOutcome run_sweep(const std::string& sweep_name, const std::vector<Scenario>& scenarios,
                       const SweepOptions& options)
{
    if (scenarios.empty()) {
        throw ValidationError("sweep has no scenarios");
    }
    if (options.out_dir.empty()) {
        throw ValidationError("sweep output directory not set");
    }
    if (options.shards < 1) {
        throw ValidationError("sweep shard count must be at least 1");
    }
    if (options.workers < 1) {
        throw ValidationError("sweep worker count must be at least 1");
    }
    ensure_directory(options.out_dir);

    // Never more shards than scenarios: empty shards would be pure
    // bookkeeping noise and break the "one worker per pending shard"
    // intuition.
    const int shards =
        std::min<int>(options.shards, static_cast<int>(scenarios.size()));
    const std::uint64_t spec_fingerprint = scenario_list_fingerprint(scenarios);

    SweepOutcome outcome;
    outcome.scenario_count = scenarios.size();
    outcome.report_path = options.out_dir + "/report.json";

    // Phase 1: classify shards as complete checkpoints or pending work.
    std::vector<int> pending;
    std::vector<bool> resumed(static_cast<std::size_t>(shards), false);
    for (int shard = 0; shard < shards; ++shard) {
        const std::vector<std::uint32_t> indices =
            shard_indices(scenarios.size(), shard, shards);
        const std::string path = shard_path(options.out_dir, shard);
        const std::optional<ShardFile> existing = read_shard_file(path);
        if (existing && checkpoint_matches(*existing, shard, shards, spec_fingerprint, indices)) {
            resumed[static_cast<std::size_t>(shard)] = true;
            outcome.resumed += indices.size();
            continue;
        }
        if (existing) {
            // Partial or foreign checkpoint: recompute from scratch.
            std::remove(path.c_str());
        }
        pending.push_back(shard);
    }

    // Phase 2: execute pending shards — inline, or fanned out across
    // forked worker processes. Forking happens before this process has
    // done any optimizer work, so no half-initialized executor pool is
    // ever duplicated into a child.
    const int workers = std::min<int>(options.workers, static_cast<int>(pending.size()));
    if (workers > 1) {
        std::vector<pid_t> children;
        children.reserve(static_cast<std::size_t>(workers));
        for (int worker = 0; worker < workers; ++worker) {
            const pid_t pid = ::fork();
            if (pid < 0) {
                throw ValidationError("sweep worker fork failed");
            }
            if (pid == 0) {
                int status = 0;
                try {
                    std::size_t written = 0;
                    for (std::size_t i = static_cast<std::size_t>(worker); i < pending.size();
                         i += static_cast<std::size_t>(workers)) {
                        run_shard(scenarios, options.out_dir, pending[i], shards,
                                  spec_fingerprint, options.threads, 0, written);
                    }
                } catch (const std::exception& error) {
                    std::fprintf(stderr, "sweep worker %d: %s\n", worker, error.what());
                    status = 1;
                } catch (...) {
                    status = 1;
                }
                // _exit, not exit: never flush the parent's inherited
                // stdio buffers from a forked child.
                ::_exit(status);
            }
            children.push_back(pid);
        }
        bool worker_failed = false;
        for (const pid_t pid : children) {
            int status = 0;
            if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
                WEXITSTATUS(status) != 0) {
                worker_failed = true;
            }
        }
        if (worker_failed) {
            throw ValidationError("a sweep worker process failed; rerun to resume");
        }
    } else {
        std::size_t written = 0;
        for (const int shard : pending) {
            if (!run_shard(scenarios, options.out_dir, shard, shards, spec_fingerprint,
                           options.threads, options.abort_after_records, written)) {
                outcome.aborted = true;
                outcome.executed = written;
                return outcome;
            }
        }
    }

    // Phase 3: merge every shard checkpoint into the deterministic
    // report, and fold wall times into the (non-deterministic) latency
    // summaries.
    std::vector<SweepRecord> by_index(scenarios.size());
    std::vector<bool> seen(scenarios.size(), false);
    for (int shard = 0; shard < shards; ++shard) {
        const std::string path = shard_path(options.out_dir, shard);
        const std::optional<ShardFile> file = read_shard_file(path);
        const std::vector<std::uint32_t> indices =
            shard_indices(scenarios.size(), shard, shards);
        if (!file || !checkpoint_matches(*file, shard, shards, spec_fingerprint, indices)) {
            throw ValidationError("sweep shard file missing or invalid after execution: " +
                                  path);
        }
        ShardTiming timing;
        timing.shard = shard;
        timing.scenarios = static_cast<int>(file->records.size());
        timing.resumed = resumed[static_cast<std::size_t>(shard)];
        timing.wall = stats_over(file->records);
        for (const SweepRecord& record : file->records) {
            if (!record.ok) {
                ++timing.failed;
                ++outcome.failed;
            }
            seen[record.index] = true;
            by_index[record.index] = record;
        }
        outcome.shards.push_back(std::move(timing));
    }
    if (std::find(seen.begin(), seen.end(), false) != seen.end()) {
        throw ValidationError("sweep merge did not cover every scenario");
    }
    outcome.executed = scenarios.size() - outcome.resumed;
    outcome.total_wall = stats_over(by_index);

    write_report(outcome.report_path, sweep_name, scenarios, by_index);
    return outcome;
}

} // namespace mst
