#include "scenario/sweep.hpp"

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <system_error>
#include <thread>

#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "common/signals.hpp"
#include "core/optimizer.hpp"
#include "report/solution_json.hpp"
#include "scenario/sweep_records.hpp"

namespace mst {

namespace {

std::string shard_path(const std::string& out_dir, int shard)
{
    char name[32];
    std::snprintf(name, sizeof name, "shard-%04d.msr", shard);
    return out_dir + "/" + name;
}

/// The scenario indices of one round-robin shard, ascending.
std::vector<std::uint32_t> shard_indices(std::size_t scenario_count, int shard, int shards)
{
    std::vector<std::uint32_t> indices;
    for (std::size_t i = static_cast<std::size_t>(shard); i < scenario_count;
         i += static_cast<std::size_t>(shards)) {
        indices.push_back(static_cast<std::uint32_t>(i));
    }
    return indices;
}

/// A complete checkpoint is reusable only if every identity field
/// matches the current run: same spec, same partition, same indices.
bool checkpoint_matches(const ShardFile& file, int shard, int shards,
                        std::uint64_t spec_fingerprint,
                        const std::vector<std::uint32_t>& indices)
{
    if (!file.complete || file.shard != static_cast<std::uint32_t>(shard) ||
        file.shard_count != static_cast<std::uint32_t>(shards) ||
        file.spec_fingerprint != spec_fingerprint ||
        file.records.size() != indices.size()) {
        return false;
    }
    for (std::size_t i = 0; i < indices.size(); ++i) {
        if (file.records[i].index != indices[i]) {
            return false;
        }
    }
    return true;
}

SweepRecord run_one(const Scenario& scenario, std::uint32_t index, int threads)
{
    SweepRecord record;
    record.index = index;
    OptimizeOptions options = scenario.options;
    options.threads = threads;

    Stopwatch stopwatch;
    try {
        const Solution solution = optimize_multi_site(*scenario.soc, scenario.cell, options);
        record.ok = true;
        record.sites = static_cast<std::uint32_t>(solution.sites);
        record.channels_per_site = static_cast<std::uint32_t>(solution.channels_per_site);
        record.test_cycles = static_cast<std::uint64_t>(solution.test_cycles);
        record.devices_per_hour = solution.throughput.devices_per_hour;
        record.pack_calls = static_cast<std::uint64_t>(solution.stats.packing.pack_calls);
        record.pack_cache_hits =
            static_cast<std::uint64_t>(solution.stats.packing.pack_cache_hits);
        record.greedy_passes = static_cast<std::uint64_t>(solution.stats.packing.greedy_passes);
        record.depth_profiles =
            static_cast<std::uint64_t>(solution.stats.packing.depth_profiles);
        record.pruned_packs = static_cast<std::uint64_t>(solution.stats.packing.pruned_packs);
        record.site_points = static_cast<std::uint64_t>(solution.stats.site_points);
    } catch (const InfeasibleError& error) {
        record.error_kind = SweepErrorKind::infeasible;
        record.error = error.what();
    } catch (const ValidationError& error) {
        record.error_kind = SweepErrorKind::validation;
        record.error = error.what();
    } catch (const std::exception& error) {
        record.error_kind = SweepErrorKind::other;
        record.error = error.what();
    }
    record.wall_ns = static_cast<std::uint64_t>(stopwatch.elapsed() * 1e9);
    return record;
}

/// The canonical record for a quarantined scenario. Fixed text, no
/// counts or wall-clock detail: quarantined entries must be
/// byte-identical across runs that quarantine the same scenario.
SweepRecord quarantine_record(std::uint32_t index)
{
    SweepRecord record;
    record.index = index;
    record.ok = false;
    record.error_kind = SweepErrorKind::worker_crash;
    record.error = "scenario quarantined after repeated worker crashes";
    return record;
}

/// Execute one shard into its checkpoint file. Scenarios in
/// `quarantined` are recorded as worker_crash errors instead of
/// running; every executed scenario is preceded by a heartbeat carrying
/// `attempt`. Returns false when the abort_after_records test hook
/// tripped mid-shard (the file is left without a trailer, exactly like
/// a killed process would). `current` tracks the scenario in flight so
/// an inline caller can identify the poison after a thrown
/// checkpoint-write failure.
bool run_shard(const std::vector<Scenario>& scenarios, const std::string& out_dir, int shard,
               int shards, std::uint64_t spec_fingerprint, int threads, std::uint32_t attempt,
               const std::set<std::uint32_t>& quarantined, std::size_t abort_after_records,
               std::size_t& written_total, std::optional<std::uint32_t>* current = nullptr)
{
    const std::vector<std::uint32_t> indices = shard_indices(scenarios.size(), shard, shards);
    ShardWriter writer(shard_path(out_dir, shard), static_cast<std::uint32_t>(shard),
                       static_cast<std::uint32_t>(shards), spec_fingerprint,
                       static_cast<std::uint32_t>(indices.size()));
    for (const std::uint32_t index : indices) {
        if (abort_after_records != 0 && written_total >= abort_after_records) {
            return false;
        }
        if (current != nullptr) {
            *current = index;
        }
        if (quarantined.count(index) != 0) {
            writer.write(quarantine_record(index));
            ++written_total;
            continue;
        }
        writer.heartbeat(index, attempt);
        if (const std::errc fault = MST_FAULTPOINT("sweep.scenario"); fault != std::errc{}) {
            SweepRecord record;
            record.index = index;
            record.ok = false;
            record.error_kind = SweepErrorKind::other;
            record.error = "injected scenario fault: " + std::make_error_code(fault).message();
            writer.write(record);
            ++written_total;
            continue;
        }
        writer.write(run_one(scenarios[index], index, threads));
        ++written_total;
    }
    writer.finish();
    return true;
}

/// EINTR-correct waitpid: a stray signal must not make the supervisor
/// misread a healthy worker as dead.
pid_t waitpid_retry(pid_t pid, int* status, int flags)
{
    for (;;) {
        const pid_t result = ::waitpid(pid, status, flags);
        if (result >= 0 || errno != EINTR) {
            return result;
        }
    }
}

std::uint64_t file_size_of(const std::string& path)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
        return 0;
    }
    return static_cast<std::uint64_t>(st.st_size);
}

/// Restart backoff for retry `retries`: capped exponential, derived
/// from the retry count only (deterministic schedule; only the real
/// elapsed time varies).
std::chrono::milliseconds backoff_delay(const SweepOptions& options, int retries)
{
    if (options.backoff_base_ms <= 0) {
        return std::chrono::milliseconds(0);
    }
    const int shift = std::min(retries, 20);
    const long long raw = static_cast<long long>(options.backoff_base_ms) << shift;
    const long long cap = std::max<long long>(options.backoff_cap_ms, options.backoff_base_ms);
    return std::chrono::milliseconds(std::min(raw, cap));
}

std::string fixed_number(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    return buffer;
}

/// The deterministic merged report: scenario identities and results
/// only. No wall times, shard geometry, or thread counts — see the
/// determinism contract in sweep.hpp.
void write_report(const std::string& path, const std::string& sweep_name,
                  const std::vector<Scenario>& scenarios,
                  const std::vector<SweepRecord>& by_index)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"mst.sweep\",\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"sweep\": \"" << json_escape(sweep_name) << "\",\n";
    out << "  \"scenario_count\": " << scenarios.size() << ",\n";
    out << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < by_index.size(); ++i) {
        const SweepRecord& record = by_index[i];
        out << "    { \"index\": " << record.index << ", \"name\": \""
            << json_escape(scenarios[record.index].name) << "\", \"ok\": "
            << (record.ok ? "true" : "false");
        if (record.ok) {
            out << ",\n      \"fingerprint\": { \"sites\": " << record.sites
                << ", \"channels_per_site\": " << record.channels_per_site
                << ", \"test_cycles\": " << record.test_cycles
                << ", \"devices_per_hour\": " << fixed_number(record.devices_per_hour)
                << " },\n";
            out << "      \"optimizer_stats\": { \"pack_calls\": " << record.pack_calls
                << ", \"pack_cache_hits\": " << record.pack_cache_hits
                << ", \"greedy_passes\": " << record.greedy_passes
                << ", \"depth_profiles\": " << record.depth_profiles
                << ", \"pruned_packs\": " << record.pruned_packs
                << ", \"site_points\": " << record.site_points << " } }";
        } else {
            out << ", \"error_kind\": \"" << sweep_error_kind_name(record.error_kind)
                << "\", \"error\": \"" << json_escape(record.error) << "\" }";
        }
        out << (i + 1 < by_index.size() ? ",\n" : "\n");
    }
    out << "  ]\n";
    out << "}\n";

    if (const std::errc fault = MST_FAULTPOINT("sweep.report_write"); fault != std::errc{}) {
        throw ValidationError("sweep report write failed (injected fault): " + path);
    }
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) {
        throw ValidationError("cannot write sweep report: " + path);
    }
    file << out.str();
    if (!file.flush()) {
        throw ValidationError("sweep report write failed: " + path);
    }
}

void ensure_directory(const std::string& path)
{
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
        return;
    }
    throw ValidationError("cannot create sweep output directory " + path + ": " +
                          std::strerror(errno));
}

TimingStats stats_over(const std::vector<SweepRecord>& records)
{
    std::vector<Seconds> samples;
    samples.reserve(records.size());
    for (const SweepRecord& record : records) {
        samples.push_back(static_cast<Seconds>(record.wall_ns) * 1e-9);
    }
    return TimingStats::from_samples(std::move(samples));
}

} // namespace

SweepOutcome run_sweep(const std::string& sweep_name, const std::vector<Scenario>& scenarios,
                       const SweepOptions& options)
{
    if (scenarios.empty()) {
        throw ValidationError("sweep has no scenarios");
    }
    if (options.out_dir.empty()) {
        throw ValidationError("sweep output directory not set");
    }
    if (options.shards < 1) {
        throw ValidationError("sweep shard count must be at least 1");
    }
    if (options.workers < 1) {
        throw ValidationError("sweep worker count must be at least 1");
    }
    if (options.max_restarts < 1) {
        throw ValidationError("sweep max_restarts must be at least 1");
    }
    ensure_directory(options.out_dir);

    // Never more shards than scenarios: empty shards would be pure
    // bookkeeping noise and break the "one worker per pending shard"
    // intuition.
    const int shards =
        std::min<int>(options.shards, static_cast<int>(scenarios.size()));
    const std::uint64_t spec_fingerprint = scenario_list_fingerprint(scenarios);

    SweepOutcome outcome;
    outcome.scenario_count = scenarios.size();
    outcome.report_path = options.out_dir + "/report.json";

    // Phase 1: classify shards as complete checkpoints or pending work.
    std::vector<int> pending;
    std::vector<bool> resumed(static_cast<std::size_t>(shards), false);
    for (int shard = 0; shard < shards; ++shard) {
        const std::vector<std::uint32_t> indices =
            shard_indices(scenarios.size(), shard, shards);
        const std::string path = shard_path(options.out_dir, shard);
        const std::optional<ShardFile> existing = read_shard_file(path);
        if (existing && checkpoint_matches(*existing, shard, shards, spec_fingerprint, indices)) {
            resumed[static_cast<std::size_t>(shard)] = true;
            outcome.resumed += indices.size();
            continue;
        }
        if (existing) {
            // Partial or foreign checkpoint: recompute from scratch.
            std::remove(path.c_str());
        }
        pending.push_back(shard);
    }

    // Phase 2: execute pending shards — inline with retry/quarantine,
    // or fanned out across supervised forked worker processes (one fork
    // per shard, at most W in flight). Forking happens before this
    // process has done any optimizer work, so no half-initialized
    // executor pool is ever duplicated into a child.
    const int workers = std::min<int>(options.workers, static_cast<int>(pending.size()));
    if (workers > 1) {
        struct ShardState {
            int consecutive_failures = 0;
            int total_failures = 0;
            int attempts = 0; ///< worker executions started for this shard
            std::set<std::uint32_t> quarantined;
            std::chrono::steady_clock::time_point not_before{};
        };
        struct Running {
            int shard = 0;
            pid_t pid = -1;
            std::uint64_t last_size = 0;
            std::chrono::steady_clock::time_point last_progress{};
        };
        std::vector<ShardState> state(static_cast<std::size_t>(shards));
        std::deque<int> queue(pending.begin(), pending.end());
        std::vector<Running> running;

        // A worker for `shard` failed (death, hang, spawn failure):
        // count it, quarantine the scenario in flight after max_restarts
        // consecutive failures, and requeue the shard behind a capped
        // exponential backoff derived from the retry count.
        auto handle_failure = [&](int shard, const char* what) {
            ShardState& st = state[static_cast<std::size_t>(shard)];
            ++st.consecutive_failures;
            ++st.total_failures;
            ++outcome.worker_failures;
            const std::size_t shard_size =
                shard_indices(scenarios.size(), shard, shards).size();
            if (st.total_failures >
                (options.max_restarts + 1) * static_cast<int>(shard_size + 1)) {
                throw ValidationError("sweep shard " + std::to_string(shard) +
                                      " keeps failing (" + what + "); giving up");
            }
            if (st.consecutive_failures >= options.max_restarts) {
                const std::optional<ShardFile> partial =
                    read_shard_file(shard_path(options.out_dir, shard));
                const std::optional<std::uint32_t> poison =
                    partial ? partial->poison_index() : std::nullopt;
                if (!poison) {
                    throw ValidationError("sweep shard " + std::to_string(shard) +
                                          " failed " + std::to_string(options.max_restarts) +
                                          " times with no scenario in flight (" + what + ")");
                }
                st.quarantined.insert(*poison);
                outcome.quarantined.push_back(*poison);
                st.consecutive_failures = 0;
            }
            st.not_before = std::chrono::steady_clock::now() +
                            backoff_delay(options, st.total_failures - 1);
            ++outcome.restarts;
            queue.push_back(shard);
        };

        while (!queue.empty() || !running.empty()) {
            if (ShutdownLatch::global().requested()) {
                // Signal-path hardening: forward the shutdown request to
                // every live worker, reap them EINTR-correctly within a
                // drain grace, and SIGKILL stragglers — reported via
                // drain_killed so the CLI can exit nonzero. Checkpoints
                // written so far stay on disk for a later resume.
                for (const Running& slot : running) {
                    (void)::kill(slot.pid, SIGTERM);
                }
                const auto deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(std::max(options.drain_timeout_ms, 0));
                while (!running.empty() && std::chrono::steady_clock::now() < deadline) {
                    for (std::size_t i = 0; i < running.size();) {
                        int status = 0;
                        if (waitpid_retry(running[i].pid, &status, WNOHANG) ==
                            running[i].pid) {
                            running.erase(running.begin() +
                                          static_cast<std::ptrdiff_t>(i));
                        } else {
                            ++i;
                        }
                    }
                    if (!running.empty()) {
                        std::this_thread::sleep_for(std::chrono::milliseconds(10));
                    }
                }
                for (const Running& slot : running) {
                    (void)::kill(slot.pid, SIGKILL);
                    int status = 0;
                    (void)waitpid_retry(slot.pid, &status, 0);
                    outcome.drain_killed = true;
                }
                running.clear();
                outcome.interrupted = true;
                outcome.executed = 0;
                outcome.report_path.clear(); // no report was written
                return outcome;
            }
            // Spawn ready shards into free worker slots. Shards still in
            // backoff rotate to the back of the queue.
            bool progressed = false;
            std::size_t examine = queue.size();
            while (examine-- > 0 && static_cast<int>(running.size()) < workers &&
                   !queue.empty()) {
                const int shard = queue.front();
                queue.pop_front();
                ShardState& st = state[static_cast<std::size_t>(shard)];
                if (st.not_before > std::chrono::steady_clock::now()) {
                    queue.push_back(shard);
                    continue;
                }
                if (MST_FAULTPOINT("sweep.worker_spawn") != std::errc{}) {
                    handle_failure(shard, "injected spawn fault");
                    continue;
                }
                const pid_t pid = ::fork();
                if (pid < 0) {
                    handle_failure(shard, "fork failed");
                    continue;
                }
                if (pid == 0) {
                    // Child: run exactly one shard and _exit (never
                    // flush the parent's inherited stdio buffers). The
                    // attempt number feeds heartbeats and the fault
                    // layer's *R gating, so injected crash rules stop
                    // firing on the restarted attempt.
                    fault::set_attempt(st.attempts);
                    int status_code = 0;
                    try {
                        std::size_t written = 0;
                        run_shard(scenarios, options.out_dir, shard, shards, spec_fingerprint,
                                  options.threads, static_cast<std::uint32_t>(st.attempts),
                                  st.quarantined, 0, written);
                    } catch (const std::exception& error) {
                        std::fprintf(stderr, "sweep worker (shard %d): %s\n", shard,
                                     error.what());
                        status_code = 1;
                    } catch (...) {
                        status_code = 1;
                    }
                    ::_exit(status_code);
                }
                ++st.attempts;
                Running slot;
                slot.shard = shard;
                slot.pid = pid;
                slot.last_size = file_size_of(shard_path(options.out_dir, shard));
                slot.last_progress = std::chrono::steady_clock::now();
                running.push_back(slot);
                progressed = true;
            }

            // Reap finished workers; watchdog the rest. Progress is
            // "the shard file grew" — every scenario writes at least a
            // heartbeat first, so a wedged optimize call stops the
            // growth and gets its worker SIGKILLed.
            for (std::size_t i = 0; i < running.size();) {
                Running& slot = running[i];
                int status = 0;
                const pid_t reaped = waitpid_retry(slot.pid, &status, WNOHANG);
                if (reaped == 0) {
                    const std::uint64_t size =
                        file_size_of(shard_path(options.out_dir, slot.shard));
                    if (size > slot.last_size) {
                        slot.last_size = size;
                        slot.last_progress = std::chrono::steady_clock::now();
                    } else if (options.hang_timeout_ms > 0 &&
                               std::chrono::steady_clock::now() - slot.last_progress >
                                   std::chrono::milliseconds(options.hang_timeout_ms)) {
                        ::kill(slot.pid, SIGKILL);
                        waitpid_retry(slot.pid, &status, 0);
                        const int shard = slot.shard;
                        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
                        handle_failure(shard, "hung worker killed by watchdog");
                        progressed = true;
                        continue;
                    }
                    ++i;
                    continue;
                }
                const int shard = slot.shard;
                const pid_t pid = slot.pid;
                running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
                progressed = true;
                if (reaped == pid && WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                    // Exit 0 still only counts if the checkpoint it left
                    // behind validates end to end.
                    const std::optional<ShardFile> file =
                        read_shard_file(shard_path(options.out_dir, shard));
                    if (file &&
                        checkpoint_matches(*file, shard, shards, spec_fingerprint,
                                           shard_indices(scenarios.size(), shard, shards))) {
                        state[static_cast<std::size_t>(shard)].consecutive_failures = 0;
                        continue;
                    }
                    handle_failure(shard, "worker left an invalid checkpoint");
                    continue;
                }
                handle_failure(shard, "worker died");
            }
            if (!progressed) {
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
            }
        }
    } else {
        // Inline execution gets the same retry/quarantine treatment for
        // checkpoint-layer failures (the scenario layer already maps its
        // own exceptions into typed error records).
        std::size_t written = 0;
        for (const int shard : pending) {
            int consecutive = 0;
            int total = 0;
            int attempts = 0;
            std::set<std::uint32_t> quarantined;
            const std::size_t shard_size =
                shard_indices(scenarios.size(), shard, shards).size();
            for (;;) {
                std::optional<std::uint32_t> current;
                try {
                    fault::set_attempt(attempts);
                    const bool finished = run_shard(
                        scenarios, options.out_dir, shard, shards, spec_fingerprint,
                        options.threads, static_cast<std::uint32_t>(attempts), quarantined,
                        options.abort_after_records, written, &current);
                    ++attempts;
                    if (!finished) {
                        fault::set_attempt(0);
                        outcome.aborted = true;
                        outcome.executed = written;
                        return outcome;
                    }
                    break;
                } catch (const Error&) {
                    ++attempts;
                    ++consecutive;
                    ++total;
                    ++outcome.worker_failures;
                    if (total > (options.max_restarts + 1) * static_cast<int>(shard_size + 1)) {
                        fault::set_attempt(0);
                        throw;
                    }
                    if (consecutive >= options.max_restarts) {
                        if (!current) {
                            fault::set_attempt(0);
                            throw;
                        }
                        quarantined.insert(*current);
                        outcome.quarantined.push_back(*current);
                        consecutive = 0;
                    }
                    ++outcome.restarts;
                    std::this_thread::sleep_for(backoff_delay(options, total - 1));
                }
            }
        }
        fault::set_attempt(0);
    }
    std::sort(outcome.quarantined.begin(), outcome.quarantined.end());

    // Phase 3: merge every shard checkpoint into the deterministic
    // report, and fold wall times into the (non-deterministic) latency
    // summaries.
    std::vector<SweepRecord> by_index(scenarios.size());
    std::vector<bool> seen(scenarios.size(), false);
    for (int shard = 0; shard < shards; ++shard) {
        const std::string path = shard_path(options.out_dir, shard);
        const std::optional<ShardFile> file = read_shard_file(path);
        const std::vector<std::uint32_t> indices =
            shard_indices(scenarios.size(), shard, shards);
        if (!file || !checkpoint_matches(*file, shard, shards, spec_fingerprint, indices)) {
            throw ValidationError("sweep shard file missing or invalid after execution: " +
                                  path);
        }
        ShardTiming timing;
        timing.shard = shard;
        timing.scenarios = static_cast<int>(file->records.size());
        timing.resumed = resumed[static_cast<std::size_t>(shard)];
        timing.wall = stats_over(file->records);
        for (const SweepRecord& record : file->records) {
            if (!record.ok) {
                ++timing.failed;
                ++outcome.failed;
            }
            seen[record.index] = true;
            by_index[record.index] = record;
        }
        outcome.shards.push_back(std::move(timing));
    }
    if (std::find(seen.begin(), seen.end(), false) != seen.end()) {
        throw ValidationError("sweep merge did not cover every scenario");
    }
    outcome.executed = scenarios.size() - outcome.resumed;
    outcome.total_wall = stats_over(by_index);

    write_report(outcome.report_path, sweep_name, scenarios, by_index);
    return outcome;
}

} // namespace mst
