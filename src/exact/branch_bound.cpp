#include "exact/branch_bound.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/math.hpp"

namespace mst {

namespace {

/// Search state shared across the recursion.
struct Search {
    const SocTimeTables* tables = nullptr;
    CycleCount depth = 0;
    std::vector<int> order;                 ///< modules, largest first
    std::vector<std::vector<int>> groups;   ///< module indices per open group
    std::vector<WireCount> group_widths;    ///< optimal width per open group
    std::vector<CycleCount> remaining_area; ///< suffix sums of min areas
    WireCount best_wires = 0;
    std::vector<std::vector<int>> best_groups;
    std::int64_t nodes = 0;
};

/// Smallest width at which the given member set fits `depth`, or 0 if
/// none does within the members' combined maximum useful width.
WireCount min_group_width(const Search& search, const std::vector<int>& members)
{
    WireCount max_width = 0;
    for (const int m : members) {
        max_width = std::max(max_width, search.tables->table(m).max_width());
    }
    // Fill is monotone non-increasing in width: binary search.
    WireCount lo = 1;
    WireCount hi = max_width;
    const auto fill_at = [&](WireCount w) {
        CycleCount fill = 0;
        for (const int m : members) {
            fill += search.tables->table(m).time(w);
        }
        return fill;
    };
    if (fill_at(hi) > search.depth) {
        return 0;
    }
    while (lo < hi) {
        const WireCount mid = lo + (hi - lo) / 2;
        if (fill_at(mid) <= search.depth) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return lo;
}

void recurse(Search& search, std::size_t position)
{
    ++search.nodes;
    WireCount current = 0;
    for (const WireCount w : search.group_widths) {
        current += w;
    }
    if (current >= search.best_wires) {
        return; // cannot improve
    }
    if (position == search.order.size()) {
        search.best_wires = current;
        search.best_groups = search.groups;
        return;
    }
    // Lower bound on the wires still needed: remaining minimum area
    // cannot exceed the free capacity of existing groups plus D per new
    // wire. Free capacity of a group never exceeds depth*width - fill,
    // so a crude-but-sound bound is ceil((remaining - free) / depth).
    CycleCount free_capacity = 0;
    for (std::size_t g = 0; g < search.groups.size(); ++g) {
        free_capacity += search.depth * search.group_widths[g];
        for (const int m : search.groups[g]) {
            free_capacity -= search.tables->table(m).time(search.group_widths[g]);
        }
    }
    const CycleCount still_needed = search.remaining_area[position];
    if (still_needed > free_capacity) {
        const auto extra =
            static_cast<WireCount>(ceil_div(still_needed - free_capacity, search.depth));
        if (current + extra >= search.best_wires) {
            return;
        }
    }

    const int module = search.order[position];

    // Try adding to each existing group (symmetric states are avoided by
    // the fixed module order: a module only ever joins groups opened by
    // earlier modules).
    for (std::size_t g = 0; g < search.groups.size(); ++g) {
        search.groups[g].push_back(module);
        const WireCount old_width = search.group_widths[g];
        const WireCount new_width = min_group_width(search, search.groups[g]);
        if (new_width != 0) {
            search.group_widths[g] = new_width;
            recurse(search, position + 1);
            search.group_widths[g] = old_width;
        }
        search.groups[g].pop_back();
    }

    // Or open a new group with just this module.
    const WireCount solo = min_group_width(search, {module});
    if (solo != 0) {
        search.groups.push_back({module});
        search.group_widths.push_back(solo);
        recurse(search, position + 1);
        search.groups.pop_back();
        search.group_widths.pop_back();
    }
}

} // namespace

std::optional<ExactResult> exact_min_wires(const SocTimeTables& tables, CycleCount depth)
{
    if (tables.module_count() > exact_module_limit) {
        throw ValidationError("exact_min_wires accepts at most " +
                              std::to_string(exact_module_limit) + " modules");
    }
    if (depth < 1) {
        throw ValidationError("depth must be positive");
    }

    Search search;
    search.tables = &tables;
    search.depth = depth;

    // Feasibility and an initial upper bound: one group per module.
    WireCount solo_total = 0;
    for (int m = 0; m < tables.module_count(); ++m) {
        const auto width = tables.table(m).min_width_for(depth);
        if (!width) {
            return std::nullopt;
        }
        solo_total += *width;
    }
    search.best_wires = solo_total + 1;

    // Largest modules first: prunes earlier.
    search.order.resize(static_cast<std::size_t>(tables.module_count()));
    std::iota(search.order.begin(), search.order.end(), 0);
    std::stable_sort(search.order.begin(), search.order.end(), [&tables](int a, int b) {
        return tables.table(a).min_area() > tables.table(b).min_area();
    });

    // Suffix sums of minimum areas for the lower bound.
    search.remaining_area.assign(search.order.size() + 1, 0);
    for (std::size_t i = search.order.size(); i-- > 0;) {
        search.remaining_area[i] =
            search.remaining_area[i + 1] + tables.table(search.order[i]).min_area();
    }

    recurse(search, 0);

    ExactResult result;
    result.wires = search.best_wires;
    result.groups = search.best_groups;
    result.nodes_explored = search.nodes;
    return result;
}

} // namespace mst
