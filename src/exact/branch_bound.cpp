#include "exact/branch_bound.hpp"

#include <algorithm>
#include <deque>
#include <iterator>
#include <limits>
#include <numeric>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/executor.hpp"
#include "common/math.hpp"
#include "core/pack_engine.hpp" // pack_wave_extent: the shared wave schedule

namespace mst {

namespace {

constexpr WireCount no_limit_wires = std::numeric_limits<WireCount>::max();

/// How many subtree roots the breadth-first expansion aims for before
/// the frontier goes to the executor. A constant — never derived from
/// the thread count — so the wave schedule, and with it every node
/// count, is identical on any machine.
constexpr std::size_t frontier_target = 32;

/// Read-only search context shared by every subtree task.
struct Context {
    const SocTimeTables* tables = nullptr;
    CycleCount depth = 0;
    std::vector<int> order;      ///< modules, largest area floor first
    std::vector<WireCount> solo; ///< per module: min_width_for(depth)
    /// Suffix sums over `order` of min_area_from(m, solo[m]): the
    /// packing floor of the not-yet-placed modules. Taking each floor at
    /// the module's depth-minimal width is sound — any group the module
    /// can join is at least that wide, and width * time(width) is
    /// non-decreasing in width — and strictly tighter than the raw
    /// min_area floor the first version of this solver used.
    std::vector<CycleCount> remaining_floor;
};

/// One node of the partition tree: the groups over order[0..position)
/// with their optimal widths and fills.
struct Node {
    std::vector<std::vector<int>> groups;
    std::vector<WireCount> widths;
    std::vector<CycleCount> fills;
    WireCount wires = 0;
    std::size_t position = 0;
};

/// Best complete partition known so far.
struct Incumbent {
    WireCount wires = no_limit_wires;
    std::vector<std::vector<int>> groups;
};

struct WidthFill {
    WireCount width = 0; ///< 0 = the member set fits at no width
    CycleCount fill = 0;
};

/// Smallest width at which the member set fits `depth`, with the fill at
/// that width. Every probe goes through the saturation-clamped TimeRow
/// accessor: a width beyond an individual member's truncated staircase
/// (PR 5) reads that member's saturated time, so probing at the group
/// maximum width is always in bounds and semantically exact.
WidthFill min_group_width(const Context& ctx, const std::vector<int>& members)
{
    SocTimeTables::TimeRow rows[exact_module_limit];
    std::size_t count = 0;
    WireCount max_width = 0;
    for (const int m : members) {
        rows[count] = ctx.tables->time_row(m);
        max_width = std::max(max_width, static_cast<WireCount>(rows[count].count));
        ++count;
    }
    const auto fill_at = [&rows, count](WireCount width) {
        CycleCount fill = 0;
        for (std::size_t i = 0; i < count; ++i) {
            fill += rows[i].at_width(width);
        }
        return fill;
    };
    if (fill_at(max_width) > ctx.depth) {
        return {0, 0};
    }
    // Fill is monotone non-increasing in width: binary search.
    WireCount lo = 1;
    WireCount hi = max_width;
    while (lo < hi) {
        const WireCount mid = lo + (hi - lo) / 2;
        if (fill_at(mid) <= ctx.depth) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return {lo, fill_at(lo)};
}

/// Wires still needed below `node`, by the suffix-area relaxation: the
/// unplaced modules' floors must fit into the open groups' free
/// capacity plus `depth` per extra wire (the bound the greedy packing
/// engine prunes with, transplanted to partitions).
WireCount relaxation_extra(const Context& ctx, const std::vector<WireCount>& widths,
                           const std::vector<CycleCount>& fills, std::size_t position)
{
    CycleCount free_capacity = 0;
    for (std::size_t g = 0; g < widths.size(); ++g) {
        free_capacity += ctx.depth * static_cast<CycleCount>(widths[g]) - fills[g];
    }
    const CycleCount still_needed = ctx.remaining_floor[position];
    if (still_needed <= free_capacity) {
        return 0;
    }
    return static_cast<WireCount>(ceil_div(still_needed - free_capacity, ctx.depth));
}

/// Invoke `child` on every feasible child of `node`, in the canonical
/// branching order: join each open group in creation order, then open a
/// new group. The fixed module order avoids symmetric states (a module
/// only ever joins groups opened by earlier modules). The depth-first
/// worker below inlines the same order with O(1) undo instead of
/// copies; the two must never disagree.
template <typename Fn>
void for_each_child(const Context& ctx, const Node& node, Fn&& child)
{
    const int module = ctx.order[node.position];
    for (std::size_t g = 0; g < node.groups.size(); ++g) {
        Node next = node;
        next.groups[g].push_back(module);
        const WidthFill fit = min_group_width(ctx, next.groups[g]);
        if (fit.width == 0) {
            continue;
        }
        next.wires += fit.width - next.widths[g];
        next.widths[g] = fit.width;
        next.fills[g] = fit.fill;
        ++next.position;
        child(std::move(next));
    }
    Node next = node;
    const WireCount solo = ctx.solo[static_cast<std::size_t>(module)];
    next.groups.push_back({module});
    next.widths.push_back(solo);
    next.fills.push_back(ctx.tables->time(module, solo));
    next.wires += solo;
    ++next.position;
    child(std::move(next));
}

/// Outcome of one sequential subtree search.
struct SubtreeResult {
    WireCount best_wires = no_limit_wires; ///< best strictly below the start bound
    std::vector<std::vector<int>> best_groups;
    std::int64_t nodes = 0;
    bool truncated = false;
};

/// Depth-first search of one subtree. Pure function of (context, root,
/// bound, node cap): no shared mutable state, which is what makes the
/// wave reduction deterministic at any thread count.
class SubtreeSearch {
public:
    SubtreeSearch(const Context& ctx, Node root, WireCount limit, std::int64_t node_cap)
        : ctx_(ctx),
          limit_(limit),
          node_cap_(node_cap),
          groups_(std::move(root.groups)),
          widths_(std::move(root.widths)),
          fills_(std::move(root.fills)),
          current_(root.wires),
          position_(root.position)
    {
    }

    [[nodiscard]] SubtreeResult run()
    {
        descend();
        return std::move(out_);
    }

private:
    void descend()
    {
        if (out_.truncated) {
            return;
        }
        if (node_cap_ != 0 && out_.nodes >= node_cap_) {
            out_.truncated = true;
            return;
        }
        ++out_.nodes;
        if (current_ >= limit_) {
            return; // cannot improve (or would bust the wire budget)
        }
        if (position_ == ctx_.order.size()) {
            out_.best_wires = current_;
            out_.best_groups = groups_;
            limit_ = current_;
            return;
        }
        const WireCount extra = relaxation_extra(ctx_, widths_, fills_, position_);
        if (extra != 0 && current_ + extra >= limit_) {
            return;
        }

        const int module = ctx_.order[position_];
        ++position_;
        for (std::size_t g = 0; g < groups_.size(); ++g) {
            groups_[g].push_back(module);
            const WidthFill fit = min_group_width(ctx_, groups_[g]);
            if (fit.width != 0) {
                const WireCount old_width = widths_[g];
                const CycleCount old_fill = fills_[g];
                widths_[g] = fit.width;
                fills_[g] = fit.fill;
                current_ += fit.width - old_width;
                descend();
                current_ -= fit.width - old_width;
                widths_[g] = old_width;
                fills_[g] = old_fill;
            }
            groups_[g].pop_back();
        }
        const WireCount solo = ctx_.solo[static_cast<std::size_t>(module)];
        groups_.push_back({module});
        widths_.push_back(solo);
        fills_.push_back(ctx_.tables->time(module, solo));
        current_ += solo;
        descend();
        current_ -= solo;
        groups_.pop_back();
        widths_.pop_back();
        fills_.pop_back();
        --position_;
    }

    const Context& ctx_;
    WireCount limit_;
    std::int64_t node_cap_;
    SubtreeResult out_;
    std::vector<std::vector<int>> groups_;
    std::vector<WireCount> widths_;
    std::vector<CycleCount> fills_;
    WireCount current_ = 0;
    std::size_t position_ = 0;
};

/// Total wires of a caller-supplied seed partition after validating it
/// covers every module exactly once and every group fits the depth.
WireCount seed_partition_wires(const Context& ctx, const std::vector<std::vector<int>>& seed)
{
    const int module_count = ctx.tables->module_count();
    std::vector<char> seen(static_cast<std::size_t>(module_count), 0);
    WireCount total = 0;
    for (const std::vector<int>& group : seed) {
        if (group.empty()) {
            throw ValidationError("exact seed partition contains an empty group");
        }
        for (const int m : group) {
            if (m < 0 || m >= module_count || seen[static_cast<std::size_t>(m)] != 0) {
                throw ValidationError(
                    "exact seed partition must cover every module exactly once");
            }
            seen[static_cast<std::size_t>(m)] = 1;
        }
        const WidthFill fit = min_group_width(ctx, group);
        if (fit.width == 0) {
            throw ValidationError(
                "exact seed partition has a group that fits no width within the depth");
        }
        total += fit.width;
    }
    for (const char flag : seen) {
        if (flag == 0) {
            throw ValidationError("exact seed partition must cover every module exactly once");
        }
    }
    return total;
}

} // namespace

ExactResult exact_search(const SocTimeTables& tables, CycleCount depth,
                         const ExactOptions& options)
{
    if (tables.module_count() > exact_module_limit) {
        throw ValidationError("exact search accepts at most " +
                              std::to_string(exact_module_limit) + " modules");
    }
    if (depth < 1) {
        throw ValidationError("depth must be positive");
    }
    if (options.wire_budget < 0) {
        throw ValidationError("exact wire budget must be non-negative");
    }
    if (options.node_limit < 0) {
        throw ValidationError("exact node budget must be non-negative");
    }

    const int module_count = tables.module_count();
    Context ctx;
    ctx.tables = &tables;
    ctx.depth = depth;

    // Depth feasibility and the per-module minimal widths; the one-group-
    // per-module partition doubles as the fallback incumbent.
    ctx.solo.resize(static_cast<std::size_t>(module_count));
    Incumbent best;
    best.wires = 0;
    for (int m = 0; m < module_count; ++m) {
        const std::optional<WireCount> width = tables.min_width_for(m, depth);
        if (!width) {
            throw ExactInfeasibleError(
                ExactInfeasible::depth,
                "module '" + tables.soc().module(m).name() +
                    "' does not fit the vector-memory depth at any width");
        }
        ctx.solo[static_cast<std::size_t>(m)] = *width;
        best.wires += *width;
        best.groups.push_back({m});
    }
    if (!options.seed.empty()) {
        const WireCount seed_wires = seed_partition_wires(ctx, options.seed);
        // The seed wins ties so "seeding never worsens the result" holds
        // group-for-group, not just wire-for-wire.
        if (seed_wires <= best.wires) {
            best.wires = seed_wires;
            best.groups = options.seed;
        }
    }

    // Prune bound: strictly below the incumbent, and — under a wire
    // budget — never beyond budget + 1, so the search skips subtrees
    // that could only yield over-budget "improvements".
    const WireCount hard_cap = options.wire_budget > 0 && options.wire_budget < no_limit_wires - 1
                                   ? options.wire_budget + 1
                                   : no_limit_wires;
    const auto prune_limit = [&best, hard_cap]() { return std::min(best.wires, hard_cap); };

    // Largest floors first: prunes earlier. Stable sort for a
    // deterministic order on ties.
    ctx.order.resize(static_cast<std::size_t>(module_count));
    std::iota(ctx.order.begin(), ctx.order.end(), 0);
    std::stable_sort(ctx.order.begin(), ctx.order.end(), [&tables, &ctx](int a, int b) {
        return tables.min_area_from(a, ctx.solo[static_cast<std::size_t>(a)]) >
               tables.min_area_from(b, ctx.solo[static_cast<std::size_t>(b)]);
    });
    ctx.remaining_floor.assign(ctx.order.size() + 1, 0);
    for (std::size_t i = ctx.order.size(); i-- > 0;) {
        const int m = ctx.order[i];
        ctx.remaining_floor[i] =
            ctx.remaining_floor[i + 1] +
            tables.min_area_from(m, ctx.solo[static_cast<std::size_t>(m)]);
    }

    std::int64_t nodes = 0;
    bool truncated = false;

    // Phase 1: breadth-first expansion to a fixed frontier of subtree
    // roots. Sequential and deterministic; complete partitions met on
    // the way update the incumbent immediately.
    std::deque<Node> queue;
    queue.emplace_back();
    while (!queue.empty() && queue.size() < frontier_target) {
        if (options.node_limit != 0 && nodes >= options.node_limit) {
            truncated = true;
            break;
        }
        Node node = std::move(queue.front());
        queue.pop_front();
        ++nodes;
        if (node.wires >= prune_limit()) {
            continue;
        }
        if (node.position == ctx.order.size()) {
            best.wires = node.wires;
            best.groups = std::move(node.groups);
            continue;
        }
        const WireCount extra = relaxation_extra(ctx, node.widths, node.fills, node.position);
        if (extra != 0 && node.wires + extra >= prune_limit()) {
            continue;
        }
        for_each_child(ctx, node, [&queue](Node child) { queue.push_back(std::move(child)); });
    }

    // Phase 2: the frontier's sibling subtrees as adaptive waves on the
    // shared executor — the Step-1/Step-2 wave discipline. The bound and
    // the per-task node caps are snapshot at each wave start, and the
    // reduction walks the wave in index order taking strict
    // improvements only (lowest-index winner), so results and node
    // counts never depend on the thread count. A task may overrun the
    // node budget by up to one wave's worth of caps; the overrun is the
    // same at any thread count.
    std::vector<Node> frontier(std::make_move_iterator(queue.begin()),
                               std::make_move_iterator(queue.end()));
    std::size_t begin = 0;
    for (int wave = 0; begin < frontier.size() && !truncated; ++wave) {
        const std::size_t end = std::min(frontier.size(), begin + pack_wave_extent(wave));
        const std::size_t width = end - begin;
        std::int64_t cap = 0;
        if (options.node_limit != 0) {
            const std::int64_t remaining = options.node_limit - nodes;
            if (remaining <= 0) {
                truncated = true;
                break;
            }
            cap = remaining;
        }
        const WireCount wave_limit = prune_limit();
        std::vector<SubtreeResult> results(width);
        parallel_for_index(width, options.threads, [&](std::size_t i) {
            results[i] =
                SubtreeSearch(ctx, std::move(frontier[begin + i]), wave_limit, cap).run();
        });
        for (std::size_t i = 0; i < width; ++i) {
            nodes += results[i].nodes;
            truncated = truncated || results[i].truncated;
            if (results[i].best_wires < best.wires) {
                best.wires = results[i].best_wires;
                best.groups = std::move(results[i].best_groups);
            }
        }
        begin = end;
    }

    if (options.wire_budget > 0 && best.wires > options.wire_budget) {
        std::string message = "no partition tests the SOC within " +
                              std::to_string(options.wire_budget) + " wires at this depth (best " +
                              std::to_string(best.wires) + ")";
        if (truncated) {
            message += "; search truncated by the node budget, infeasibility not certified";
        }
        throw ExactInfeasibleError(ExactInfeasible::budget, message);
    }

    ExactResult result;
    result.wires = best.wires;
    result.groups = std::move(best.groups);
    result.nodes_explored = nodes;
    result.certified = !truncated;
    return result;
}

std::optional<ExactResult> exact_min_wires(const SocTimeTables& tables, CycleCount depth)
{
    try {
        return exact_search(tables, depth, ExactOptions{});
    } catch (const ExactInfeasibleError& error) {
        if (error.kind() == ExactInfeasible::depth) {
            return std::nullopt; // the historical "untestable" contract
        }
        throw; // budget failures cannot happen without a budget
    }
}

} // namespace mst
