// Exact reference solver for Step 1's core question: the minimum total
// TAM wires that test an SOC within a vector-memory depth.
//
// The search space is the set of partitions of the modules into channel
// groups; for a fixed partition the optimal group width is the smallest
// width whose re-wrapped serial fill fits the depth (the fill is
// monotone in width, so binary search applies). Branch-and-bound over
// partitions with an area/width lower bound prunes the Bell-number tree
// well enough for the small SOCs used in tests and the optimality-gap
// benchmark. Not meant for production SOCs — Step 1 is; this is the
// yardstick Step 1 is measured against.
#pragma once

#include <optional>
#include <vector>

#include "arch/channel_group.hpp"
#include "common/types.hpp"

namespace mst {

/// Result of the exact search.
struct ExactResult {
    WireCount wires = 0;                      ///< minimal total wires
    std::vector<std::vector<int>> groups;     ///< module indices per group
    std::int64_t nodes_explored = 0;          ///< search effort
};

/// Hard cap on the module count accepted by the exact solver; beyond
/// this the partition tree is too large to enumerate honestly.
inline constexpr int exact_module_limit = 14;

/// Exact minimum wires for testing all modules within `depth`, or
/// nullopt if some module fits at no width. Throws ValidationError if
/// the SOC exceeds exact_module_limit modules.
[[nodiscard]] std::optional<ExactResult> exact_min_wires(const SocTimeTables& tables,
                                                         CycleCount depth);

} // namespace mst
