// Exact reference solver for Step 1's core question: the minimum total
// TAM wires that test an SOC within a vector-memory depth, optionally
// under a hard wire budget.
//
// The search space is the set of partitions of the modules into channel
// groups; for a fixed partition the optimal group width is the smallest
// width whose re-wrapped serial fill fits the depth (the fill is
// monotone in width, so binary search applies). Branch-and-bound over
// partitions prunes the Bell-number tree with the same suffix-area
// relaxation the greedy packing engine uses: the remaining modules'
// `min_area_from` floors, taken at each module's depth-minimal width
// (any group a module can legally join is at least that wide, so the
// floor is sound and strictly tighter than the raw min-area floor).
//
// Parallel discipline: the tree is expanded breadth-first to a fixed
// frontier of subtree roots, and the roots are then searched as
// adaptive waves on Executor::global() — the same pack_wave_extent
// schedule as the Step-1/Step-2 scans, with the incumbent bound
// snapshot at each wave start and a lowest-index-winner reduction.
// Node counts and results are therefore byte-identical at any thread
// count. Not meant for production SOCs — Step 1 is; this is the
// yardstick Step 1 is measured against.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/channel_group.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace mst {

/// Which constraint makes an exact search infeasible.
enum class ExactInfeasible {
    depth,  ///< some module fits no width within the memory depth
    budget, ///< every depth-feasible partition exceeds the wire budget
};

/// Infeasibility of the exact (budget, depth) search, with the failing
/// constraint attached. Derives from InfeasibleError so surfaces that
/// map error taxonomy to response kinds (serve/replay, batch rows)
/// classify exact failures exactly like greedy ones.
class ExactInfeasibleError : public InfeasibleError {
public:
    ExactInfeasibleError(ExactInfeasible kind, const std::string& message)
        : InfeasibleError(message), kind_(kind)
    {
    }

    [[nodiscard]] ExactInfeasible kind() const noexcept { return kind_; }

private:
    ExactInfeasible kind_;
};

/// Result of the exact search.
struct ExactResult {
    WireCount wires = 0;                  ///< best total wires found
    std::vector<std::vector<int>> groups; ///< module indices per group
    std::int64_t nodes_explored = 0;      ///< search effort (thread-count invariant)
    /// True when the whole pruned tree was exhausted, i.e. `wires` is
    /// the proven optimum; false when the node budget truncated the
    /// search and `wires` is only the best incumbent found.
    bool certified = true;
};

/// Knobs of one exact search.
struct ExactOptions {
    /// Hard wire budget (0 = unconstrained). The search proves either a
    /// partition within the budget or — when it exhausts the tree —
    /// budget-infeasibility (ExactInfeasibleError{budget}).
    WireCount wire_budget = 0;

    /// Node budget for the anytime mode (0 = exhaust the tree). Checked
    /// at wave boundaries with per-task caps snapshot at wave start, so
    /// the truncation point is deterministic at any thread count.
    std::int64_t node_limit = 0;

    /// Concurrency cap for the subtree waves (<= 0: whole shared
    /// executor). Results and node counts are identical at any value.
    int threads = 0;

    /// Initial incumbent partition (module indices per group), typically
    /// the Step-1 greedy architecture. Must cover every module exactly
    /// once and be depth-feasible (ValidationError otherwise). The
    /// search never returns a worse partition than the seed.
    std::vector<std::vector<int>> seed;
};

/// Hard cap on the module count accepted by the exact solver; beyond
/// this the partition tree is too large to enumerate honestly.
inline constexpr int exact_module_limit = 14;

/// Deterministic anytime calibration: `--exact-budget-ms` maps to a
/// node budget of ms * this constant, so a wall-clock-sounding knob
/// never makes results machine- or load-dependent.
inline constexpr std::int64_t exact_nodes_per_ms = 20'000;

/// Branch-and-bound over the (wire budget, depth) design space.
/// Throws ValidationError for oversized SOCs (> exact_module_limit),
/// non-positive depths, or malformed seeds, and ExactInfeasibleError
/// (kind depth or budget) when no acceptable partition exists.
[[nodiscard]] ExactResult exact_search(const SocTimeTables& tables, CycleCount depth,
                                       const ExactOptions& options);

/// Compatibility wrapper: exact minimum wires at `depth` with no wire
/// budget and no node budget, or nullopt if some module fits at no
/// width. Throws ValidationError if the SOC exceeds exact_module_limit
/// modules.
[[nodiscard]] std::optional<ExactResult> exact_min_wires(const SocTimeTables& tables,
                                                         CycleCount depth);

} // namespace mst
