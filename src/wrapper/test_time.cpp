#include "wrapper/test_time.hpp"

#include <algorithm>

namespace mst {

CycleCount scan_test_time(PatternCount patterns,
                          FlipFlopCount max_scan_in,
                          FlipFlopCount max_scan_out) noexcept
{
    const FlipFlopCount longer = std::max(max_scan_in, max_scan_out);
    const FlipFlopCount shorter = std::min(max_scan_in, max_scan_out);
    return (1 + longer) * patterns + shorter;
}

} // namespace mst
