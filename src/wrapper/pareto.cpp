#include "wrapper/pareto.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "wrapper/time_calculator.hpp"
#include "wrapper/wrapper_design.hpp"

namespace mst {

ModuleTimeTable::ModuleTimeTable(const Module& module, WireCount max_width, TableBuild build)
    : module_(&module)
{
    WireCount limit = (max_width > 0) ? max_width : module.max_useful_width();
    limit = std::clamp(limit, 1, width_cap);
    // Early saturation: once w covers every scan chain (LPT then puts
    // each chain alone, so the scan bottleneck is the longest chain) and
    // both water-fill ceilings have sunk to that longest chain, the
    // wrapped time is the same constant at every wider width. Ending the
    // table there changes no observable value — time(), used_width(),
    // min_width_for(), and min_area_from() all clamp into the flat tail,
    // and the suffix-min area at the cut equals the true minimum over
    // the removed widths (w * t grows with w on a constant t). The
    // saturation width depends only on the module, never on the build
    // mode, so fast and reference tables stay identical. Explicit
    // max_width requests keep their exact extent (tests rely on it).
    if (max_width <= 0 && module.scan_chain_count() > 0) {
        const FlipFlopCount longest =
            *std::max_element(module.scan_chain_lengths().begin(),
                              module.scan_chain_lengths().end());
        const FlipFlopCount total = module.total_scan_flip_flops();
        const auto ceil_div = [](FlipFlopCount bits, FlipFlopCount chain) {
            return static_cast<WireCount>((bits + chain - 1) / chain);
        };
        const WireCount saturated = std::max(
            {module.scan_chain_count(),
             ceil_div(total + module.scan_in_cells(), longest),
             ceil_div(total + module.scan_out_cells(), longest)});
        limit = std::clamp(saturated, 1, limit);
    }

    times_.reserve(static_cast<std::size_t>(limit));
    used_widths_.reserve(static_cast<std::size_t>(limit));

    const WrapperTimeCalculator calculator(module);
    std::vector<FlipFlopCount> lpt_scratch; // reused across the width loop
    CycleCount best_time = 0;
    WireCount best_width = 0;
    for (WireCount w = 1; w <= limit; ++w) {
        const CycleCount raw = (build == TableBuild::fast) ? calculator.time(w, lpt_scratch)
                                                           : wrapped_test_time(module, w);
        if (best_width == 0 || raw < best_time) {
            best_time = raw;
            best_width = w;
            pareto_.push_back({w, raw});
        }
        times_.push_back(best_time);
        used_widths_.push_back(best_width);
        const CycleCount area = static_cast<CycleCount>(w) * raw;
        if (w == 1 || area < min_area_) {
            min_area_ = area;
        }
    }

    // Suffix minima of w * effective_time(w): the area floor of placing
    // this module on a group of width >= w. Beyond max_width the time
    // saturates, so wider groups only cost more area and the suffix over
    // the table already covers them.
    suffix_min_area_.resize(times_.size());
    CycleCount best_area = 0;
    for (WireCount w = limit; w >= 1; --w) {
        const auto index = static_cast<std::size_t>(w) - 1;
        const CycleCount area = static_cast<CycleCount>(w) * times_[index];
        if (w == limit || area < best_area) {
            best_area = area;
        }
        suffix_min_area_[index] = best_area;
    }
}

CycleCount ModuleTimeTable::min_area_from(WireCount width) const
{
    if (width < 1) {
        throw ValidationError("width must be >= 1 in ModuleTimeTable::min_area_from");
    }
    const auto index = static_cast<std::size_t>(std::min(width, max_width())) - 1;
    return suffix_min_area_[index];
}

CycleCount ModuleTimeTable::time(WireCount width) const
{
    if (width < 1) {
        throw ValidationError("width must be >= 1 in ModuleTimeTable::time");
    }
    const auto index = static_cast<std::size_t>(std::min(width, max_width())) - 1;
    return times_[index];
}

WireCount ModuleTimeTable::used_width(WireCount width) const
{
    if (width < 1) {
        throw ValidationError("width must be >= 1 in ModuleTimeTable::used_width");
    }
    const auto index = static_cast<std::size_t>(std::min(width, max_width())) - 1;
    return used_widths_[index];
}

std::optional<WireCount> ModuleTimeTable::min_width_for(CycleCount depth) const
{
    if (times_.back() > depth) {
        return std::nullopt;
    }
    // times_ is non-increasing: find the first width that fits.
    const auto it = std::lower_bound(times_.begin(), times_.end(), depth,
                                     [](CycleCount time, CycleCount limit) { return time > limit; });
    return static_cast<WireCount>(std::distance(times_.begin(), it)) + 1;
}

} // namespace mst
