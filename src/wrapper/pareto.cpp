#include "wrapper/pareto.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "wrapper/time_calculator.hpp"
#include "wrapper/wrapper_design.hpp"

namespace mst {

ModuleTimeTable::ModuleTimeTable(const Module& module, WireCount max_width, TableBuild build)
    : module_(&module)
{
    WireCount limit = (max_width > 0) ? max_width : module.max_useful_width();
    limit = std::clamp(limit, 1, width_cap);
    // Early saturation: once w covers every scan chain (LPT then puts
    // each chain alone, so the scan bottleneck is the longest chain) and
    // both water-fill ceilings have sunk to that longest chain, the
    // wrapped time is the same constant at every wider width. Ending the
    // table there changes no observable value — time(), used_width(),
    // min_width_for(), and min_area_from() all clamp into the flat tail,
    // and the suffix-min area at the cut equals the true minimum over
    // the removed widths (w * t grows with w on a constant t). The
    // saturation width depends only on the module, never on the build
    // mode, so fast and reference tables stay identical. Explicit
    // max_width requests keep their exact extent (tests rely on it).
    if (max_width <= 0 && module.scan_chain_count() > 0) {
        const FlipFlopCount longest =
            *std::max_element(module.scan_chain_lengths().begin(),
                              module.scan_chain_lengths().end());
        const FlipFlopCount total = module.total_scan_flip_flops();
        const auto ceil_div = [](FlipFlopCount bits, FlipFlopCount chain) {
            return static_cast<WireCount>((bits + chain - 1) / chain);
        };
        const WireCount saturated = std::max(
            {module.scan_chain_count(),
             ceil_div(total + module.scan_in_cells(), longest),
             ceil_div(total + module.scan_out_cells(), longest)});
        limit = std::clamp(saturated, 1, limit);
    }

    times_.reserve(static_cast<std::size_t>(limit));
    used_widths_.reserve(static_cast<std::size_t>(limit));

    const WrapperTimeCalculator calculator(module);
    std::vector<FlipFlopCount> lpt_scratch; // reused across the width loop
    CycleCount best_time = 0;
    WireCount best_width = 0;
    for (WireCount w = 1; w <= limit; ++w) {
        const CycleCount raw = (build == TableBuild::fast) ? calculator.time(w, lpt_scratch)
                                                           : wrapped_test_time(module, w);
        if (best_width == 0 || raw < best_time) {
            best_time = raw;
            best_width = w;
        }
        times_.push_back(best_time);
        used_widths_.push_back(best_width);
    }
    finalize_derived();
}

ModuleTimeTable::ModuleTimeTable(const Module& module, std::vector<CycleCount> times,
                                 std::vector<WireCount> used_widths)
    : module_(&module), times_(std::move(times)), used_widths_(std::move(used_widths))
{
    // The arrays come from a checksummed shared-memory blob, so damage
    // is unlikely — but the restore path must never hand the optimizer
    // a table violating the staircase invariants, so check them all.
    if (times_.empty() || times_.size() != used_widths_.size()) {
        throw ValidationError("restored time table has inconsistent array sizes");
    }
    for (std::size_t i = 0; i < times_.size(); ++i) {
        const auto w = static_cast<WireCount>(i) + 1;
        if (times_[i] <= 0 || (i > 0 && times_[i] > times_[i - 1])) {
            throw ValidationError("restored time table is not non-increasing");
        }
        if (used_widths_[i] < 1 || used_widths_[i] > w ||
            (i > 0 && used_widths_[i] < used_widths_[i - 1])) {
            throw ValidationError("restored time table has invalid used widths");
        }
    }
    finalize_derived();
}

void ModuleTimeTable::finalize_derived()
{
    // Pareto points are the widths where the effective time strictly
    // dropped — exactly the entries whose used width is the width
    // itself (the build loop records a new best at those and only
    // those widths).
    pareto_.clear();
    const auto limit = static_cast<WireCount>(times_.size());
    for (WireCount w = 1; w <= limit; ++w) {
        const auto index = static_cast<std::size_t>(w) - 1;
        if (used_widths_[index] == w && (w == 1 || times_[index] < times_[index - 1])) {
            pareto_.push_back({w, times_[index]});
        }
    }

    // Suffix minima of w * effective_time(w): the area floor of placing
    // this module on a group of width >= w. Beyond max_width the time
    // saturates, so wider groups only cost more area and the suffix over
    // the table already covers them.
    suffix_min_area_.resize(times_.size());
    CycleCount best_area = 0;
    for (WireCount w = limit; w >= 1; --w) {
        const auto index = static_cast<std::size_t>(w) - 1;
        const CycleCount area = static_cast<CycleCount>(w) * times_[index];
        if (w == limit || area < best_area) {
            best_area = area;
        }
        suffix_min_area_[index] = best_area;
    }

    // min over w of w * raw(w) equals min over w of w * effective(w):
    // effective(w) = raw(used(w)) with used(w) <= w, so each effective
    // area w * raw(used(w)) >= used(w) * raw(used(w)) — no effective
    // area undercuts the raw minimum — while effective <= raw bounds it
    // from the other side. The suffix head is therefore the same value
    // the build loop used to accumulate from raw times directly.
    min_area_ = suffix_min_area_.front();
}

CycleCount ModuleTimeTable::min_area_from(WireCount width) const
{
    if (width < 1) {
        throw ValidationError("width must be >= 1 in ModuleTimeTable::min_area_from");
    }
    const auto index = static_cast<std::size_t>(std::min(width, max_width())) - 1;
    return suffix_min_area_[index];
}

CycleCount ModuleTimeTable::time(WireCount width) const
{
    if (width < 1) {
        throw ValidationError("width must be >= 1 in ModuleTimeTable::time");
    }
    const auto index = static_cast<std::size_t>(std::min(width, max_width())) - 1;
    return times_[index];
}

WireCount ModuleTimeTable::used_width(WireCount width) const
{
    if (width < 1) {
        throw ValidationError("width must be >= 1 in ModuleTimeTable::used_width");
    }
    const auto index = static_cast<std::size_t>(std::min(width, max_width())) - 1;
    return used_widths_[index];
}

std::optional<WireCount> ModuleTimeTable::min_width_for(CycleCount depth) const
{
    if (times_.back() > depth) {
        return std::nullopt;
    }
    // times_ is non-increasing: find the first width that fits.
    const auto it = std::lower_bound(times_.begin(), times_.end(), depth,
                                     [](CycleCount time, CycleCount limit) { return time > limit; });
    return static_cast<WireCount>(std::distance(times_.begin(), it)) + 1;
}

} // namespace mst
