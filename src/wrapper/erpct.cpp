#include "wrapper/erpct.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mst {

int estimate_functional_pins(const Soc& soc)
{
    // Top-level pins are a small fraction of the module terminal total:
    // most module terminals are internal core-to-core nets. One pin per
    // eight module terminals, clamped to a realistic package range.
    std::int64_t module_terminals = 0;
    for (const Module& m : soc.modules()) {
        module_terminals += m.inputs() + m.outputs() + m.bidirs();
    }
    const auto estimate = static_cast<int>(module_terminals / 8);
    return std::clamp(estimate, 64, 1024);
}

ErpctSpec design_erpct(const Soc& soc,
                       ChannelCount external_channels,
                       int functional_pins,
                       int control_pads)
{
    if (external_channels <= 0 || external_channels % 2 != 0) {
        throw ValidationError("E-RPCT external channel count must be positive and even, got " +
                              std::to_string(external_channels));
    }
    if (control_pads < 0) {
        throw ValidationError("E-RPCT control pad count must be non-negative");
    }
    ErpctSpec spec;
    spec.external_channels = external_channels;
    spec.internal_wires = wires_from_channels(external_channels);
    spec.control_pads = control_pads;
    spec.functional_pins = (functional_pins > 0) ? functional_pins : estimate_functional_pins(soc);
    return spec;
}

} // namespace mst
