// E-RPCT (Enhanced Reduced-Pin-Count Test) chip-level wrapper model.
//
// The E-RPCT wrapper (Vranken et al., ITC 2001 [9]) converts a narrow
// external SOC-ATE interface of k test pins (k/2 inputs + k/2 outputs)
// into the on-chip TAM wires, and gives boundary-scan access to all
// functional pins that are left uncontacted during wafer test. This
// module captures the structural parameters the DATE'05 flow must
// determine ("the algorithm determines all parameters to design an
// E-RPCT wrapper"), plus a simple DfT area estimate.
#pragma once

#include "common/types.hpp"
#include "soc/soc.hpp"

namespace mst {

/// Control/clock pads that must be contacted besides the k test data
/// channels: TCK, TMS, TDI, TDO, TRSTn plus two functional clocks.
inline constexpr int default_control_pads = 7;

/// Structural parameters of an E-RPCT wrapper instance.
struct ErpctSpec {
    ChannelCount external_channels = 0; ///< k: ATE data channels (even)
    WireCount internal_wires = 0;       ///< TAM wires fed by the wrapper (k/2)
    int control_pads = default_control_pads;
    int functional_pins = 0;            ///< chip pins wrapped in boundary scan

    /// Pads physically probed at wafer test (the paper's I of eq. 4.2).
    [[nodiscard]] int contacted_pads() const noexcept
    {
        return external_channels + control_pads;
    }

    /// Boundary-scan cells: every functional pin gets one.
    [[nodiscard]] int boundary_cells() const noexcept { return functional_pins; }

    /// Pin-to-TAM conversion multiplexers (one per internal wire,
    /// each direction).
    [[nodiscard]] int conversion_muxes() const noexcept { return 2 * internal_wires; }

    /// Rough DfT area in gate equivalents: ~10 GE per boundary cell,
    /// ~4 GE per conversion mux, ~200 GE of control logic.
    [[nodiscard]] double area_gate_equivalents() const noexcept
    {
        return 10.0 * boundary_cells() + 4.0 * conversion_muxes() + 200.0;
    }
};

/// Heuristic chip-level functional pin count for an SOC whose package
/// pinout is not part of the benchmark data: a fraction of the module
/// terminal total, clamped to a realistic package range.
[[nodiscard]] int estimate_functional_pins(const Soc& soc);

/// Design the E-RPCT wrapper for an SOC given the chosen external channel
/// count k (must be positive and even). `functional_pins` of 0 means
/// "estimate from the SOC". Throws ValidationError on a bad k.
[[nodiscard]] ErpctSpec design_erpct(const Soc& soc,
                                     ChannelCount external_channels,
                                     int functional_pins = 0,
                                     int control_pads = default_control_pads);

} // namespace mst
