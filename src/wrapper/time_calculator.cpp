#include "wrapper/time_calculator.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"
#include "wrapper/test_time.hpp"

namespace mst {

namespace {

/// Maximum load after water-filling `cells` unit items onto `width`
/// chains whose base loads sum to `total` and peak at `max_base`. The
/// greedy fill (each cell onto the currently shortest chain) realizes the
/// optimal max, which is `max_base` while the valleys absorb the cells
/// and the ceiling of the average load once they overflow.
FlipFlopCount water_fill_max(FlipFlopCount max_base,
                             FlipFlopCount total,
                             int cells,
                             WireCount width) noexcept
{
    const FlipFlopCount filled = total + cells;
    const FlipFlopCount waterline = (filled + width - 1) / width;
    return std::max(max_base, waterline);
}

} // namespace

WrapperTimeCalculator::WrapperTimeCalculator(const Module& module) : module_(&module)
{
    sorted_lengths_ = module.scan_chain_lengths();
    std::stable_sort(sorted_lengths_.begin(), sorted_lengths_.end(),
                     std::greater<FlipFlopCount>());
    for (const FlipFlopCount length : sorted_lengths_) {
        total_flip_flops_ += length;
    }
    longest_chain_ = sorted_lengths_.empty() ? 0 : sorted_lengths_.front();
}

FlipFlopCount WrapperTimeCalculator::lpt_max_load(WireCount width) const
{
    // A local buffer keeps const time() safe to call from many threads.
    std::vector<FlipFlopCount> loads;
    return lpt_max_load(width, loads);
}

FlipFlopCount WrapperTimeCalculator::lpt_max_load(WireCount width,
                                                  std::vector<FlipFlopCount>& loads) const
{
    // With at least one wrapper chain per scan chain, LPT places every
    // chain alone: the bottleneck is the longest chain.
    if (static_cast<std::size_t>(width) >= sorted_lengths_.size()) {
        return longest_chain_;
    }
    // Loads-only LPT: longest chain first onto the currently shortest
    // wrapper chain. Which equal-load chain receives a chain does not
    // affect the evolving load multiset, so tracking loads alone yields
    // the same maximum as the index-tie-broken heap in design_wrapper.
    loads.assign(static_cast<std::size_t>(width), 0);
    const auto min_heap = std::greater<FlipFlopCount>();
    for (const FlipFlopCount length : sorted_lengths_) {
        std::pop_heap(loads.begin(), loads.end(), min_heap);
        loads.back() += length;
        std::push_heap(loads.begin(), loads.end(), min_heap);
    }
    return *std::max_element(loads.begin(), loads.end());
}

CycleCount WrapperTimeCalculator::time(WireCount width) const
{
    std::vector<FlipFlopCount> loads;
    return time(width, loads);
}

CycleCount WrapperTimeCalculator::time(WireCount width,
                                       std::vector<FlipFlopCount>& loads_scratch) const
{
    if (width < 1) {
        throw ValidationError("wrapper width must be at least 1 wire (module '" +
                              module_->name() + "')");
    }
    const FlipFlopCount scan_max = lpt_max_load(width, loads_scratch);
    const FlipFlopCount max_scan_in =
        water_fill_max(scan_max, total_flip_flops_, module_->scan_in_cells(), width);
    const FlipFlopCount max_scan_out =
        water_fill_max(scan_max, total_flip_flops_, module_->scan_out_cells(), width);
    return scan_test_time(module_->patterns(), max_scan_in, max_scan_out);
}

} // namespace mst
