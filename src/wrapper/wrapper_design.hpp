// COMBINE-style module wrapper design (Marinissen et al., ITC 2000 [14]).
//
// Given a module and a TAM width w, builds w wrapper chains that minimize
// the module's scan test time:
//  1. internal scan chains are partitioned over the wrapper chains with
//     LPT (longest-processing-time-first), minimizing the maximum
//     aggregate scan length;
//  2. wrapper input cells (functional inputs + bidirs) are water-filled
//     onto the chains to minimize the maximum scan-in length;
//  3. wrapper output cells (functional outputs + bidirs) are water-filled
//     independently to minimize the maximum scan-out length.
#pragma once

#include "soc/module.hpp"
#include "wrapper/wrapper_chain.hpp"

namespace mst {

/// Design a wrapper for `module` at TAM width `width` (wires).
/// Throws ValidationError if width < 1.
[[nodiscard]] WrapperDesign design_wrapper(const Module& module, WireCount width);

/// Test time of `module` when wrapped at `width`, without materializing
/// the full chain assignment (same partitioning as design_wrapper).
[[nodiscard]] CycleCount wrapped_test_time(const Module& module, WireCount width);

} // namespace mst
