// Pareto-optimal wrapper widths and minimal-width queries.
//
// The wrapped test time t(w) produced by a list-scheduling wrapper design
// is a staircase in the TAM width w. ModuleTimeTable precomputes the
// staircase once per module and answers the two queries the optimizers
// need: "time at width w" and "minimal width fitting a memory depth D".
//
// Because list scheduling gives no hard guarantee that t is monotone in
// w, the table exposes the *effective* time: a module placed on a group
// of width w may always leave wires idle and use its best width <= w.
// This makes time(w) non-increasing by construction, which the
// architecture layer and the paper's reasoning both rely on.
#pragma once

#include <optional>
#include <vector>

#include "soc/module.hpp"
#include "wrapper/wrapper_chain.hpp"

namespace mst {

/// One Pareto point of a module's width/time trade-off.
struct ParetoPoint {
    WireCount width = 0;
    CycleCount test_time = 0;
};

/// How the staircase entries are computed. Both modes yield identical
/// tables; `reference` exists so benchmarks can measure the seed's
/// full-design path and tests can cross-check the fast calculator.
enum class TableBuild {
    fast,      ///< WrapperTimeCalculator: chains sorted once, loads-only LPT
    reference, ///< full design_wrapper materialization per width (seed path)
};

/// Precomputed width -> test-time staircase for one module.
class ModuleTimeTable {
public:
    /// Build the table for widths 1..max_width. If max_width is 0 the
    /// module's own max_useful_width() is used (clamped to width_cap).
    explicit ModuleTimeTable(const Module& module, WireCount max_width = 0,
                             TableBuild build = TableBuild::fast);

    /// Restore a table from its serialized staircase arrays (the shared-
    /// memory cache tier, src/shm/store.hpp). The derived fields (pareto
    /// points, suffix-min areas, min area) are recomputed from the
    /// arrays through the same finalize path a fresh build uses, so a
    /// restored table is byte-identical to the original. Throws
    /// ValidationError when the arrays are inconsistent (wrong sizes,
    /// non-monotone times, out-of-range used widths).
    ModuleTimeTable(const Module& module, std::vector<CycleCount> times,
                    std::vector<WireCount> used_widths);

    [[nodiscard]] const Module& module() const noexcept { return *module_; }
    [[nodiscard]] WireCount max_width() const noexcept
    {
        return static_cast<WireCount>(times_.size());
    }

    /// Effective (monotone non-increasing) test time at width w.
    /// Widths beyond max_width() saturate at the final value.
    [[nodiscard]] CycleCount time(WireCount width) const;

    /// Width actually used when width `w` wires are offered (<= w).
    [[nodiscard]] WireCount used_width(WireCount width) const;

    /// Minimal width whose effective time fits in `depth`, or nullopt if
    /// even the maximal width does not fit.
    [[nodiscard]] std::optional<WireCount> min_width_for(CycleCount depth) const;

    /// Pareto points: widths where the effective time strictly drops.
    [[nodiscard]] const std::vector<ParetoPoint>& pareto() const noexcept { return pareto_; }

    /// Minimum width*time rectangle area over all widths (the baseline's
    /// per-module packing area).
    [[nodiscard]] CycleCount min_area() const noexcept { return min_area_; }

    /// Minimum width*time rectangle area over widths >= `width`. In any
    /// packing whose every group fill stays within a depth D, this module
    /// sits on a group at least min_width_for(D) wide, so
    /// min_area_from(min_width_for(D)) lower-bounds the wire-cycles the
    /// module occupies — the per-depth packing floor PackEngine uses to
    /// prune provably-infeasible (depth, budget) queries without running
    /// a single greedy pass.
    [[nodiscard]] CycleCount min_area_from(WireCount width) const;

    /// Raw staircase arrays (entry i = value at width i + 1), exposed so
    /// SocTimeTables can flatten them with range copies instead of one
    /// checked call per width.
    [[nodiscard]] const std::vector<CycleCount>& effective_times() const noexcept
    {
        return times_;
    }
    [[nodiscard]] const std::vector<CycleCount>& suffix_min_areas() const noexcept
    {
        return suffix_min_area_;
    }
    /// Width actually used at every table width (entry i = width i + 1):
    /// together with effective_times() this is the table's complete
    /// serialized state — everything else is derived (see the restore
    /// constructor).
    [[nodiscard]] const std::vector<WireCount>& used_width_table() const noexcept
    {
        return used_widths_;
    }

private:
    /// Recompute pareto_, suffix_min_area_, and min_area_ from times_
    /// and used_widths_ (shared by the build and restore constructors).
    void finalize_derived();

    const Module* module_;
    std::vector<CycleCount> times_;      ///< effective time at width i+1
    std::vector<WireCount> used_widths_; ///< width achieving times_[i]
    std::vector<CycleCount> suffix_min_area_; ///< min area over widths >= i+1
    std::vector<ParetoPoint> pareto_;
    CycleCount min_area_ = 0;
};

/// Hard upper limit on considered wrapper widths; protects table size for
/// modules with very many terminals.
inline constexpr WireCount width_cap = 512;

} // namespace mst
