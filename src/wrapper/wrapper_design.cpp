#include "wrapper/wrapper_design.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "wrapper/test_time.hpp"

namespace mst {

namespace {

/// Min-heap entry: (current load, chain index). Tie-break on index for
/// deterministic designs.
using LoadEntry = std::pair<FlipFlopCount, int>;

struct LoadGreater {
    bool operator()(const LoadEntry& a, const LoadEntry& b) const noexcept
    {
        return a > b;
    }
};

/// Assign internal scan chains to wrapper chains with LPT: longest chain
/// first, each onto the currently shortest wrapper chain.
void partition_scan_chains(const Module& module, WrapperDesign& design)
{
    std::vector<int> order(static_cast<std::size_t>(module.scan_chain_count()));
    std::iota(order.begin(), order.end(), 0);
    const auto& lengths = module.scan_chain_lengths();
    std::stable_sort(order.begin(), order.end(), [&lengths](int a, int b) {
        return lengths[static_cast<std::size_t>(a)] > lengths[static_cast<std::size_t>(b)];
    });

    std::priority_queue<LoadEntry, std::vector<LoadEntry>, LoadGreater> heap;
    for (int c = 0; c < design.width; ++c) {
        heap.emplace(0, c);
    }
    for (const int chain_index : order) {
        auto [load, wrapper_index] = heap.top();
        heap.pop();
        WrapperChain& chain = design.chains[static_cast<std::size_t>(wrapper_index)];
        chain.scan_chain_indices.push_back(chain_index);
        chain.scan_flip_flops += lengths[static_cast<std::size_t>(chain_index)];
        heap.emplace(chain.scan_flip_flops, wrapper_index);
    }
}

/// Water-fill `cells` unit items onto the wrapper chains so that the
/// maximum of (base load + cells assigned) is minimized. `base` selects
/// whether the scan-in or scan-out side is being filled.
template <typename BaseLength, typename AddCell>
void water_fill_cells(int cells, WrapperDesign& design, BaseLength base, AddCell add)
{
    if (cells <= 0) {
        return;
    }
    std::priority_queue<LoadEntry, std::vector<LoadEntry>, LoadGreater> heap;
    for (int c = 0; c < design.width; ++c) {
        heap.emplace(base(design.chains[static_cast<std::size_t>(c)]), c);
    }
    for (int remaining = cells; remaining > 0; --remaining) {
        auto [load, wrapper_index] = heap.top();
        heap.pop();
        add(design.chains[static_cast<std::size_t>(wrapper_index)]);
        heap.emplace(load + 1, wrapper_index);
    }
}

} // namespace

WrapperDesign design_wrapper(const Module& module, WireCount width)
{
    if (width < 1) {
        throw ValidationError("wrapper width must be at least 1 wire (module '" + module.name() + "')");
    }
    WrapperDesign design;
    design.width = width;
    design.chains.resize(static_cast<std::size_t>(width));

    partition_scan_chains(module, design);
    water_fill_cells(module.scan_in_cells(), design,
                     [](const WrapperChain& c) { return c.scan_in_length(); },
                     [](WrapperChain& c) { ++c.input_cells; });
    water_fill_cells(module.scan_out_cells(), design,
                     [](const WrapperChain& c) { return c.scan_out_length(); },
                     [](WrapperChain& c) { ++c.output_cells; });

    for (const WrapperChain& chain : design.chains) {
        design.max_scan_in = std::max(design.max_scan_in, chain.scan_in_length());
        design.max_scan_out = std::max(design.max_scan_out, chain.scan_out_length());
    }
    design.test_time = scan_test_time(module.patterns(), design.max_scan_in, design.max_scan_out);
    return design;
}

CycleCount wrapped_test_time(const Module& module, WireCount width)
{
    return design_wrapper(module, width).test_time;
}

} // namespace mst
