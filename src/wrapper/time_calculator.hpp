// Fast, exact wrapper test-time evaluation.
//
// Building a ModuleTimeTable dominated the optimizer's wall time: the
// staircase needs wrapped_test_time(module, w) for every width w, and
// the full design path re-sorts the module's scan chains, materializes a
// WrapperDesign, and water-fills the functional cells one by one on
// every call. Only three numbers per width survive into the time
// formula: the LPT maximum aggregate scan length and the two water-fill
// maxima — and the water-fill maxima have closed forms. The calculator
// sorts the chains once per module and evaluates each width with a
// loads-only LPT heap, producing test times byte-identical to
// design_wrapper (asserted exhaustively by tests/wrapper_time_test.cpp).
#pragma once

#include <vector>

#include "soc/module.hpp"

namespace mst {

/// Reusable per-module evaluator of design_wrapper(...).test_time.
class WrapperTimeCalculator {
public:
    explicit WrapperTimeCalculator(const Module& module);

    [[nodiscard]] const Module& module() const noexcept { return *module_; }

    /// Test time of `module` wrapped at `width`; equals
    /// design_wrapper(module, width).test_time exactly.
    /// Throws ValidationError if width < 1.
    [[nodiscard]] CycleCount time(WireCount width) const;

    /// Same result as time(), but the LPT load heap lives in
    /// `loads_scratch` (cleared and reused per call). The table build
    /// evaluates every width of every module in a tight loop; reusing
    /// one buffer per build task keeps that loop allocation-free.
    [[nodiscard]] CycleCount time(WireCount width,
                                  std::vector<FlipFlopCount>& loads_scratch) const;

private:
    /// LPT maximum aggregate scan length over `width` wrapper chains.
    [[nodiscard]] FlipFlopCount lpt_max_load(WireCount width) const;
    [[nodiscard]] FlipFlopCount lpt_max_load(WireCount width,
                                             std::vector<FlipFlopCount>& loads) const;

    const Module* module_;
    std::vector<FlipFlopCount> sorted_lengths_; ///< chain lengths, descending
    FlipFlopCount total_flip_flops_ = 0;
    FlipFlopCount longest_chain_ = 0;
};

} // namespace mst
