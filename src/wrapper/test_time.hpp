// The scan test application time formula used throughout the paper.
#pragma once

#include "common/types.hpp"

namespace mst {

/// Test application time in test-clock cycles for a wrapped module with
/// `patterns` test patterns, maximum wrapper scan-in length `max_scan_in`
/// and maximum wrapper scan-out length `max_scan_out`:
///
///   t = (1 + max(s_i, s_o)) * p + min(s_i, s_o)
///
/// (pipelined scan-in of the next pattern overlapped with scan-out of the
/// previous one, one capture cycle per pattern; [11], [14]).
[[nodiscard]] CycleCount scan_test_time(PatternCount patterns,
                                        FlipFlopCount max_scan_in,
                                        FlipFlopCount max_scan_out) noexcept;

} // namespace mst
