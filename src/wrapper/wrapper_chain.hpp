// Wrapper chain data structures produced by the COMBINE-style wrapper
// design of [14] (Marinissen, Goel, Lousberg, ITC 2000).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace mst {

/// One wrapper scan chain: the internal scan chains concatenated on it
/// plus the wrapper input/output cells placed around them.
struct WrapperChain {
    std::vector<int> scan_chain_indices; ///< indices into the module's chain list
    FlipFlopCount scan_flip_flops = 0;   ///< sum of assigned internal chain lengths
    int input_cells = 0;                 ///< wrapper input cells on this chain
    int output_cells = 0;                ///< wrapper output cells on this chain

    /// Length of the scan-in path through this chain.
    [[nodiscard]] FlipFlopCount scan_in_length() const noexcept
    {
        return scan_flip_flops + input_cells;
    }

    /// Length of the scan-out path through this chain.
    [[nodiscard]] FlipFlopCount scan_out_length() const noexcept
    {
        return scan_flip_flops + output_cells;
    }
};

/// A complete module wrapper at a given TAM width.
struct WrapperDesign {
    WireCount width = 0;
    std::vector<WrapperChain> chains;     ///< exactly `width` entries
    FlipFlopCount max_scan_in = 0;        ///< s_i = max over chains of scan-in length
    FlipFlopCount max_scan_out = 0;       ///< s_o = max over chains of scan-out length
    CycleCount test_time = 0;             ///< (1 + max(s_i, s_o)) * p + min(s_i, s_o)
};

} // namespace mst
