#include "baseline/lower_bound.hpp"

#include <algorithm>

#include "common/math.hpp"

namespace mst {

std::optional<WireCount> lower_bound_wires(const SocTimeTables& tables, CycleCount depth)
{
    WireCount widest_single = 0;
    CycleCount total_min_area = 0;
    for (int m = 0; m < tables.module_count(); ++m) {
        const std::optional<WireCount> width = tables.table(m).min_width_for(depth);
        if (!width) {
            return std::nullopt;
        }
        widest_single = std::max(widest_single, *width);
        total_min_area += tables.table(m).min_area();
    }
    const auto area_bound = static_cast<WireCount>(ceil_div(total_min_area, depth));
    return std::max(widest_single, area_bound);
}

std::optional<ChannelCount> lower_bound_channels(const SocTimeTables& tables, CycleCount depth)
{
    const std::optional<WireCount> wires = lower_bound_wires(tables, depth);
    if (!wires) {
        return std::nullopt;
    }
    return channels_from_wires(*wires);
}

} // namespace mst
