#include "baseline/bin_packing.hpp"

#include <algorithm>
#include <vector>

#include "arch/architecture.hpp"
#include "baseline/rectangle.hpp"
#include "common/error.hpp"

namespace mst {

namespace {

/// A packing column: a fixed-width lane of the ATE's time axis.
struct Column {
    WireCount width = 0;
    CycleCount fill = 0;
    std::vector<ModuleRectangle> rectangles;
};

/// First-fit by decreasing height: the classic level heuristic [7] builds
/// on. Each rectangle lands in the first column wide enough with depth
/// head-room, else opens a new column of its own width.
std::vector<Column> first_fit_decreasing(std::vector<ModuleRectangle> rectangles,
                                         CycleCount depth)
{
    std::stable_sort(rectangles.begin(), rectangles.end(),
                     [](const ModuleRectangle& a, const ModuleRectangle& b) {
                         if (a.height != b.height) {
                             return a.height > b.height;
                         }
                         return a.width > b.width;
                     });
    std::vector<Column> columns;
    for (const ModuleRectangle& rect : rectangles) {
        Column* target = nullptr;
        for (Column& column : columns) {
            if (rect.width <= column.width && column.fill + rect.height <= depth) {
                target = &column;
                break;
            }
        }
        if (target == nullptr) {
            columns.push_back(Column{rect.width, 0, {}});
            target = &columns.back();
        }
        target->fill += rect.height;
        target->rectangles.push_back(rect);
    }
    return columns;
}

/// Try to empty the narrowest columns by relocating their rectangles
/// (re-wrapped at the destination column's width) into the remaining
/// columns. Emptied columns are removed, saving their wires.
void eliminate_columns(std::vector<Column>& columns,
                       const SocTimeTables& tables,
                       CycleCount depth)
{
    bool removed = true;
    while (removed && columns.size() > 1) {
        removed = false;
        // Attack the column with the fewest wires first.
        auto victim = std::min_element(columns.begin(), columns.end(),
                                       [](const Column& a, const Column& b) {
                                           return a.width < b.width;
                                       });
        std::vector<Column> trial(columns.begin(), columns.end());
        trial.erase(trial.begin() + std::distance(columns.begin(), victim));

        bool all_relocated = true;
        for (const ModuleRectangle& rect : victim->rectangles) {
            Column* best = nullptr;
            CycleCount best_height = 0;
            for (Column& column : trial) {
                const CycleCount height = tables.table(rect.module_index).time(column.width);
                if (column.fill + height <= depth &&
                    (best == nullptr || column.fill + height < best->fill + best_height)) {
                    best = &column;
                    best_height = height;
                }
            }
            if (best == nullptr) {
                all_relocated = false;
                break;
            }
            best->fill += best_height;
            best->rectangles.push_back(
                ModuleRectangle{rect.module_index, best->width, best_height});
        }
        if (all_relocated) {
            columns = std::move(trial);
            removed = true;
        }
    }
}

} // namespace

BaselineResult pack_rectangles(const SocTimeTables& tables,
                               const AteSpec& ate,
                               BroadcastMode broadcast)
{
    ate.validate();
    const CycleCount depth = ate.vector_memory_depth;
    std::optional<std::vector<ModuleRectangle>> rectangles =
        narrowest_fitting_rectangles(tables, depth);
    if (!rectangles) {
        throw InfeasibleError("SOC '" + tables.soc().name() +
                              "' does not fit the ATE vector memory at any width");
    }

    std::vector<Column> columns = first_fit_decreasing(std::move(*rectangles), depth);
    eliminate_columns(columns, tables, depth);

    BaselineResult result;
    WireCount wires = 0;
    for (const Column& column : columns) {
        wires += column.width;
        result.test_cycles = std::max(result.test_cycles, column.fill);
    }
    result.channels = channels_from_wires(wires);
    result.columns = static_cast<int>(columns.size());
    if (result.channels > ate.channels) {
        throw InfeasibleError("baseline packing for SOC '" + tables.soc().name() +
                              "' exceeds the ATE channel budget");
    }
    result.max_sites = max_sites(result.channels, ate.channels, broadcast);
    return result;
}

} // namespace mst
