// Rectangle bin-packing baseline in the spirit of [7] (Iyengar et al.,
// ITC 2002): pick each module's narrowest rectangle that fits the memory
// depth, pack the rectangles into fixed-width columns first-fit by
// decreasing height, then run a column-elimination improvement pass.
// Unlike the paper's Step 1, the packer never re-balances widths with
// the best-free-memory criterion — which is exactly the gap Table 1
// exposes.
#pragma once

#include "arch/channel_group.hpp"
#include "ate/ate.hpp"
#include "common/types.hpp"
#include "throughput/model.hpp"

namespace mst {

/// Result of the baseline packer.
struct BaselineResult {
    ChannelCount channels = 0; ///< k for one SOC (2x total wires)
    SiteCount max_sites = 0;   ///< sites on the given ATE
    CycleCount test_cycles = 0; ///< max column fill
    int columns = 0;           ///< number of packing columns (TAMs)
};

/// Pack the SOC onto the ATE; throws InfeasibleError when a module fits
/// at no width or the channel budget is exceeded.
[[nodiscard]] BaselineResult pack_rectangles(const SocTimeTables& tables,
                                             const AteSpec& ate,
                                             BroadcastMode broadcast);

} // namespace mst
