// Module test rectangles: the geometric view of [7] (Iyengar, Goel,
// Chakrabarty, Marinissen, ITC 2002), where a module wrapped at width w
// is a rectangle of width w (TAM wires) and height t(w) (cycles), and
// the ATE is a bin of width K/2 wires and height D cycles.
#pragma once

#include <optional>
#include <vector>

#include "arch/channel_group.hpp"
#include "common/types.hpp"

namespace mst {

/// One module's chosen packing rectangle.
struct ModuleRectangle {
    int module_index = 0;
    WireCount width = 0;
    CycleCount height = 0;

    [[nodiscard]] CycleCount area() const noexcept
    {
        return static_cast<CycleCount>(width) * height;
    }
};

/// The narrowest rectangle of each module that fits the memory depth, or
/// nullopt if some module fits at no width (the SOC is untestable on
/// this ATE).
[[nodiscard]] std::optional<std::vector<ModuleRectangle>>
narrowest_fitting_rectangles(const SocTimeTables& tables, CycleCount depth);

} // namespace mst
