// The theoretical lower bound on the ATE channel count of [7]:
// no architecture can use fewer wires than (a) the widest single module
// needs to fit the memory depth, or (b) the total minimum packing area
// divided by the depth.
#pragma once

#include <optional>

#include "arch/channel_group.hpp"
#include "common/types.hpp"

namespace mst {

/// Lower bound in TAM wires for testing the SOC within `depth`, or
/// nullopt if some module fits at no width.
[[nodiscard]] std::optional<WireCount> lower_bound_wires(const SocTimeTables& tables,
                                                         CycleCount depth);

/// Lower bound in ATE channels (2x wires); nullopt when untestable.
[[nodiscard]] std::optional<ChannelCount> lower_bound_channels(const SocTimeTables& tables,
                                                               CycleCount depth);

} // namespace mst
