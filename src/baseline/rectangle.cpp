#include "baseline/rectangle.hpp"

namespace mst {

std::optional<std::vector<ModuleRectangle>>
narrowest_fitting_rectangles(const SocTimeTables& tables, CycleCount depth)
{
    std::vector<ModuleRectangle> rectangles;
    rectangles.reserve(static_cast<std::size_t>(tables.module_count()));
    for (int m = 0; m < tables.module_count(); ++m) {
        const std::optional<WireCount> width = tables.table(m).min_width_for(depth);
        if (!width) {
            return std::nullopt;
        }
        ModuleRectangle rect;
        rect.module_index = m;
        rect.width = *width;
        rect.height = tables.table(m).time(*width);
        rectangles.push_back(rect);
    }
    return rectangles;
}

} // namespace mst
