#include "ate/ate.hpp"

#include "common/error.hpp"

namespace mst {

void AteSpec::validate() const
{
    if (channels <= 0) {
        throw ValidationError("ATE must have a positive channel count");
    }
    if (vector_memory_depth <= 0) {
        throw ValidationError("ATE must have a positive vector memory depth");
    }
    if (test_clock_hz <= 0.0) {
        throw ValidationError("ATE test clock frequency must be positive");
    }
}

void ProbeStation::validate() const
{
    if (index_time < 0.0) {
        throw ValidationError("probe station index time cannot be negative");
    }
    if (contact_test_time < 0.0) {
        throw ValidationError("contact test time cannot be negative");
    }
}

} // namespace mst
