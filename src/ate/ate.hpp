// ATE (automatic test equipment) and probe-station models: the fixed
// "target test cell" of the paper (Section 1: "We assume a given and
// fixed target test cell, including ATE and probe station").
#pragma once

#include "common/types.hpp"

namespace mst {

/// The tester: channel count, per-channel vector memory depth, and the
/// test clock it drives. Defaults follow the paper's PNX8550 experiments
/// (512 channels, 7M vectors, 5 MHz).
struct AteSpec {
    ChannelCount channels = 512;
    CycleCount vector_memory_depth = 7 * mebi;
    double test_clock_hz = 5e6;

    /// Seconds taken to apply `cycles` test clock cycles.
    [[nodiscard]] Seconds seconds_for(CycleCount cycles) const noexcept
    {
        return static_cast<double>(cycles) / test_clock_hz;
    }

    /// Throws ValidationError if any field is non-positive.
    void validate() const;
};

/// The prober: index time per touchdown and the (constant-duration)
/// contact test. Defaults are the paper's typical values
/// (t_i = 0.5 s, t_c = 1 ms).
struct ProbeStation {
    Seconds index_time = 0.5;
    Seconds contact_test_time = 0.001;

    /// Throws ValidationError on negative times.
    void validate() const;
};

/// The complete fixed test cell used by the optimizer.
struct TestCell {
    AteSpec ate;
    ProbeStation prober;

    void validate() const
    {
        ate.validate();
        prober.validate();
    }
};

} // namespace mst
