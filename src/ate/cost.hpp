// ATE upgrade economics from Section 7 of the paper:
// "buying 16 additional ATE channels with 7M memory depth would cost
//  roughly USD 8,000. At the same time, upgrading test vector memory for
//  16 channels from 7M to 14M would cost only USD 1,500."
#pragma once

#include "ate/ate.hpp"
#include "common/types.hpp"

namespace mst {

/// Market price model for extending a tester.
struct AteCostModel {
    /// Cost of one extra channel, fitted with the base memory depth
    /// (paper: $8,000 / 16 channels).
    UsDollars channel_cost = 8000.0 / 16.0;

    /// Cost of doubling the vector memory of one channel
    /// (paper: $1,500 / 16 channels for the 7M -> 14M step).
    UsDollars memory_doubling_cost_per_channel = 1500.0 / 16.0;

    /// Cost of adding `extra` channels (at base depth).
    [[nodiscard]] UsDollars channels_upgrade(ChannelCount extra) const noexcept
    {
        return channel_cost * extra;
    }

    /// Cost of doubling the memory of every channel of `ate`.
    [[nodiscard]] UsDollars memory_doubling(const AteSpec& ate) const noexcept
    {
        return memory_doubling_cost_per_channel * ate.channels;
    }

    /// How many whole channels the given budget buys.
    [[nodiscard]] ChannelCount channels_for_budget(UsDollars budget) const noexcept
    {
        if (channel_cost <= 0.0) {
            return 0;
        }
        return static_cast<ChannelCount>(budget / channel_cost);
    }
};

} // namespace mst
