// The per-site test architecture: a set of channel groups covering all
// modules of the SOC, plus the derived quantities (channel count, test
// time, free vector memory) the two-step algorithm reasons about.
//
// The architecture owns its groups and maintains running aggregates
// (total wires, total fill) across every mutation, so the greedy
// packing's per-module bookkeeping is O(1) instead of O(groups). All
// mutations therefore go through the Architecture itself (add_group /
// add_module / widen_group); the group list is only readable from
// outside. reset() re-arms an instance for another greedy pass while
// keeping the heap buffers of retired groups — the backbone of
// PackEngine's allocation-free PackScratch reuse.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/channel_group.hpp"
#include "ate/ate.hpp"
#include "common/types.hpp"
#include "throughput/model.hpp"

namespace mst {

/// A complete single-site architecture.
class Architecture {
public:
    explicit Architecture(const SocTimeTables& tables) : tables_(&tables) {}

    /// Copies carry the active groups and aggregates; the spare-group
    /// pool stays behind (it is scratch, not state).
    Architecture(const Architecture& other);
    Architecture& operator=(const Architecture& other);
    Architecture(Architecture&&) noexcept = default;
    Architecture& operator=(Architecture&&) noexcept = default;

    [[nodiscard]] const SocTimeTables& tables() const noexcept { return *tables_; }
    [[nodiscard]] const std::vector<ChannelGroup>& groups() const noexcept { return groups_; }

    /// Dense mirrors of the per-group fills and widths, maintained by
    /// every mutation. The greedy's innermost scan (best-fit group
    /// selection, expansion enumeration) walks these flat arrays instead
    /// of striding over the ChannelGroup objects.
    [[nodiscard]] const std::vector<CycleCount>& group_fills() const noexcept
    {
        return group_fills_;
    }
    [[nodiscard]] const std::vector<WireCount>& group_widths() const noexcept
    {
        return group_widths_;
    }

    /// Total TAM wires over all groups (running aggregate, O(1)).
    [[nodiscard]] WireCount total_wires() const noexcept { return total_wires_; }

    /// Sum of all group fills (running aggregate, O(1)): the greedy's
    /// free-memory selection metric reads this once per alternative
    /// instead of re-summing every group per placed module.
    [[nodiscard]] CycleCount total_fill() const noexcept { return total_fill_; }

    /// ATE channels consumed by one site: k = 2 * total wires.
    [[nodiscard]] ChannelCount channels() const noexcept
    {
        return channels_from_wires(total_wires());
    }

    /// SOC test length in cycles: the maximum group fill (groups run in
    /// parallel; members of a group run serially).
    [[nodiscard]] CycleCount test_cycles() const noexcept;

    /// Unused vector memory summed over all used channels:
    /// depth * wires - sum of fills (in wire-cycles). Step 1's
    /// option-selection metric ("total free memory"). O(1) from the
    /// running aggregates.
    [[nodiscard]] CycleCount free_memory(CycleCount depth) const noexcept
    {
        return depth * static_cast<CycleCount>(total_wires_) - total_fill_;
    }

    /// Append a group of `width` wires (reusing a pooled group's heap
    /// buffers when one is available) and return its index.
    std::size_t add_group(WireCount width);

    /// Add a module to group `group_index` at its current width.
    /// Inline: this is the single most frequent mutation of a greedy
    /// pass (once per module placement).
    void add_module(std::size_t group_index, int module_index)
    {
        ChannelGroup& group = groups_[group_index];
        const CycleCount before = group.fill();
        group.add_module(module_index);
        group_fills_[group_index] = group.fill();
        total_fill_ += group.fill() - before;
    }

    /// Grow group `group_index`; members are re-wrapped at the new width.
    void widen_group(std::size_t group_index, WireCount extra_wires);

    /// Retire every group into the spare pool and zero the aggregates:
    /// ready for the next greedy pass without freeing a single buffer.
    void reset() noexcept;

    /// Step 2's redistribution move: add one wire to the group with the
    /// largest fill, provided that group can still reduce its fill with
    /// at most `spare` additional wires (the time staircase may need
    /// several wires per step). Returns false — and leaves the
    /// architecture unchanged — when the bottleneck is saturated, so the
    /// caller stops handing out channels that cannot buy time.
    bool add_wire_to_bottleneck(WireCount spare);

    /// Channel-compaction pass: repeatedly try to delete a group by
    /// relocating all its modules into the remaining groups (re-wrapped
    /// at their widths) without exceeding `depth`. Narrowest groups are
    /// attacked first; every deletion saves the group's wires. Returns
    /// the number of wires saved. Used by Step 1 to tighten the greedy
    /// packing (criterion 1).
    WireCount compact(CycleCount depth);

    /// Check all structural invariants: every module in exactly one
    /// group, each group fill within `depth`, channels within `ate`
    /// budget, running aggregates in sync with the groups. Throws
    /// ValidationError on violation.
    void validate(const AteSpec& ate) const;

private:
    const SocTimeTables* tables_;
    std::vector<ChannelGroup> groups_;
    std::vector<ChannelGroup> spare_; ///< retired groups, buffers kept warm
    std::vector<CycleCount> group_fills_;
    std::vector<WireCount> group_widths_;
    WireCount total_wires_ = 0;
    CycleCount total_fill_ = 0;
};

/// Maximum sites n_max for a per-site channel count k on an ATE with K
/// channels (Section 6 Step 1):
///  - without broadcast every site needs k private channels:  n <= K / k;
///  - with stimuli broadcast the k/2 stimulus channels are shared and
///    only the k/2 response channels are per-site: (n+1) * k/2 <= K.
[[nodiscard]] SiteCount max_sites(ChannelCount per_site_channels,
                                  ChannelCount ate_channels,
                                  BroadcastMode broadcast) noexcept;

/// Largest per-site channel count usable with n sites on K channels
/// (inverse of max_sites; always even).
[[nodiscard]] ChannelCount per_site_channel_budget(SiteCount sites,
                                                   ChannelCount ate_channels,
                                                   BroadcastMode broadcast) noexcept;

} // namespace mst
