// The per-site test architecture: a set of channel groups covering all
// modules of the SOC, plus the derived quantities (channel count, test
// time, free vector memory) the two-step algorithm reasons about.
#pragma once

#include <vector>

#include "arch/channel_group.hpp"
#include "ate/ate.hpp"
#include "common/types.hpp"
#include "throughput/model.hpp"

namespace mst {

/// A complete single-site architecture.
class Architecture {
public:
    explicit Architecture(const SocTimeTables& tables) : tables_(&tables) {}

    [[nodiscard]] const SocTimeTables& tables() const noexcept { return *tables_; }
    [[nodiscard]] const std::vector<ChannelGroup>& groups() const noexcept { return groups_; }
    [[nodiscard]] std::vector<ChannelGroup>& groups() noexcept { return groups_; }

    /// Total TAM wires over all groups.
    [[nodiscard]] WireCount total_wires() const noexcept;

    /// ATE channels consumed by one site: k = 2 * total wires.
    [[nodiscard]] ChannelCount channels() const noexcept
    {
        return channels_from_wires(total_wires());
    }

    /// SOC test length in cycles: the maximum group fill (groups run in
    /// parallel; members of a group run serially).
    [[nodiscard]] CycleCount test_cycles() const noexcept;

    /// Unused vector memory summed over all used channels:
    /// depth * wires - sum of fills (in wire-cycles). Step 1's
    /// option-selection metric ("total free memory").
    [[nodiscard]] CycleCount free_memory(CycleCount depth) const noexcept;

    /// Step 2's redistribution move: add one wire to the group with the
    /// largest fill, provided that group can still reduce its fill with
    /// at most `spare` additional wires (the time staircase may need
    /// several wires per step). Returns false — and leaves the
    /// architecture unchanged — when the bottleneck is saturated, so the
    /// caller stops handing out channels that cannot buy time.
    bool add_wire_to_bottleneck(WireCount spare);

    /// Channel-compaction pass: repeatedly try to delete a group by
    /// relocating all its modules into the remaining groups (re-wrapped
    /// at their widths) without exceeding `depth`. Narrowest groups are
    /// attacked first; every deletion saves the group's wires. Returns
    /// the number of wires saved. Used by Step 1 to tighten the greedy
    /// packing (criterion 1).
    WireCount compact(CycleCount depth);

    /// Check all structural invariants: every module in exactly one
    /// group, each group fill within `depth`, channels within `ate`
    /// budget. Throws ValidationError on violation.
    void validate(const AteSpec& ate) const;

private:
    const SocTimeTables* tables_;
    std::vector<ChannelGroup> groups_;
};

/// Maximum sites n_max for a per-site channel count k on an ATE with K
/// channels (Section 6 Step 1):
///  - without broadcast every site needs k private channels:  n <= K / k;
///  - with stimuli broadcast the k/2 stimulus channels are shared and
///    only the k/2 response channels are per-site: (n+1) * k/2 <= K.
[[nodiscard]] SiteCount max_sites(ChannelCount per_site_channels,
                                  ChannelCount ate_channels,
                                  BroadcastMode broadcast) noexcept;

/// Largest per-site channel count usable with n sites on K channels
/// (inverse of max_sites; always even).
[[nodiscard]] ChannelCount per_site_channel_budget(SiteCount sites,
                                                   ChannelCount ate_channels,
                                                   BroadcastMode broadcast) noexcept;

} // namespace mst
