#include "arch/architecture.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace mst {

Architecture::Architecture(const Architecture& other)
    : tables_(other.tables_),
      groups_(other.groups_),
      group_fills_(other.group_fills_),
      group_widths_(other.group_widths_),
      total_wires_(other.total_wires_),
      total_fill_(other.total_fill_)
{
}

Architecture& Architecture::operator=(const Architecture& other)
{
    tables_ = other.tables_;
    // Retired groups in the spare pool are still bound to the previous
    // tables; reviving one after the assignment would compute fills
    // against the wrong SOC. Assignment is cold, so just drop the pool.
    spare_.clear();
    groups_ = other.groups_;
    group_fills_ = other.group_fills_;
    group_widths_ = other.group_widths_;
    total_wires_ = other.total_wires_;
    total_fill_ = other.total_fill_;
    return *this;
}

CycleCount Architecture::test_cycles() const noexcept
{
    CycleCount longest = 0;
    for (const ChannelGroup& group : groups_) {
        longest = std::max(longest, group.fill());
    }
    return longest;
}

std::size_t Architecture::add_group(WireCount width)
{
    if (spare_.empty()) {
        groups_.emplace_back(width, *tables_);
    } else {
        spare_.back().reset(width);
        groups_.push_back(std::move(spare_.back()));
        spare_.pop_back();
    }
    group_fills_.push_back(0);
    group_widths_.push_back(width);
    total_wires_ += width;
    return groups_.size() - 1;
}

void Architecture::widen_group(std::size_t group_index, WireCount extra_wires)
{
    ChannelGroup& group = groups_[group_index];
    total_wires_ += extra_wires;
    total_fill_ -= group.fill();
    group.widen(extra_wires);
    group_fills_[group_index] = group.fill();
    group_widths_[group_index] = group.width();
    total_fill_ += group.fill();
}

void Architecture::reset() noexcept
{
    while (!groups_.empty()) {
        spare_.push_back(std::move(groups_.back()));
        groups_.pop_back();
    }
    group_fills_.clear();
    group_widths_.clear();
    total_wires_ = 0;
    total_fill_ = 0;
}

bool Architecture::add_wire_to_bottleneck(WireCount spare)
{
    if (groups_.empty() || spare < 1) {
        return false;
    }
    const auto bottleneck = static_cast<std::size_t>(std::distance(
        groups_.begin(),
        std::max_element(groups_.begin(), groups_.end(),
                         [](const ChannelGroup& a, const ChannelGroup& b) {
                             return a.fill() < b.fill();
                         })));
    ChannelGroup& group = groups_[bottleneck];
    // Monotonicity of the time staircase means: if `spare` extra wires do
    // not lower the fill, no smaller amount does either.
    if (group.fill_at_width(group.width() + spare) >= group.fill()) {
        return false;
    }
    widen_group(bottleneck, 1);
    return true;
}

WireCount Architecture::compact(CycleCount depth)
{
    WireCount saved = 0;
    bool removed = true;
    while (removed && groups_.size() > 1) {
        removed = false;
        // Candidate victims, narrowest first.
        std::vector<std::size_t> victims(groups_.size());
        for (std::size_t i = 0; i < victims.size(); ++i) {
            victims[i] = i;
        }
        std::stable_sort(victims.begin(), victims.end(), [this](std::size_t a, std::size_t b) {
            return groups_[a].width() < groups_[b].width();
        });

        for (const std::size_t victim : victims) {
            std::vector<ChannelGroup> trial;
            trial.reserve(groups_.size() - 1);
            for (std::size_t g = 0; g < groups_.size(); ++g) {
                if (g != victim) {
                    trial.push_back(groups_[g]);
                }
            }
            bool all_relocated = true;
            for (const int module_index : groups_[victim].module_indices()) {
                ChannelGroup* best = nullptr;
                CycleCount best_fill = 0;
                for (ChannelGroup& group : trial) {
                    const CycleCount fill = group.fill_with(module_index);
                    if (fill <= depth && (best == nullptr || fill < best_fill)) {
                        best = &group;
                        best_fill = fill;
                    }
                }
                if (best == nullptr) {
                    all_relocated = false;
                    break;
                }
                best->add_module(module_index);
            }
            if (all_relocated) {
                saved += groups_[victim].width();
                groups_ = std::move(trial);
                // Compaction is cold (once per Step-1 result): one
                // aggregate recompute beats threading deltas through the
                // relocation loop above.
                group_fills_.clear();
                group_widths_.clear();
                total_wires_ = 0;
                total_fill_ = 0;
                for (const ChannelGroup& group : groups_) {
                    group_fills_.push_back(group.fill());
                    group_widths_.push_back(group.width());
                    total_wires_ += group.width();
                    total_fill_ += group.fill();
                }
                removed = true;
                break;
            }
        }
    }
    return saved;
}

void Architecture::validate(const AteSpec& ate) const
{
    std::vector<int> seen(static_cast<std::size_t>(tables_->module_count()), 0);
    WireCount wires = 0;
    CycleCount fills = 0;
    for (const ChannelGroup& group : groups_) {
        if (group.fill() > ate.vector_memory_depth) {
            throw ValidationError("channel group fill exceeds the ATE vector memory depth");
        }
        if (group.fill() != group.fill_at_width(group.width())) {
            throw ValidationError("channel group fill is out of sync with its members");
        }
        wires += group.width();
        fills += group.fill();
        for (const int module_index : group.module_indices()) {
            if (module_index < 0 || module_index >= tables_->module_count()) {
                throw ValidationError("channel group references a module outside the SOC");
            }
            ++seen[static_cast<std::size_t>(module_index)];
        }
    }
    if (wires != total_wires_ || fills != total_fill_) {
        throw ValidationError("architecture running aggregates are out of sync with its groups");
    }
    if (group_fills_.size() != groups_.size() || group_widths_.size() != groups_.size()) {
        throw ValidationError("architecture group mirrors are out of sync with its groups");
    }
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        if (group_fills_[g] != groups_[g].fill() || group_widths_[g] != groups_[g].width()) {
            throw ValidationError("architecture group mirrors are out of sync with its groups");
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
        if (seen[i] != 1) {
            throw ValidationError("module '" + tables_->soc().module(static_cast<int>(i)).name() +
                                  "' must be assigned to exactly one channel group");
        }
    }
    if (channels() > ate.channels) {
        throw ValidationError("architecture uses more channels than the ATE provides");
    }
}

SiteCount max_sites(ChannelCount per_site_channels,
                    ChannelCount ate_channels,
                    BroadcastMode broadcast) noexcept
{
    if (per_site_channels <= 0 || ate_channels < per_site_channels) {
        return 0;
    }
    if (broadcast == BroadcastMode::stimuli) {
        const ChannelCount half = per_site_channels / 2;
        return static_cast<SiteCount>((ate_channels - half) / half);
    }
    return static_cast<SiteCount>(ate_channels / per_site_channels);
}

ChannelCount per_site_channel_budget(SiteCount sites,
                                     ChannelCount ate_channels,
                                     BroadcastMode broadcast) noexcept
{
    if (sites <= 0) {
        return 0;
    }
    // Wires per site: K/(2n) private, or K/(n+1) when stimuli are shared.
    const WireCount wires = (broadcast == BroadcastMode::stimuli)
                                ? ate_channels / (sites + 1)
                                : ate_channels / (2 * sites);
    return channels_from_wires(wires);
}

} // namespace mst
