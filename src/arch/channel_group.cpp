#include "arch/channel_group.hpp"

#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/executor.hpp"

namespace mst {

SocTimeTables::SocTimeTables(const Soc& soc, TableBuild build, int threads) : soc_(&soc)
{
    // Per-module staircases are independent, so the build — the dominant
    // cost of a cold optimize call — fans out across the executor. Each
    // slot is written by exactly one index and the tables are assembled
    // in module order afterwards, so the result is byte-identical at any
    // thread count. Small fast builds run inline (ITC'02-sized ones
    // finish in well under the fan-out's wake-up cost); reference builds
    // always fan out — each module's exhaustive schedule is expensive at
    // any SOC size, and they are exactly what `bench --compare` times.
    const auto count = static_cast<std::size_t>(soc.module_count());
    constexpr std::size_t parallel_build_threshold = 64;
    if (count < parallel_build_threshold && build == TableBuild::fast) {
        tables_.reserve(count);
        for (const Module& m : soc.modules()) {
            tables_.emplace_back(m, 0, build);
            total_min_area_ += tables_.back().min_area();
        }
        return;
    }
    std::vector<std::optional<ModuleTimeTable>> slots(count);
    parallel_for_index(count, threads, [&](std::size_t m) {
        slots[m].emplace(soc.module(static_cast<int>(m)), 0, build);
    });
    tables_.reserve(count);
    for (std::size_t m = 0; m < count; ++m) {
        tables_.push_back(std::move(*slots[m]));
        total_min_area_ += tables_.back().min_area();
    }
}

ChannelGroup::ChannelGroup(WireCount width, const SocTimeTables& tables)
    : tables_(&tables), width_(width)
{
    if (width < 1) {
        throw ValidationError("channel group width must be at least one wire");
    }
}

CycleCount ChannelGroup::module_time(int module_index, WireCount width) const
{
    return tables_->table(module_index).time(width);
}

CycleCount ChannelGroup::fill_with(int module_index) const
{
    return fill_ + module_time(module_index, width_);
}

CycleCount ChannelGroup::fill_at_width(WireCount width) const
{
    CycleCount total = 0;
    for (const int module_index : modules_) {
        total += module_time(module_index, width);
    }
    return total;
}

WireCount ChannelGroup::min_widening_for(int module_index, CycleCount depth,
                                         WireCount max_extra) const
{
    for (WireCount delta = 1; delta <= max_extra; ++delta) {
        const WireCount candidate = width_ + delta;
        const CycleCount members = fill_at_width(candidate);
        const CycleCount added = module_time(module_index, candidate);
        if (members + added <= depth) {
            return delta;
        }
    }
    return 0;
}

void ChannelGroup::add_module(int module_index)
{
    fill_ += module_time(module_index, width_);
    modules_.push_back(module_index);
}

void ChannelGroup::widen(WireCount extra_wires)
{
    if (extra_wires < 1) {
        throw ValidationError("widening must add at least one wire");
    }
    width_ += extra_wires;
    fill_ = fill_at_width(width_);
}

} // namespace mst
