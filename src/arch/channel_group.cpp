#include "arch/channel_group.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/executor.hpp"

namespace mst {

SocTimeTables::SocTimeTables(const Soc& soc, TableBuild build, int threads) : soc_(&soc)
{
    // Per-module staircases are independent, so the build — the dominant
    // cost of a cold optimize call — fans out across the executor. Each
    // slot is written by exactly one index and the tables are assembled
    // in module order afterwards, so the result is byte-identical at any
    // thread count. Small fast builds run inline (ITC'02-sized ones
    // finish in well under the fan-out's wake-up cost); reference builds
    // always fan out — each module's exhaustive schedule is expensive at
    // any SOC size, and they are exactly what `bench --compare` times.
    const auto count = static_cast<std::size_t>(soc.module_count());
    constexpr std::size_t parallel_build_threshold = 64;
    if (count < parallel_build_threshold && build == TableBuild::fast) {
        tables_.reserve(count);
        for (const Module& m : soc.modules()) {
            tables_.emplace_back(m, 0, build);
        }
    } else {
        std::vector<std::optional<ModuleTimeTable>> slots(count);
        parallel_for_index(count, threads, [&](std::size_t m) {
            slots[m].emplace(soc.module(static_cast<int>(m)), 0, build);
        });
        tables_.reserve(count);
        for (std::size_t m = 0; m < count; ++m) {
            tables_.push_back(std::move(*slots[m]));
        }
    }
    flatten();
}

SocTimeTables::SocTimeTables(const Soc& soc, std::vector<ModuleTimeTable> tables)
    : soc_(&soc), tables_(std::move(tables))
{
    if (tables_.size() != static_cast<std::size_t>(soc.module_count())) {
        throw ValidationError("restored time tables do not match the SOC's module count");
    }
    flatten();
}

void SocTimeTables::flatten()
{
    // Flatten the staircases into the SoA hot-path mirror. Every index
    // the flat accessors can produce is materialized here, which is what
    // licenses the unchecked loads: module indices are validated by the
    // offsets_ size (module_count() + 1 entries) and width clamping can
    // never leave the module's [offsets_[m], offsets_[m + 1]) slice.
    const std::size_t count = tables_.size();
    total_min_area_ = 0;
    for (const ModuleTimeTable& table : tables_) {
        total_min_area_ += table.min_area();
    }
    offsets_.reserve(count + 1);
    offsets_.push_back(0);
    std::size_t total_widths = 0;
    for (const ModuleTimeTable& table : tables_) {
        total_widths += static_cast<std::size_t>(table.max_width());
        offsets_.push_back(total_widths);
    }
    times_flat_.reserve(total_widths);
    suffix_min_area_flat_.reserve(total_widths);
    volumes_.reserve(count);
    for (const ModuleTimeTable& table : tables_) {
        const std::vector<CycleCount>& times = table.effective_times();
        const std::vector<CycleCount>& areas = table.suffix_min_areas();
        times_flat_.insert(times_flat_.end(), times.begin(), times.end());
        suffix_min_area_flat_.insert(suffix_min_area_flat_.end(), areas.begin(), areas.end());
        volumes_.push_back(table.module().test_data_volume_bits());
    }
}

ChannelGroup::ChannelGroup(WireCount width, const SocTimeTables& tables)
    : tables_(&tables)
{
    reset(width);
}

ChannelGroup::ChannelGroup(const ChannelGroup& other)
    : tables_(other.tables_),
      width_(other.width_),
      modules_(other.modules_),
      fill_(other.fill_),
      members_max_width_(other.members_max_width_),
      stair_root_(other.width_ + 1)
{
    // The staircase cache stays behind: copies are long-lived snapshots
    // (Step-2 incumbents, memo entries) that rarely get queried beyond
    // their width, and a dropped cache only costs a lazy rebuild.
}

ChannelGroup& ChannelGroup::operator=(const ChannelGroup& other)
{
    tables_ = other.tables_;
    width_ = other.width_;
    modules_ = other.modules_;
    fill_ = other.fill_;
    members_max_width_ = other.members_max_width_;
    stair_.clear();
    stair_synced_.clear();
    stair_root_ = other.width_ + 1;
    return *this;
}

void ChannelGroup::reset(WireCount width)
{
    if (width < 1) {
        throw ValidationError("channel group width must be at least one wire");
    }
    width_ = width;
    modules_.clear();
    fill_ = 0;
    members_max_width_ = 0;
    stair_.clear();
    stair_synced_.clear();
    stair_root_ = width + 1;
}

CycleCount ChannelGroup::recompute_fill(WireCount width) const noexcept
{
    CycleCount total = 0;
    for (const int module_index : modules_) {
        total += tables_->time(module_index, width);
    }
    return total;
}

void ChannelGroup::cover_width(WireCount width) const
{
    // Append one entry per uncovered width, each a from-scratch member
    // sum (and therefore synced with the whole member list). Every
    // entry is computed at most once per (group, width); later members
    // are folded in lazily by fill_at_width's catch-up.
    auto next = stair_root_ + static_cast<WireCount>(stair_.size());
    for (; next <= width; ++next) {
        stair_.push_back(recompute_fill(next));
        stair_synced_.push_back(static_cast<std::uint32_t>(modules_.size()));
    }
}

CycleCount ChannelGroup::fill_at_width(WireCount width) const
{
    if (width == width_) {
        return fill_;
    }
    if (width < stair_root_) {
        // Narrower than the staircase root (only tests and validation
        // ask): recompute from scratch, the cold path.
        return recompute_fill(width);
    }
    // Member times are flat beyond the members' max table width, so the
    // staircase never needs entries past the saturation width.
    const WireCount capped = std::min(width, std::max(saturation_width(), stair_root_));
    cover_width(capped);
    const auto index = static_cast<std::size_t>(capped - stair_root_);
    // Catch the entry up with the members that joined since it was last
    // touched: each (entry, member) pair is folded at most once, and
    // only when the width is actually probed again.
    const auto member_count = static_cast<std::uint32_t>(modules_.size());
    if (stair_synced_[index] != member_count) {
        CycleCount value = stair_[index];
        for (std::uint32_t j = stair_synced_[index]; j < member_count; ++j) {
            value += tables_->time(modules_[j], capped);
        }
        stair_[index] = value;
        stair_synced_[index] = member_count;
    }
    return stair_[index];
}

WireCount ChannelGroup::min_widening_for(int module_index, CycleCount depth,
                                         WireCount max_extra) const
{
    if (max_extra < 1) {
        return 0;
    }
    // fits(delta) is monotone in delta: every member time and the
    // candidate's time are non-increasing in width (ModuleTimeTable
    // serves *effective* times), so member-sum + candidate is too. The
    // linear scan this replaces returned the first fitting delta, which
    // monotonicity makes the unique boundary — a gallop + binary search
    // over the fill staircase lands on exactly the same delta
    // (tests/incremental_pack_test.cpp pins it against a linear
    // reference, including saturation past the widest table).
    const auto fits = [&](WireCount delta) {
        const WireCount candidate = width_ + delta;
        return fill_at_width(candidate) + tables_->time(module_index, candidate) <= depth;
    };
    if (!fits(max_extra)) {
        return 0;
    }
    if (fits(1)) {
        return 1;
    }
    // Gallop to the first fitting power-of-two-ish bound, then bisect
    // the bracket (low fails, high fits).
    WireCount low = 1;
    WireCount high = 2;
    while (high < max_extra && !fits(high)) {
        low = high;
        high = std::min(high * 2, max_extra);
    }
    while (high - low > 1) {
        const WireCount mid = low + (high - low) / 2;
        if (fits(mid)) {
            high = mid;
        } else {
            low = mid;
        }
    }
    return high;
}

void ChannelGroup::widen(WireCount extra_wires)
{
    if (extra_wires < 1) {
        throw ValidationError("widening must add at least one wire");
    }
    // fill_at_width reads (or lazily extends) the staircase; entries are
    // member sums at fixed widths, so widening invalidates nothing.
    const WireCount new_width = width_ + extra_wires;
    fill_ = fill_at_width(new_width);
    width_ = new_width;
}

} // namespace mst
