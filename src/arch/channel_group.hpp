// Channel groups: the unit of the paper's Step-1 architecture.
//
// A channel group is a fixed-width TAM; the modules assigned to it are
// tested one after another over the same wires, so the group's vector
// memory "fill" is the sum of its members' wrapped test times and must
// stay within the ATE's per-channel depth.
//
// Both classes here sit on the innermost greedy-packing loop, so they
// are built around incremental state instead of recomputation:
// SocTimeTables flattens every module staircase into one contiguous
// block (a time lookup is a single indexed load), and ChannelGroup
// maintains a lazily-extended *fill staircase* — cached member-time
// sums at widths beyond the current one — so fill-at-width queries and
// widenings are O(1) amortized instead of O(members). All of it is pure
// caching: results are byte-identical to the recomputing code
// (tests/incremental_pack_test.cpp pins both invariants).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "soc/soc.hpp"
#include "wrapper/pareto.hpp"

namespace mst {

/// Precomputed width/time staircases for every module of an SOC.
/// The SOC must outlive the tables. Immutable after construction, so one
/// instance can be shared freely across threads (BatchRunner builds one
/// per distinct SOC and hands it to every scenario of that SOC).
///
/// Besides the per-module ModuleTimeTable objects, the constructor
/// flattens the staircases into one contiguous structure-of-arrays
/// block (times, suffix-min areas, per-module offsets, test-data
/// volumes), validated once at build time. The flat accessors below are
/// the packing hot path: no bounds-checked `.at()`, no object hop — a
/// debug assert guards the contract in debug builds.
class SocTimeTables {
public:
    /// `threads` caps the parallel per-module build (<= 0: whole shared
    /// executor). The tables are identical at any value.
    explicit SocTimeTables(const Soc& soc, TableBuild build = TableBuild::fast,
                           int threads = 0);

    /// Restore from per-module tables deserialized out of the shared-
    /// memory cache tier (src/shm/store.hpp). `tables[i]` must reference
    /// soc.module(i); the flattened hot-path mirror is rebuilt through
    /// the same code the building constructor uses, so a restored
    /// instance is byte-identical to a fresh build. Throws
    /// ValidationError on a module-count mismatch.
    SocTimeTables(const Soc& soc, std::vector<ModuleTimeTable> tables);

    [[nodiscard]] const Soc& soc() const noexcept { return *soc_; }
    [[nodiscard]] const ModuleTimeTable& table(int module_index) const noexcept
    {
        assert(module_index >= 0 && module_index < module_count());
        return tables_[static_cast<std::size_t>(module_index)];
    }
    [[nodiscard]] int module_count() const noexcept { return static_cast<int>(tables_.size()); }

    /// Sum over modules of the minimum width*time rectangle area: the
    /// theoretical packing floor both search loops start from.
    [[nodiscard]] CycleCount total_min_area() const noexcept { return total_min_area_; }

    // --- Flat hot-path accessors (all O(1), unchecked in release) ---

    /// Widths recorded for `module_index` (== its table's max_width()).
    [[nodiscard]] WireCount flat_max_width(int module_index) const noexcept
    {
        assert(module_index >= 0 && module_index < module_count());
        const auto m = static_cast<std::size_t>(module_index);
        return static_cast<WireCount>(offsets_[m + 1] - offsets_[m]);
    }

    /// Effective (monotone non-increasing) test time of `module_index`
    /// at `width`; widths beyond the module's table saturate. Identical
    /// to table(module_index).time(width) minus the checks.
    [[nodiscard]] CycleCount time(int module_index, WireCount width) const noexcept
    {
        assert(width >= 1);
        const auto m = static_cast<std::size_t>(module_index);
        const auto count = offsets_[m + 1] - offsets_[m];
        const auto clamped = static_cast<std::size_t>(width) < count
                                 ? static_cast<std::size_t>(width)
                                 : count;
        return times_flat_[offsets_[m] + clamped - 1];
    }

    /// One module's staircase slice, for loops that probe the same
    /// module at many widths (the greedy's per-module group scans):
    /// resolving the offsets once hoists the indirections out of the
    /// inner loop.
    struct TimeRow {
        const CycleCount* times; ///< entry i = time at width i + 1
        std::size_t count;       ///< widths recorded; wider saturates

        [[nodiscard]] CycleCount at_width(WireCount width) const noexcept
        {
            const auto clamped =
                static_cast<std::size_t>(width) < count ? static_cast<std::size_t>(width)
                                                        : count;
            return times[clamped - 1];
        }
    };
    [[nodiscard]] TimeRow time_row(int module_index) const noexcept
    {
        assert(module_index >= 0 && module_index < module_count());
        const auto m = static_cast<std::size_t>(module_index);
        return {times_flat_.data() + offsets_[m], offsets_[m + 1] - offsets_[m]};
    }

    /// Minimum width*time rectangle area of `module_index` over widths
    /// >= `width` (the per-depth packing floor; see ModuleTimeTable).
    [[nodiscard]] CycleCount min_area_from(int module_index, WireCount width) const noexcept
    {
        assert(width >= 1);
        const auto m = static_cast<std::size_t>(module_index);
        const auto count = offsets_[m + 1] - offsets_[m];
        const auto clamped = static_cast<std::size_t>(width) < count
                                 ? static_cast<std::size_t>(width)
                                 : count;
        return suffix_min_area_flat_[offsets_[m] + clamped - 1];
    }

    /// Minimal width of `module_index` whose effective time fits in
    /// `depth`, or nullopt if even the maximal width does not fit.
    /// Identical to table(module_index).min_width_for(depth), served by
    /// a binary search over the flat times block.
    [[nodiscard]] std::optional<WireCount> min_width_for(int module_index,
                                                         CycleCount depth) const noexcept
    {
        const auto m = static_cast<std::size_t>(module_index);
        const CycleCount* first = times_flat_.data() + offsets_[m];
        const CycleCount* last = times_flat_.data() + offsets_[m + 1];
        if (*(last - 1) > depth) {
            return std::nullopt;
        }
        // Times are non-increasing: find the first width that fits.
        const CycleCount* it = std::lower_bound(
            first, last, depth,
            [](CycleCount time, CycleCount limit) { return time > limit; });
        return static_cast<WireCount>(it - first) + 1;
    }

    /// Test-data volume of `module_index` in bits (sort key of the
    /// by-volume module orders, precomputed once per SOC).
    [[nodiscard]] std::int64_t volume_bits(int module_index) const noexcept
    {
        assert(module_index >= 0 && module_index < module_count());
        return volumes_[static_cast<std::size_t>(module_index)];
    }

private:
    /// Build the flat SoA mirror and total_min_area_ from tables_.
    void flatten();

    const Soc* soc_;
    std::vector<ModuleTimeTable> tables_;
    CycleCount total_min_area_ = 0;

    /// Flat SoA mirror of the per-module staircases: module m owns
    /// entries [offsets_[m], offsets_[m + 1]) of the value arrays,
    /// entry i holding the value at width i + 1.
    std::vector<std::size_t> offsets_;
    std::vector<CycleCount> times_flat_;
    std::vector<CycleCount> suffix_min_area_flat_;
    std::vector<std::int64_t> volumes_;
};

/// One TAM / channel group.
///
/// The group keeps its fill incrementally and caches a *fill staircase*:
/// member-time sums at widths beyond the current one, extended lazily as
/// queries reach further. Each entry remembers how many members it has
/// folded in, so adding a module is O(1) (no cache touch at all) and a
/// later query catches the entry up with just the members that joined
/// since — every (entry, member) pair is folded at most once, and only
/// if that width is actually probed again. The staircase makes
/// fill_at_width / widen O(1) amortized, and — because every member
/// time is non-increasing in width — lets min_widening_for replace its
/// linear delta scan with a gallop + binary search that returns the
/// exact same delta.
///
/// The staircase is a cache with no observable effect on results; it is
/// dropped on copy (copies are long-lived snapshots: Step-2 incumbents,
/// PackEngine memo entries) and rebuilt lazily on demand. Lazy extension
/// mutates `const` objects under the hood, so a single ChannelGroup must
/// not be queried from two threads at once; the packing engine gives
/// every greedy pass its own architecture, which guarantees that.
class ChannelGroup {
public:
    ChannelGroup(WireCount width, const SocTimeTables& tables);

    /// Copies keep the logical state (width, members, fill) and drop the
    /// staircase cache; see the class comment.
    ChannelGroup(const ChannelGroup& other);
    ChannelGroup& operator=(const ChannelGroup& other);
    ChannelGroup(ChannelGroup&&) noexcept = default;
    ChannelGroup& operator=(ChannelGroup&&) noexcept = default;

    [[nodiscard]] WireCount width() const noexcept { return width_; }
    [[nodiscard]] const std::vector<int>& module_indices() const noexcept { return modules_; }
    [[nodiscard]] CycleCount fill() const noexcept { return fill_; }

    /// Fill if `module_index` were added at the current width.
    [[nodiscard]] CycleCount fill_with(int module_index) const noexcept
    {
        return fill_ + tables_->time(module_index, width_);
    }

    /// Fill of the current members if the group were `width` wide.
    [[nodiscard]] CycleCount fill_at_width(WireCount width) const;

    /// Smallest width increase delta >= 1 such that the re-wrapped members
    /// plus `module_index` fit in `depth`, capped at `max_extra`.
    /// Returns 0 if no delta in [1, max_extra] works.
    [[nodiscard]] WireCount min_widening_for(int module_index, CycleCount depth,
                                             WireCount max_extra) const;

    /// Add a module at the current width. O(1): the staircase entries
    /// catch up lazily when their widths are next queried.
    void add_module(int module_index)
    {
        fill_ += tables_->time(module_index, width_);
        modules_.push_back(module_index);
        const WireCount table_width = tables_->flat_max_width(module_index);
        if (table_width > members_max_width_) {
            members_max_width_ = table_width;
        }
    }

    /// Grow the group; members are re-wrapped at the new width.
    void widen(WireCount extra_wires);

    /// Re-arm a pooled group as if freshly constructed at `width`,
    /// keeping the heap buffers (PackScratch reuse).
    void reset(WireCount width);

private:
    /// Sum of member times at `width`, computed from scratch.
    [[nodiscard]] CycleCount recompute_fill(WireCount width) const noexcept;
    /// Extend the staircase so it covers `width` (<= saturation width).
    void cover_width(WireCount width) const;
    /// Width beyond which no member time can drop any further.
    [[nodiscard]] WireCount saturation_width() const noexcept { return members_max_width_; }

    const SocTimeTables* tables_;
    WireCount width_ = 0;
    std::vector<int> modules_;
    CycleCount fill_ = 0;
    /// Max over members of their table width: beyond it the fill is flat.
    WireCount members_max_width_ = 0;
    /// stair_[i] is the fill of the first stair_synced_[i] members at
    /// width stair_root_ + i. Rooted at construction width + 1; widening
    /// never invalidates entries (they are width-indexed sums independent
    /// of the current width), and an entry whose synced count lags the
    /// member list is caught up on its next query. `mutable`: extended
    /// lazily by const queries (see class comment).
    mutable std::vector<CycleCount> stair_;
    mutable std::vector<std::uint32_t> stair_synced_;
    WireCount stair_root_ = 0;
};

} // namespace mst
