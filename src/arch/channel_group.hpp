// Channel groups: the unit of the paper's Step-1 architecture.
//
// A channel group is a fixed-width TAM; the modules assigned to it are
// tested one after another over the same wires, so the group's vector
// memory "fill" is the sum of its members' wrapped test times and must
// stay within the ATE's per-channel depth.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "soc/soc.hpp"
#include "wrapper/pareto.hpp"

namespace mst {

/// Precomputed width/time staircases for every module of an SOC.
/// The SOC must outlive the tables. Immutable after construction, so one
/// instance can be shared freely across threads (BatchRunner builds one
/// per distinct SOC and hands it to every scenario of that SOC).
class SocTimeTables {
public:
    /// `threads` caps the parallel per-module build (<= 0: whole shared
    /// executor). The tables are identical at any value.
    explicit SocTimeTables(const Soc& soc, TableBuild build = TableBuild::fast,
                           int threads = 0);

    [[nodiscard]] const Soc& soc() const noexcept { return *soc_; }
    [[nodiscard]] const ModuleTimeTable& table(int module_index) const
    {
        return tables_.at(static_cast<std::size_t>(module_index));
    }
    [[nodiscard]] int module_count() const noexcept { return static_cast<int>(tables_.size()); }

    /// Sum over modules of the minimum width*time rectangle area: the
    /// theoretical packing floor both search loops start from.
    [[nodiscard]] CycleCount total_min_area() const noexcept { return total_min_area_; }

private:
    const Soc* soc_;
    std::vector<ModuleTimeTable> tables_;
    CycleCount total_min_area_ = 0;
};

/// One TAM / channel group.
class ChannelGroup {
public:
    ChannelGroup(WireCount width, const SocTimeTables& tables);

    [[nodiscard]] WireCount width() const noexcept { return width_; }
    [[nodiscard]] const std::vector<int>& module_indices() const noexcept { return modules_; }
    [[nodiscard]] CycleCount fill() const noexcept { return fill_; }

    /// Fill if `module_index` were added at the current width.
    [[nodiscard]] CycleCount fill_with(int module_index) const;

    /// Fill of the current members if the group were `width` wide.
    [[nodiscard]] CycleCount fill_at_width(WireCount width) const;

    /// Smallest width increase delta >= 1 such that the re-wrapped members
    /// plus `module_index` fit in `depth`, capped at `max_extra`.
    /// Returns 0 if no delta in [1, max_extra] works.
    [[nodiscard]] WireCount min_widening_for(int module_index, CycleCount depth,
                                             WireCount max_extra) const;

    /// Add a module at the current width.
    void add_module(int module_index);

    /// Grow the group; members are re-wrapped at the new width.
    void widen(WireCount extra_wires);

private:
    [[nodiscard]] CycleCount module_time(int module_index, WireCount width) const;

    const SocTimeTables* tables_;
    WireCount width_ = 0;
    std::vector<int> modules_;
    CycleCount fill_ = 0;
};

} // namespace mst
