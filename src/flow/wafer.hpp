// Wafer geometry and multi-site periphery losses.
//
// The paper notes: "the circular shape of the wafer brings some losses
// in multi-site testing at the periphery of the wafer; these are ignored
// in the sequel of this paper." This module implements what the paper
// set aside: given a wafer, a die, and a probe-head layout of n sites,
// compute how many touchdowns a full wafer needs and what fraction of
// probed positions land on no die — turning the ideal throughput
// D_th(n) into an effective throughput on real wafers.
#pragma once

#include "common/types.hpp"

namespace mst {

/// A wafer and the die printed on it. Millimetre units.
struct WaferSpec {
    double diameter_mm = 300.0;
    double edge_exclusion_mm = 3.0; ///< outer ring with no usable dies
    double die_width_mm = 10.0;
    double die_height_mm = 10.0;

    /// Throws ValidationError on non-positive dimensions.
    void validate() const;
};

/// The probe head touches a w x h rectangle of adjacent dies per
/// touchdown (w*h = sites).
struct ProbeHeadLayout {
    int sites_x = 1;
    int sites_y = 1;

    [[nodiscard]] SiteCount sites() const noexcept { return sites_x * sites_y; }
};

/// Full-wafer probing statistics for one layout.
struct WaferProbePlan {
    int dies_on_wafer = 0;       ///< complete dies inside the usable radius
    int touchdowns = 0;          ///< probe-head placements to cover them all
    int probed_positions = 0;    ///< touchdowns * sites
    double utilization = 0;      ///< dies_on_wafer / probed_positions

    /// Effective sites per touchdown after periphery losses.
    [[nodiscard]] double effective_sites() const noexcept
    {
        return (touchdowns > 0)
                   ? static_cast<double>(dies_on_wafer) / static_cast<double>(touchdowns)
                   : 0.0;
    }
};

/// Compute the die map and the touchdown count for stepping a rigid
/// probe head across the wafer (row-major stepping, head-aligned grid).
/// Deterministic and exact for the rectangular-die model.
[[nodiscard]] WaferProbePlan plan_wafer_probing(const WaferSpec& wafer,
                                                const ProbeHeadLayout& layout);

/// Pick the w x h factorization of `sites` that maximizes utilization
/// for the given wafer, i.e. minimizes the integer touchdown count
/// (ties: squarer head first). The comparison is exact, so the choice
/// is deterministic across platforms and evaluation orders.
[[nodiscard]] ProbeHeadLayout best_head_layout(const WaferSpec& wafer, SiteCount sites);

/// Ideal throughput corrected for periphery losses:
/// D_eff = D_th * effective_sites / n.
[[nodiscard]] DevicesPerHour effective_throughput(DevicesPerHour ideal,
                                                  SiteCount sites,
                                                  const WaferProbePlan& plan) noexcept;

} // namespace mst
