#include "flow/test_flow.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/optimizer.hpp"

namespace mst {

void FinalTestCell::validate() const
{
    if (channels <= 0) {
        throw ValidationError("final test cell needs a positive channel count");
    }
    if (handler_index_time < 0.0 || contact_test_time < 0.0) {
        throw ValidationError("final test cell times cannot be negative");
    }
    if (test_clock_hz <= 0.0) {
        throw ValidationError("final test clock must be positive");
    }
    if (max_handler_sites < 1) {
        throw ValidationError("handler must offer at least one site");
    }
}

namespace {

/// Boundary-scan EXTEST time: each pattern shifts through the full
/// boundary chain (one cell per functional pin) and captures once.
Seconds io_test_time(const ErpctSpec& erpct, PatternCount patterns, double clock_hz)
{
    const auto chain = static_cast<CycleCount>(erpct.boundary_cells());
    const CycleCount cycles = (chain + 1) * patterns + chain;
    return static_cast<double>(cycles) / clock_hz;
}

} // namespace

FlowPlan plan_flow(const Soc& soc,
                   const TestCell& wafer_cell,
                   const FinalTestCell& final_cell,
                   const FlowOptions& options)
{
    wafer_cell.validate();
    final_cell.validate();
    if (options.io_patterns <= 0) {
        throw ValidationError("io_patterns must be positive");
    }
    if (options.packaged_yield < 0.0 || options.packaged_yield > 1.0) {
        throw ValidationError("packaged_yield must be a probability");
    }

    FlowPlan plan;
    plan.wafer_solution = optimize_multi_site(soc, wafer_cell, options.wafer);
    plan.wafer.sites = plan.wafer_solution.sites;
    plan.wafer.touchdown_time = plan.wafer_solution.throughput.touchdown_time;
    plan.wafer.devices_per_hour = plan.wafer_solution.throughput.devices_per_hour;

    // Final test: all pins contacted. Sites limited by tester channels
    // and by the handler's sockets.
    const ErpctSpec& erpct = plan.wafer_solution.erpct;
    const int pins_per_device = erpct.functional_pins + erpct.control_pads;
    if (pins_per_device > final_cell.channels) {
        throw InfeasibleError("packaged part needs " + std::to_string(pins_per_device) +
                              " channels at final test, tester has " +
                              std::to_string(final_cell.channels));
    }
    const SiteCount by_channels = final_cell.channels / pins_per_device;
    plan.final.sites = std::min<SiteCount>(by_channels, final_cell.max_handler_sites);

    Seconds final_test = io_test_time(erpct, options.io_patterns, final_cell.test_clock_hz);
    switch (options.final_retest) {
    case FinalRetest::none:
        break;
    case FinalRetest::through_erpct:
        // Same internal test, same narrow interface: same cycle count,
        // possibly at the final tester's clock.
        final_test += static_cast<double>(plan.wafer_solution.test_cycles) /
                      final_cell.test_clock_hz;
        break;
    case FinalRetest::through_pins: {
        // All functional pins double as test access: the internal test
        // shrinks by the pin/E-RPCT width ratio (capped: scan chains do
        // not split beyond their count).
        const double widen = std::max(
            1.0, static_cast<double>(pins_per_device) /
                     static_cast<double>(plan.wafer_solution.channels_per_site));
        final_test += static_cast<double>(plan.wafer_solution.test_cycles) /
                      (final_cell.test_clock_hz * widen);
        break;
    }
    }
    plan.final.touchdown_time =
        final_cell.handler_index_time + final_cell.contact_test_time + final_test;
    plan.final.devices_per_hour = 3600.0 * plan.final.sites / plan.final.touchdown_time;

    // Line balance: only good dies travel to final test.
    const Probability die_yield = options.wafer.yields.manufacturing_yield;
    const double good_dies_per_hour = plan.wafer.devices_per_hour * die_yield;
    plan.final_testers_per_wafer_tester =
        (plan.final.devices_per_hour > 0.0) ? good_dies_per_hour / plan.final.devices_per_hour
                                            : 0.0;

    // Tester seconds per shipped device: wafer seconds are spent on every
    // die, final seconds only on packaged parts; a shipped device must
    // survive both yields.
    const double shipped_fraction = die_yield * options.packaged_yield;
    if (shipped_fraction > 0.0) {
        const Seconds wafer_seconds_per_die = 3600.0 / plan.wafer.devices_per_hour;
        const Seconds final_seconds_per_part = 3600.0 / plan.final.devices_per_hour;
        // Every die is wafer-tested (1/shipped_fraction dies per shipped
        // device); every packaged part is final-tested (1/packaged_yield
        // parts per shipped device).
        plan.tester_seconds_per_shipped_device =
            wafer_seconds_per_die / shipped_fraction +
            final_seconds_per_part / options.packaged_yield;
    }
    return plan;
}

} // namespace mst
