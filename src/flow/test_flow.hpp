// The paper's two-step production test flow (Section 3):
//
//  1. Wafer test — internal circuitry only, probed through the narrow
//     E-RPCT interface (this is what optimize_multi_site() plans).
//  2. Final test — the packaged part with ALL pins contacted on a
//     handler; the IOs are tested, and optionally the internal circuitry
//     is re-tested (through all pins or through the E-RPCT subset).
//
// This module turns the two stages into one production-line plan:
// per-stage throughputs, the wafer-to-final tester ratio that keeps the
// line balanced, and tester-seconds per shipped device.
#pragma once

#include "ate/ate.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"
#include "soc/soc.hpp"

namespace mst {

/// The final-test cell: an ATE plus a device handler.
struct FinalTestCell {
    ChannelCount channels = 1024;       ///< tester channels available
    Seconds handler_index_time = 0.8;   ///< pick/place per touchdown (slower than a prober)
    Seconds contact_test_time = 0.001;
    double test_clock_hz = 5e6;
    int max_handler_sites = 8;          ///< parallel sockets the handler offers

    /// Throws ValidationError on non-positive fields.
    void validate() const;
};

/// What final test does with the internal (structural) test.
enum class FinalRetest {
    none,          ///< IO test only
    through_erpct, ///< repeat the internal test via the E-RPCT pin subset
    through_pins,  ///< repeat the internal test via all functional pins
};

/// Knobs of the flow model.
struct FlowOptions {
    OptimizeOptions wafer;            ///< options for the wafer-test optimizer
    FinalRetest final_retest = FinalRetest::none;
    PatternCount io_patterns = 256;   ///< boundary-scan EXTEST pattern count
    Probability packaged_yield = 1.0; ///< survival from good die to packaged part
};

/// One stage's share of the plan.
struct StagePlan {
    SiteCount sites = 0;
    Seconds touchdown_time = 0;      ///< index + contact + test, per touchdown
    DevicesPerHour devices_per_hour = 0;
};

/// The complete production plan.
struct FlowPlan {
    Solution wafer_solution;         ///< on-chip DfT + wafer multi-site plan
    StagePlan wafer;
    StagePlan final;

    /// Final-test stations needed per wafer-test station so neither
    /// stage starves the other (good dies/hour in == devices/hour out).
    double final_testers_per_wafer_tester = 0;

    /// Total tester-seconds (wafer + final) consumed per shipped device,
    /// accounting for yield losses along the flow.
    Seconds tester_seconds_per_shipped_device = 0;
};

/// Plan the two-stage flow for an SOC. The wafer stage is planned by
/// optimize_multi_site(); the final stage contacts every functional pin,
/// so its multi-site is limited by channels / pins and by the handler.
/// Throws InfeasibleError if even one packaged part exceeds the final
/// tester's channels, and ValidationError on malformed cells.
[[nodiscard]] FlowPlan plan_flow(const Soc& soc,
                                 const TestCell& wafer_cell,
                                 const FinalTestCell& final_cell,
                                 const FlowOptions& options = {});

} // namespace mst
