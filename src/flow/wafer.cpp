#include "flow/wafer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace mst {

void WaferSpec::validate() const
{
    if (diameter_mm <= 0.0 || die_width_mm <= 0.0 || die_height_mm <= 0.0) {
        throw ValidationError("wafer and die dimensions must be positive");
    }
    if (edge_exclusion_mm < 0.0 || 2.0 * edge_exclusion_mm >= diameter_mm) {
        throw ValidationError("edge exclusion must be non-negative and smaller than the radius");
    }
}

namespace {

/// True if the axis-aligned die cell [x0,x1] x [y0,y1] (wafer-centre
/// origin) lies fully inside the usable radius.
bool die_fits(double x0, double y0, double x1, double y1, double radius)
{
    // The farthest corner decides.
    const double cx = std::max(std::abs(x0), std::abs(x1));
    const double cy = std::max(std::abs(y0), std::abs(y1));
    return std::hypot(cx, cy) <= radius;
}

} // namespace

WaferProbePlan plan_wafer_probing(const WaferSpec& wafer, const ProbeHeadLayout& layout)
{
    wafer.validate();
    if (layout.sites_x < 1 || layout.sites_y < 1) {
        throw ValidationError("probe head needs at least one site in each direction");
    }

    const double radius = wafer.diameter_mm / 2.0 - wafer.edge_exclusion_mm;
    const double dw = wafer.die_width_mm;
    const double dh = wafer.die_height_mm;

    // Die grid centred on the wafer. Column/row index ranges that can
    // possibly intersect the usable circle:
    const int max_col = static_cast<int>(std::ceil(radius / dw)) + 1;
    const int max_row = static_cast<int>(std::ceil(radius / dh)) + 1;

    // Good-die map.
    std::vector<std::pair<int, int>> dies;
    for (int row = -max_row; row < max_row; ++row) {
        for (int col = -max_col; col < max_col; ++col) {
            const double x0 = col * dw;
            const double y0 = row * dh;
            if (die_fits(x0, y0, x0 + dw, y0 + dh, radius)) {
                dies.emplace_back(col, row);
            }
        }
    }

    WaferProbePlan plan;
    plan.dies_on_wafer = static_cast<int>(dies.size());
    if (dies.empty()) {
        return plan;
    }

    // Rigid head: dies are visited in head-aligned blocks of
    // sites_x x sites_y. A block needs one touchdown if it contains at
    // least one die. (Real probers allow partial overhang off the wafer.)
    std::vector<std::pair<int, int>> blocks;
    for (const auto& [col, row] : dies) {
        const int bx = (col >= 0) ? col / layout.sites_x : ((col + 1) / layout.sites_x) - 1;
        const int by = (row >= 0) ? row / layout.sites_y : ((row + 1) / layout.sites_y) - 1;
        blocks.emplace_back(bx, by);
    }
    std::sort(blocks.begin(), blocks.end());
    blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());

    plan.touchdowns = static_cast<int>(blocks.size());
    plan.probed_positions = plan.touchdowns * layout.sites();
    plan.utilization = static_cast<double>(plan.dies_on_wafer) /
                       static_cast<double>(plan.probed_positions);
    return plan;
}

ProbeHeadLayout best_head_layout(const WaferSpec& wafer, SiteCount sites)
{
    if (sites < 1) {
        throw ValidationError("need at least one site");
    }
    // Every candidate probes the same die count with the same number of
    // sites, so maximal utilization == minimal touchdown count. Compare
    // the integer touchdown counts: a floating-point utilization
    // comparison would make the winner (and its aspect tie-break)
    // sensitive to rounding noise and evaluation order.
    ProbeHeadLayout best{sites, 1};
    int best_touchdowns = std::numeric_limits<int>::max();
    int best_aspect = std::numeric_limits<int>::max();
    for (int x = 1; x <= sites; ++x) {
        if (sites % x != 0) {
            continue;
        }
        const ProbeHeadLayout layout{x, sites / x};
        const WaferProbePlan plan = plan_wafer_probing(wafer, layout);
        const int aspect = std::abs(layout.sites_x - layout.sites_y);
        if (plan.touchdowns < best_touchdowns ||
            (plan.touchdowns == best_touchdowns && aspect < best_aspect)) {
            best = layout;
            best_touchdowns = plan.touchdowns;
            best_aspect = aspect;
        }
    }
    return best;
}

DevicesPerHour effective_throughput(DevicesPerHour ideal,
                                    SiteCount sites,
                                    const WaferProbePlan& plan) noexcept
{
    if (sites < 1) {
        return 0.0;
    }
    return ideal * plan.effective_sites() / static_cast<double>(sites);
}

} // namespace mst
