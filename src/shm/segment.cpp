#include "shm/segment.hpp"

#include <cerrno>
#include <cstring>
#include <new>
#include <system_error>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/faultpoint.hpp"

namespace mst::shm {

namespace {

constexpr char kMagic[8] = {'M', 'S', 'T', 'S', 'H', 'M', '0', '1'};
constexpr std::uint32_t kLayoutVersion = 1;
constexpr std::uint64_t kArenaOffset = 16384; ///< superblock + slot table pages
constexpr std::uint64_t kEntryAlign = 8;

[[noreturn]] void fail_errno(const std::string& what)
{
    throw Error(what + ": " + std::strerror(errno));
}

/// Is `pid` still alive? kill(pid, 0) probes without signaling; ESRCH
/// means the process is gone (EPERM would mean alive-but-foreign, which
/// cannot happen between a supervisor and its own workers).
bool pid_alive(std::uint32_t pid) noexcept
{
    if (pid == 0) {
        return false;
    }
    return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

std::uint64_t align_up(std::uint64_t value) noexcept
{
    return (value + (kEntryAlign - 1)) & ~(kEntryAlign - 1);
}

/// Index key mixing (key, kind); collisions are resolved by verifying
/// the entry header, so this only needs to spread, not to be injective.
std::uint64_t index_key(std::uint64_t key, std::uint32_t kind) noexcept
{
    return key ^ (static_cast<std::uint64_t>(kind) * 0x9e3779b97f4a7c15ULL);
}

} // namespace

/// One committed arena entry: header then payload, 8-byte aligned.
struct EntryHeader {
    std::uint64_t key;
    std::uint32_t kind;
    std::uint32_t reserved;
    std::uint64_t payload_bytes;
    std::uint64_t checksum; ///< FNV-1a over the payload
};
static_assert(sizeof(EntryHeader) == 32, "entry header layout is part of the format");

struct Segment::WorkerSlot {
    std::atomic<std::uint32_t> pid;
    std::atomic<std::uint32_t> state;
    std::atomic<std::uint64_t> heartbeat;
    std::atomic<std::uint64_t> received;
    std::atomic<std::uint64_t> ok;
    std::atomic<std::uint64_t> failed;
    std::atomic<std::uint64_t> connections_accepted;
    std::atomic<std::uint64_t> requests_admitted;
    std::atomic<std::uint64_t> requests_rejected;
    std::atomic<std::uint64_t> shm_hits;
    std::atomic<std::uint64_t> shm_misses;
    std::atomic<std::uint64_t> shm_publishes;
    std::atomic<std::uint64_t> shm_fallbacks;
    std::uint64_t pad[4];
};

struct Segment::Superblock {
    char magic[8];
    std::uint32_t layout_version;
    std::uint32_t reserved0;
    std::uint64_t segment_bytes;
    std::uint64_t arena_offset;
    std::atomic<std::uint64_t> committed_bytes;
    std::atomic<std::uint64_t> reserved_bytes;
    std::atomic<std::uint64_t> generation;
    std::atomic<std::uint32_t> writer_pid;
    std::uint32_t reserved1;
    std::atomic<std::uint64_t> publishes;
    std::atomic<std::uint64_t> recoveries;
    std::atomic<std::uint64_t> truncated_bytes;
    std::atomic<std::uint64_t> pool_workers;
    std::atomic<std::uint64_t> pool_restarts;
    std::atomic<std::uint64_t> pool_quarantined;
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "cross-process atomics must be lock-free (address-free)");

namespace {
constexpr std::uint64_t kSlotsOffset = 512;
} // namespace

std::uint64_t Segment::fnv1a(const void* data, std::size_t size) noexcept
{
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t hash = 1469598103934665603ULL; // FNV offset basis
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL; // FNV prime
    }
    return hash;
}

Segment::Segment(std::string name, void* base, std::size_t bytes, bool created)
    : name_(std::move(name)), base_(base), bytes_(bytes), created_(created)
{
    static_assert(sizeof(WorkerSlot) == 128, "slot layout is part of the format");
    static_assert(sizeof(Superblock) <= kSlotsOffset,
                  "superblock must fit before the slot table");
    static_assert(kSlotsOffset + max_workers * sizeof(WorkerSlot) <= kArenaOffset,
                  "slot table must fit in the header pages");
}

Segment::~Segment()
{
    if (base_ != nullptr) {
        (void)::munmap(base_, bytes_);
    }
}

void Segment::unlink() noexcept
{
    (void)::shm_unlink(name_.c_str());
}

Segment::Superblock& Segment::super() noexcept
{
    return *static_cast<Superblock*>(base_);
}

const Segment::Superblock& Segment::super() const noexcept
{
    return *static_cast<const Superblock*>(base_);
}

Segment::WorkerSlot* Segment::slots() noexcept
{
    return reinterpret_cast<WorkerSlot*>(static_cast<char*>(base_) + kSlotsOffset);
}

const Segment::WorkerSlot* Segment::slots() const noexcept
{
    return reinterpret_cast<const WorkerSlot*>(static_cast<const char*>(base_) +
                                               kSlotsOffset);
}

char* Segment::arena() noexcept
{
    return static_cast<char*>(base_) + kArenaOffset;
}

const char* Segment::arena() const noexcept
{
    return static_cast<const char*>(base_) + kArenaOffset;
}

std::uint64_t Segment::arena_capacity() const noexcept
{
    return bytes_ - kArenaOffset;
}

std::shared_ptr<Segment> Segment::create_or_attach(const std::string& name,
                                                   std::size_t bytes)
{
    if (name.empty() || name.front() != '/') {
        throw ValidationError("shm segment name must start with '/'");
    }
    if (bytes < kArenaOffset + 4096) {
        throw ValidationError("shm segment size must be at least 20 KiB");
    }
    if (const std::errc fault = MST_FAULTPOINT("shm.map"); fault != std::errc{}) {
        throw Error("injected fault: shm map failed: " +
                    std::make_error_code(fault).message());
    }
    int fd = ::shm_open(name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
    bool created = fd >= 0;
    if (!created) {
        if (errno != EEXIST) {
            fail_errno("shm_open('" + name + "')");
        }
        return attach(name);
    }
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
        const int saved = errno;
        (void)::close(fd);
        (void)::shm_unlink(name.c_str());
        errno = saved;
        fail_errno("ftruncate('" + name + "')");
    }
    void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    (void)::close(fd);
    if (base == MAP_FAILED) {
        (void)::shm_unlink(name.c_str());
        fail_errno("mmap('" + name + "')");
    }

    // Initialize the superblock and slot table in place. The shm object
    // is zero-filled by ftruncate; the magic is written last so a
    // concurrent attacher either sees a complete header or none.
    auto segment = std::shared_ptr<Segment>(new Segment(name, base, bytes, true));
    auto* sb = new (base) Superblock;
    sb->layout_version = kLayoutVersion;
    sb->segment_bytes = bytes;
    sb->arena_offset = kArenaOffset;
    sb->committed_bytes.store(0, std::memory_order_relaxed);
    sb->reserved_bytes.store(0, std::memory_order_relaxed);
    sb->generation.store(0, std::memory_order_relaxed);
    sb->writer_pid.store(0, std::memory_order_relaxed);
    sb->publishes.store(0, std::memory_order_relaxed);
    sb->recoveries.store(0, std::memory_order_relaxed);
    sb->truncated_bytes.store(0, std::memory_order_relaxed);
    sb->pool_workers.store(0, std::memory_order_relaxed);
    sb->pool_restarts.store(0, std::memory_order_relaxed);
    sb->pool_quarantined.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < max_workers; ++i) {
        new (segment->slots() + i) WorkerSlot{};
    }
    std::atomic_thread_fence(std::memory_order_release);
    std::memcpy(sb->magic, kMagic, sizeof kMagic);
    return segment;
}

std::shared_ptr<Segment> Segment::attach(const std::string& name)
{
    if (const std::errc fault = MST_FAULTPOINT("shm.map"); fault != std::errc{}) {
        throw Error("injected fault: shm map failed: " +
                    std::make_error_code(fault).message());
    }
    int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd < 0) {
        fail_errno("shm_open('" + name + "')");
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        (void)::close(fd);
        errno = saved;
        fail_errno("fstat('" + name + "')");
    }
    const auto bytes = static_cast<std::size_t>(st.st_size);
    if (bytes < kArenaOffset) {
        (void)::close(fd);
        throw Error("shm segment '" + name + "' is too small to hold a superblock");
    }
    void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    (void)::close(fd);
    if (base == MAP_FAILED) {
        fail_errno("mmap('" + name + "')");
    }
    auto segment = std::shared_ptr<Segment>(new Segment(name, base, bytes, false));
    const Superblock& sb = segment->super();
    if (std::memcmp(sb.magic, kMagic, sizeof kMagic) != 0) {
        throw Error("shm segment '" + name + "' has a foreign or incomplete header");
    }
    if (sb.layout_version != kLayoutVersion) {
        throw Error("shm segment '" + name + "' has layout version " +
                    std::to_string(sb.layout_version) + " (this build speaks " +
                    std::to_string(kLayoutVersion) + ")");
    }
    if (sb.segment_bytes != bytes || sb.arena_offset != kArenaOffset) {
        throw Error("shm segment '" + name + "' geometry does not match its header");
    }
    // A writer may have died mid-publish before this process existed:
    // detect and truncate the torn tail right away so the first lookup
    // never has to reason about it.
    (void)segment->recover_if_torn();
    return segment;
}

bool Segment::lock_writer()
{
    Superblock& sb = super();
    const auto self = static_cast<std::uint32_t>(::getpid());
    std::uint32_t expected = 0;
    if (sb.writer_pid.compare_exchange_strong(expected, self, std::memory_order_acquire)) {
        return true;
    }
    if (expected == self || pid_alive(expected)) {
        // A live writer (possibly another of our own threads) is mid-
        // publish. Never block: the caller keeps its local copy.
        return false;
    }
    // The holder is dead: steal the lock and repair whatever it left.
    if (!sb.writer_pid.compare_exchange_strong(expected, self, std::memory_order_acquire)) {
        return false; // raced with another stealer; let them recover
    }
    recover_locked();
    return true;
}

void Segment::unlock_writer() noexcept
{
    super().writer_pid.store(0, std::memory_order_release);
}

void Segment::recover_locked()
{
    Superblock& sb = super();
    const std::uint64_t committed = sb.committed_bytes.load(std::memory_order_acquire);
    const std::uint64_t reserved = sb.reserved_bytes.load(std::memory_order_acquire);
    if (reserved <= committed) {
        return; // nothing torn
    }
    if (const std::errc fault = MST_FAULTPOINT("shm.truncate_recover");
        fault != std::errc{}) {
        // Injected recovery failure: leave the torn state for the next
        // attach/steal to repair; readers never see it either way.
        return;
    }
    const std::uint64_t torn = reserved - committed;
    std::memset(arena() + committed, 0, static_cast<std::size_t>(torn));
    sb.reserved_bytes.store(committed, std::memory_order_release);
    sb.truncated_bytes.fetch_add(torn, std::memory_order_relaxed);
    sb.recoveries.fetch_add(1, std::memory_order_relaxed);
}

bool Segment::recover_if_torn()
{
    Superblock& sb = super();
    if (sb.reserved_bytes.load(std::memory_order_acquire) <=
        sb.committed_bytes.load(std::memory_order_acquire)) {
        return false;
    }
    const std::uint64_t before = sb.recoveries.load(std::memory_order_relaxed);
    const std::uint32_t holder = sb.writer_pid.load(std::memory_order_acquire);
    if (holder != 0 && pid_alive(holder)) {
        return false; // a live writer is legitimately mid-publish
    }
    if (!lock_writer()) {
        return false;
    }
    // lock_writer recovers on steal; a clean acquire recovers here.
    recover_locked();
    unlock_writer();
    return sb.recoveries.load(std::memory_order_relaxed) != before;
}

Segment::PublishResult Segment::publish(std::uint64_t key, Kind kind, const void* data,
                                        std::size_t size)
{
    Superblock& sb = super();
    const std::uint64_t need = align_up(sizeof(EntryHeader) + size);
    if (!lock_writer()) {
        return PublishResult::busy;
    }
    const std::uint64_t committed = sb.committed_bytes.load(std::memory_order_acquire);
    if (committed + need > arena_capacity()) {
        unlock_writer();
        return PublishResult::full;
    }

    // Phase 1: reserve, then write. A crash anywhere in here leaves
    // reserved_bytes > committed_bytes with our PID in the lock word —
    // exactly the torn state recovery detects and truncates.
    sb.reserved_bytes.store(committed + need, std::memory_order_release);
    char* dst = arena() + committed;
    EntryHeader header = {};
    header.key = key;
    header.kind = static_cast<std::uint32_t>(kind);
    header.payload_bytes = size;
    header.checksum = fnv1a(data, size);
    std::memcpy(dst, &header, sizeof header);
    std::memcpy(dst + sizeof header, data, size);

    // The shm.publish fault sits exactly between the phases: a `crash`
    // action here is the writer dying with bytes written but nothing
    // committed (satellite test coverage + the chaos-smoke CI plan).
    if (const std::errc fault = MST_FAULTPOINT("shm.publish"); fault != std::errc{}) {
        sb.reserved_bytes.store(committed, std::memory_order_release);
        unlock_writer();
        return PublishResult::failed;
    }

    // Phase 2: commit. The release store publishes every byte written
    // above before readers can observe the new committed size.
    sb.committed_bytes.store(committed + need, std::memory_order_release);
    sb.reserved_bytes.store(committed + need, std::memory_order_release);
    sb.generation.fetch_add(1, std::memory_order_release);
    sb.publishes.fetch_add(1, std::memory_order_relaxed);
    unlock_writer();
    return PublishResult::published;
}

void Segment::refresh_index(std::uint64_t committed)
{
    // Scan only the suffix committed since the last refresh. Committed
    // entries are immutable and well-formed (the writer committed them
    // under the lock), but the bounds checks keep a corrupted segment
    // from walking out of the mapping.
    while (scanned_ + sizeof(EntryHeader) <= committed) {
        EntryHeader header = {};
        std::memcpy(&header, arena() + scanned_, sizeof header);
        const std::uint64_t need = align_up(sizeof(EntryHeader) + header.payload_bytes);
        if (need == 0 || scanned_ + need > committed) {
            // Corrupt length: stop indexing; lookups beyond this point
            // miss and fall back. Never throw, never walk past the end.
            scanned_ = committed;
            break;
        }
        index_[index_key(header.key, header.kind)] = scanned_;
        scanned_ += need;
    }
}

std::optional<std::string> Segment::lookup(std::uint64_t key, Kind kind,
                                           bool* checksum_failed)
{
    if (checksum_failed != nullptr) {
        *checksum_failed = false;
    }
    const Superblock& sb = super();
    const std::uint64_t committed = sb.committed_bytes.load(std::memory_order_acquire);
    std::uint64_t offset = 0;
    {
        std::lock_guard<std::mutex> lock(index_mutex_);
        if (committed > scanned_) {
            refresh_index(committed);
        }
        const auto it = index_.find(index_key(key, static_cast<std::uint32_t>(kind)));
        if (it == index_.end()) {
            return std::nullopt;
        }
        offset = it->second;
    }
    EntryHeader header = {};
    std::memcpy(&header, arena() + offset, sizeof header);
    if (header.key != key || header.kind != static_cast<std::uint32_t>(kind) ||
        offset + align_up(sizeof(EntryHeader) + header.payload_bytes) > committed) {
        return std::nullopt; // index hash collision or corrupt entry
    }
    const char* payload = arena() + offset + sizeof(EntryHeader);
    std::uint64_t checksum = fnv1a(payload, static_cast<std::size_t>(header.payload_bytes));
    if (MST_FAULTPOINT("shm.checksum") != std::errc{}) {
        checksum = ~checksum; // injected corruption: must fall back cleanly
    }
    if (checksum != header.checksum) {
        if (checksum_failed != nullptr) {
            *checksum_failed = true;
        }
        return std::nullopt;
    }
    return std::string(payload, static_cast<std::size_t>(header.payload_bytes));
}

SegmentCounters Segment::counters() const
{
    const Superblock& sb = super();
    SegmentCounters counters;
    counters.generation = sb.generation.load(std::memory_order_acquire);
    counters.committed_bytes = sb.committed_bytes.load(std::memory_order_acquire);
    counters.arena_bytes = arena_capacity();
    counters.publishes = sb.publishes.load(std::memory_order_relaxed);
    counters.recoveries = sb.recoveries.load(std::memory_order_relaxed);
    counters.truncated_bytes = sb.truncated_bytes.load(std::memory_order_relaxed);
    return counters;
}

void Segment::claim_slot(std::size_t index, std::uint32_t pid)
{
    WorkerSlot& slot = slots()[index];
    slot.heartbeat.store(0, std::memory_order_relaxed);
    slot.received.store(0, std::memory_order_relaxed);
    slot.ok.store(0, std::memory_order_relaxed);
    slot.failed.store(0, std::memory_order_relaxed);
    slot.connections_accepted.store(0, std::memory_order_relaxed);
    slot.requests_admitted.store(0, std::memory_order_relaxed);
    slot.requests_rejected.store(0, std::memory_order_relaxed);
    slot.shm_hits.store(0, std::memory_order_relaxed);
    slot.shm_misses.store(0, std::memory_order_relaxed);
    slot.shm_publishes.store(0, std::memory_order_relaxed);
    slot.shm_fallbacks.store(0, std::memory_order_relaxed);
    slot.state.store(static_cast<std::uint32_t>(WorkerState::starting),
                     std::memory_order_relaxed);
    slot.pid.store(pid, std::memory_order_release);
}

void Segment::set_slot_state(std::size_t index, WorkerState state)
{
    slots()[index].state.store(static_cast<std::uint32_t>(state),
                               std::memory_order_release);
}

void Segment::update_slot(std::size_t index, const WorkerSlotView& view)
{
    WorkerSlot& slot = slots()[index];
    slot.received.store(view.received, std::memory_order_relaxed);
    slot.ok.store(view.ok, std::memory_order_relaxed);
    slot.failed.store(view.failed, std::memory_order_relaxed);
    slot.connections_accepted.store(view.connections_accepted, std::memory_order_relaxed);
    slot.requests_admitted.store(view.requests_admitted, std::memory_order_relaxed);
    slot.requests_rejected.store(view.requests_rejected, std::memory_order_relaxed);
    slot.shm_hits.store(view.shm_hits, std::memory_order_relaxed);
    slot.shm_misses.store(view.shm_misses, std::memory_order_relaxed);
    slot.shm_publishes.store(view.shm_publishes, std::memory_order_relaxed);
    slot.shm_fallbacks.store(view.shm_fallbacks, std::memory_order_relaxed);
    slot.heartbeat.fetch_add(1, std::memory_order_release);
}

void Segment::clear_slot(std::size_t index)
{
    WorkerSlot& slot = slots()[index];
    slot.state.store(static_cast<std::uint32_t>(WorkerState::empty),
                     std::memory_order_relaxed);
    slot.pid.store(0, std::memory_order_release);
}

WorkerSlotView Segment::read_slot(std::size_t index) const
{
    const WorkerSlot& slot = slots()[index];
    WorkerSlotView view;
    view.pid = slot.pid.load(std::memory_order_acquire);
    view.state = static_cast<WorkerState>(slot.state.load(std::memory_order_acquire));
    view.heartbeat = slot.heartbeat.load(std::memory_order_acquire);
    view.received = slot.received.load(std::memory_order_relaxed);
    view.ok = slot.ok.load(std::memory_order_relaxed);
    view.failed = slot.failed.load(std::memory_order_relaxed);
    view.connections_accepted = slot.connections_accepted.load(std::memory_order_relaxed);
    view.requests_admitted = slot.requests_admitted.load(std::memory_order_relaxed);
    view.requests_rejected = slot.requests_rejected.load(std::memory_order_relaxed);
    view.shm_hits = slot.shm_hits.load(std::memory_order_relaxed);
    view.shm_misses = slot.shm_misses.load(std::memory_order_relaxed);
    view.shm_publishes = slot.shm_publishes.load(std::memory_order_relaxed);
    view.shm_fallbacks = slot.shm_fallbacks.load(std::memory_order_relaxed);
    return view;
}

std::vector<WorkerSlotView> Segment::read_slots() const
{
    std::vector<WorkerSlotView> views;
    views.reserve(max_workers);
    for (std::size_t i = 0; i < max_workers; ++i) {
        WorkerSlotView view = read_slot(i);
        if (view.state == WorkerState::empty) {
            continue;
        }
        views.push_back(view);
    }
    return views;
}

void Segment::set_pool_meta(const PoolMeta& meta)
{
    Superblock& sb = super();
    sb.pool_workers.store(meta.workers, std::memory_order_relaxed);
    sb.pool_restarts.store(meta.restarts, std::memory_order_relaxed);
    sb.pool_quarantined.store(meta.quarantined, std::memory_order_relaxed);
}

void Segment::add_pool_restart()
{
    super().pool_restarts.fetch_add(1, std::memory_order_relaxed);
}

void Segment::add_pool_quarantine()
{
    super().pool_quarantined.fetch_add(1, std::memory_order_relaxed);
}

PoolMeta Segment::pool_meta() const
{
    const Superblock& sb = super();
    PoolMeta meta;
    meta.workers = sb.pool_workers.load(std::memory_order_relaxed);
    meta.restarts = sb.pool_restarts.load(std::memory_order_relaxed);
    meta.quarantined = sb.pool_quarantined.load(std::memory_order_relaxed);
    return meta;
}

} // namespace mst::shm
