#include "shm/store.hpp"

#include <cstring>

#include "common/error.hpp"
#include "service/service.hpp"
#include "soc/soc.hpp"

namespace mst::shm {

namespace {

// Little-endian fixed-width scalar append/read. The segment is only
// ever shared between processes of one machine, but an explicit byte
// order keeps the blob format well-defined (and testable) anyway.
void put_u32(std::string& out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
    }
}

void put_u64(std::string& out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
    }
}

struct BlobReader {
    const std::string& blob;
    std::size_t pos = 0;

    void need(std::size_t bytes) const
    {
        if (pos + bytes > blob.size()) {
            throw ValidationError("shm blob truncated");
        }
    }

    std::uint32_t u32()
    {
        need(4);
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            value |= static_cast<std::uint32_t>(static_cast<unsigned char>(blob[pos + i]))
                     << (8 * i);
        }
        pos += 4;
        return value;
    }

    std::uint64_t u64()
    {
        need(8);
        std::uint64_t value = 0;
        for (int i = 0; i < 8; ++i) {
            value |= static_cast<std::uint64_t>(static_cast<unsigned char>(blob[pos + i]))
                     << (8 * i);
        }
        pos += 8;
        return value;
    }

    std::string bytes(std::size_t count)
    {
        need(count);
        std::string value = blob.substr(pos, count);
        pos += count;
        return value;
    }
};

void put_string(std::string& out, const std::string& value)
{
    put_u32(out, static_cast<std::uint32_t>(value.size()));
    out += value;
}

std::string get_string(BlobReader& reader)
{
    const std::uint32_t size = reader.u32();
    return reader.bytes(size);
}

/// Sanity cap on per-module width counts: no table can legitimately
/// exceed the global width cap, so a larger count means corruption.
constexpr std::uint32_t kMaxWidths = 4096;

} // namespace

std::string ShmStore::encode_tables(const SocTimeTables& tables)
{
    // Per module: the effective-time and used-width staircases — the
    // complete serialized state; every other field is derived on
    // restore (see ModuleTimeTable's restore constructor).
    std::string blob;
    const int count = tables.module_count();
    put_u32(blob, static_cast<std::uint32_t>(count));
    for (int m = 0; m < count; ++m) {
        const ModuleTimeTable& table = tables.table(m);
        const auto& times = table.effective_times();
        const auto& used = table.used_width_table();
        put_u32(blob, static_cast<std::uint32_t>(times.size()));
        for (const CycleCount time : times) {
            put_u64(blob, static_cast<std::uint64_t>(time));
        }
        for (const WireCount width : used) {
            put_u32(blob, static_cast<std::uint32_t>(width));
        }
    }
    return blob;
}

std::unique_ptr<SocTimeTables> ShmStore::decode_tables(const std::string& blob,
                                                       const Soc& soc)
{
    BlobReader reader{blob};
    const std::uint32_t count = reader.u32();
    if (count != static_cast<std::uint32_t>(soc.module_count())) {
        throw ValidationError("shm tables blob does not match the SOC's module count");
    }
    std::vector<ModuleTimeTable> tables;
    tables.reserve(count);
    for (std::uint32_t m = 0; m < count; ++m) {
        const std::uint32_t widths = reader.u32();
        if (widths == 0 || widths > kMaxWidths) {
            throw ValidationError("shm tables blob has an invalid width count");
        }
        std::vector<CycleCount> times;
        times.reserve(widths);
        for (std::uint32_t w = 0; w < widths; ++w) {
            times.push_back(static_cast<CycleCount>(reader.u64()));
        }
        std::vector<WireCount> used;
        used.reserve(widths);
        for (std::uint32_t w = 0; w < widths; ++w) {
            used.push_back(static_cast<WireCount>(reader.u32()));
        }
        tables.emplace_back(soc.module(static_cast<int>(m)), std::move(times),
                            std::move(used));
    }
    if (reader.pos != blob.size()) {
        throw ValidationError("shm tables blob has trailing bytes");
    }
    return std::make_unique<SocTimeTables>(soc, std::move(tables));
}

std::string ShmStore::encode_outcome(const std::string& memo_key,
                                     const SolutionOutcome& outcome)
{
    // The full memo key rides in the payload: the arena addresses
    // entries by the key's 64-bit hash, and storing the key verbatim
    // turns a hash collision into a detectable miss.
    std::string blob;
    put_string(blob, memo_key);
    blob.push_back(outcome.ok ? '\1' : '\0');
    put_string(blob, outcome.solution_json);
    put_string(blob, outcome.fingerprint);
    put_u32(blob, static_cast<std::uint32_t>(outcome.error.kind));
    put_string(blob, outcome.error.message);
    put_string(blob, outcome.error.detail);
    return blob;
}

std::shared_ptr<SolutionOutcome> ShmStore::decode_outcome(const std::string& blob,
                                                          const std::string& memo_key)
{
    BlobReader reader{blob};
    if (get_string(reader) != memo_key) {
        return nullptr; // hash collision: a different request's outcome
    }
    auto outcome = std::make_shared<SolutionOutcome>();
    reader.need(1);
    outcome->ok = blob[reader.pos++] != '\0';
    outcome->solution_json = get_string(reader);
    outcome->fingerprint = get_string(reader);
    const std::uint32_t kind = reader.u32();
    if (kind > static_cast<std::uint32_t>(protocol::ErrorKind::internal)) {
        throw ValidationError("shm outcome blob has an invalid error kind");
    }
    outcome->error.kind = static_cast<protocol::ErrorKind>(kind);
    outcome->error.message = get_string(reader);
    outcome->error.detail = get_string(reader);
    if (reader.pos != blob.size()) {
        throw ValidationError("shm outcome blob has trailing bytes");
    }
    if (outcome->ok == (outcome->error.kind != protocol::ErrorKind::none)) {
        throw ValidationError("shm outcome blob is internally inconsistent");
    }
    return outcome;
}

std::shared_ptr<ShmStore> ShmStore::open(const std::string& name, std::size_t bytes)
{
    std::shared_ptr<Segment> segment;
    try {
        segment = Segment::create_or_attach(name, bytes);
    } catch (const std::exception&) {
        segment = nullptr; // degraded: local-only operation
    }
    auto store = std::make_shared<ShmStore>(std::move(segment));
    if (!store->attached()) {
        store->fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
    return store;
}

ShmStore::ShmStore(std::shared_ptr<Segment> segment) : segment_(std::move(segment)) {}

std::unique_ptr<SocTimeTables> ShmStore::load_tables(std::uint64_t fingerprint,
                                                     const Soc& soc)
{
    if (segment_ == nullptr) {
        return nullptr;
    }
    bool checksum_failed = false;
    const std::optional<std::string> blob =
        segment_->lookup(fingerprint, Segment::Kind::tables, &checksum_failed);
    if (!blob) {
        if (checksum_failed) {
            checksum_failures_.fetch_add(1, std::memory_order_relaxed);
            fallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    try {
        auto tables = decode_tables(*blob, soc);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return tables;
    } catch (const std::exception&) {
        // Validation rejected the blob (foreign SOC under a colliding
        // fingerprint, or damage the checksum could not see): fall back
        // to the local build, never crash the request.
        fallbacks_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
}

void ShmStore::publish_tables(std::uint64_t fingerprint, const SocTimeTables& tables)
{
    if (segment_ == nullptr) {
        return;
    }
    const std::string blob = encode_tables(tables);
    if (segment_->publish(fingerprint, Segment::Kind::tables, blob.data(), blob.size()) ==
        Segment::PublishResult::published) {
        publishes_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::shared_ptr<SolutionOutcome> ShmStore::load_outcome(const std::string& memo_key)
{
    if (segment_ == nullptr) {
        return nullptr;
    }
    const std::uint64_t key = Segment::fnv1a(memo_key.data(), memo_key.size());
    bool checksum_failed = false;
    const std::optional<std::string> blob =
        segment_->lookup(key, Segment::Kind::outcome, &checksum_failed);
    if (!blob) {
        if (checksum_failed) {
            checksum_failures_.fetch_add(1, std::memory_order_relaxed);
            fallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    try {
        std::shared_ptr<SolutionOutcome> outcome = decode_outcome(*blob, memo_key);
        if (outcome == nullptr) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        return outcome;
    } catch (const std::exception&) {
        fallbacks_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
}

void ShmStore::publish_outcome(const std::string& memo_key, const SolutionOutcome& outcome)
{
    if (segment_ == nullptr) {
        return;
    }
    const std::uint64_t key = Segment::fnv1a(memo_key.data(), memo_key.size());
    const std::string blob = encode_outcome(memo_key, outcome);
    if (segment_->publish(key, Segment::Kind::outcome, blob.data(), blob.size()) ==
        Segment::PublishResult::published) {
        publishes_.fetch_add(1, std::memory_order_relaxed);
    }
}

StoreCounters ShmStore::counters() const
{
    StoreCounters counters;
    counters.enabled = true;
    counters.attached = segment_ != nullptr;
    counters.hits = hits_.load(std::memory_order_relaxed);
    counters.misses = misses_.load(std::memory_order_relaxed);
    counters.publishes = publishes_.load(std::memory_order_relaxed);
    counters.fallbacks = fallbacks_.load(std::memory_order_relaxed);
    counters.checksum_failures = checksum_failures_.load(std::memory_order_relaxed);
    return counters;
}

SegmentCounters ShmStore::segment_counters() const
{
    return segment_ != nullptr ? segment_->counters() : SegmentCounters{};
}

} // namespace mst::shm
