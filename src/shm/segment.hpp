// Crash-safe POSIX shared-memory segment: the storage layer of the
// multi-process cache tier (docs/shm.md).
//
// One segment holds an append-only arena of immutable, checksummed
// entries behind a strict single-writer/many-reader protocol:
//
//   * a versioned superblock (magic, layout version, generation) guards
//     against attaching a foreign or incompatible mapping,
//   * every entry carries its length and an FNV-1a checksum; readers
//     validate on every lookup and treat any mismatch as a miss,
//   * publishing is two-phase: reserve (reserved_bytes moves ahead),
//     write the bytes, release-fence, then commit (committed_bytes and
//     the generation advance atomically). Readers only ever scan the
//     committed prefix, so a torn entry is unobservable,
//   * the writer lock is PID-liveness based: a writer that dies between
//     the phases leaves reserved_bytes > committed_bytes and its PID in
//     the lock word. The next writer (or attach) detects the dead
//     holder with kill(pid, 0), steals the lock, zeroes the torn tail,
//     and counts a recovery — no robust futexes, no blocking,
//   * readers never block and never crash on segment trouble: every
//     failure path is a typed miss, and the store layer above falls
//     back to local computation.
//
// Fault points (docs/robustness.md): shm.map (create/attach), shm.publish
// (between the write and the commit), shm.truncate_recover (during torn-
// tail recovery), shm.checksum (reader-side validation).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace mst::shm {

/// Aggregated segment-level counters (shared across every process).
struct SegmentCounters {
    std::uint64_t generation = 0;      ///< successful publishes since creation
    std::uint64_t committed_bytes = 0; ///< arena bytes holding committed entries
    std::uint64_t arena_bytes = 0;     ///< arena capacity
    std::uint64_t publishes = 0;       ///< committed publish operations
    std::uint64_t recoveries = 0;      ///< torn tails truncated (writer died)
    std::uint64_t truncated_bytes = 0; ///< total bytes zeroed by recoveries
};

/// Lifecycle state a worker advertises in its slot.
enum class WorkerState : std::uint32_t {
    empty = 0,
    starting = 1,
    ready = 2,
    draining = 3,
};

/// Snapshot of one worker slot (see Segment::read_slots).
struct WorkerSlotView {
    std::uint32_t pid = 0;
    WorkerState state = WorkerState::empty;
    std::uint64_t heartbeat = 0;
    std::uint64_t received = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t connections_accepted = 0;
    std::uint64_t requests_admitted = 0;
    std::uint64_t requests_rejected = 0;
    std::uint64_t shm_hits = 0;
    std::uint64_t shm_misses = 0;
    std::uint64_t shm_publishes = 0;
    std::uint64_t shm_fallbacks = 0;
};

/// Pool-level metadata the prefork supervisor maintains in the
/// superblock (workers aggregate it into scope-"server" stats).
struct PoolMeta {
    std::uint64_t workers = 0;     ///< configured pool size
    std::uint64_t restarts = 0;    ///< worker respawns since start
    std::uint64_t quarantined = 0; ///< slots given up on after max restarts
};

class Segment {
public:
    /// Entry namespaces sharing one arena. The (key, kind) pair
    /// addresses an entry; the kind keeps a tables fingerprint from
    /// colliding with a memo-outcome hash of the same value.
    enum class Kind : std::uint32_t {
        tables = 1,  ///< serialized SocTimeTables blob, key = SOC fingerprint
        outcome = 2, ///< serialized SolutionOutcome, key = memo-key hash
    };

    enum class PublishResult {
        published, ///< committed; generation advanced
        busy,      ///< a live writer holds the lock — skipped, not blocked
        full,      ///< arena exhausted; the entry stays local-only
        failed,    ///< injected fault or invalid segment state
    };

    /// Slots available to a prefork pool (superblock worker table).
    static constexpr std::size_t max_workers = 64;

    /// Create a fresh segment (shm_open O_CREAT|O_EXCL) of `bytes` total
    /// size, or attach to the existing one of that name if it already
    /// exists. Throws mst::Error on any failure (including an injected
    /// shm.map fault and magic/version/size mismatches on attach) — the
    /// caller degrades to local-only operation.
    [[nodiscard]] static std::shared_ptr<Segment> create_or_attach(const std::string& name,
                                                                   std::size_t bytes);

    /// Attach to an existing segment; throws if absent or incompatible.
    [[nodiscard]] static std::shared_ptr<Segment> attach(const std::string& name);

    ~Segment();
    Segment(const Segment&) = delete;
    Segment& operator=(const Segment&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// True if this mapping created the segment (its owner unlinks it).
    [[nodiscard]] bool created() const noexcept { return created_; }

    /// shm_unlink the backing object (the creator calls this at exit;
    /// live mappings survive until every process unmaps).
    void unlink() noexcept;

    /// Checksum-validated copy of the committed entry for (key, kind),
    /// or nullopt (absent, checksum mismatch, or injected shm.checksum
    /// fault). Lock-free; refreshes the reader index when new entries
    /// were committed. `checksum_failed`, when given, distinguishes a
    /// validation rejection from a plain miss.
    [[nodiscard]] std::optional<std::string> lookup(std::uint64_t key, Kind kind,
                                                    bool* checksum_failed = nullptr);

    /// Two-phase publish of an immutable entry. Never blocks: a live
    /// concurrent writer yields `busy` (the caller just keeps its local
    /// copy). Stealing the lock from a dead writer runs recovery first.
    [[nodiscard]] PublishResult publish(std::uint64_t key, Kind kind, const void* data,
                                        std::size_t size);

    /// Detect and truncate a torn tail left by a dead writer (also run
    /// by publish-time lock steals). Returns true if a recovery ran.
    bool recover_if_torn();

    [[nodiscard]] SegmentCounters counters() const;

    // --- Worker slot table (prefork pool supervision + stats) ---

    /// Claim slot `index` for `pid` (state -> starting, counters reset).
    void claim_slot(std::size_t index, std::uint32_t pid);
    void set_slot_state(std::size_t index, WorkerState state);
    /// Worker ticker: bump the heartbeat and push the current counters.
    void update_slot(std::size_t index, const WorkerSlotView& view);
    void clear_slot(std::size_t index);
    [[nodiscard]] WorkerSlotView read_slot(std::size_t index) const;
    /// Snapshots every claimed slot; empty slots are skipped.
    [[nodiscard]] std::vector<WorkerSlotView> read_slots() const;

    void set_pool_meta(const PoolMeta& meta);
    void add_pool_restart();
    void add_pool_quarantine();
    [[nodiscard]] PoolMeta pool_meta() const;

    /// FNV-1a 64 over a byte range (entry checksums and memo-key hashes
    /// use the same function as the repo's other fingerprints).
    [[nodiscard]] static std::uint64_t fnv1a(const void* data, std::size_t size) noexcept;

private:
    struct Superblock;
    struct WorkerSlot;

    Segment(std::string name, void* base, std::size_t bytes, bool created);

    [[nodiscard]] Superblock& super() noexcept;
    [[nodiscard]] const Superblock& super() const noexcept;
    [[nodiscard]] WorkerSlot* slots() noexcept;
    [[nodiscard]] const WorkerSlot* slots() const noexcept;
    [[nodiscard]] char* arena() noexcept;
    [[nodiscard]] const char* arena() const noexcept;
    [[nodiscard]] std::uint64_t arena_capacity() const noexcept;

    /// Try to take the writer lock; steals from dead holders (running
    /// recovery). False when a live writer holds it.
    [[nodiscard]] bool lock_writer();
    void unlock_writer() noexcept;
    /// The torn-tail truncation itself; the caller holds the lock.
    void recover_locked();
    /// Catch the reader index up with newly committed entries.
    void refresh_index(std::uint64_t committed);

    std::string name_;
    void* base_ = nullptr;
    std::size_t bytes_ = 0;
    bool created_ = false;

    // Per-process incremental reader index: mixed (key, kind) -> arena
    // offset of the latest committed entry, verified against the entry
    // header at use (a hash collision is a miss, never a wrong answer).
    // Append-only arena means refreshing scans just the new suffix.
    std::unordered_map<std::uint64_t, std::uint64_t> index_;
    std::uint64_t scanned_ = 0; ///< arena bytes already indexed
    mutable std::mutex index_mutex_;
};

} // namespace mst::shm
