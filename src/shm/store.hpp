// Typed cache store over the crash-safe shared-memory segment: the
// second-level tier under the request service's local LRUs.
//
// The store holds two entry families, both addressed by the existing
// FNV-1a content fingerprints:
//   * wrapper-time-table blobs (serialized SocTimeTables, keyed by SOC
//     content fingerprint) — restoring one skips the dominant cost of a
//     cold optimize request,
//   * solution-memo outcomes (serialized SolutionOutcome, keyed by the
//     full memo-key string, hashed for addressing and stored verbatim
//     in the payload so a hash collision reads as a miss, never as a
//     wrong answer).
//
// Placement matters for determinism: lookups and publishes happen
// *inside* the local caches' single-flight compute lambdas, so the
// local hit/miss/eviction counters — which the byte-identity goldens
// pin — are identical with the shared tier on, off, or degraded. The
// only observable difference is wall time.
//
// Failure policy (the robustness contract): every segment problem —
// open/map failure, version mismatch, checksum mismatch, torn or full
// arena, blob that fails validation — degrades to local computation and
// bumps a fallback counter. The store never throws past construction,
// never blocks on a busy writer, and never crashes the request path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "arch/channel_group.hpp"
#include "shm/segment.hpp"

namespace mst {
struct SolutionOutcome;
class Soc;
} // namespace mst

namespace mst::shm {

/// Local (per-process) view of the store's activity, reported in
/// scope-"server" stats alongside the segment-wide counters.
struct StoreCounters {
    bool enabled = false;  ///< a store was configured
    bool attached = false; ///< the segment mapped and validated
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t publishes = 0;
    std::uint64_t fallbacks = 0;         ///< degraded operations (see header)
    std::uint64_t checksum_failures = 0; ///< lookups rejected by validation
};

class ShmStore {
public:
    /// Open (create or attach) the store on segment `name` of `bytes`
    /// total size. Never throws: on any failure the returned store is
    /// *degraded* — attached() is false, every lookup misses, every
    /// publish is a no-op, and the failure is remembered for stats.
    [[nodiscard]] static std::shared_ptr<ShmStore> open(const std::string& name,
                                                        std::size_t bytes);

    /// Wrap an already-mapped segment (the prefork pool maps once in
    /// the parent; workers inherit the mapping across fork).
    explicit ShmStore(std::shared_ptr<Segment> segment);

    [[nodiscard]] bool attached() const noexcept { return segment_ != nullptr; }
    [[nodiscard]] const std::shared_ptr<Segment>& segment() const noexcept
    {
        return segment_;
    }

    /// Restore the time tables for `fingerprint`, or nullptr on miss /
    /// validation failure / degraded store. The returned tables
    /// reference `soc`, which must outlive them (the caller bundles
    /// both, see service/tables_cache.hpp).
    [[nodiscard]] std::unique_ptr<SocTimeTables> load_tables(
        std::uint64_t fingerprint, const Soc& soc);

    /// Publish freshly built tables (best effort; busy/full skips are
    /// silent — the local cache already holds the result).
    void publish_tables(std::uint64_t fingerprint, const SocTimeTables& tables);

    /// Restore the memoized outcome for `memo_key`, or nullptr.
    [[nodiscard]] std::shared_ptr<SolutionOutcome> load_outcome(
        const std::string& memo_key);

    void publish_outcome(const std::string& memo_key, const SolutionOutcome& outcome);

    [[nodiscard]] StoreCounters counters() const;
    [[nodiscard]] SegmentCounters segment_counters() const;

    // --- Blob codecs (exposed for tests; validated on decode) ---

    [[nodiscard]] static std::string encode_tables(const SocTimeTables& tables);
    /// Throws ValidationError on a malformed blob.
    [[nodiscard]] static std::unique_ptr<SocTimeTables> decode_tables(
        const std::string& blob, const Soc& soc);
    [[nodiscard]] static std::string encode_outcome(const std::string& memo_key,
                                                    const SolutionOutcome& outcome);
    /// nullptr when the blob's stored key differs from `memo_key` (hash
    /// collision); throws ValidationError on a malformed blob.
    [[nodiscard]] static std::shared_ptr<SolutionOutcome> decode_outcome(
        const std::string& blob, const std::string& memo_key);

private:
    std::shared_ptr<Segment> segment_; ///< nullptr = degraded

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> publishes_{0};
    std::atomic<std::uint64_t> fallbacks_{0};
    std::atomic<std::uint64_t> checksum_failures_{0};
};

} // namespace mst::shm
