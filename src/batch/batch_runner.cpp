#include "batch/batch_runner.hpp"

#include <map>
#include <memory>

#include "arch/channel_group.hpp"
#include "common/error.hpp"
#include "common/executor.hpp"
#include "core/optimizer.hpp"

namespace mst {

namespace {

/// One shared table build: either the tables or the captured error that
/// every scenario of this SOC will report.
struct SharedTables {
    std::unique_ptr<const SocTimeTables> tables;
    BatchErrorKind error_kind = BatchErrorKind::none;
    std::string error;
};

BatchResult run_one(const BatchScenario& scenario, const SharedTables* shared)
{
    BatchResult result;
    result.label = scenario.label;
    try {
        if (shared == nullptr) {
            throw ValidationError("batch scenario '" + scenario.label + "' has no SOC");
        }
        if (shared->tables == nullptr) {
            // The shared table build failed; report its error here so the
            // per-scenario isolation guarantee holds for build errors too.
            result.error_kind = shared->error_kind;
            result.error = shared->error;
            return result;
        }
        result.solution = optimize_multi_site(*shared->tables, scenario.cell, scenario.options);
    } catch (const InfeasibleError& e) {
        result.error_kind = BatchErrorKind::infeasible;
        result.error = e.what();
    } catch (const ValidationError& e) {
        result.error_kind = BatchErrorKind::validation;
        result.error = e.what();
    } catch (const std::exception& e) {
        result.error_kind = BatchErrorKind::other;
        result.error = e.what();
    } catch (...) {
        // An exception escaping the scenario would abort the whole batch
        // once the fan-out rethrows it; capture it to keep the
        // per-scenario isolation guarantee.
        result.error_kind = BatchErrorKind::other;
        result.error = "unknown exception";
    }
    return result;
}

} // namespace

BatchRunner::BatchRunner(int threads) : threads_(threads) {}

int BatchRunner::thread_count(std::size_t jobs) const noexcept
{
    return resolve_thread_count(threads_, jobs);
}

std::vector<BatchResult> BatchRunner::run(const std::vector<BatchScenario>& scenarios) const
{
    std::vector<BatchResult> results(scenarios.size());
    if (scenarios.empty()) {
        return results;
    }

    // One immutable SocTimeTables per distinct SOC, shared by every
    // scenario holding that pointer. Building the tables dominates a
    // scenario's wall time, so the builds themselves fan out over the
    // pool before the scenario sweep starts.
    std::vector<const Soc*> distinct;
    std::map<const Soc*, std::size_t> table_slot;
    for (const BatchScenario& scenario : scenarios) {
        const Soc* soc = scenario.soc.get();
        if (soc != nullptr && table_slot.emplace(soc, distinct.size()).second) {
            distinct.push_back(soc);
        }
    }
    std::vector<SharedTables> tables(distinct.size());

    const int threads = thread_count(scenarios.size());
    parallel_for_index(distinct.size(), threads, [&](std::size_t i) {
        // A failed build (e.g. bad_alloc on a huge SOC) must not escape
        // the worker thread; it becomes every holder's BatchResult error.
        try {
            tables[i].tables = std::make_unique<const SocTimeTables>(*distinct[i]);
        } catch (const ValidationError& e) {
            tables[i].error_kind = BatchErrorKind::validation;
            tables[i].error = e.what();
        } catch (const std::exception& e) {
            tables[i].error_kind = BatchErrorKind::other;
            tables[i].error = e.what();
        } catch (...) {
            tables[i].error_kind = BatchErrorKind::other;
            tables[i].error = "unknown exception building wrapper time tables";
        }
    });
    parallel_for_index(scenarios.size(), threads, [&](std::size_t i) {
        const Soc* soc = scenarios[i].soc.get();
        const SharedTables* shared = (soc != nullptr) ? &tables[table_slot.at(soc)] : nullptr;
        results[i] = run_one(scenarios[i], shared);
    });
    return results;
}

std::vector<BatchResult> run_batch(const std::vector<BatchScenario>& scenarios, int threads)
{
    return BatchRunner(threads).run(scenarios);
}

std::vector<BatchScenario> to_batch_scenarios(const std::vector<Scenario>& scenarios)
{
    std::vector<BatchScenario> batch;
    batch.reserve(scenarios.size());
    for (const Scenario& scenario : scenarios) {
        BatchScenario job;
        job.label = scenario.name;
        job.soc = scenario.soc;
        job.cell = scenario.cell;
        job.options = scenario.options;
        batch.push_back(std::move(job));
    }
    return batch;
}

std::vector<BatchResult> run_batch(const std::vector<Scenario>& scenarios, int threads)
{
    return run_batch(to_batch_scenarios(scenarios), threads);
}

} // namespace mst
