#include "batch/batch_runner.hpp"

#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "core/optimizer.hpp"

namespace mst {

namespace {

BatchResult run_one(const BatchScenario& scenario)
{
    BatchResult result;
    result.label = scenario.label;
    try {
        result.solution = optimize_multi_site(scenario.soc, scenario.cell, scenario.options);
    } catch (const InfeasibleError& e) {
        result.error_kind = BatchErrorKind::infeasible;
        result.error = e.what();
    } catch (const ValidationError& e) {
        result.error_kind = BatchErrorKind::validation;
        result.error = e.what();
    } catch (const std::exception& e) {
        result.error_kind = BatchErrorKind::other;
        result.error = e.what();
    } catch (...) {
        // A non-std exception escaping a worker thread would terminate
        // the whole process; capture it to keep the isolation guarantee.
        result.error_kind = BatchErrorKind::other;
        result.error = "unknown exception";
    }
    return result;
}

} // namespace

BatchRunner::BatchRunner(int threads) : threads_(threads) {}

int BatchRunner::thread_count(std::size_t jobs) const noexcept
{
    int threads = threads_;
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (threads < 1) {
        threads = 1;
    }
    if (jobs < static_cast<std::size_t>(threads)) {
        threads = static_cast<int>(jobs);
    }
    return threads;
}

std::vector<BatchResult> BatchRunner::run(const std::vector<BatchScenario>& scenarios) const
{
    std::vector<BatchResult> results(scenarios.size());
    if (scenarios.empty()) {
        return results;
    }

    const int threads = thread_count(scenarios.size());
    if (threads == 1) {
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            results[i] = run_one(scenarios[i]);
        }
        return results;
    }

    // Work stealing off a shared counter: each worker claims the next
    // unclaimed scenario index and writes its own results slot, so the
    // output order is the input order no matter how the pool schedules.
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= scenarios.size()) {
                return;
            }
            results[i] = run_one(scenarios[i]);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back(worker);
    }
    for (std::thread& thread : pool) {
        thread.join();
    }
    return results;
}

std::vector<BatchResult> run_batch(const std::vector<BatchScenario>& scenarios, int threads)
{
    return BatchRunner(threads).run(scenarios);
}

} // namespace mst
