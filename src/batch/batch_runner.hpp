// Parallel batch-scenario engine: run many (Soc, TestCell,
// OptimizeOptions) optimizations across a thread pool.
//
//   std::vector<BatchScenario> scenarios = ...;
//   BatchRunner runner;                       // hardware_concurrency threads
//   std::vector<BatchResult> results = runner.run(scenarios);
//
// Guarantees:
//   * results[i] always corresponds to scenarios[i] (deterministic
//     ordering regardless of thread count or scheduling),
//   * a scenario that throws (e.g. InfeasibleError: "this SOC does not
//     fit on that ATE") yields a failed BatchResult carrying the error
//     message; it never aborts the other scenarios,
//   * with the same scenario list, results are identical at any thread
//     count (the optimizer is pure; the runner adds no shared state),
//   * scenarios holding the same Soc pointer share one immutable
//     SocTimeTables build instead of rebuilding the wrapper time tables
//     (the pipeline's dominant cost) once per scenario.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ate/ate.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"
#include "scenario/scenario_spec.hpp"
#include "soc/soc.hpp"

namespace mst {

/// One independent optimization job of a sweep. The SOC is held by
/// shared pointer so a sweep's cross product references each SOC once;
/// share_soc() wraps a freshly built Soc for that purpose.
struct BatchScenario {
    std::string label;      ///< free-form tag echoed into the result
    std::shared_ptr<const Soc> soc;
    TestCell cell;
    OptimizeOptions options;
};

/// Wrap an SOC for scenario sharing: every scenario holding the returned
/// pointer reuses one wrapper-time-table build during BatchRunner::run.
[[nodiscard]] inline std::shared_ptr<const Soc> share_soc(Soc soc)
{
    return std::make_shared<const Soc>(std::move(soc));
}

/// Classification of a failed scenario, so sweep reports can distinguish
/// "SOC untestable on that ATE" (expected in what-if grids) from
/// malformed inputs and internal errors.
enum class BatchErrorKind {
    none,        ///< scenario succeeded
    infeasible,  ///< InfeasibleError: no solution on the given ATE
    validation,  ///< ValidationError: malformed SOC/ATE/options
    other,       ///< any other exception
};

/// Outcome of one scenario: either a Solution or a captured error.
struct BatchResult {
    std::string label;
    std::optional<Solution> solution;
    BatchErrorKind error_kind = BatchErrorKind::none;
    std::string error;  ///< what() of the captured exception, if any

    [[nodiscard]] bool ok() const noexcept { return solution.has_value(); }
};

/// Thread-pool fan-out over a scenario list.
class BatchRunner {
public:
    /// `threads` <= 0 selects std::thread::hardware_concurrency().
    explicit BatchRunner(int threads = 0);

    /// Number of worker threads a run() will actually use for `jobs`
    /// scenarios: at least 1, never more than there are jobs (so an
    /// empty scenario list reports 0).
    [[nodiscard]] int thread_count(std::size_t jobs) const noexcept;

    /// Run every scenario; results[i] matches scenarios[i]. Never throws
    /// on scenario failure (see BatchResult); propagates only scenario-
    /// independent errors such as std::bad_alloc while setting up.
    [[nodiscard]] std::vector<BatchResult> run(const std::vector<BatchScenario>& scenarios) const;

private:
    int threads_ = 0;
};

/// Convenience one-shot form of BatchRunner(threads).run(scenarios).
[[nodiscard]] std::vector<BatchResult> run_batch(const std::vector<BatchScenario>& scenarios,
                                                 int threads = 0);

/// Bridge from the scenario layer: an expanded ScenarioSpec list runs
/// as a batch directly, result labels being the scenario names. SOC
/// sharing carries over (expand() resolves each source once).
[[nodiscard]] std::vector<BatchScenario>
to_batch_scenarios(const std::vector<Scenario>& scenarios);

/// Run an expanded scenario list: run_batch(to_batch_scenarios(...)).
[[nodiscard]] std::vector<BatchResult> run_batch(const std::vector<Scenario>& scenarios,
                                                 int threads = 0);

} // namespace mst
