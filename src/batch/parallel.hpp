// Index-parallel fan-out shared by BatchRunner and the request service.
//
// Workers steal indices off a shared atomic counter and write into their
// own output slot, so the caller's output order is the input order no
// matter how the pool schedules. `fn(i)` must not throw: capture errors
// into the i-th output slot instead (an exception escaping a worker
// thread would terminate the process).
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace mst {

/// Resolve a user-configured thread count for `jobs` work items:
/// `configured` <= 0 selects hardware_concurrency; the result is at
/// least 1 and never more than there are jobs (an empty job list
/// reports 0). Shared by BatchRunner and RequestService so both
/// surfaces pick pool sizes identically.
[[nodiscard]] inline int resolve_thread_count(int configured, std::size_t jobs) noexcept
{
    int threads = configured;
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (threads < 1) {
        threads = 1;
    }
    if (jobs < static_cast<std::size_t>(threads)) {
        threads = static_cast<int>(jobs);
    }
    return threads;
}

template <typename Fn>
void parallel_for_index(std::size_t count, int threads, Fn&& fn)
{
    if (count == 0) {
        return;
    }
    if (static_cast<std::size_t>(threads) > count) {
        threads = static_cast<int>(count);
    }
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            fn(i);
        }
        return;
    }
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) {
                return;
            }
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back(worker);
    }
    for (std::thread& thread : pool) {
        thread.join();
    }
}

} // namespace mst
