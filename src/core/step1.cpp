#include "core/step1.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>
#include <vector>

#include "common/error.hpp"

namespace mst {

namespace {

/// Modules sorted by the configured key; the paper sorts by decreasing
/// minimal width, with deterministic tie-breaking on volume then index.
std::vector<int> module_order(const SocTimeTables& tables,
                              const std::vector<WireCount>& min_widths,
                              ModuleOrder order)
{
    std::vector<int> indices(static_cast<std::size_t>(tables.module_count()));
    std::iota(indices.begin(), indices.end(), 0);
    const Soc& soc = tables.soc();

    const auto volume = [&soc](int m) { return soc.module(m).test_data_volume_bits(); };
    const auto single_wire_time = [&tables](int m) { return tables.table(m).time(1); };

    switch (order) {
    case ModuleOrder::by_min_width:
        std::stable_sort(indices.begin(), indices.end(), [&](int a, int b) {
            const auto wa = min_widths[static_cast<std::size_t>(a)];
            const auto wb = min_widths[static_cast<std::size_t>(b)];
            if (wa != wb) {
                return wa > wb;
            }
            return volume(a) > volume(b);
        });
        break;
    case ModuleOrder::by_volume:
        std::stable_sort(indices.begin(), indices.end(),
                         [&](int a, int b) { return volume(a) > volume(b); });
        break;
    case ModuleOrder::by_time:
        std::stable_sort(indices.begin(), indices.end(), [&](int a, int b) {
            return single_wire_time(a) > single_wire_time(b);
        });
        break;
    case ModuleOrder::input_order:
        break;
    }
    return indices;
}

/// Try to place a module on an existing group without widening.
/// Returns the chosen group index, or nullopt.
std::optional<std::size_t> pick_existing_group(const Architecture& arch,
                                               int module_index,
                                               CycleCount depth,
                                               GroupSelectPolicy policy)
{
    std::optional<std::size_t> best;
    CycleCount best_fill = std::numeric_limits<CycleCount>::max();
    for (std::size_t g = 0; g < arch.groups().size(); ++g) {
        const CycleCount fill = arch.groups()[g].fill_with(module_index);
        if (fill > depth) {
            continue;
        }
        if (policy == GroupSelectPolicy::first_fit) {
            return g;
        }
        if (fill < best_fill) {
            best_fill = fill;
            best = g;
        }
    }
    return best;
}

/// One expansion alternative: either a new group (group == nullopt) or a
/// widening of an existing group, always by `added_wires`.
struct Expansion {
    std::optional<std::size_t> group;
    WireCount added_wires = 0;
    CycleCount resulting_total_fill = 0;
};

/// Enumerate the feasible alternatives of Fig. 4(c) for placing
/// `module_index`, under the configured expansion policy.
std::vector<Expansion> enumerate_expansions(const Architecture& arch,
                                            const SocTimeTables& tables,
                                            int module_index,
                                            WireCount min_width,
                                            CycleCount depth,
                                            WireCount wire_budget,
                                            ExpansionPolicy policy)
{
    std::vector<Expansion> expansions;
    const WireCount head_room = wire_budget - arch.total_wires();
    CycleCount current_fill = 0;
    for (const ChannelGroup& group : arch.groups()) {
        current_fill += group.fill();
    }

    // Alternative (i): a brand-new group at the module's minimal width.
    if (min_width <= head_room) {
        Expansion fresh;
        fresh.added_wires = min_width;
        fresh.resulting_total_fill = current_fill + tables.table(module_index).time(min_width);
        expansions.push_back(fresh);
    }
    if (policy == ExpansionPolicy::always_new_group) {
        return expansions;
    }

    // Alternatives (ii)...: widen an existing group.
    for (std::size_t g = 0; g < arch.groups().size(); ++g) {
        const ChannelGroup& group = arch.groups()[g];
        WireCount delta = 0;
        if (policy == ExpansionPolicy::widen_by_kmin) {
            // Paper: every alternative adds exactly k_min(module) wires.
            delta = min_width;
            if (delta > head_room) {
                continue;
            }
            const WireCount new_width = group.width() + delta;
            const CycleCount fill = group.fill_at_width(new_width) +
                                    tables.table(module_index).time(new_width);
            if (fill > depth) {
                continue;
            }
        } else { // ExpansionPolicy::min_widening
            delta = group.min_widening_for(module_index, depth, head_room);
            if (delta == 0) {
                continue;
            }
        }
        const WireCount new_width = group.width() + delta;
        Expansion widened;
        widened.group = g;
        widened.added_wires = delta;
        widened.resulting_total_fill = current_fill - group.fill() +
                                       group.fill_at_width(new_width) +
                                       tables.table(module_index).time(new_width);
        expansions.push_back(widened);
    }
    return expansions;
}

/// Paper's selection: with equal added channels, the smallest total fill
/// leaves the most free memory. With unequal added wires (min_widening
/// ablation) compare free memory directly.
const Expansion& select_expansion(const std::vector<Expansion>& expansions,
                                  CycleCount depth)
{
    const auto free_memory = [depth](const Expansion& e) {
        return depth * e.added_wires - e.resulting_total_fill;
    };
    const Expansion* best = &expansions.front();
    for (const Expansion& candidate : expansions) {
        if (free_memory(candidate) > free_memory(*best)) {
            best = &candidate;
        } else if (free_memory(candidate) == free_memory(*best) &&
                   candidate.added_wires < best->added_wires) {
            best = &candidate;
        }
    }
    return *best;
}

} // namespace

namespace {

/// One greedy Step-1 pass under an explicit wire budget. Returns nullopt
/// when the budget is too tight for this pass.
std::optional<Architecture> step1_pass(const SocTimeTables& tables,
                                       CycleCount depth,
                                       WireCount wire_budget,
                                       const std::vector<WireCount>& min_widths,
                                       const std::vector<int>& order,
                                       const OptimizeOptions& options)
{
    Architecture arch(tables);
    for (const int module_index : order) {
        const WireCount min_width = min_widths[static_cast<std::size_t>(module_index)];
        if (arch.groups().empty()) {
            if (min_width > wire_budget) {
                return std::nullopt;
            }
            arch.groups().emplace_back(min_width, tables);
            arch.groups().back().add_module(module_index);
            continue;
        }
        const std::optional<std::size_t> existing =
            pick_existing_group(arch, module_index, depth, options.group_select);
        if (existing) {
            arch.groups()[*existing].add_module(module_index);
            continue;
        }
        std::vector<Expansion> expansions = enumerate_expansions(
            arch, tables, module_index, min_width, depth, wire_budget, options.expansion);
        if (expansions.empty() && options.expansion == ExpansionPolicy::widen_by_kmin) {
            // Budget pressure: the paper's fixed k_min widening no longer
            // fits the remaining channels, but a smaller widening might.
            expansions = enumerate_expansions(arch, tables, module_index, min_width, depth,
                                              wire_budget, ExpansionPolicy::min_widening);
        }
        if (expansions.empty()) {
            return std::nullopt;
        }
        const Expansion& chosen = select_expansion(expansions, depth);
        if (chosen.group) {
            ChannelGroup& group = arch.groups()[*chosen.group];
            group.widen(chosen.added_wires);
            group.add_module(module_index);
        } else {
            arch.groups().emplace_back(chosen.added_wires, tables);
            arch.groups().back().add_module(module_index);
        }
    }
    return arch;
}

} // namespace

std::optional<Architecture> pack_within(const SocTimeTables& tables,
                                        CycleCount depth,
                                        WireCount wire_budget,
                                        const OptimizeOptions& options)
{
    std::vector<WireCount> min_widths(static_cast<std::size_t>(tables.module_count()));
    for (int m = 0; m < tables.module_count(); ++m) {
        const std::optional<WireCount> width = tables.table(m).min_width_for(depth);
        if (!width || *width > wire_budget) {
            return std::nullopt;
        }
        min_widths[static_cast<std::size_t>(m)] = *width;
    }

    std::vector<ModuleOrder> orders = {options.module_order};
    std::vector<ExpansionPolicy> expansions = {options.expansion};
    if (options.budget_search) {
        for (const ModuleOrder fallback :
             {ModuleOrder::by_min_width, ModuleOrder::by_volume, ModuleOrder::by_time}) {
            if (fallback != options.module_order) {
                orders.push_back(fallback);
            }
        }
        for (const ExpansionPolicy fallback :
             {ExpansionPolicy::widen_by_kmin, ExpansionPolicy::min_widening,
              ExpansionPolicy::always_new_group}) {
            if (fallback != options.expansion) {
                expansions.push_back(fallback);
            }
        }
    }

    for (const ModuleOrder order_kind : orders) {
        const std::vector<int> order = module_order(tables, min_widths, order_kind);
        for (const ExpansionPolicy expansion : expansions) {
            OptimizeOptions pass_options = options;
            pass_options.expansion = expansion;
            std::optional<Architecture> packed =
                step1_pass(tables, depth, wire_budget, min_widths, order, pass_options);
            if (packed) {
                return packed;
            }
        }
    }
    return std::nullopt;
}

Step1Result run_step1(const SocTimeTables& tables,
                      const AteSpec& ate,
                      const OptimizeOptions& options)
{
    ate.validate();
    const CycleCount depth = ate.vector_memory_depth;
    const WireCount ate_wires = wires_from_channels(ate.channels);
    const Soc& soc = tables.soc();

    // Minimal width per module; infeasible if any module fits nowhere.
    WireCount widest = 1;
    CycleCount total_min_area = 0;
    for (int m = 0; m < tables.module_count(); ++m) {
        const std::optional<WireCount> width = tables.table(m).min_width_for(depth);
        if (!width) {
            throw InfeasibleError("module '" + soc.module(m).name() +
                                  "' does not fit the ATE vector memory at any width");
        }
        if (*width > ate_wires) {
            throw InfeasibleError("module '" + soc.module(m).name() +
                                  "' alone needs more channels than the ATE provides");
        }
        widest = std::max(widest, *width);
        total_min_area += tables.table(m).min_area();
    }

    // Virtual-depth sweep: a packing whose fills respect a reduced depth
    // is also valid for the real one, and tighter depths often steer the
    // greedy to architectures with fewer wires. Fraction 1.0 is the plain
    // pass; the others only run under budget_search.
    std::vector<double> fractions{1.0};
    if (options.budget_search) {
        for (double f = 0.975; f >= 0.55; f -= 0.025) {
            fractions.push_back(f);
        }
    }

    // Criterion 1 (minimize channels) has priority: search wire budgets
    // upward from the theoretical lower bound and keep the first packing
    // the greedy achieves; under a tight budget every module order,
    // expansion policy, and virtual depth gets a chance before the budget
    // grows. Without budget_search, a single unconstrained pass in the
    // configured order reproduces the raw greedy of the paper.
    const auto area_bound = static_cast<WireCount>((total_min_area + depth - 1) / depth);
    const WireCount search_from =
        options.budget_search ? std::max(widest, area_bound) : ate_wires;

    std::optional<Architecture> packed;
    for (WireCount budget = search_from; budget <= ate_wires && !packed; ++budget) {
        for (const double fraction : fractions) {
            const auto virtual_depth =
                static_cast<CycleCount>(static_cast<double>(depth) * fraction);
            packed = pack_within(tables, virtual_depth, budget, options);
            if (packed) {
                break;
            }
        }
    }
    if (!packed) {
        throw InfeasibleError("SOC '" + soc.name() +
                              "' exceeds the ATE channel budget during Step 1");
    }
    if (options.compaction) {
        packed->compact(depth);
    }

    Step1Result result{std::move(*packed), 0, 0};
    result.architecture.validate(ate);
    result.channels = result.architecture.channels();
    result.max_sites = max_sites(result.channels, ate.channels, options.broadcast);
    if (result.max_sites < 1) {
        throw InfeasibleError("SOC '" + soc.name() + "' does not allow even single-site testing");
    }
    return result;
}

} // namespace mst
