#include "core/step1.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace mst {

namespace {

/// Candidate virtual-depth fractions of the Step-1 sweep: the plain
/// full-depth pass first, then 0.975 down to 0.55 in 0.025 steps. The
/// fractions derive from integer step counts (fraction = step / 40), so
/// floating-point accumulation can never skip or repeat a depth.
std::vector<double> sweep_fractions(bool budget_search)
{
    std::vector<double> fractions{1.0};
    if (budget_search) {
        for (int step = 39; step >= 22; --step) {
            fractions.push_back(0.025 * step);
        }
    }
    return fractions;
}

/// Evaluate one wire budget: the (fraction x order x policy) candidates
/// run as adaptive waves of pack queries — the fractions fan out through
/// PackEngine::pack_batch, each uncached query runs its order/policy
/// passes in its own waves — and the winner is the lowest fraction index
/// that packs, i.e. exactly the candidate the sequential sweep keeps.
std::optional<Architecture> probe_budget(PackEngine& engine,
                                         const std::vector<CycleCount>& virtual_depths,
                                         WireCount budget)
{
    std::size_t begin = 0;
    for (int wave = 0; begin < virtual_depths.size(); ++wave) {
        const std::size_t end =
            std::min(virtual_depths.size(), begin + pack_wave_extent(wave));
        std::vector<PackQuery> queries;
        queries.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            queries.push_back({virtual_depths[i], budget});
        }
        std::vector<std::optional<Architecture>> packs = engine.pack_batch(queries);
        for (std::optional<Architecture>& packed : packs) {
            if (packed) {
                return std::move(packed);
            }
        }
        begin = end;
    }
    return std::nullopt;
}

/// Probe a contiguous ascending run of budgets [first, last) at once:
/// every (budget x fraction) candidate of the run goes through one
/// pack_batch, and the winner is the first success in budget-major,
/// fraction-minor order — exactly the candidate the sequential budget
/// ascent keeps. Probing the whole block wastes nothing on the
/// infeasible prefix (the sequential scan evaluates every fraction of
/// an infeasible budget anyway) and at most the tail of the winning
/// run beyond the winner.
std::optional<Architecture> probe_budget_run(PackEngine& engine,
                                             const std::vector<CycleCount>& virtual_depths,
                                             WireCount first,
                                             WireCount last)
{
    std::vector<PackQuery> queries;
    queries.reserve(static_cast<std::size_t>(last - first) * virtual_depths.size());
    for (WireCount budget = first; budget < last; ++budget) {
        for (const CycleCount depth : virtual_depths) {
            queries.push_back({depth, budget});
        }
    }
    std::vector<std::optional<Architecture>> packs = engine.pack_batch(queries);
    for (std::optional<Architecture>& packed : packs) {
        if (packed) {
            return std::move(packed);
        }
    }
    return std::nullopt;
}

} // namespace

Step1Result run_step1(PackEngine& engine, const AteSpec& ate)
{
    ate.validate();
    const SocTimeTables& tables = engine.tables();
    const OptimizeOptions& options = engine.options();
    const CycleCount depth = ate.vector_memory_depth;
    const WireCount ate_wires = wires_from_channels(ate.channels);
    const Soc& soc = tables.soc();

    // Minimal width per module; infeasible if any module fits nowhere.
    WireCount widest = 1;
    for (int m = 0; m < tables.module_count(); ++m) {
        const std::optional<WireCount> width = tables.min_width_for(m, depth);
        if (!width) {
            throw InfeasibleError("module '" + soc.module(m).name() +
                                  "' does not fit the ATE vector memory at any width");
        }
        if (*width > ate_wires) {
            throw InfeasibleError("module '" + soc.module(m).name() +
                                  "' alone needs more channels than the ATE provides");
        }
        widest = std::max(widest, *width);
    }

    // Virtual-depth sweep: a packing whose fills respect a reduced depth
    // is also valid for the real one, and tighter depths often steer the
    // greedy to architectures with fewer wires. Fraction 1.0 is the plain
    // pass; the others only run under budget_search.
    std::vector<CycleCount> virtual_depths;
    for (const double fraction : sweep_fractions(options.budget_search)) {
        virtual_depths.push_back(
            static_cast<CycleCount>(static_cast<double>(depth) * fraction));
    }

    // Criterion 1 (minimize channels) has priority: find the smallest
    // wire budget from the theoretical lower bound upward at which any
    // sweep candidate packs. The ascent is linear on purpose: the
    // greedy offers no budget-monotonicity guarantee (its choices see
    // the budget through head_room), so a gallop/bisect over budgets
    // could skip the true minimum or miss a feasible packing entirely —
    // every budget below the winner must actually be probed. The scan
    // runs in the shared adaptive waves instead: the first two waves
    // mirror the sequential ascent exactly (early exit per fraction),
    // later waves batch whole (budget x fraction) blocks through
    // pack_batch, and the winner is the first success in budget-major,
    // fraction-minor order — byte-identical to the sequential ascent by
    // construction, at any thread count. Without budget_search a single
    // unconstrained probe reproduces the raw greedy of the paper.
    const CycleCount total_min_area = tables.total_min_area();
    const auto area_bound = static_cast<WireCount>((total_min_area + depth - 1) / depth);
    const WireCount search_from =
        options.budget_search ? std::max(widest, area_bound) : ate_wires;

    std::optional<Architecture> packed;
    if (search_from <= ate_wires) {
        const auto budget_count = static_cast<std::size_t>(ate_wires - search_from) + 1;
        std::size_t begin = 0;
        for (int wave = 0; begin < budget_count && !packed; ++wave) {
            const std::size_t end =
                std::min(budget_count, begin + pack_wave_extent(wave));
            const WireCount first = search_from + static_cast<WireCount>(begin);
            const WireCount last = search_from + static_cast<WireCount>(end);
            packed = (end - begin == 1)
                         ? probe_budget(engine, virtual_depths, first)
                         : probe_budget_run(engine, virtual_depths, first, last);
            begin = end;
        }
    }
    if (!packed) {
        throw InfeasibleError("SOC '" + soc.name() +
                              "' exceeds the ATE channel budget during Step 1");
    }
    if (options.compaction) {
        packed->compact(depth);
    }

    Step1Result result{std::move(*packed), 0, 0};
    result.architecture.validate(ate);
    result.channels = result.architecture.channels();
    result.max_sites = max_sites(result.channels, ate.channels, options.broadcast);
    if (result.max_sites < 1) {
        throw InfeasibleError("SOC '" + soc.name() + "' does not allow even single-site testing");
    }
    return result;
}

Step1Result run_step1(const SocTimeTables& tables,
                      const AteSpec& ate,
                      const OptimizeOptions& options)
{
    PackEngine engine(tables, options);
    return run_step1(engine, ate);
}

} // namespace mst
