#include "core/step1.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/error.hpp"

namespace mst {

Step1Result run_step1(PackEngine& engine, const AteSpec& ate)
{
    ate.validate();
    const SocTimeTables& tables = engine.tables();
    const OptimizeOptions& options = engine.options();
    const CycleCount depth = ate.vector_memory_depth;
    const WireCount ate_wires = wires_from_channels(ate.channels);
    const Soc& soc = tables.soc();

    // Minimal width per module; infeasible if any module fits nowhere.
    WireCount widest = 1;
    for (int m = 0; m < tables.module_count(); ++m) {
        const std::optional<WireCount> width = tables.table(m).min_width_for(depth);
        if (!width) {
            throw InfeasibleError("module '" + soc.module(m).name() +
                                  "' does not fit the ATE vector memory at any width");
        }
        if (*width > ate_wires) {
            throw InfeasibleError("module '" + soc.module(m).name() +
                                  "' alone needs more channels than the ATE provides");
        }
        widest = std::max(widest, *width);
    }

    // Virtual-depth sweep: a packing whose fills respect a reduced depth
    // is also valid for the real one, and tighter depths often steer the
    // greedy to architectures with fewer wires. Fraction 1.0 is the plain
    // pass; the others only run under budget_search.
    std::vector<double> fractions{1.0};
    if (options.budget_search) {
        for (double f = 0.975; f >= 0.55; f -= 0.025) {
            fractions.push_back(f);
        }
    }

    // Criterion 1 (minimize channels) has priority: search wire budgets
    // upward from the theoretical lower bound and keep the first packing
    // the greedy achieves; under a tight budget every module order,
    // expansion policy, and virtual depth gets a chance before the budget
    // grows. Without budget_search, a single unconstrained pass in the
    // configured order reproduces the raw greedy of the paper.
    const CycleCount total_min_area = tables.total_min_area();
    const auto area_bound = static_cast<WireCount>((total_min_area + depth - 1) / depth);
    const WireCount search_from =
        options.budget_search ? std::max(widest, area_bound) : ate_wires;

    std::optional<Architecture> packed;
    for (WireCount budget = search_from; budget <= ate_wires && !packed; ++budget) {
        for (const double fraction : fractions) {
            const auto virtual_depth =
                static_cast<CycleCount>(static_cast<double>(depth) * fraction);
            packed = engine.pack_within(virtual_depth, budget);
            if (packed) {
                break;
            }
        }
    }
    if (!packed) {
        throw InfeasibleError("SOC '" + soc.name() +
                              "' exceeds the ATE channel budget during Step 1");
    }
    if (options.compaction) {
        packed->compact(depth);
    }

    Step1Result result{std::move(*packed), 0, 0};
    result.architecture.validate(ate);
    result.channels = result.architecture.channels();
    result.max_sites = max_sites(result.channels, ate.channels, options.broadcast);
    if (result.max_sites < 1) {
        throw InfeasibleError("SOC '" + soc.name() + "' does not allow even single-site testing");
    }
    return result;
}

Step1Result run_step1(const SocTimeTables& tables,
                      const AteSpec& ate,
                      const OptimizeOptions& options)
{
    PackEngine engine(tables, options);
    return run_step1(engine, ate);
}

} // namespace mst
