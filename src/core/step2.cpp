#include "core/step2.hpp"

#include "common/error.hpp"

namespace mst {

namespace {

/// Evaluate the throughput model for a concrete (n, architecture) pair.
ThroughputResult evaluate_point(SiteCount sites,
                                const Architecture& arch,
                                const TestCell& cell,
                                const OptimizeOptions& options)
{
    ThroughputInputs inputs;
    inputs.sites = sites;
    inputs.manufacturing_test_time = cell.ate.seconds_for(arch.test_cycles());
    inputs.contacted_terminals_per_soc = arch.channels() + options.control_pads;
    return evaluate_throughput(inputs, cell.prober, options.yields, options.abort);
}

SitePoint make_point(SiteCount sites, const Architecture& arch, const TestCell& cell,
                     const ThroughputResult& result, RetestPolicy retest)
{
    SitePoint point;
    point.sites = sites;
    point.channels_per_site = arch.channels();
    point.test_cycles = arch.test_cycles();
    point.manufacturing_time = cell.ate.seconds_for(arch.test_cycles());
    point.devices_per_hour = result.devices_per_hour;
    point.unique_devices_per_hour = result.unique_devices_per_hour;
    point.figure_of_merit = figure_of_merit(result, retest);
    return point;
}

/// Re-pack fallback: when widening the bottleneck group cannot shorten
/// the test any further (its modules are width-saturated), rebuilding the
/// whole per-site architecture for the full wire budget at the smallest
/// feasible virtual depth can. Scans virtual depths bottom-up and returns
/// the tightest packing, or nullopt if none beats `beat_cycles`.
std::optional<Architecture> repack_for_budget(PackEngine& engine,
                                              CycleCount depth,
                                              WireCount wire_budget,
                                              CycleCount beat_cycles)
{
    // No packing can beat the total-area bound, so start the virtual-depth
    // scan there instead of at zero.
    const CycleCount total_min_area = engine.tables().total_min_area();
    const double floor_fraction = static_cast<double>(total_min_area) /
                                  (static_cast<double>(wire_budget) * static_cast<double>(depth));

    for (double fraction = std::max(0.05, floor_fraction); fraction <= 1.0; fraction += 0.025) {
        const auto virtual_depth = static_cast<CycleCount>(static_cast<double>(depth) * fraction);
        if (virtual_depth < 1) {
            continue;
        }
        if (virtual_depth >= beat_cycles) {
            return std::nullopt; // only depths strictly better than the incumbent matter
        }
        std::optional<Architecture> packed = engine.pack_within(virtual_depth, wire_budget);
        if (packed && packed->test_cycles() < beat_cycles) {
            return packed;
        }
    }
    return std::nullopt;
}

} // namespace

Step2Result run_step2(PackEngine& engine, const Step1Result& step1, const TestCell& cell)
{
    const OptimizeOptions& options = engine.options();
    cell.validate();
    if (step1.max_sites < 1) {
        throw ValidationError("Step 2 requires a feasible Step-1 result");
    }

    Step2Result result{0, step1.architecture, {}, {}};
    DevicesPerHour best = -1.0;

    // `incumbent` carries the best architecture found so far down the
    // linear search; the per-site budget only grows as n shrinks, so the
    // incumbent always fits and the test time is monotone along the curve.
    Architecture incumbent = step1.architecture;
    for (SiteCount n = step1.max_sites; n >= 1; --n) {
        // Redistribute the channels freed up by giving up sites: every
        // site may grow to the per-site budget. Wires are handed one at a
        // time to the group with the largest fill (the bottleneck).
        const WireCount budget =
            wires_from_channels(per_site_channel_budget(n, cell.ate.channels, options.broadcast));
        while (incumbent.total_wires() < budget &&
               incumbent.add_wire_to_bottleneck(budget - incumbent.total_wires())) {
        }
        // Wire-by-wire widening cannot move modules between groups, so a
        // from-scratch re-pack of the site at the full budget can still
        // convert channels into test time; keep it only if it wins.
        std::optional<Architecture> repacked =
            repack_for_budget(engine, cell.ate.vector_memory_depth, budget,
                              incumbent.test_cycles());
        if (repacked) {
            incumbent = std::move(*repacked);
        }

        const Architecture& candidate = incumbent;
        const ThroughputResult throughput = evaluate_point(n, candidate, cell, options);
        result.curve.push_back(make_point(n, candidate, cell, throughput, options.retest));

        const DevicesPerHour merit = figure_of_merit(throughput, options.retest);
        if (merit > best) {
            best = merit;
            result.best_sites = n;
            result.best_architecture = candidate;
            result.best_throughput = throughput;
        }
    }
    return result;
}

Step2Result run_step2(const Step1Result& step1,
                      const TestCell& cell,
                      const OptimizeOptions& options)
{
    PackEngine engine(step1.architecture.tables(), options);
    return run_step2(engine, step1, cell);
}

} // namespace mst
