#include "core/step2.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/executor.hpp"

namespace mst {

namespace {

/// What the throughput model needs to know about one site point's
/// architecture. Snapshotting the two scalars instead of the whole
/// Architecture keeps the per-point bookkeeping allocation-free along
/// curves with hundreds of points.
struct PointShape {
    ChannelCount channels = 0;
    CycleCount test_cycles = 0;
};

ThroughputResult evaluate_shape(SiteCount sites,
                                const PointShape& shape,
                                const TestCell& cell,
                                const OptimizeOptions& options)
{
    ThroughputInputs inputs;
    inputs.sites = sites;
    inputs.manufacturing_test_time = cell.ate.seconds_for(shape.test_cycles);
    inputs.contacted_terminals_per_soc = shape.channels + options.control_pads;
    return evaluate_throughput(inputs, cell.prober, options.yields, options.abort);
}

SitePoint make_point(SiteCount sites, const PointShape& shape, const TestCell& cell,
                     const ThroughputResult& result, RetestPolicy retest)
{
    SitePoint point;
    point.sites = sites;
    point.channels_per_site = shape.channels;
    point.test_cycles = shape.test_cycles;
    point.manufacturing_time = cell.ate.seconds_for(shape.test_cycles);
    point.devices_per_hour = result.devices_per_hour;
    point.unique_devices_per_hour = result.unique_devices_per_hour;
    point.figure_of_merit = figure_of_merit(result, retest);
    return point;
}

} // namespace

std::vector<CycleCount> repack_candidates(const SocTimeTables& tables,
                                          CycleCount depth,
                                          WireCount wire_budget,
                                          CycleCount beat_cycles)
{
    const CycleCount total_min_area = tables.total_min_area();
    const double floor_fraction = static_cast<double>(total_min_area) /
                                  (static_cast<double>(wire_budget) * static_cast<double>(depth));
    // Snap the sweep start *up* to the 0.025 lattice. The scan walks
    // integer lattice multiples only; starting at the raw area-floor
    // fraction used to shift the whole grid off-lattice whenever the
    // floor bound, making the scanned depths (and the memo keys they
    // feed) drift by the floor's sub-lattice remainder.
    const auto first_step = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::ceil(floor_fraction / 0.025)));

    std::vector<CycleCount> depths;
    for (std::int64_t step = first_step;; ++step) {
        const double fraction = 0.025 * static_cast<double>(step);
        if (fraction > 1.0) {
            break;
        }
        const auto virtual_depth =
            static_cast<CycleCount>(static_cast<double>(depth) * fraction);
        if (virtual_depth < 1) {
            continue;
        }
        if (virtual_depth >= beat_cycles) {
            break; // only depths strictly better than the incumbent matter
        }
        depths.push_back(virtual_depth);
    }
    return depths;
}

namespace {

/// Re-pack fallback: when widening the bottleneck group cannot shorten
/// the test any further (its modules are width-saturated), rebuilding the
/// whole per-site architecture for the full wire budget at the smallest
/// feasible virtual depth can. The candidate depths are scanned in
/// adaptive parallel waves with a deterministic reduction — the winner
/// is the first (lowest) index whose packing beats `beat_cycles`, the
/// same packing the sequential bottom-up scan returns.
std::optional<Architecture> repack_for_budget(PackEngine& engine,
                                              CycleCount depth,
                                              WireCount wire_budget,
                                              CycleCount beat_cycles)
{
    const std::vector<CycleCount> candidates =
        repack_candidates(engine.tables(), depth, wire_budget, beat_cycles);

    std::size_t begin = 0;
    for (int wave = 0; begin < candidates.size(); ++wave) {
        const std::size_t end = std::min(candidates.size(), begin + pack_wave_extent(wave));
        std::vector<PackQuery> queries;
        queries.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            queries.push_back({candidates[i], wire_budget});
        }
        std::vector<std::optional<Architecture>> packs = engine.pack_batch(queries);
        for (std::optional<Architecture>& packed : packs) {
            if (packed && packed->test_cycles() < beat_cycles) {
                return std::move(packed);
            }
        }
        begin = end;
    }
    return std::nullopt;
}

} // namespace

Step2Result run_step2(PackEngine& engine, const Step1Result& step1, const TestCell& cell)
{
    const OptimizeOptions& options = engine.options();
    cell.validate();
    if (step1.max_sites < 1) {
        throw ValidationError("Step 2 requires a feasible Step-1 result");
    }

    const auto count = static_cast<std::size_t>(step1.max_sites);
    std::vector<SiteCount> sites(count);
    std::vector<PointShape> shapes(count);
    // The incumbent mutates rarely (only when the budget boundary frees
    // wires or a re-pack wins); snapshots record it exactly at those
    // points so the winner's architecture can be recovered without
    // copying it once per curve point.
    std::vector<Architecture> snapshots;
    std::vector<std::size_t> snapshot_from;

    // `incumbent` carries the best architecture found so far down the
    // linear search; the per-site budget only grows as n shrinks, so the
    // incumbent always fits and the test time is monotone along the
    // curve. The chain is inherently sequential — each n's budget scan
    // starts from the previous incumbent — but the expensive part, the
    // re-pack packing queries, fans out inside repack_for_budget.
    Architecture incumbent = step1.architecture;
    for (std::size_t i = 0; i < count; ++i) {
        const SiteCount n = step1.max_sites - static_cast<SiteCount>(i);
        sites[i] = n;
        // Redistribute the channels freed up by giving up sites: every
        // site may grow to the per-site budget. Wires are handed one at a
        // time to the group with the largest fill (the bottleneck).
        const WireCount budget =
            wires_from_channels(per_site_channel_budget(n, cell.ate.channels, options.broadcast));
        const WireCount wires_before = incumbent.total_wires();
        while (incumbent.total_wires() < budget &&
               incumbent.add_wire_to_bottleneck(budget - incumbent.total_wires())) {
        }
        // Wire-by-wire widening cannot move modules between groups, so a
        // from-scratch re-pack of the site at the full budget can still
        // convert channels into test time; keep it only if it wins.
        std::optional<Architecture> repacked =
            repack_for_budget(engine, cell.ate.vector_memory_depth, budget,
                              incumbent.test_cycles());
        if (repacked) {
            incumbent = std::move(*repacked);
        }
        if (snapshots.empty() || repacked || incumbent.total_wires() != wires_before) {
            snapshots.push_back(incumbent);
            snapshot_from.push_back(i);
        }
        shapes[i] = {incumbent.channels(), incumbent.test_cycles()};
    }

    // The throughput model is independent per site point once the
    // shapes are fixed; evaluate the whole curve concurrently. Each
    // point is a handful of closed-form evaluations, so the fan-out only
    // pays for long curves on a pool with real workers — gating it
    // changes wall time, never results (each slot is written once).
    Step2Result result{0, step1.architecture, {}, {}};
    result.curve.resize(count);
    std::vector<ThroughputResult> throughputs(count);
    const bool fan_out = count >= 256 && Executor::global().worker_count() >= 2;
    parallel_for_index(count, fan_out ? engine.parallel_cap() : 1, [&](std::size_t i) {
        throughputs[i] = evaluate_shape(sites[i], shapes[i], cell, options);
        result.curve[i] = make_point(sites[i], shapes[i], cell, throughputs[i], options.retest);
    });

    // Deterministic reduction in descending-n order: strict improvement
    // keeps the earlier (larger) n on ties, exactly like the sequential
    // scan.
    DevicesPerHour best = -1.0;
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const DevicesPerHour merit = result.curve[i].figure_of_merit;
        if (merit > best) {
            best = merit;
            best_index = i;
            result.best_sites = sites[i];
            result.best_throughput = throughputs[i];
        }
    }
    // Recover the winning architecture: the last snapshot at or before
    // the winning point.
    std::size_t snapshot = 0;
    for (std::size_t s = 0; s < snapshot_from.size(); ++s) {
        if (snapshot_from[s] <= best_index) {
            snapshot = s;
        }
    }
    if (!snapshots.empty()) {
        result.best_architecture = std::move(snapshots[snapshot]);
    }
    return result;
}

Step2Result run_step2(const Step1Result& step1,
                      const TestCell& cell,
                      const OptimizeOptions& options)
{
    PackEngine engine(step1.architecture.tables(), options);
    return run_step2(engine, step1, cell);
}

} // namespace mst
