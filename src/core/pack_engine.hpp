// Memoized, parallel driver of the Step-1 greedy packing.
//
// Step 1's criterion-1 budget search and Step 2's re-pack fallback both
// query the greedy many times with repeating (virtual depth, wire
// budget) pairs. PackEngine answers those queries through three layers:
//
//   * memoization — per depth: minimal widths, module orders, and the
//     per-depth area floor; per (depth, budget): the packed architecture
//     (or infeasibility). Pure caching, byte-identical results
//     (tests/golden_fingerprint_test.cpp), off via OptimizeOptions::memoize.
//   * pruning — a (depth, budget) query whose per-depth area floor
//     (sum of each module's minimum width*time rectangle at its minimal
//     width, see ModuleTimeTable::min_area_from) exceeds budget * depth
//     provably has no packing, so it is answered infeasible without
//     running a single greedy pass.
//   * parallelism — pack_batch() evaluates many queries at once: distinct
//     misses fan out across the global executor, and inside one miss the
//     (module order x expansion policy) passes run in adaptive waves
//     (1,1,2,4,8,...) with a lowest-index winner, so a pass that would
//     have won the sequential scan always wins here too.
//
// Determinism: the task schedule depends only on the queries and the
// options — never on thread count or timing. The memo and the work
// counters are updated by the coordinating thread in query order, so
// solutions AND stats are identical at any OptimizeOptions::threads.
// pack_within()/pack_batch() must be called from one coordinating thread
// per engine; internal fan-out is managed by the engine itself.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "arch/architecture.hpp"
#include "core/pack_stats.hpp"
#include "core/problem.hpp"

namespace mst {

/// One greedy-packing query: fit every module within `depth` using at
/// most `budget` wires.
struct PackQuery {
    CycleCount depth = 0;
    WireCount budget = 0;
};

/// Adaptive wave extent shared by every candidate scan of the search
/// (Step-1 fraction sweeps, Step-2 re-pack depth scans, the engine's
/// order x policy passes): 1, 1, 2, 4, then 8 per wave. The first waves
/// mirror the sequential scan exactly (no wasted work when the winner
/// sits early, the overwhelmingly common case); later waves open enough
/// parallelism to cover deep scans while over-evaluating at most one
/// wave beyond the sequential stop. One definition on purpose: the
/// schedule is determinism- and stats-sensitive, so every scan must
/// grow the same way.
[[nodiscard]] constexpr std::size_t pack_wave_extent(int wave) noexcept
{
    switch (wave) {
    case 0: return 1;
    case 1: return 1;
    case 2: return 2;
    case 3: return 4;
    default: return 8;
    }
}

/// Reusable per-pass buffers (architecture with pooled groups, expansion
/// alternatives). One greedy pass checks a scratch out of the engine's
/// pool, builds into it, and returns it — repeated passes and wave
/// probes stop churning the allocator. Defined in pack_engine.cpp.
struct PackScratch;

/// One optimization run's packing context: time tables + options + caches.
class PackEngine {
public:
    PackEngine(const SocTimeTables& tables, const OptimizeOptions& options);
    ~PackEngine();

    [[nodiscard]] const SocTimeTables& tables() const noexcept { return *tables_; }
    [[nodiscard]] const OptimizeOptions& options() const noexcept { return options_; }

    /// Snapshot of the work counters (atomics internally, so parallel
    /// passes can count; the totals are deterministic because the task
    /// schedule is).
    [[nodiscard]] PackStats stats() const noexcept;

    /// Concurrency cap for this run: OptimizeOptions::threads, where
    /// <= 0 means "whatever the global executor offers".
    [[nodiscard]] int parallel_cap() const noexcept { return options_.threads; }

    /// Try to pack every module into at most `wire_budget` wires with
    /// every group fill within `depth`. Returns nullopt when no pass
    /// fits. Single-query form of pack_batch().
    [[nodiscard]] std::optional<Architecture> pack_within(CycleCount depth,
                                                          WireCount wire_budget);

    /// Evaluate every query; results[i] always matches queries[i].
    /// Distinct uncached queries are computed concurrently on the global
    /// executor (duplicates within one batch count as cache hits, like
    /// the equivalent sequence of pack_within calls would).
    [[nodiscard]] std::vector<std::optional<Architecture>> pack_batch(
        const std::vector<PackQuery>& queries);

private:
    /// Everything about one virtual depth that is budget-independent.
    struct DepthProfile {
        /// Per-module minimal widths, or nullopt when some module fits no
        /// width within the depth (the whole depth is then infeasible).
        std::optional<std::vector<WireCount>> min_widths;
        WireCount widest = 0;
        /// Sum of per-module minimum areas at their minimal widths: no
        /// packing within this depth can occupy fewer wire-cycles.
        CycleCount area_floor = 0;
        /// Lazily built by-min-width module order (the only depth-
        /// dependent kind); guarded by orders_mutex_ (parallel passes
        /// share profiles). Depth-independent orders live engine-wide in
        /// shared_orders_.
        std::map<ModuleOrder, std::vector<int>> orders;
    };

    [[nodiscard]] DepthProfile make_profile(CycleCount depth);
    [[nodiscard]] const std::vector<int>& order_for(DepthProfile& profile, ModuleOrder order);
    [[nodiscard]] const std::vector<int>& shared_order_locked(ModuleOrder order);
    [[nodiscard]] std::optional<Architecture> pack_uncached(CycleCount depth,
                                                            WireCount wire_budget,
                                                            DepthProfile& profile);

    /// Check a scratch out of the pool (or make a fresh one) / hand it
    /// back. Scratches carry no logical state across passes, so which
    /// pass gets which scratch never affects results.
    [[nodiscard]] std::unique_ptr<PackScratch> acquire_scratch();
    void release_scratch(std::unique_ptr<PackScratch> scratch);

    const SocTimeTables* tables_;
    OptimizeOptions options_;

    std::atomic<std::int64_t> pack_calls_{0};
    std::atomic<std::int64_t> pack_cache_hits_{0};
    std::atomic<std::int64_t> greedy_passes_{0};
    std::atomic<std::int64_t> depth_profiles_{0};
    std::atomic<std::int64_t> pruned_packs_{0};

    std::mutex orders_mutex_;
    /// Depth-independent module orders (by_volume, by_time, input_order),
    /// built once per engine; by_min_width depends on the per-depth
    /// minimal widths and lives in each DepthProfile. Guarded by
    /// orders_mutex_; map nodes are stable, so references handed to
    /// parallel passes stay valid.
    std::map<ModuleOrder, std::vector<int>> shared_orders_;

    std::mutex scratch_mutex_;
    std::vector<std::unique_ptr<PackScratch>> scratch_pool_;

    /// Coordinator-mutated only; parallel tasks receive stable node
    /// pointers resolved before each fan-out.
    std::map<CycleCount, DepthProfile> profiles_;
    std::map<std::pair<CycleCount, WireCount>, std::optional<Architecture>> packs_;
};

} // namespace mst
