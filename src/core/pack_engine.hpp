// Memoized driver of the Step-1 greedy packing.
//
// Step 1's criterion-1 budget search and Step 2's re-pack fallback both
// call the greedy many times with repeating (virtual depth, wire budget)
// pairs: the budget search revisits every virtual depth as the budget
// grows, and the Step-2 site loop re-scans the same virtual depths while
// the per-site budget stays constant across consecutive n. The seed
// recomputed every per-module minimal width, module order, and greedy
// pass from scratch on each call; PackEngine caches
//   * per depth: the minimal-width vector and the sorted module orders,
//   * per (depth, budget): the packed architecture (or infeasibility),
// so repeated queries are answered without re-running the greedy.
// Caching is pure memoization — results are byte-identical to the
// uncached path (tests/golden_fingerprint_test.cpp) — and can be turned
// off through OptimizeOptions::memoize for baseline measurements.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "arch/architecture.hpp"
#include "core/pack_stats.hpp"
#include "core/problem.hpp"

namespace mst {

/// One optimization run's packing context: time tables + options + caches.
class PackEngine {
public:
    PackEngine(const SocTimeTables& tables, const OptimizeOptions& options);

    [[nodiscard]] const SocTimeTables& tables() const noexcept { return *tables_; }
    [[nodiscard]] const OptimizeOptions& options() const noexcept { return options_; }
    [[nodiscard]] const PackStats& stats() const noexcept { return stats_; }

    /// Try to pack every module into at most `wire_budget` wires with
    /// every group fill within `depth`, running the greedy pass under all
    /// module orders and expansion policies. Returns nullopt when no pass
    /// fits.
    [[nodiscard]] std::optional<Architecture> pack_within(CycleCount depth,
                                                          WireCount wire_budget);

private:
    /// Everything about one virtual depth that is budget-independent.
    struct DepthProfile {
        /// Per-module minimal widths, or nullopt when some module fits no
        /// width within the depth (the whole depth is then infeasible).
        std::optional<std::vector<WireCount>> min_widths;
        WireCount widest = 0;
        /// Lazily sorted module orders, one per ModuleOrder kind.
        std::map<ModuleOrder, std::vector<int>> orders;
    };

    [[nodiscard]] DepthProfile make_profile(CycleCount depth);
    [[nodiscard]] const std::vector<int>& order_for(DepthProfile& profile, ModuleOrder order);
    [[nodiscard]] std::optional<Architecture> pack_uncached(CycleCount depth,
                                                            WireCount wire_budget,
                                                            DepthProfile& profile);

    const SocTimeTables* tables_;
    OptimizeOptions options_;
    PackStats stats_;
    std::map<CycleCount, DepthProfile> profiles_;
    std::map<std::pair<CycleCount, WireCount>, std::optional<Architecture>> packs_;
};

} // namespace mst
