// Solution of the two-step optimization: the designed test
// infrastructure plus the throughput numbers of Section 4.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/architecture.hpp"
#include "ate/ate.hpp"
#include "common/types.hpp"
#include "core/pack_stats.hpp"
#include "throughput/model.hpp"
#include "wrapper/erpct.hpp"

namespace mst {

/// Work counters of one optimization run, for the perf harness. Not
/// part of the solution JSON (cache hit counts legitimately differ
/// between memoized and from-scratch runs that produce identical
/// solutions).
struct OptimizerStats {
    PackStats packing;            ///< Step-1/Step-2 packing work
    std::int64_t site_points = 0; ///< Step-2 site curve points evaluated
    /// Resolved concurrency cap of the run (OptimizeOptions::threads,
    /// with <= 0 resolved to the shared executor's width). Purely
    /// informational: results and the other counters do not depend on it.
    int threads = 0;
};

/// Snapshot of one channel group, detached from the internal tables so a
/// Solution owns its data.
struct GroupSummary {
    WireCount wires = 0;
    ChannelCount channels = 0;
    CycleCount fill = 0;
    std::vector<std::string> module_names;
};

/// Outcome of the optional exact branch-and-bound pass over the Step-1
/// question (minimum wires within the ATE memory depth), seeded from
/// the greedy architecture. `wires <= greedy_wires` always; when
/// `certified` the gap is a proven optimality gap, otherwise it is only
/// the best the node budget allowed.
struct ExactSummary {
    WireCount wires = 0;        ///< best exact-search wires
    WireCount greedy_wires = 0; ///< Step-1 wires it was seeded with
    WireCount gap = 0;          ///< greedy_wires - wires
    std::int64_t nodes_explored = 0;
    bool certified = false;     ///< search exhausted the pruned tree
    std::vector<std::vector<std::string>> groups; ///< module names per exact group
};

/// One point of the sites -> throughput curve (the x-axis of Figure 5).
struct SitePoint {
    SiteCount sites = 0;
    ChannelCount channels_per_site = 0;
    CycleCount test_cycles = 0;
    Seconds manufacturing_time = 0;
    DevicesPerHour devices_per_hour = 0;
    DevicesPerHour unique_devices_per_hour = 0;
    DevicesPerHour figure_of_merit = 0;
};

/// Result of optimize_multi_site(): the optimal site count, the per-site
/// test architecture, the E-RPCT wrapper parameters, and the full search
/// trace for plotting.
struct Solution {
    std::string soc_name;

    // Optimal operating point.
    SiteCount sites = 0;                 ///< n_opt
    ChannelCount channels_per_site = 0;  ///< k at n_opt
    CycleCount test_cycles = 0;          ///< SOC test length at n_opt
    Seconds manufacturing_time = 0;      ///< t_m at n_opt
    ThroughputResult throughput;         ///< model outputs at n_opt
    ErpctSpec erpct;                     ///< chip-level wrapper at n_opt
    std::vector<GroupSummary> groups;    ///< per-site TAM architecture at n_opt

    // Step-1 diagnostics.
    ChannelCount channels_step1 = 0;     ///< minimal k found by Step 1
    SiteCount max_sites_step1 = 0;       ///< n_max for that k

    // Full linear-search trace of Step 2 (n = n_max .. 1).
    std::vector<SitePoint> site_curve;

    // Exact certification of Step 1 (set only with OptimizeOptions::exact).
    std::optional<ExactSummary> exact;

    // Search-effort counters (see OptimizerStats).
    OptimizerStats stats;

    /// Devices/hour (or unique devices/hour under the re-test policy)
    /// at the optimum.
    [[nodiscard]] DevicesPerHour best_throughput() const noexcept
    {
        return best_figure_of_merit_;
    }

    /// Set by the optimizer.
    DevicesPerHour best_figure_of_merit_ = 0;
};

/// Cross-check a solution against the problem constraints (Section 5:
/// n*k <= K [or the broadcast variant], fill <= D, every module wrapped).
/// Throws ValidationError on violation.
void validate_solution(const Solution& solution, const Soc& soc, const AteSpec& ate,
                       BroadcastMode broadcast);

} // namespace mst
