#include "core/pack_engine.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "arch/channel_group.hpp"

namespace mst {

namespace {

/// Modules sorted by the configured key; the paper sorts by decreasing
/// minimal width, with deterministic tie-breaking on volume then index.
std::vector<int> module_order(const SocTimeTables& tables,
                              const std::vector<WireCount>& min_widths,
                              ModuleOrder order)
{
    std::vector<int> indices(static_cast<std::size_t>(tables.module_count()));
    std::iota(indices.begin(), indices.end(), 0);
    const Soc& soc = tables.soc();

    const auto volume = [&soc](int m) { return soc.module(m).test_data_volume_bits(); };
    const auto single_wire_time = [&tables](int m) { return tables.table(m).time(1); };

    switch (order) {
    case ModuleOrder::by_min_width:
        std::stable_sort(indices.begin(), indices.end(), [&](int a, int b) {
            const auto wa = min_widths[static_cast<std::size_t>(a)];
            const auto wb = min_widths[static_cast<std::size_t>(b)];
            if (wa != wb) {
                return wa > wb;
            }
            return volume(a) > volume(b);
        });
        break;
    case ModuleOrder::by_volume:
        std::stable_sort(indices.begin(), indices.end(),
                         [&](int a, int b) { return volume(a) > volume(b); });
        break;
    case ModuleOrder::by_time:
        std::stable_sort(indices.begin(), indices.end(), [&](int a, int b) {
            return single_wire_time(a) > single_wire_time(b);
        });
        break;
    case ModuleOrder::input_order:
        break;
    }
    return indices;
}

/// Try to place a module on an existing group without widening.
/// Returns the chosen group index, or nullopt.
std::optional<std::size_t> pick_existing_group(const Architecture& arch,
                                               int module_index,
                                               CycleCount depth,
                                               GroupSelectPolicy policy)
{
    std::optional<std::size_t> best;
    CycleCount best_fill = std::numeric_limits<CycleCount>::max();
    for (std::size_t g = 0; g < arch.groups().size(); ++g) {
        const CycleCount fill = arch.groups()[g].fill_with(module_index);
        if (fill > depth) {
            continue;
        }
        if (policy == GroupSelectPolicy::first_fit) {
            return g;
        }
        if (fill < best_fill) {
            best_fill = fill;
            best = g;
        }
    }
    return best;
}

/// One expansion alternative: either a new group (group == nullopt) or a
/// widening of an existing group, always by `added_wires`.
struct Expansion {
    std::optional<std::size_t> group;
    WireCount added_wires = 0;
    CycleCount resulting_total_fill = 0;
};

/// Enumerate the feasible alternatives of Fig. 4(c) for placing
/// `module_index`, under the configured expansion policy.
std::vector<Expansion> enumerate_expansions(const Architecture& arch,
                                            const SocTimeTables& tables,
                                            int module_index,
                                            WireCount min_width,
                                            CycleCount depth,
                                            WireCount wire_budget,
                                            ExpansionPolicy policy)
{
    std::vector<Expansion> expansions;
    const WireCount head_room = wire_budget - arch.total_wires();
    CycleCount current_fill = 0;
    for (const ChannelGroup& group : arch.groups()) {
        current_fill += group.fill();
    }

    // Alternative (i): a brand-new group at the module's minimal width.
    if (min_width <= head_room) {
        Expansion fresh;
        fresh.added_wires = min_width;
        fresh.resulting_total_fill = current_fill + tables.table(module_index).time(min_width);
        expansions.push_back(fresh);
    }
    if (policy == ExpansionPolicy::always_new_group) {
        return expansions;
    }

    // Alternatives (ii)...: widen an existing group.
    for (std::size_t g = 0; g < arch.groups().size(); ++g) {
        const ChannelGroup& group = arch.groups()[g];
        WireCount delta = 0;
        if (policy == ExpansionPolicy::widen_by_kmin) {
            // Paper: every alternative adds exactly k_min(module) wires.
            delta = min_width;
            if (delta > head_room) {
                continue;
            }
            const WireCount new_width = group.width() + delta;
            const CycleCount fill = group.fill_at_width(new_width) +
                                    tables.table(module_index).time(new_width);
            if (fill > depth) {
                continue;
            }
        } else { // ExpansionPolicy::min_widening
            delta = group.min_widening_for(module_index, depth, head_room);
            if (delta == 0) {
                continue;
            }
        }
        const WireCount new_width = group.width() + delta;
        Expansion widened;
        widened.group = g;
        widened.added_wires = delta;
        widened.resulting_total_fill = current_fill - group.fill() +
                                       group.fill_at_width(new_width) +
                                       tables.table(module_index).time(new_width);
        expansions.push_back(widened);
    }
    return expansions;
}

/// Paper's selection: with equal added channels, the smallest total fill
/// leaves the most free memory. With unequal added wires (min_widening
/// ablation) compare free memory directly.
const Expansion& select_expansion(const std::vector<Expansion>& expansions,
                                  CycleCount depth)
{
    const auto free_memory = [depth](const Expansion& e) {
        return depth * e.added_wires - e.resulting_total_fill;
    };
    const Expansion* best = &expansions.front();
    for (const Expansion& candidate : expansions) {
        if (free_memory(candidate) > free_memory(*best)) {
            best = &candidate;
        } else if (free_memory(candidate) == free_memory(*best) &&
                   candidate.added_wires < best->added_wires) {
            best = &candidate;
        }
    }
    return *best;
}

/// One greedy Step-1 pass under an explicit wire budget. Returns nullopt
/// when the budget is too tight for this pass.
std::optional<Architecture> step1_pass(const SocTimeTables& tables,
                                       CycleCount depth,
                                       WireCount wire_budget,
                                       const std::vector<WireCount>& min_widths,
                                       const std::vector<int>& order,
                                       const OptimizeOptions& options)
{
    Architecture arch(tables);
    for (const int module_index : order) {
        const WireCount min_width = min_widths[static_cast<std::size_t>(module_index)];
        if (arch.groups().empty()) {
            if (min_width > wire_budget) {
                return std::nullopt;
            }
            arch.groups().emplace_back(min_width, tables);
            arch.groups().back().add_module(module_index);
            continue;
        }
        const std::optional<std::size_t> existing =
            pick_existing_group(arch, module_index, depth, options.group_select);
        if (existing) {
            arch.groups()[*existing].add_module(module_index);
            continue;
        }
        std::vector<Expansion> expansions = enumerate_expansions(
            arch, tables, module_index, min_width, depth, wire_budget, options.expansion);
        if (expansions.empty() && options.expansion == ExpansionPolicy::widen_by_kmin) {
            // Budget pressure: the paper's fixed k_min widening no longer
            // fits the remaining channels, but a smaller widening might.
            expansions = enumerate_expansions(arch, tables, module_index, min_width, depth,
                                              wire_budget, ExpansionPolicy::min_widening);
        }
        if (expansions.empty()) {
            return std::nullopt;
        }
        const Expansion& chosen = select_expansion(expansions, depth);
        if (chosen.group) {
            ChannelGroup& group = arch.groups()[*chosen.group];
            group.widen(chosen.added_wires);
            group.add_module(module_index);
        } else {
            arch.groups().emplace_back(chosen.added_wires, tables);
            arch.groups().back().add_module(module_index);
        }
    }
    return arch;
}

} // namespace

PackEngine::PackEngine(const SocTimeTables& tables, const OptimizeOptions& options)
    : tables_(&tables), options_(options)
{
}

PackEngine::DepthProfile PackEngine::make_profile(CycleCount depth)
{
    ++stats_.depth_profiles;
    DepthProfile profile;
    std::vector<WireCount> min_widths(static_cast<std::size_t>(tables_->module_count()));
    for (int m = 0; m < tables_->module_count(); ++m) {
        const std::optional<WireCount> width = tables_->table(m).min_width_for(depth);
        if (!width) {
            return profile; // min_widths stays nullopt: depth infeasible
        }
        min_widths[static_cast<std::size_t>(m)] = *width;
        profile.widest = std::max(profile.widest, *width);
    }
    profile.min_widths = std::move(min_widths);
    return profile;
}

const std::vector<int>& PackEngine::order_for(DepthProfile& profile, ModuleOrder order)
{
    auto found = profile.orders.find(order);
    if (found == profile.orders.end()) {
        found = profile.orders
                    .emplace(order, module_order(*tables_, *profile.min_widths, order))
                    .first;
    }
    return found->second;
}

std::optional<Architecture> PackEngine::pack_uncached(CycleCount depth,
                                                      WireCount wire_budget,
                                                      DepthProfile& profile)
{
    if (!profile.min_widths || profile.widest > wire_budget) {
        return std::nullopt;
    }

    std::vector<ModuleOrder> orders = {options_.module_order};
    std::vector<ExpansionPolicy> expansions = {options_.expansion};
    if (options_.budget_search) {
        for (const ModuleOrder fallback :
             {ModuleOrder::by_min_width, ModuleOrder::by_volume, ModuleOrder::by_time}) {
            if (fallback != options_.module_order) {
                orders.push_back(fallback);
            }
        }
        for (const ExpansionPolicy fallback :
             {ExpansionPolicy::widen_by_kmin, ExpansionPolicy::min_widening,
              ExpansionPolicy::always_new_group}) {
            if (fallback != options_.expansion) {
                expansions.push_back(fallback);
            }
        }
    }

    for (const ModuleOrder order_kind : orders) {
        const std::vector<int>& order = order_for(profile, order_kind);
        for (const ExpansionPolicy expansion : expansions) {
            OptimizeOptions pass_options = options_;
            pass_options.expansion = expansion;
            ++stats_.greedy_passes;
            std::optional<Architecture> packed = step1_pass(*tables_, depth, wire_budget,
                                                            *profile.min_widths, order,
                                                            pass_options);
            if (packed) {
                return packed;
            }
        }
    }
    return std::nullopt;
}

std::optional<Architecture> PackEngine::pack_within(CycleCount depth, WireCount wire_budget)
{
    ++stats_.pack_calls;
    if (!options_.memoize) {
        DepthProfile fresh = make_profile(depth);
        return pack_uncached(depth, wire_budget, fresh);
    }

    const auto key = std::make_pair(depth, wire_budget);
    const auto cached = packs_.find(key);
    if (cached != packs_.end()) {
        ++stats_.pack_cache_hits;
        return cached->second;
    }

    auto profile = profiles_.find(depth);
    if (profile == profiles_.end()) {
        profile = profiles_.emplace(depth, make_profile(depth)).first;
    }
    std::optional<Architecture> packed = pack_uncached(depth, wire_budget, profile->second);
    packs_.emplace(key, packed);
    return packed;
}

} // namespace mst
