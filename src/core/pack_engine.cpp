#include "core/pack_engine.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "arch/channel_group.hpp"
#include "common/executor.hpp"

namespace mst {

/// One expansion alternative: either a new group (group == nullopt) or a
/// widening of an existing group, always by `added_wires`. Lives in the
/// mst namespace (not an anonymous one) so PackScratch can carry a
/// buffer of them; still private to this translation unit in spirit.
struct PackExpansion {
    std::optional<std::size_t> group;
    WireCount added_wires = 0;
    CycleCount resulting_total_fill = 0;
};

struct PackScratch {
    explicit PackScratch(const SocTimeTables& tables) : arch(tables) {}

    /// The pass builds here; reset() between passes retires groups into
    /// the architecture's spare pool instead of freeing them.
    Architecture arch;
    std::vector<PackExpansion> expansions;
};

namespace {

/// Modules sorted by the configured key; the paper sorts by decreasing
/// minimal width, with deterministic tie-breaking on volume then index.
/// Only the depth-independent kinds are built here — by_min_width is
/// derived from the by_volume order via a counting sort (see
/// order_by_min_width), so the O(n log n) comparison sorts run once per
/// engine instead of once per depth profile.
std::vector<int> module_order(const SocTimeTables& tables, ModuleOrder order)
{
    const auto count = static_cast<std::size_t>(tables.module_count());
    std::vector<int> indices(count);
    std::iota(indices.begin(), indices.end(), 0);

    switch (order) {
    case ModuleOrder::by_volume:
        std::stable_sort(indices.begin(), indices.end(), [&](int a, int b) {
            return tables.volume_bits(a) > tables.volume_bits(b);
        });
        break;
    case ModuleOrder::by_time:
        std::stable_sort(indices.begin(), indices.end(), [&](int a, int b) {
            return tables.time(a, 1) > tables.time(b, 1);
        });
        break;
    case ModuleOrder::input_order:
        break;
    case ModuleOrder::by_min_width:
        break; // handled per depth by order_by_min_width
    }
    return indices;
}

/// The by_min_width order of one depth: decreasing minimal width, ties
/// by decreasing volume then index. Since `volume_order` is already
/// (volume desc, index asc), a stable counting sort on the width key
/// yields exactly what stable_sort over the two-key comparator did —
/// in O(n + widest) instead of O(n log n) per depth.
std::vector<int> order_by_min_width(const std::vector<WireCount>& min_widths,
                                    WireCount widest,
                                    const std::vector<int>& volume_order)
{
    // Bucket start positions: wider buckets first.
    std::vector<std::size_t> starts(static_cast<std::size_t>(widest) + 2, 0);
    for (const WireCount width : min_widths) {
        ++starts[static_cast<std::size_t>(width)];
    }
    std::size_t position = 0;
    for (WireCount width = widest; width >= 1; --width) {
        const std::size_t bucket = starts[static_cast<std::size_t>(width)];
        starts[static_cast<std::size_t>(width)] = position;
        position += bucket;
    }
    std::vector<int> indices(min_widths.size());
    for (const int module_index : volume_order) {
        const WireCount width = min_widths[static_cast<std::size_t>(module_index)];
        indices[starts[static_cast<std::size_t>(width)]++] = module_index;
    }
    return indices;
}

/// Try to place a module on an existing group without widening.
/// Returns the chosen group index, or nullopt. Scans the architecture's
/// dense fill/width mirrors — the single hottest loop of a greedy pass.
std::optional<std::size_t> pick_existing_group(const Architecture& arch,
                                               const SocTimeTables& tables,
                                               int module_index,
                                               CycleCount depth,
                                               GroupSelectPolicy policy)
{
    const std::vector<CycleCount>& fills = arch.group_fills();
    const std::vector<WireCount>& widths = arch.group_widths();
    const SocTimeTables::TimeRow row = tables.time_row(module_index);
    std::optional<std::size_t> best;
    CycleCount best_fill = std::numeric_limits<CycleCount>::max();
    for (std::size_t g = 0; g < fills.size(); ++g) {
        const CycleCount fill = fills[g] + row.at_width(widths[g]);
        if (fill > depth) {
            continue;
        }
        if (policy == GroupSelectPolicy::first_fit) {
            return g;
        }
        if (fill < best_fill) {
            best_fill = fill;
            best = g;
        }
    }
    return best;
}

/// Enumerate the feasible alternatives of Fig. 4(c) for placing
/// `module_index` into `out`, under the configured expansion policy.
/// The architecture's running aggregates make each alternative O(1):
/// no per-module rescans of the group list or the member times.
void enumerate_expansions(const Architecture& arch,
                          const SocTimeTables& tables,
                          int module_index,
                          WireCount min_width,
                          CycleCount depth,
                          WireCount wire_budget,
                          ExpansionPolicy policy,
                          std::vector<PackExpansion>& out)
{
    out.clear();
    const WireCount head_room = wire_budget - arch.total_wires();
    const CycleCount current_fill = arch.total_fill();

    // Alternative (i): a brand-new group at the module's minimal width.
    if (min_width <= head_room) {
        PackExpansion fresh;
        fresh.added_wires = min_width;
        fresh.resulting_total_fill = current_fill + tables.time(module_index, min_width);
        out.push_back(fresh);
    }
    if (policy == ExpansionPolicy::always_new_group) {
        return;
    }

    // Alternatives (ii)...: widen an existing group. The width check
    // runs off the dense mirror; only surviving candidates touch the
    // group object (its fill staircase answers fill_at_width in O(1)
    // amortized).
    const std::vector<CycleCount>& fills = arch.group_fills();
    const std::vector<WireCount>& widths = arch.group_widths();
    const SocTimeTables::TimeRow row = tables.time_row(module_index);
    for (std::size_t g = 0; g < widths.size(); ++g) {
        WireCount delta = 0;
        if (policy == ExpansionPolicy::widen_by_kmin) {
            // Paper: every alternative adds exactly k_min(module) wires.
            delta = min_width;
            if (delta > head_room) {
                continue;
            }
            const WireCount new_width = widths[g] + delta;
            const CycleCount fill = arch.groups()[g].fill_at_width(new_width) +
                                    row.at_width(new_width);
            if (fill > depth) {
                continue;
            }
        } else { // ExpansionPolicy::min_widening
            delta = arch.groups()[g].min_widening_for(module_index, depth, head_room);
            if (delta == 0) {
                continue;
            }
        }
        const WireCount new_width = widths[g] + delta;
        PackExpansion widened;
        widened.group = g;
        widened.added_wires = delta;
        widened.resulting_total_fill = current_fill - fills[g] +
                                       arch.groups()[g].fill_at_width(new_width) +
                                       row.at_width(new_width);
        out.push_back(widened);
    }
}

/// Paper's selection: with equal added channels, the smallest total fill
/// leaves the most free memory. With unequal added wires (min_widening
/// ablation) compare free memory directly.
const PackExpansion& select_expansion(const std::vector<PackExpansion>& expansions,
                                      CycleCount depth)
{
    const auto free_memory = [depth](const PackExpansion& e) {
        return depth * e.added_wires - e.resulting_total_fill;
    };
    const PackExpansion* best = &expansions.front();
    for (const PackExpansion& candidate : expansions) {
        if (free_memory(candidate) > free_memory(*best)) {
            best = &candidate;
        } else if (free_memory(candidate) == free_memory(*best) &&
                   candidate.added_wires < best->added_wires) {
            best = &candidate;
        }
    }
    return *best;
}

/// One greedy Step-1 pass under an explicit wire budget, built inside
/// `scratch` (allocation-free after warm-up). Returns nullopt when the
/// budget is too tight for this pass; on success the packed architecture
/// is copied out of the scratch (copies drop the scratch-only state:
/// spare groups, staircase caches).
std::optional<Architecture> step1_pass(const SocTimeTables& tables,
                                       CycleCount depth,
                                       WireCount wire_budget,
                                       const std::vector<WireCount>& min_widths,
                                       const std::vector<int>& order,
                                       const OptimizeOptions& options,
                                       PackScratch& scratch)
{
    Architecture& arch = scratch.arch;
    arch.reset();
    for (const int module_index : order) {
        const WireCount min_width = min_widths[static_cast<std::size_t>(module_index)];
        if (arch.groups().empty()) {
            if (min_width > wire_budget) {
                return std::nullopt;
            }
            arch.add_module(arch.add_group(min_width), module_index);
            continue;
        }
        const std::optional<std::size_t> existing =
            pick_existing_group(arch, tables, module_index, depth, options.group_select);
        if (existing) {
            arch.add_module(*existing, module_index);
            continue;
        }
        enumerate_expansions(arch, tables, module_index, min_width, depth, wire_budget,
                             options.expansion, scratch.expansions);
        if (scratch.expansions.empty() && options.expansion == ExpansionPolicy::widen_by_kmin) {
            // Budget pressure: the paper's fixed k_min widening no longer
            // fits the remaining channels, but a smaller widening might.
            enumerate_expansions(arch, tables, module_index, min_width, depth, wire_budget,
                                 ExpansionPolicy::min_widening, scratch.expansions);
        }
        if (scratch.expansions.empty()) {
            return std::nullopt;
        }
        const PackExpansion& chosen = select_expansion(scratch.expansions, depth);
        if (chosen.group) {
            arch.widen_group(*chosen.group, chosen.added_wires);
            arch.add_module(*chosen.group, module_index);
        } else {
            arch.add_module(arch.add_group(chosen.added_wires), module_index);
        }
    }
    return arch;
}

/// The (module order, expansion policy) pass combinations of one pack
/// query, in the exact sequential preference order: configured order and
/// policy first, fallbacks after (budget_search only).
struct PassPlan {
    std::vector<ModuleOrder> orders;
    std::vector<ExpansionPolicy> expansions;

    [[nodiscard]] std::size_t count() const noexcept
    {
        return orders.size() * expansions.size();
    }
    [[nodiscard]] ModuleOrder order_of(std::size_t pass) const
    {
        return orders[pass / expansions.size()];
    }
    [[nodiscard]] ExpansionPolicy expansion_of(std::size_t pass) const
    {
        return expansions[pass % expansions.size()];
    }
};

PassPlan make_pass_plan(const OptimizeOptions& options)
{
    PassPlan plan;
    plan.orders = {options.module_order};
    plan.expansions = {options.expansion};
    if (options.budget_search) {
        for (const ModuleOrder fallback :
             {ModuleOrder::by_min_width, ModuleOrder::by_volume, ModuleOrder::by_time}) {
            if (fallback != options.module_order) {
                plan.orders.push_back(fallback);
            }
        }
        for (const ExpansionPolicy fallback :
             {ExpansionPolicy::widen_by_kmin, ExpansionPolicy::min_widening,
              ExpansionPolicy::always_new_group}) {
            if (fallback != options.expansion) {
                plan.expansions.push_back(fallback);
            }
        }
    }
    return plan;
}

} // namespace

PackEngine::PackEngine(const SocTimeTables& tables, const OptimizeOptions& options)
    : tables_(&tables), options_(options)
{
}

PackEngine::~PackEngine() = default;

PackStats PackEngine::stats() const noexcept
{
    PackStats stats;
    stats.pack_calls = pack_calls_.load(std::memory_order_relaxed);
    stats.pack_cache_hits = pack_cache_hits_.load(std::memory_order_relaxed);
    stats.greedy_passes = greedy_passes_.load(std::memory_order_relaxed);
    stats.depth_profiles = depth_profiles_.load(std::memory_order_relaxed);
    stats.pruned_packs = pruned_packs_.load(std::memory_order_relaxed);
    return stats;
}

std::unique_ptr<PackScratch> PackEngine::acquire_scratch()
{
    {
        std::lock_guard<std::mutex> lock(scratch_mutex_);
        if (!scratch_pool_.empty()) {
            std::unique_ptr<PackScratch> scratch = std::move(scratch_pool_.back());
            scratch_pool_.pop_back();
            return scratch;
        }
    }
    return std::make_unique<PackScratch>(*tables_);
}

void PackEngine::release_scratch(std::unique_ptr<PackScratch> scratch)
{
    std::lock_guard<std::mutex> lock(scratch_mutex_);
    scratch_pool_.push_back(std::move(scratch));
}

PackEngine::DepthProfile PackEngine::make_profile(CycleCount depth)
{
    depth_profiles_.fetch_add(1, std::memory_order_relaxed);
    DepthProfile profile;
    std::vector<WireCount> min_widths(static_cast<std::size_t>(tables_->module_count()));
    for (int m = 0; m < tables_->module_count(); ++m) {
        const std::optional<WireCount> width = tables_->min_width_for(m, depth);
        if (!width) {
            return profile; // min_widths stays nullopt: depth infeasible
        }
        min_widths[static_cast<std::size_t>(m)] = *width;
        profile.widest = std::max(profile.widest, *width);
        profile.area_floor += tables_->min_area_from(m, *width);
    }
    profile.min_widths = std::move(min_widths);
    return profile;
}

const std::vector<int>& PackEngine::shared_order_locked(ModuleOrder order)
{
    auto found = shared_orders_.find(order);
    if (found == shared_orders_.end()) {
        found = shared_orders_.emplace(order, module_order(*tables_, order)).first;
    }
    return found->second;
}

const std::vector<int>& PackEngine::order_for(DepthProfile& profile, ModuleOrder order)
{
    // Parallel passes share one profile; the lazy order build is the
    // profile's only mutation after construction, so it is the only
    // place that needs a lock. Order contents are a pure function of
    // (depth, kind) — whichever thread builds one builds the same.
    std::lock_guard<std::mutex> lock(orders_mutex_);
    if (order != ModuleOrder::by_min_width) {
        // Depth-independent kinds are shared across every profile.
        return shared_order_locked(order);
    }
    auto found = profile.orders.find(order);
    if (found == profile.orders.end()) {
        const std::vector<int>& volume_order = shared_order_locked(ModuleOrder::by_volume);
        found = profile.orders
                    .emplace(order, order_by_min_width(*profile.min_widths, profile.widest,
                                                       volume_order))
                    .first;
    }
    return found->second;
}

std::optional<Architecture> PackEngine::pack_uncached(CycleCount depth,
                                                      WireCount wire_budget,
                                                      DepthProfile& profile)
{
    if (!profile.min_widths || profile.widest > wire_budget) {
        return std::nullopt;
    }
    // Area-floor prune: no packing can occupy fewer wire-cycles than the
    // per-depth floor, so a budget below floor / depth is infeasible
    // without running any pass. Sound, hence byte-identical results.
    if (profile.area_floor > static_cast<CycleCount>(wire_budget) * depth) {
        pruned_packs_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }

    const PassPlan plan = make_pass_plan(options_);
    const std::size_t passes = plan.count();
    const auto run_pass = [&](std::size_t pass) -> std::optional<Architecture> {
        OptimizeOptions pass_options = options_;
        pass_options.expansion = plan.expansion_of(pass);
        greedy_passes_.fetch_add(1, std::memory_order_relaxed);
        const std::vector<int>& order = order_for(profile, plan.order_of(pass));
        std::unique_ptr<PackScratch> scratch = acquire_scratch();
        std::optional<Architecture> packed = step1_pass(
            *tables_, depth, wire_budget, *profile.min_widths, order, pass_options, *scratch);
        release_scratch(std::move(scratch));
        return packed;
    };

    // Adaptive waves over the pass combinations: the winner is always
    // the lowest feasible pass index — the pass the sequential scan
    // would have kept — regardless of thread count.
    std::size_t begin = 0;
    for (int wave = 0; begin < passes; ++wave) {
        const std::size_t end = std::min(passes, begin + pack_wave_extent(wave));
        const std::size_t width = end - begin;
        if (width == 1) {
            std::optional<Architecture> packed = run_pass(begin);
            if (packed) {
                return packed;
            }
        } else {
            std::vector<std::optional<Architecture>> results(width);
            parallel_for_index(width, parallel_cap(), [&](std::size_t i) {
                results[i] = run_pass(begin + i);
            });
            for (std::size_t i = 0; i < width; ++i) {
                if (results[i]) {
                    return std::move(results[i]);
                }
            }
        }
        begin = end;
    }
    return std::nullopt;
}

std::optional<Architecture> PackEngine::pack_within(CycleCount depth, WireCount wire_budget)
{
    // Single-query path without the batch staging: identical stats and
    // results, no vector/map churn on the hot small-SOC cases.
    pack_calls_.fetch_add(1, std::memory_order_relaxed);
    if (!options_.memoize) {
        DepthProfile fresh = make_profile(depth);
        return pack_uncached(depth, wire_budget, fresh);
    }
    const auto key = std::make_pair(depth, wire_budget);
    const auto cached = packs_.find(key);
    if (cached != packs_.end()) {
        pack_cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cached->second;
    }
    auto profile = profiles_.find(depth);
    if (profile == profiles_.end()) {
        profile = profiles_.emplace(depth, make_profile(depth)).first;
    }
    std::optional<Architecture> packed = pack_uncached(depth, wire_budget, profile->second);
    packs_.emplace(key, packed);
    return packed;
}

std::vector<std::optional<Architecture>> PackEngine::pack_batch(
    const std::vector<PackQuery>& queries)
{
    std::vector<std::optional<Architecture>> results(queries.size());
    if (queries.empty()) {
        return results;
    }
    if (queries.size() == 1) {
        results[0] = pack_within(queries[0].depth, queries[0].budget);
        return results;
    }
    pack_calls_.fetch_add(static_cast<std::int64_t>(queries.size()),
                          std::memory_order_relaxed);

    if (!options_.memoize) {
        // From-scratch mode: every query profiles its depth and runs the
        // passes on its own, exactly like the equivalent sequence of
        // uncached pack_within calls.
        parallel_for_index(queries.size(), parallel_cap(), [&](std::size_t i) {
            DepthProfile profile = make_profile(queries[i].depth);
            results[i] = pack_uncached(queries[i].depth, queries[i].budget, profile);
        });
        return results;
    }

    // Phase 1 (coordinator): answer memo hits, dedupe the misses. A
    // duplicate of an earlier miss in the same batch counts as a hit —
    // the equivalent pack_within sequence would have found it memoized.
    using Key = std::pair<CycleCount, WireCount>;
    std::vector<std::size_t> compute;          // query index of each distinct miss
    std::map<Key, std::size_t> first_miss;     // key -> index into `compute`
    std::vector<std::pair<std::size_t, std::size_t>> aliases; // query -> compute slot
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const Key key{queries[i].depth, queries[i].budget};
        const auto cached = packs_.find(key);
        if (cached != packs_.end()) {
            pack_cache_hits_.fetch_add(1, std::memory_order_relaxed);
            results[i] = cached->second;
            continue;
        }
        const auto seen = first_miss.find(key);
        if (seen != first_miss.end()) {
            pack_cache_hits_.fetch_add(1, std::memory_order_relaxed);
            aliases.emplace_back(i, seen->second);
            continue;
        }
        first_miss.emplace(key, compute.size());
        compute.push_back(i);
    }
    if (compute.empty()) {
        return results;
    }

    // Phase 2 (coordinator + pool): profiles for depths not seen before,
    // built concurrently, inserted into the map in deterministic order
    // before any pack task can read them.
    std::vector<CycleCount> missing_depths;
    for (const std::size_t i : compute) {
        const CycleCount depth = queries[i].depth;
        if (profiles_.find(depth) == profiles_.end() &&
            std::find(missing_depths.begin(), missing_depths.end(), depth) ==
                missing_depths.end()) {
            missing_depths.push_back(depth);
        }
    }
    if (!missing_depths.empty()) {
        std::vector<DepthProfile> built(missing_depths.size());
        parallel_for_index(missing_depths.size(), parallel_cap(), [&](std::size_t i) {
            built[i] = make_profile(missing_depths[i]);
        });
        for (std::size_t i = 0; i < missing_depths.size(); ++i) {
            profiles_.emplace(missing_depths[i], std::move(built[i]));
        }
    }

    // Phase 3 (pool): the distinct misses, each a serial-pass-semantics
    // pack over a stable profile node.
    std::vector<DepthProfile*> profiles(compute.size());
    for (std::size_t j = 0; j < compute.size(); ++j) {
        profiles[j] = &profiles_.at(queries[compute[j]].depth);
    }
    std::vector<std::optional<Architecture>> computed(compute.size());
    parallel_for_index(compute.size(), parallel_cap(), [&](std::size_t j) {
        const PackQuery& query = queries[compute[j]];
        computed[j] = pack_uncached(query.depth, query.budget, *profiles[j]);
    });

    // Phase 4 (coordinator): publish to the memo in query order, then
    // fill the answer slots.
    for (std::size_t j = 0; j < compute.size(); ++j) {
        const PackQuery& query = queries[compute[j]];
        packs_.emplace(Key{query.depth, query.budget}, computed[j]);
        results[compute[j]] = std::move(computed[j]);
    }
    for (const auto& [query_index, compute_slot] : aliases) {
        results[query_index] = results[compute[compute_slot]];
    }
    return results;
}

} // namespace mst
