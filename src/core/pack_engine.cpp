#include "core/pack_engine.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "arch/channel_group.hpp"
#include "common/executor.hpp"

namespace mst {

namespace {

/// Modules sorted by the configured key; the paper sorts by decreasing
/// minimal width, with deterministic tie-breaking on volume then index.
std::vector<int> module_order(const SocTimeTables& tables,
                              const std::vector<WireCount>& min_widths,
                              ModuleOrder order)
{
    const auto count = static_cast<std::size_t>(tables.module_count());
    std::vector<int> indices(count);
    std::iota(indices.begin(), indices.end(), 0);
    const Soc& soc = tables.soc();

    // Sort keys materialized once per build: the comparators run
    // O(n log n) times and test_data_volume_bits() walks the scan-chain
    // list on every call.
    const auto volumes_of = [&]() {
        std::vector<std::int64_t> volumes(count);
        for (std::size_t m = 0; m < count; ++m) {
            volumes[m] = soc.module(static_cast<int>(m)).test_data_volume_bits();
        }
        return volumes;
    };

    switch (order) {
    case ModuleOrder::by_min_width: {
        const std::vector<std::int64_t> volumes = volumes_of();
        std::stable_sort(indices.begin(), indices.end(), [&](int a, int b) {
            const auto wa = min_widths[static_cast<std::size_t>(a)];
            const auto wb = min_widths[static_cast<std::size_t>(b)];
            if (wa != wb) {
                return wa > wb;
            }
            return volumes[static_cast<std::size_t>(a)] > volumes[static_cast<std::size_t>(b)];
        });
        break;
    }
    case ModuleOrder::by_volume: {
        const std::vector<std::int64_t> volumes = volumes_of();
        std::stable_sort(indices.begin(), indices.end(), [&](int a, int b) {
            return volumes[static_cast<std::size_t>(a)] > volumes[static_cast<std::size_t>(b)];
        });
        break;
    }
    case ModuleOrder::by_time: {
        std::vector<CycleCount> times(count);
        for (std::size_t m = 0; m < count; ++m) {
            times[m] = tables.table(static_cast<int>(m)).time(1);
        }
        std::stable_sort(indices.begin(), indices.end(), [&](int a, int b) {
            return times[static_cast<std::size_t>(a)] > times[static_cast<std::size_t>(b)];
        });
        break;
    }
    case ModuleOrder::input_order:
        break;
    }
    return indices;
}

/// Try to place a module on an existing group without widening.
/// Returns the chosen group index, or nullopt.
std::optional<std::size_t> pick_existing_group(const Architecture& arch,
                                               int module_index,
                                               CycleCount depth,
                                               GroupSelectPolicy policy)
{
    std::optional<std::size_t> best;
    CycleCount best_fill = std::numeric_limits<CycleCount>::max();
    for (std::size_t g = 0; g < arch.groups().size(); ++g) {
        const CycleCount fill = arch.groups()[g].fill_with(module_index);
        if (fill > depth) {
            continue;
        }
        if (policy == GroupSelectPolicy::first_fit) {
            return g;
        }
        if (fill < best_fill) {
            best_fill = fill;
            best = g;
        }
    }
    return best;
}

/// One expansion alternative: either a new group (group == nullopt) or a
/// widening of an existing group, always by `added_wires`.
struct Expansion {
    std::optional<std::size_t> group;
    WireCount added_wires = 0;
    CycleCount resulting_total_fill = 0;
};

/// Enumerate the feasible alternatives of Fig. 4(c) for placing
/// `module_index`, under the configured expansion policy.
std::vector<Expansion> enumerate_expansions(const Architecture& arch,
                                            const SocTimeTables& tables,
                                            int module_index,
                                            WireCount min_width,
                                            CycleCount depth,
                                            WireCount wire_budget,
                                            ExpansionPolicy policy)
{
    std::vector<Expansion> expansions;
    const WireCount head_room = wire_budget - arch.total_wires();
    CycleCount current_fill = 0;
    for (const ChannelGroup& group : arch.groups()) {
        current_fill += group.fill();
    }

    // Alternative (i): a brand-new group at the module's minimal width.
    if (min_width <= head_room) {
        Expansion fresh;
        fresh.added_wires = min_width;
        fresh.resulting_total_fill = current_fill + tables.table(module_index).time(min_width);
        expansions.push_back(fresh);
    }
    if (policy == ExpansionPolicy::always_new_group) {
        return expansions;
    }

    // Alternatives (ii)...: widen an existing group.
    for (std::size_t g = 0; g < arch.groups().size(); ++g) {
        const ChannelGroup& group = arch.groups()[g];
        WireCount delta = 0;
        if (policy == ExpansionPolicy::widen_by_kmin) {
            // Paper: every alternative adds exactly k_min(module) wires.
            delta = min_width;
            if (delta > head_room) {
                continue;
            }
            const WireCount new_width = group.width() + delta;
            const CycleCount fill = group.fill_at_width(new_width) +
                                    tables.table(module_index).time(new_width);
            if (fill > depth) {
                continue;
            }
        } else { // ExpansionPolicy::min_widening
            delta = group.min_widening_for(module_index, depth, head_room);
            if (delta == 0) {
                continue;
            }
        }
        const WireCount new_width = group.width() + delta;
        Expansion widened;
        widened.group = g;
        widened.added_wires = delta;
        widened.resulting_total_fill = current_fill - group.fill() +
                                       group.fill_at_width(new_width) +
                                       tables.table(module_index).time(new_width);
        expansions.push_back(widened);
    }
    return expansions;
}

/// Paper's selection: with equal added channels, the smallest total fill
/// leaves the most free memory. With unequal added wires (min_widening
/// ablation) compare free memory directly.
const Expansion& select_expansion(const std::vector<Expansion>& expansions,
                                  CycleCount depth)
{
    const auto free_memory = [depth](const Expansion& e) {
        return depth * e.added_wires - e.resulting_total_fill;
    };
    const Expansion* best = &expansions.front();
    for (const Expansion& candidate : expansions) {
        if (free_memory(candidate) > free_memory(*best)) {
            best = &candidate;
        } else if (free_memory(candidate) == free_memory(*best) &&
                   candidate.added_wires < best->added_wires) {
            best = &candidate;
        }
    }
    return *best;
}

/// One greedy Step-1 pass under an explicit wire budget. Returns nullopt
/// when the budget is too tight for this pass.
std::optional<Architecture> step1_pass(const SocTimeTables& tables,
                                       CycleCount depth,
                                       WireCount wire_budget,
                                       const std::vector<WireCount>& min_widths,
                                       const std::vector<int>& order,
                                       const OptimizeOptions& options)
{
    Architecture arch(tables);
    for (const int module_index : order) {
        const WireCount min_width = min_widths[static_cast<std::size_t>(module_index)];
        if (arch.groups().empty()) {
            if (min_width > wire_budget) {
                return std::nullopt;
            }
            arch.groups().emplace_back(min_width, tables);
            arch.groups().back().add_module(module_index);
            continue;
        }
        const std::optional<std::size_t> existing =
            pick_existing_group(arch, module_index, depth, options.group_select);
        if (existing) {
            arch.groups()[*existing].add_module(module_index);
            continue;
        }
        std::vector<Expansion> expansions = enumerate_expansions(
            arch, tables, module_index, min_width, depth, wire_budget, options.expansion);
        if (expansions.empty() && options.expansion == ExpansionPolicy::widen_by_kmin) {
            // Budget pressure: the paper's fixed k_min widening no longer
            // fits the remaining channels, but a smaller widening might.
            expansions = enumerate_expansions(arch, tables, module_index, min_width, depth,
                                              wire_budget, ExpansionPolicy::min_widening);
        }
        if (expansions.empty()) {
            return std::nullopt;
        }
        const Expansion& chosen = select_expansion(expansions, depth);
        if (chosen.group) {
            ChannelGroup& group = arch.groups()[*chosen.group];
            group.widen(chosen.added_wires);
            group.add_module(module_index);
        } else {
            arch.groups().emplace_back(chosen.added_wires, tables);
            arch.groups().back().add_module(module_index);
        }
    }
    return arch;
}

/// The (module order, expansion policy) pass combinations of one pack
/// query, in the exact sequential preference order: configured order and
/// policy first, fallbacks after (budget_search only).
struct PassPlan {
    std::vector<ModuleOrder> orders;
    std::vector<ExpansionPolicy> expansions;

    [[nodiscard]] std::size_t count() const noexcept
    {
        return orders.size() * expansions.size();
    }
    [[nodiscard]] ModuleOrder order_of(std::size_t pass) const
    {
        return orders[pass / expansions.size()];
    }
    [[nodiscard]] ExpansionPolicy expansion_of(std::size_t pass) const
    {
        return expansions[pass % expansions.size()];
    }
};

PassPlan make_pass_plan(const OptimizeOptions& options)
{
    PassPlan plan;
    plan.orders = {options.module_order};
    plan.expansions = {options.expansion};
    if (options.budget_search) {
        for (const ModuleOrder fallback :
             {ModuleOrder::by_min_width, ModuleOrder::by_volume, ModuleOrder::by_time}) {
            if (fallback != options.module_order) {
                plan.orders.push_back(fallback);
            }
        }
        for (const ExpansionPolicy fallback :
             {ExpansionPolicy::widen_by_kmin, ExpansionPolicy::min_widening,
              ExpansionPolicy::always_new_group}) {
            if (fallback != options.expansion) {
                plan.expansions.push_back(fallback);
            }
        }
    }
    return plan;
}

} // namespace

PackEngine::PackEngine(const SocTimeTables& tables, const OptimizeOptions& options)
    : tables_(&tables), options_(options)
{
}

PackStats PackEngine::stats() const noexcept
{
    PackStats stats;
    stats.pack_calls = pack_calls_.load(std::memory_order_relaxed);
    stats.pack_cache_hits = pack_cache_hits_.load(std::memory_order_relaxed);
    stats.greedy_passes = greedy_passes_.load(std::memory_order_relaxed);
    stats.depth_profiles = depth_profiles_.load(std::memory_order_relaxed);
    stats.pruned_packs = pruned_packs_.load(std::memory_order_relaxed);
    return stats;
}

PackEngine::DepthProfile PackEngine::make_profile(CycleCount depth)
{
    depth_profiles_.fetch_add(1, std::memory_order_relaxed);
    DepthProfile profile;
    std::vector<WireCount> min_widths(static_cast<std::size_t>(tables_->module_count()));
    for (int m = 0; m < tables_->module_count(); ++m) {
        const std::optional<WireCount> width = tables_->table(m).min_width_for(depth);
        if (!width) {
            return profile; // min_widths stays nullopt: depth infeasible
        }
        min_widths[static_cast<std::size_t>(m)] = *width;
        profile.widest = std::max(profile.widest, *width);
        profile.area_floor += tables_->table(m).min_area_from(*width);
    }
    profile.min_widths = std::move(min_widths);
    return profile;
}

const std::vector<int>& PackEngine::order_for(DepthProfile& profile, ModuleOrder order)
{
    // Parallel passes share one profile; the lazy order build is the
    // profile's only mutation after construction, so it is the only
    // place that needs a lock. Order contents are a pure function of
    // (depth, kind) — whichever thread builds one builds the same.
    std::lock_guard<std::mutex> lock(orders_mutex_);
    auto found = profile.orders.find(order);
    if (found == profile.orders.end()) {
        found = profile.orders
                    .emplace(order, module_order(*tables_, *profile.min_widths, order))
                    .first;
    }
    return found->second;
}

std::optional<Architecture> PackEngine::pack_uncached(CycleCount depth,
                                                      WireCount wire_budget,
                                                      DepthProfile& profile)
{
    if (!profile.min_widths || profile.widest > wire_budget) {
        return std::nullopt;
    }
    // Area-floor prune: no packing can occupy fewer wire-cycles than the
    // per-depth floor, so a budget below floor / depth is infeasible
    // without running any pass. Sound, hence byte-identical results.
    if (profile.area_floor > static_cast<CycleCount>(wire_budget) * depth) {
        pruned_packs_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }

    const PassPlan plan = make_pass_plan(options_);
    const std::size_t passes = plan.count();
    const auto run_pass = [&](std::size_t pass) -> std::optional<Architecture> {
        OptimizeOptions pass_options = options_;
        pass_options.expansion = plan.expansion_of(pass);
        greedy_passes_.fetch_add(1, std::memory_order_relaxed);
        const std::vector<int>& order = order_for(profile, plan.order_of(pass));
        return step1_pass(*tables_, depth, wire_budget, *profile.min_widths, order,
                          pass_options);
    };

    // Adaptive waves over the pass combinations: the winner is always
    // the lowest feasible pass index — the pass the sequential scan
    // would have kept — regardless of thread count.
    std::size_t begin = 0;
    for (int wave = 0; begin < passes; ++wave) {
        const std::size_t end = std::min(passes, begin + pack_wave_extent(wave));
        const std::size_t width = end - begin;
        if (width == 1) {
            std::optional<Architecture> packed = run_pass(begin);
            if (packed) {
                return packed;
            }
        } else {
            std::vector<std::optional<Architecture>> results(width);
            parallel_for_index(width, parallel_cap(), [&](std::size_t i) {
                results[i] = run_pass(begin + i);
            });
            for (std::size_t i = 0; i < width; ++i) {
                if (results[i]) {
                    return std::move(results[i]);
                }
            }
        }
        begin = end;
    }
    return std::nullopt;
}

std::optional<Architecture> PackEngine::pack_within(CycleCount depth, WireCount wire_budget)
{
    // Single-query path without the batch staging: identical stats and
    // results, no vector/map churn on the hot small-SOC cases.
    pack_calls_.fetch_add(1, std::memory_order_relaxed);
    if (!options_.memoize) {
        DepthProfile fresh = make_profile(depth);
        return pack_uncached(depth, wire_budget, fresh);
    }
    const auto key = std::make_pair(depth, wire_budget);
    const auto cached = packs_.find(key);
    if (cached != packs_.end()) {
        pack_cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cached->second;
    }
    auto profile = profiles_.find(depth);
    if (profile == profiles_.end()) {
        profile = profiles_.emplace(depth, make_profile(depth)).first;
    }
    std::optional<Architecture> packed = pack_uncached(depth, wire_budget, profile->second);
    packs_.emplace(key, packed);
    return packed;
}

std::vector<std::optional<Architecture>> PackEngine::pack_batch(
    const std::vector<PackQuery>& queries)
{
    std::vector<std::optional<Architecture>> results(queries.size());
    if (queries.empty()) {
        return results;
    }
    if (queries.size() == 1) {
        results[0] = pack_within(queries[0].depth, queries[0].budget);
        return results;
    }
    pack_calls_.fetch_add(static_cast<std::int64_t>(queries.size()),
                          std::memory_order_relaxed);

    if (!options_.memoize) {
        // From-scratch mode: every query profiles its depth and runs the
        // passes on its own, exactly like the equivalent sequence of
        // uncached pack_within calls.
        parallel_for_index(queries.size(), parallel_cap(), [&](std::size_t i) {
            DepthProfile profile = make_profile(queries[i].depth);
            results[i] = pack_uncached(queries[i].depth, queries[i].budget, profile);
        });
        return results;
    }

    // Phase 1 (coordinator): answer memo hits, dedupe the misses. A
    // duplicate of an earlier miss in the same batch counts as a hit —
    // the equivalent pack_within sequence would have found it memoized.
    using Key = std::pair<CycleCount, WireCount>;
    std::vector<std::size_t> compute;          // query index of each distinct miss
    std::map<Key, std::size_t> first_miss;     // key -> index into `compute`
    std::vector<std::pair<std::size_t, std::size_t>> aliases; // query -> compute slot
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const Key key{queries[i].depth, queries[i].budget};
        const auto cached = packs_.find(key);
        if (cached != packs_.end()) {
            pack_cache_hits_.fetch_add(1, std::memory_order_relaxed);
            results[i] = cached->second;
            continue;
        }
        const auto seen = first_miss.find(key);
        if (seen != first_miss.end()) {
            pack_cache_hits_.fetch_add(1, std::memory_order_relaxed);
            aliases.emplace_back(i, seen->second);
            continue;
        }
        first_miss.emplace(key, compute.size());
        compute.push_back(i);
    }
    if (compute.empty()) {
        return results;
    }

    // Phase 2 (coordinator + pool): profiles for depths not seen before,
    // built concurrently, inserted into the map in deterministic order
    // before any pack task can read them.
    std::vector<CycleCount> missing_depths;
    for (const std::size_t i : compute) {
        const CycleCount depth = queries[i].depth;
        if (profiles_.find(depth) == profiles_.end() &&
            std::find(missing_depths.begin(), missing_depths.end(), depth) ==
                missing_depths.end()) {
            missing_depths.push_back(depth);
        }
    }
    if (!missing_depths.empty()) {
        std::vector<DepthProfile> built(missing_depths.size());
        parallel_for_index(missing_depths.size(), parallel_cap(), [&](std::size_t i) {
            built[i] = make_profile(missing_depths[i]);
        });
        for (std::size_t i = 0; i < missing_depths.size(); ++i) {
            profiles_.emplace(missing_depths[i], std::move(built[i]));
        }
    }

    // Phase 3 (pool): the distinct misses, each a serial-pass-semantics
    // pack over a stable profile node.
    std::vector<DepthProfile*> profiles(compute.size());
    for (std::size_t j = 0; j < compute.size(); ++j) {
        profiles[j] = &profiles_.at(queries[compute[j]].depth);
    }
    std::vector<std::optional<Architecture>> computed(compute.size());
    parallel_for_index(compute.size(), parallel_cap(), [&](std::size_t j) {
        const PackQuery& query = queries[compute[j]];
        computed[j] = pack_uncached(query.depth, query.budget, *profiles[j]);
    });

    // Phase 4 (coordinator): publish to the memo in query order, then
    // fill the answer slots.
    for (std::size_t j = 0; j < compute.size(); ++j) {
        const PackQuery& query = queries[compute[j]];
        packs_.emplace(Key{query.depth, query.budget}, computed[j]);
        results[compute[j]] = std::move(computed[j]);
    }
    for (const auto& [query_index, compute_slot] : aliases) {
        results[query_index] = results[compute[compute_slot]];
    }
    return results;
}

} // namespace mst
