// Public entry point of the library: the two-step optimizer of Section 6
// solving Problems 1 and 2 of Section 5.
//
//   Soc soc = make_benchmark_soc("d695");
//   TestCell cell;                      // 512 ch x 7M, 5 MHz, 0.5 s index
//   OptimizeOptions options;            // no broadcast, no abort, no retest
//   Solution solution = optimize_multi_site(soc, cell, options);
//
// The returned Solution carries the optimal site count n_opt, the
// per-site channel count k, the channel-group (TAM) architecture, the
// E-RPCT wrapper parameters, and the full n -> throughput curve.
#pragma once

#include "ate/ate.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"
#include "soc/soc.hpp"

namespace mst {

/// Design the on-chip test infrastructure for optimal multi-site testing
/// of `soc` on the fixed test cell `cell`.
///
/// Throws InfeasibleError when the SOC cannot be tested on the given ATE
/// at all, and ValidationError on malformed inputs.
[[nodiscard]] Solution optimize_multi_site(const Soc& soc,
                                           const TestCell& cell,
                                           const OptimizeOptions& options = {});

/// Same optimization over prebuilt wrapper time tables. Building
/// SocTimeTables dominates the pipeline's wall time, so callers running
/// many scenarios against one SOC (BatchRunner, the bench harness, the
/// CLI's Gantt rendering) construct the tables once and reuse them; the
/// tables are immutable and safe to share across threads.
[[nodiscard]] Solution optimize_multi_site(const SocTimeTables& tables,
                                           const TestCell& cell,
                                           const OptimizeOptions& options = {});

} // namespace mst
