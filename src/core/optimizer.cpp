#include "core/optimizer.hpp"

#include "arch/channel_group.hpp"
#include "common/executor.hpp"
#include "core/step1.hpp"
#include "core/step2.hpp"
#include "exact/branch_bound.hpp"

namespace mst {

namespace {

std::vector<GroupSummary> summarize_groups(const Architecture& arch, const Soc& soc)
{
    std::vector<GroupSummary> summaries;
    summaries.reserve(arch.groups().size());
    for (const ChannelGroup& group : arch.groups()) {
        GroupSummary summary;
        summary.wires = group.width();
        summary.channels = channels_from_wires(group.width());
        summary.fill = group.fill();
        for (const int module_index : group.module_indices()) {
            summary.module_names.push_back(soc.module(module_index).name());
        }
        summaries.push_back(std::move(summary));
    }
    return summaries;
}

/// Certify the Step-1 architecture with the exact solver: same depth
/// constraint, greedy partition as the initial incumbent. Runs after
/// Step 1 so the greedy pipeline (and its fingerprints) is untouched;
/// the outcome is reported alongside, not substituted into Step 2.
ExactSummary certify_step1(const SocTimeTables& tables, const AteSpec& ate,
                           const Step1Result& step1, const OptimizeOptions& options)
{
    ExactOptions exact_options;
    exact_options.threads = options.threads;
    if (options.exact_budget_ms > 0) {
        exact_options.node_limit = options.exact_budget_ms * exact_nodes_per_ms;
    }
    for (const ChannelGroup& group : step1.architecture.groups()) {
        exact_options.seed.push_back(group.module_indices());
    }
    const ExactResult exact = exact_search(tables, ate.vector_memory_depth, exact_options);

    ExactSummary summary;
    summary.wires = exact.wires;
    summary.greedy_wires = step1.architecture.total_wires();
    summary.gap = summary.greedy_wires - exact.wires;
    summary.nodes_explored = exact.nodes_explored;
    summary.certified = exact.certified;
    for (const std::vector<int>& group : exact.groups) {
        std::vector<std::string> names;
        names.reserve(group.size());
        for (const int module_index : group) {
            names.push_back(tables.soc().module(module_index).name());
        }
        summary.groups.push_back(std::move(names));
    }
    return summary;
}

} // namespace

Solution optimize_multi_site(const SocTimeTables& tables,
                             const TestCell& cell,
                             const OptimizeOptions& options)
{
    const Soc& soc = tables.soc();
    cell.validate();
    PackEngine engine(tables, options);
    const Step1Result step1 = run_step1(engine, cell.ate);

    Solution solution;
    solution.soc_name = soc.name();
    solution.channels_step1 = step1.channels;
    solution.max_sites_step1 = step1.max_sites;

    const Architecture* final_arch = &step1.architecture;
    Step2Result step2{0, step1.architecture, {}, {}};
    if (options.step1_only) {
        solution.sites = step1.max_sites;
        ThroughputInputs inputs;
        inputs.sites = step1.max_sites;
        inputs.manufacturing_test_time = cell.ate.seconds_for(step1.architecture.test_cycles());
        inputs.contacted_terminals_per_soc = step1.channels + options.control_pads;
        solution.throughput = evaluate_throughput(inputs, cell.prober, options.yields, options.abort);
    } else {
        step2 = run_step2(engine, step1, cell);
        solution.sites = step2.best_sites;
        solution.throughput = step2.best_throughput;
        solution.site_curve = step2.curve;
        final_arch = &step2.best_architecture;
    }

    if (options.exact) {
        solution.exact = certify_step1(tables, cell.ate, step1, options);
    }

    solution.channels_per_site = final_arch->channels();
    solution.test_cycles = final_arch->test_cycles();
    solution.manufacturing_time = cell.ate.seconds_for(solution.test_cycles);
    solution.groups = summarize_groups(*final_arch, soc);
    solution.erpct = design_erpct(soc, solution.channels_per_site, options.functional_pins,
                                  options.control_pads);
    solution.best_figure_of_merit_ = figure_of_merit(solution.throughput, options.retest);

    solution.stats.packing = engine.stats();
    solution.stats.site_points = static_cast<std::int64_t>(solution.site_curve.size());
    solution.stats.threads = options.threads > 0
                                 ? options.threads
                                 : Executor::global().worker_count() + 1;

    validate_solution(solution, soc, cell.ate, options.broadcast);
    return solution;
}

Solution optimize_multi_site(const Soc& soc, const TestCell& cell, const OptimizeOptions& options)
{
    cell.validate(); // fail fast: the table build below is the expensive part
    const SocTimeTables tables(soc, TableBuild::fast, options.threads);
    return optimize_multi_site(tables, cell, options);
}

} // namespace mst
