// Work counters of the memoized Step-1 greedy packing, shared between
// PackEngine (which fills them) and Solution (which surfaces them to the
// perf harness: wall times in BENCH_optimizer.json are only comparable
// alongside the amount of search actually performed).
#pragma once

#include <cstdint>

namespace mst {

struct PackStats {
    std::int64_t pack_calls = 0;      ///< pack queries issued (batch or single)
    std::int64_t pack_cache_hits = 0; ///< served from the (depth, budget) memo
    std::int64_t greedy_passes = 0;   ///< full greedy passes actually run
    std::int64_t depth_profiles = 0;  ///< distinct virtual depths profiled
    std::int64_t pruned_packs = 0;    ///< queries answered by the area-floor bound
};

} // namespace mst
