// Step 2 of the two-step algorithm (Section 6): linear search over the
// site count n, redistributing freed-up channels over the remaining
// sites, picking the n with maximum throughput.
#pragma once

#include "ate/ate.hpp"
#include "core/problem.hpp"
#include "core/solution.hpp"
#include "core/step1.hpp"

namespace mst {

/// Step-2 output: the best site count, the (possibly widened) per-site
/// architecture at that count, and the whole search trace.
struct Step2Result {
    SiteCount best_sites = 0;
    Architecture best_architecture;  ///< references the SocTimeTables of Step 1
    ThroughputResult best_throughput;
    std::vector<SitePoint> curve;    ///< one entry per examined n (descending)
};

/// Run Step 2 starting from a Step-1 architecture, sharing the packing
/// engine (and its memo) with Step 1's budget search.
[[nodiscard]] Step2Result run_step2(PackEngine& engine,
                                    const Step1Result& step1,
                                    const TestCell& cell);

/// Convenience overload with a run-local engine.
[[nodiscard]] Step2Result run_step2(const Step1Result& step1,
                                    const TestCell& cell,
                                    const OptimizeOptions& options);

/// The virtual depths the re-pack fallback scans for one wire budget:
/// ascending integer multiples of 0.025 * depth, starting at the first
/// lattice point at or above the total-area floor (never below 0.05),
/// truncated at the first depth that could not beat `beat_cycles`.
/// Exposed for the lattice regression tests; the scan itself lives in
/// run_step2's re-pack fallback.
[[nodiscard]] std::vector<CycleCount> repack_candidates(const SocTimeTables& tables,
                                                        CycleCount depth,
                                                        WireCount wire_budget,
                                                        CycleCount beat_cycles);

} // namespace mst
