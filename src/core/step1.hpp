// Step 1 of the two-step algorithm (Section 6): build the channel-group
// architecture that tests the SOC with the minimum number of ATE
// channels (criterion 1), secondarily minimizing the filled vector
// memory (criterion 2).
#pragma once

#include "arch/architecture.hpp"
#include "ate/ate.hpp"
#include "core/pack_engine.hpp"
#include "core/problem.hpp"

namespace mst {

/// Step-1 output: the minimal-channel single-site architecture and the
/// maximum multi-site it enables.
struct Step1Result {
    Architecture architecture;  ///< references the SocTimeTables passed in
    ChannelCount channels = 0;  ///< k = 2 * total wires
    SiteCount max_sites = 0;    ///< n_max on the given ATE
};

/// Run Step 1 against a shared packing engine, so its budget-search
/// memoization carries over into Step 2's re-pack scans. Throws
/// InfeasibleError when the SOC cannot be tested on the ATE (a module
/// that fits no width within the memory depth, or a channel demand
/// beyond the ATE's channel count) — the paper's "the procedure is
/// exited" cases.
[[nodiscard]] Step1Result run_step1(PackEngine& engine, const AteSpec& ate);

/// Convenience overload with a run-local engine.
[[nodiscard]] Step1Result run_step1(const SocTimeTables& tables,
                                    const AteSpec& ate,
                                    const OptimizeOptions& options);

} // namespace mst
