// Problem statement types for the two-step optimizer (Section 5).
//
// Problems 1 (core-based SOC) and 2 (flattened SOC) share one interface:
// a flattened SOC is simply an Soc with a single module (the paper calls
// Problem 2 "a degenerate case of Problem 1").
#pragma once

#include "throughput/model.hpp"
#include "wrapper/erpct.hpp"

namespace mst {

/// Step-1 policy knobs. The defaults reproduce the paper's algorithm;
/// the alternatives exist for the ablation benchmarks.
enum class GroupSelectPolicy {
    best_fit_min_depth, ///< paper: group yielding the smallest resulting fill
    first_fit,          ///< ablation: first group that fits, in creation order
};

enum class ExpansionPolicy {
    widen_by_kmin,  ///< paper (Fig. 4): every alternative adds k_min(module) wires;
                    ///< pick the one with the smallest total fill
    min_widening,   ///< ablation: widen an existing group by the smallest
                    ///< delta that fits, competing on free memory
    always_new_group, ///< ablation: never widen, always open a new group
};

enum class ModuleOrder {
    by_min_width,  ///< paper: decreasing k_min (ties: volume, then index)
    by_volume,     ///< ablation: decreasing test-data volume
    by_time,       ///< ablation: decreasing single-wire test time
    input_order,   ///< ablation: benchmark file order
};

/// All options of one optimization run.
struct OptimizeOptions {
    BroadcastMode broadcast = BroadcastMode::none;
    AbortOnFail abort = AbortOnFail::off;
    RetestPolicy retest = RetestPolicy::none;
    YieldModel yields;

    /// E-RPCT parameters: contacted control pads and (optionally) the
    /// chip functional pin count (0 = estimate from the SOC).
    int control_pads = default_control_pads;
    int functional_pins = 0;

    /// Step-1 policies (paper defaults).
    GroupSelectPolicy group_select = GroupSelectPolicy::best_fit_min_depth;
    ExpansionPolicy expansion = ExpansionPolicy::widen_by_kmin;
    ModuleOrder module_order = ModuleOrder::by_min_width;

    /// Skip Step 2 (used to reproduce the paper's "Step 1 only" curves).
    bool step1_only = false;

    /// Criterion-1 budget search: retry the Step-1 greedy under wire
    /// budgets growing from the theoretical lower bound and keep the
    /// first feasible packing. This realizes the paper's "criterion 1
    /// has priority" more strictly than a single greedy pass and removes
    /// the pass's occasional more-memory-needs-more-channels anomalies.
    /// Disable to benchmark the raw single-pass greedy (ablation).
    bool budget_search = true;

    /// Post-pass compaction: delete channel groups whose modules can be
    /// relocated into the remaining groups, saving their wires. Disable
    /// to benchmark the uncompacted greedy (ablation).
    bool compaction = true;

    /// Memoize repeated packing work (per-depth minimal widths and module
    /// orders, per-(depth, budget) greedy results) across the Step-1
    /// budget search and Step-2 re-pack scans. Pure caching: solutions
    /// are byte-identical either way (golden fingerprint tests). Disable
    /// to measure the from-scratch baseline with `mst bench --compare`.
    bool memoize = true;

    /// Certify Step 1 with the exact branch-and-bound (src/exact/):
    /// seed the search from the greedy architecture and report the
    /// optimality gap in Solution::exact. Only valid for SOCs within
    /// exact_module_limit modules (ValidationError beyond).
    bool exact = false;

    /// Anytime budget for the exact pass, in "milliseconds" of the
    /// deterministic exact_nodes_per_ms calibration (0 = exhaust the
    /// tree). The summary's `certified` flag reports whether the tree
    /// was exhausted within the budget.
    std::int64_t exact_budget_ms = 0;

    /// Concurrency cap for the intra-scenario search (Step-1 budget
    /// probes, Step-2 re-pack scans, greedy pass waves, table builds).
    /// <= 0 uses the whole shared executor (hardware width); 1 runs the
    /// same deterministic schedule inline. The solution AND the work
    /// counters are byte-identical at every value — threads only change
    /// how fast the fixed task schedule drains.
    int threads = 0;
};

} // namespace mst
