#include "core/solution.hpp"

#include <unordered_set>

#include "common/error.hpp"

namespace mst {

void validate_solution(const Solution& solution, const Soc& soc, const AteSpec& ate,
                       BroadcastMode broadcast)
{
    if (solution.sites < 1) {
        throw ValidationError("solution has no test sites");
    }
    if (solution.channels_per_site <= 0 || solution.channels_per_site % 2 != 0) {
        throw ValidationError("per-site channel count must be positive and even");
    }

    // Channel budget: n*k <= K, or (n+1)*k/2 <= K with stimuli broadcast.
    const ChannelCount half = solution.channels_per_site / 2;
    const ChannelCount used = (broadcast == BroadcastMode::stimuli)
                                  ? (solution.sites + 1) * half
                                  : solution.sites * solution.channels_per_site;
    if (used > ate.channels) {
        throw ValidationError("solution exceeds the ATE channel budget");
    }

    if (solution.test_cycles > ate.vector_memory_depth) {
        throw ValidationError("solution exceeds the ATE vector memory depth");
    }

    // Architecture consistency.
    WireCount wires = 0;
    std::unordered_set<std::string> assigned;
    for (const GroupSummary& group : solution.groups) {
        if (group.channels != channels_from_wires(group.wires)) {
            throw ValidationError("group channel count is not twice its wire count");
        }
        if (group.fill > ate.vector_memory_depth) {
            throw ValidationError("group fill exceeds the vector memory depth");
        }
        wires += group.wires;
        for (const std::string& name : group.module_names) {
            if (!assigned.insert(name).second) {
                throw ValidationError("module '" + name + "' assigned to two groups");
            }
        }
    }
    if (channels_from_wires(wires) != solution.channels_per_site) {
        throw ValidationError("group widths do not add up to the per-site channel count");
    }
    for (const Module& m : soc.modules()) {
        if (assigned.count(m.name()) == 0) {
            throw ValidationError("module '" + m.name() + "' is not assigned to any group");
        }
    }
    if (assigned.size() != static_cast<std::size_t>(soc.module_count())) {
        throw ValidationError("solution wraps modules that are not in the SOC");
    }

    // E-RPCT interface consistency.
    if (solution.erpct.external_channels != solution.channels_per_site) {
        throw ValidationError("E-RPCT wrapper width does not match the per-site channel count");
    }
}

} // namespace mst
