#!/usr/bin/env python3
"""Compare two mst.bench JSON reports: fingerprints and p50 timings.

Usage: tools/bench_diff.py BASELINE.json NEW.json [options]

  --threshold X        p50 regression ratio that fails the diff
                       (default 1.25; new_p50 > X * baseline_p50)
  --advisory-timings   print timing deltas but never fail on them
                       (for shared CI runners whose clocks are noisy;
                       fingerprints stay strict)

Scenarios are matched by name; the comparison covers the intersection,
so a --quick run can be diffed against the committed full-suite
baseline. Exit codes: 0 clean, 1 timing regression beyond the
threshold, 2 fingerprint mismatch (or malformed input). A fingerprint
mismatch always wins over a timing exit code: a fast wrong answer is
the worst outcome a perf PR can ship. Stdlib-only on purpose.
"""
import argparse
import json
import sys

FINGERPRINT_KEYS = ("sites", "channels_per_site", "test_cycles", "devices_per_hour")


def load_report(path):
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"bench_diff: cannot read {path}: {error}")
    if not isinstance(report, dict) or report.get("schema") != "mst.bench":
        sys.exit(f"bench_diff: {path} is not an mst.bench report")
    scenarios = {}
    for scenario in report.get("scenarios", []):
        if scenario.get("ok"):
            scenarios[scenario["name"]] = scenario
    if not scenarios:
        sys.exit(f"bench_diff: {path} has no successful scenarios")
    return scenarios


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=1.25)
    parser.add_argument("--advisory-timings", action="store_true")
    args = parser.parse_args()
    if args.threshold <= 0:
        sys.exit("bench_diff: --threshold must be positive")

    baseline = load_report(args.baseline)
    new = load_report(args.new)
    shared = [name for name in new if name in baseline]
    if not shared:
        sys.exit("bench_diff: the reports share no scenario names")

    mismatches = []
    regressions = []
    width = max(len(name) for name in shared)
    print(f"{'scenario':{width}}  {'base p50':>10}  {'new p50':>10}  {'ratio':>7}  fingerprint")
    for name in shared:
        old_case, new_case = baseline[name], new[name]
        old_fp = {k: old_case["fingerprint"][k] for k in FINGERPRINT_KEYS}
        new_fp = {k: new_case["fingerprint"][k] for k in FINGERPRINT_KEYS}
        fp_ok = old_fp == new_fp
        if not fp_ok:
            mismatches.append(name)
        old_p50 = old_case["wall_seconds"]["p50_s"]
        new_p50 = new_case["wall_seconds"]["p50_s"]
        ratio = new_p50 / old_p50 if old_p50 > 0 else float("inf")
        if ratio > args.threshold:
            regressions.append((name, ratio))
        print(f"{name:{width}}  {old_p50 * 1e3:9.3f}ms  {new_p50 * 1e3:9.3f}ms  "
              f"{ratio:6.2f}x  {'ok' if fp_ok else 'MISMATCH'}")

    only_old = sorted(set(baseline) - set(new))
    only_new = sorted(set(new) - set(baseline))
    if only_old:
        print(f"baseline-only scenarios (not compared): {', '.join(only_old)}")
    if only_new:
        print(f"new-only scenarios (not compared): {', '.join(only_new)}")

    if mismatches:
        print(f"FAIL: fingerprint mismatch in {len(mismatches)} scenario(s): "
              f"{', '.join(mismatches[:5])}", file=sys.stderr)
        sys.exit(2)
    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        message = (f"{len(regressions)} scenario(s) beyond {args.threshold}x "
                   f"(worst: {worst[0]} at {worst[1]:.2f}x)")
        if args.advisory_timings:
            print(f"ADVISORY: {message}")
        else:
            print(f"FAIL: {message}", file=sys.stderr)
            sys.exit(1)
    print(f"OK: {len(shared)} scenario(s) compared, fingerprints identical")


if __name__ == "__main__":
    main()
