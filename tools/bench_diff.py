#!/usr/bin/env python3
"""Compare two mst.bench JSON reports: fingerprints, p50 and p99 timings.

Usage: tools/bench_diff.py BASELINE.json NEW.json [options]

  --threshold X        regression ratio that fails the diff, applied to
                       p50 AND p99 alike (default 1.25; the tail gets
                       gated with the same teeth as the median). p95/p99
                       columns appear when both reports carry them
                       (schema v4+); diffing against an older v3
                       baseline gates p50 only.
  --advisory-timings   print timing deltas but never fail on them
                       (for shared CI runners whose clocks are noisy;
                       fingerprints stay strict — integer keys exact,
                       devices_per_hour within a small relative
                       tolerance for cross-toolchain libm drift)
  --markdown           render the per-scenario comparison as a GitHub
                       markdown table (p50s and speedup = base/new),
                       ready to paste into a PR description; exit-code
                       semantics are identical to the plain output

Scenarios are matched by name; the comparison covers the intersection,
so a --quick run can be diffed against the committed full-suite
baseline — scenarios entirely absent from one report are listed but
not compared. A scenario present in BOTH reports that was ok in the
baseline but failed in the new run is a hard failure (exit 2): a
crash regression must not slip through as "not compared". Exit codes:
0 clean, 1 timing regression beyond the threshold, 2 fingerprint
mismatch, ok->failing regression, or malformed input. A code-2 failure
always wins over a timing exit code: a fast wrong answer is the worst
outcome a perf PR can ship. Stdlib-only on purpose.
"""
import argparse
import json
import math
import sys

FINGERPRINT_KEYS = ("sites", "channels_per_site", "test_cycles", "devices_per_hour")
# devices_per_hour is the one float fingerprint key (libm-derived, %.6g
# serialized): compare it with a relative tolerance so toolchain
# floating-point drift between the baseline machine and a CI runner
# cannot hard-fail the gate. The integer keys stay exact — a real answer
# change moves test_cycles/sites long before it moves only the float.
FLOAT_KEYS = {"devices_per_hour"}
FLOAT_REL_TOL = 1e-4
# The certify suite's per-scenario "exact" block is part of the
# fingerprint family and is compared strictly, every key exact: a
# bnb_nodes drift means the B&B lost its thread-count determinism, a
# wires/gap drift means the certified answer changed. Either is a
# hard failure (exit 2), never a timing advisory.
EXACT_KEYS = ("exact_wires", "step1_wires", "binpack_wires",
              "lower_bound_wires", "exact_gap", "bnb_nodes", "certified")


def exact_blocks_match(old_case, new_case):
    """True when the scenarios' exact blocks agree (both absent counts)."""
    old_exact = old_case.get("exact")
    new_exact = new_case.get("exact")
    if (old_exact is None) != (new_exact is None):
        return False
    if old_exact is None:
        return True
    return all(old_exact.get(key) == new_exact.get(key) for key in EXACT_KEYS)


def fingerprints_match(old_fp, new_fp):
    for key in FINGERPRINT_KEYS:
        if key in FLOAT_KEYS:
            if not math.isclose(old_fp[key], new_fp[key], rel_tol=FLOAT_REL_TOL):
                return False
        elif old_fp[key] != new_fp[key]:
            return False
    return True


def fail(message):
    print(f"bench_diff: {message}", file=sys.stderr)
    sys.exit(2)


def load_report(path):
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot read {path}: {error}")
    if not isinstance(report, dict) or report.get("schema") != "mst.bench":
        fail(f"{path} is not an mst.bench report")
    scenarios = {}
    for scenario in report.get("scenarios", []):
        name = scenario.get("name") if isinstance(scenario, dict) else None
        if not isinstance(name, str) or not name:
            fail(f"{path} has a scenario entry without a name")
        scenarios[name] = scenario
    if not any(s.get("ok") for s in scenarios.values()):
        fail(f"{path} has no successful scenarios")
    return scenarios


def tail_value(case, key):
    """Optional timing key: None when the report predates schema v4."""
    timing = case.get("wall_seconds")
    value = timing.get(key) if isinstance(timing, dict) else None
    return value if isinstance(value, (int, float)) else None


def scenario_field(path, name, case, *keys):
    """Walk nested keys with a clean diagnostic instead of a KeyError."""
    value = case
    for key in keys:
        if not isinstance(value, dict) or key not in value:
            fail(f"{path}: scenario '{name}' lacks '{'.'.join(keys)}'")
        value = value[key]
    return value


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=1.25)
    parser.add_argument("--advisory-timings", action="store_true")
    parser.add_argument("--markdown", action="store_true")
    args = parser.parse_args()
    if args.threshold <= 0:
        fail("--threshold must be positive")

    baseline = load_report(args.baseline)
    new = load_report(args.new)
    shared = [name for name in new if name in baseline]
    if not shared:
        fail("the reports share no scenario names")

    broken = []  # ok in the baseline, failing in the new report
    mismatches = []
    regressions = []
    compared = 0
    width = max(len(name) for name in shared)
    if args.markdown:
        print("| scenario | base p50 | new p50 | speedup | base p99 | new p99 | "
              "p99 ratio | fingerprint |")
        print("|---|---:|---:|---:|---:|---:|---:|---|")
    else:
        print(f"{'scenario':{width}}  {'base p50':>10}  {'new p50':>10}  {'ratio':>7}  "
              f"{'base p99':>10}  {'new p99':>10}  {'p99 rat':>7}  fingerprint")
    for name in shared:
        old_case, new_case = baseline[name], new[name]
        if not old_case.get("ok"):
            error = old_case.get("error", "no error recorded")
            if args.markdown:
                print(f"| {name} | baseline failed ({error}) | — | — | not compared |")
            else:
                print(f"{name:{width}}  baseline run failed ({error}); not compared")
            continue
        if not new_case.get("ok"):
            broken.append(name)
            error = new_case.get("error", "no error recorded")
            if args.markdown:
                print(f"| {name} | ok | **FAILED**: {error} | — | — |")
            else:
                print(f"{name:{width}}  ok in baseline but FAILED in new report: {error}")
            continue
        compared += 1
        old_fp = {k: scenario_field(args.baseline, name, old_case, "fingerprint", k)
                  for k in FINGERPRINT_KEYS}
        new_fp = {k: scenario_field(args.new, name, new_case, "fingerprint", k)
                  for k in FINGERPRINT_KEYS}
        fp_ok = fingerprints_match(old_fp, new_fp) and exact_blocks_match(old_case, new_case)
        if not fp_ok:
            mismatches.append(name)
        old_p50 = scenario_field(args.baseline, name, old_case, "wall_seconds", "p50_s")
        new_p50 = scenario_field(args.new, name, new_case, "wall_seconds", "p50_s")
        ratio = new_p50 / old_p50 if old_p50 > 0 else float("inf")
        if ratio > args.threshold:
            regressions.append((name, "p50", ratio))
        # Tail gate: same threshold and exit code as p50. Only when both
        # reports carry percentiles (a v3 baseline has none).
        old_p99, new_p99 = tail_value(old_case, "p99_s"), tail_value(new_case, "p99_s")
        p99_ratio = None
        if old_p99 is not None and new_p99 is not None:
            p99_ratio = new_p99 / old_p99 if old_p99 > 0 else float("inf")
            if p99_ratio > args.threshold:
                regressions.append((name, "p99", p99_ratio))
        if args.markdown:
            speedup = old_p50 / new_p50 if new_p50 > 0 else float("inf")
            if p99_ratio is None:
                p99_cells = "— | — | —"
            else:
                p99_cells = (f"{old_p99 * 1e3:.3f} ms | {new_p99 * 1e3:.3f} ms | "
                             f"{p99_ratio:.2f}x")
            print(f"| {name} | {old_p50 * 1e3:.3f} ms | {new_p50 * 1e3:.3f} ms | "
                  f"{speedup:.2f}x | {p99_cells} | {'ok' if fp_ok else '**MISMATCH**'} |")
        else:
            if p99_ratio is None:
                p99_cells = f"{'—':>10}  {'—':>10}  {'—':>7}"
            else:
                p99_cells = (f"{old_p99 * 1e3:9.3f}ms  {new_p99 * 1e3:9.3f}ms  "
                             f"{p99_ratio:6.2f}x")
            print(f"{name:{width}}  {old_p50 * 1e3:9.3f}ms  {new_p50 * 1e3:9.3f}ms  "
                  f"{ratio:6.2f}x  {p99_cells}  {'ok' if fp_ok else 'MISMATCH'}")

    only_old = sorted(set(baseline) - set(new))
    only_new = sorted(set(new) - set(baseline))
    if only_old:
        print(f"baseline-only scenarios (not compared): {', '.join(only_old)}")
    if only_new:
        print(f"new-only scenarios (not compared): {', '.join(only_new)}")

    if broken:
        print(f"FAIL: {len(broken)} scenario(s) ok in baseline but failing in the new "
              f"report: {', '.join(broken[:5])}", file=sys.stderr)
        sys.exit(2)
    if mismatches:
        print(f"FAIL: fingerprint mismatch in {len(mismatches)} scenario(s): "
              f"{', '.join(mismatches[:5])}", file=sys.stderr)
        sys.exit(2)
    if regressions:
        worst = max(regressions, key=lambda r: r[2])
        message = (f"{len(regressions)} timing regression(s) beyond {args.threshold}x "
                   f"(worst: {worst[0]} {worst[1]} at {worst[2]:.2f}x)")
        if args.advisory_timings:
            print(f"ADVISORY: {message}")
        else:
            print(f"FAIL: {message}", file=sys.stderr)
            sys.exit(1)
    print(f"OK: {compared} scenario(s) compared, fingerprints identical")


if __name__ == "__main__":
    main()
