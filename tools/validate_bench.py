#!/usr/bin/env python3
"""Validate a BENCH JSON file against the mst.bench v4 schema.

Usage: tools/validate_bench.py BENCH_optimizer.json

Exits 0 and prints a one-line summary when the file is valid; exits 1
with a diagnostic otherwise. CI's perf-smoke job runs this on the
artifact produced by `mst bench --quick` so a malformed or truncated
report fails the build instead of silently polluting the perf
trajectory. Stdlib-only on purpose.
"""
import json
import sys

SCHEMA_NAME = "mst.bench"
SCHEMA_VERSION = 4

# v4: timing blocks carry tail percentiles p95_s/p99_s next to p50_s.
TIMING_KEYS = {"iterations": int, "min_s": (int, float), "p50_s": (int, float),
               "p95_s": (int, float), "p99_s": (int, float),
               "mean_s": (int, float), "max_s": (int, float)}
FINGERPRINT_KEYS = {"sites": int, "channels_per_site": int, "test_cycles": int,
                    "devices_per_hour": (int, float)}
STATS_KEYS = {"pack_calls": int, "pack_cache_hits": int, "greedy_passes": int,
              "depth_profiles": int, "pruned_packs": int, "site_points": int,
              "threads": int}
# v3: the certify suite's optimality-gap record. Optional per scenario
# (plain bench scenarios don't carry it), but when present every key is
# required and the bracket LB <= exact <= step1 must hold.
EXACT_KEYS = {"exact_wires": int, "step1_wires": int, "binpack_wires": int,
              "lower_bound_wires": int, "exact_gap": int, "bnb_nodes": int,
              "certified": bool}


def fail(message):
    print(f"BENCH schema error: {message}", file=sys.stderr)
    sys.exit(1)


def require(obj, key, types, where):
    if key not in obj:
        fail(f"{where}: missing key '{key}'")
    if not isinstance(obj[key], types):
        fail(f"{where}: key '{key}' has type {type(obj[key]).__name__}")
    return obj[key]


def check_block(obj, key, spec, where):
    block = require(obj, key, dict, where)
    for name, types in spec.items():
        require(block, name, types, f"{where}.{key}")
    return block


def check_timing(obj, key, where):
    block = check_block(obj, key, TIMING_KEYS, where)
    if block["iterations"] < 1:
        fail(f"{where}.{key}: iterations must be >= 1")
    if not (0 <= block["min_s"] <= block["p50_s"] <= block["p95_s"]
            <= block["p99_s"] <= block["max_s"]):
        fail(f"{where}.{key}: expected min_s <= p50_s <= p95_s <= p99_s <= max_s")


def check_scenario(scenario, index):
    where = f"scenarios[{index}]"
    if not isinstance(scenario, dict):
        fail(f"{where}: not an object")
    name = require(scenario, "name", str, where)
    if not name:
        fail(f"{where}: empty scenario name")
    require(scenario, "soc", str, where)
    require(scenario, "variant", str, where)
    require(scenario, "channels", int, where)
    require(scenario, "depth_vectors", int, where)
    ok = require(scenario, "ok", bool, where)
    if not ok:
        require(scenario, "error", str, where)
        return name
    check_timing(scenario, "wall_seconds", where)
    check_block(scenario, "fingerprint", FINGERPRINT_KEYS, where)
    check_block(scenario, "optimizer_stats", STATS_KEYS, where)
    if "exact" in scenario:
        exact = check_block(scenario, "exact", EXACT_KEYS, where)
        if not (exact["lower_bound_wires"] <= exact["exact_wires"]
                <= exact["step1_wires"]):
            fail(f"{where}.exact: expected lower_bound_wires <= exact_wires "
                 "<= step1_wires")
        if exact["exact_gap"] != exact["step1_wires"] - exact["exact_wires"]:
            fail(f"{where}.exact: exact_gap must equal step1_wires - exact_wires")
        if exact["bnb_nodes"] < 1:
            fail(f"{where}.exact: bnb_nodes must be >= 1")
    if "baseline_wall_seconds" in scenario:
        check_timing(scenario, "baseline_wall_seconds", where)
    if "fingerprint_matches_baseline" in scenario:
        require(scenario, "fingerprint_matches_baseline", bool, where)
    return name


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_bench.py <bench.json>")
    try:
        with open(sys.argv[1], encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as error:
        fail(f"cannot read {sys.argv[1]}: {error}")
    except json.JSONDecodeError as error:
        fail(f"not valid JSON: {error}")

    if not isinstance(report, dict):
        fail("top level is not an object")
    if require(report, "schema", str, "top level") != SCHEMA_NAME:
        fail(f"schema is '{report['schema']}', expected '{SCHEMA_NAME}'")
    if require(report, "schema_version", int, "top level") != SCHEMA_VERSION:
        fail(f"schema_version is {report['schema_version']}, expected {SCHEMA_VERSION}")
    require(report, "suite", str, "top level")
    require(report, "repetitions", int, "top level")
    require(report, "compared_baseline", bool, "top level")
    require(report, "threads", int, "top level")
    require(report, "total_seconds", (int, float), "top level")
    scenarios = require(report, "scenarios", list, "top level")
    if not scenarios:
        fail("scenarios list is empty")
    if require(report, "scenario_count", int, "top level") != len(scenarios):
        fail("scenario_count does not match the scenarios list length")

    names = [check_scenario(scenario, i) for i, scenario in enumerate(scenarios)]
    if len(set(names)) != len(names):
        fail("duplicate scenario names")

    failed = [s["name"] for s in scenarios if not s["ok"]]
    mismatched = [s["name"] for s in scenarios
                  if s.get("fingerprint_matches_baseline") is False]
    if failed:
        fail(f"{len(failed)} scenario(s) failed: {', '.join(failed[:5])}")
    if mismatched:
        fail(f"fingerprint mismatch vs baseline in: {', '.join(mismatched[:5])}")

    print(f"OK: {len(scenarios)} scenarios, schema {SCHEMA_NAME} v{SCHEMA_VERSION}, "
          f"suite '{report['suite']}'")


if __name__ == "__main__":
    main()
