#!/usr/bin/env python3
"""Replay a JSON-lines request file through a running `mst serve --listen`
endpoint and print the responses to stdout.

Usage: tools/serve_replay.py HOST:PORT REQUESTS.jsonl [--stream]

Default is ordered mode: the client opens one TCP connection, sends
`{"op":"hello","v":1,"stream":false}` as the first frame, then every
line of REQUESTS.jsonl, half-closes the write side, reads to EOF, drops
the hello response, and prints the remaining lines. In ordered mode that
output is byte-identical to `mst replay REQUESTS.jsonl`, which is
exactly what CI's service-smoke job asserts with cmp(1).

With --stream the hello is omitted (streaming is the default on the
wire) and responses are printed in arrival order; the caller is expected
to compare after an id-keyed sort rather than byte-for-byte. Stdlib-only
on purpose.
"""
import socket
import sys

HELLO = b'{"op":"hello","v":1,"stream":false}\n'


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = {a for a in argv[1:] if a.startswith("--")}
    unknown = flags - {"--stream"}
    if len(args) != 2 or unknown:
        sys.stderr.write(__doc__)
        return 2
    host, _, port = args[0].rpartition(":")
    with open(args[1], "rb") as f:
        payload = f.read()
    if not payload.endswith(b"\n"):
        payload += b"\n"

    ordered = "--stream" not in flags
    with socket.create_connection((host, int(port)), timeout=60) as sock:
        if ordered:
            sock.sendall(HELLO)
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)

    lines = b"".join(chunks).split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    if ordered:
        if not lines or b'"hello"' not in lines[0]:
            sys.stderr.write("serve_replay: missing hello response\n")
            return 1
        lines.pop(0)
    out = sys.stdout.buffer
    for line in lines:
        out.write(line + b"\n")
    out.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
