#!/usr/bin/env python3
"""Replay a JSON-lines request file through a running `mst serve --listen`
endpoint and print the responses to stdout.

Usage: tools/serve_replay.py HOST:PORT REQUESTS.jsonl [--stream] [--resume]

Default is ordered mode: the client opens one TCP connection, sends
`{"op":"hello","v":1,"stream":false}` as the first frame, then every
line of REQUESTS.jsonl, half-closes the write side, reads to EOF, drops
the hello response, and prints the remaining lines. In ordered mode that
output is byte-identical to `mst replay REQUESTS.jsonl`, which is
exactly what CI's service-smoke job asserts with cmp(1).

With --resume the client survives worker death in a prefork pool: when
the connection drops with requests still unanswered, it reconnects and
resends the unanswered suffix on a fresh connection (new hello
included). Only '\n'-terminated lines count as answered, so a response
torn mid-byte by a dying worker is re-requested, never half-counted.
Because every worker in the pool computes identical answers, the
concatenated output is still byte-identical to an undisturbed replay.

With --stream the hello is omitted (streaming is the default on the
wire) and responses are printed in arrival order; the caller is expected
to compare after an id-keyed sort rather than byte-for-byte. Stdlib-only
on purpose.
"""
import socket
import sys
import time

HELLO = b'{"op":"hello","v":1,"stream":false}\n'


def replay_once(host, port, payload, ordered):
    """One connection: send everything, read to EOF, return raw bytes."""
    with socket.create_connection((host, port), timeout=60) as sock:
        if ordered:
            sock.sendall(HELLO)
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def complete_lines(data, ordered, drop_torn=False):
    """Split lines, dropping the hello ack in ordered mode. With
    drop_torn, an unterminated tail (a response cut mid-byte by a dying
    worker) is discarded so it can be re-requested. Returns (lines, ok):
    ok is False when the hello ack is missing or malformed."""
    lines = data.split(b"\n")
    if lines and (drop_torn or lines[-1] == b""):
        lines.pop()
    if ordered:
        if not lines or b'"hello"' not in lines[0]:
            return [], False
        lines.pop(0)
    return lines, True


def replay_resume(host, port, requests, deadline_s=120.0):
    """Reconnect-and-resume loop for prefork pools under chaos."""
    responses = []
    deadline = time.monotonic() + deadline_s
    while len(responses) < len(requests):
        if time.monotonic() >= deadline:
            sys.stderr.write(
                "serve_replay: resume did not finish: %d/%d\n"
                % (len(responses), len(requests))
            )
            return responses, False
        payload = b"".join(r + b"\n" for r in requests[len(responses):])
        try:
            data = replay_once(host, port, payload, ordered=True)
        except OSError:
            time.sleep(0.05)  # pool is respawning the dead worker
            continue
        lines, ok = complete_lines(data, ordered=True, drop_torn=True)
        if not ok:
            time.sleep(0.05)
            continue
        responses.extend(lines)
    return responses, True


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = {a for a in argv[1:] if a.startswith("--")}
    unknown = flags - {"--stream", "--resume"}
    if len(args) != 2 or unknown or flags >= {"--stream", "--resume"}:
        sys.stderr.write(__doc__)
        return 2
    host, _, port = args[0].rpartition(":")
    port = int(port)
    with open(args[1], "rb") as f:
        raw = f.read()

    out = sys.stdout.buffer
    if "--resume" in flags:
        requests = [line for line in raw.split(b"\n") if line]
        responses, ok = replay_resume(host, port, requests)
        for line in responses:
            out.write(line + b"\n")
        out.flush()
        return 0 if ok else 1

    payload = raw if raw.endswith(b"\n") else raw + b"\n"
    ordered = "--stream" not in flags
    data = replay_once(host, port, payload, ordered)
    lines, ok = complete_lines(data, ordered)
    if not ok:
        sys.stderr.write("serve_replay: missing hello response\n")
        return 1
    for line in lines:
        out.write(line + b"\n")
    out.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
