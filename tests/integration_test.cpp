// End-to-end integration tests: the complete pipeline from benchmark
// data (embedded, generated, and file round-tripped) through the
// two-step optimizer, checked against the paper's reported operating
// points with tolerances that absorb the data reconstruction.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/optimizer.hpp"
#include "soc/parser.hpp"
#include "soc/profiles.hpp"
#include "soc/writer.hpp"

namespace mst {
namespace {

TestCell paper_cell()
{
    TestCell cell; // 512 channels x 7M vectors, 5 MHz, 0.5 s, 1 ms
    return cell;
}

TEST(Integration, Pnx8550NoBroadcastMatchesPaperOperatingPoint)
{
    // Paper Section 7 / Figure 5 (no stimuli broadcast): n_opt = n_max,
    // t_m ~ 1.4 s, D_th ~ 1.3e4 devices/hour.
    const Solution solution = optimize_multi_site(make_benchmark_soc("pnx8550"), paper_cell());
    EXPECT_EQ(solution.channels_step1, 72);
    EXPECT_EQ(solution.max_sites_step1, 7);
    EXPECT_EQ(solution.sites, 7);
    EXPECT_NEAR(solution.manufacturing_time, 1.45, 0.10);
    EXPECT_NEAR(solution.best_throughput(), 1.3e4, 0.15e4);
}

TEST(Integration, Pnx8550BroadcastRoughlyDoublesThroughput)
{
    // Paper Figure 5: the broadcast optimum is ~2.4e4 devices/hour.
    OptimizeOptions options;
    options.broadcast = BroadcastMode::stimuli;
    const Solution solution =
        optimize_multi_site(make_benchmark_soc("pnx8550"), paper_cell(), options);
    EXPECT_GE(solution.max_sites_step1, 12);
    EXPECT_NEAR(solution.best_throughput(), 2.4e4, 0.3e4);
}

TEST(Integration, Pnx8550Step2BeatsStep1WhenSitesAreCapped)
{
    // Paper Figure 5's punchline: if equipment limits the multi-site to
    // n = 8 (broadcast case), Steps 1+2 beat Step 1 only by ~34%. We
    // check the ordering (Step 2 redistributes freed channels, so its
    // throughput at the cap can only be higher).
    const Soc soc = make_benchmark_soc("pnx8550");
    OptimizeOptions options;
    options.broadcast = BroadcastMode::stimuli;
    const Solution solution = optimize_multi_site(soc, paper_cell(), options);

    const SiteCount cap = 8;
    double step2_at_cap = 0.0;
    for (const SitePoint& point : solution.site_curve) {
        if (point.sites == cap) {
            step2_at_cap = point.figure_of_merit;
        }
    }
    ASSERT_GT(step2_at_cap, 0.0);

    // Step-1-only at the cap: same architecture as Step 1, throughput
    // scaled by n = 8.
    OptimizeOptions step1_options = options;
    step1_options.step1_only = true;
    const Solution step1 = optimize_multi_site(soc, paper_cell(), step1_options);
    ThroughputInputs inputs;
    inputs.sites = cap;
    inputs.manufacturing_test_time = step1.manufacturing_time;
    inputs.contacted_terminals_per_soc = step1.channels_per_site + default_control_pads;
    const ThroughputResult at_cap =
        evaluate_throughput(inputs, paper_cell().prober, options.yields);

    EXPECT_GE(step2_at_cap, at_cap.devices_per_hour);
}

TEST(Integration, D695FullTable1RowAt48K)
{
    // Paper Table 1, d695 @ 48K on a 256-channel ATE with broadcast:
    // k = 28, n_max = 17 (we tolerate one wire of reconstruction error).
    TestCell cell;
    cell.ate.channels = 256;
    cell.ate.vector_memory_depth = 48 * kibi;
    OptimizeOptions options;
    options.broadcast = BroadcastMode::stimuli;
    options.step1_only = true;
    const Solution solution = optimize_multi_site(make_benchmark_soc("d695"), cell, options);
    EXPECT_GE(solution.channels_step1, 26);
    EXPECT_LE(solution.channels_step1, 30);
    EXPECT_GE(solution.max_sites_step1, 16);
    EXPECT_LE(solution.max_sites_step1, 18);
}

TEST(Integration, FileRoundTripPreservesOptimizationResult)
{
    const Soc original = make_benchmark_soc("p22810");
    const std::string path = testing::TempDir() + "/mst_integration_p22810.soc";
    save_soc_file(path, original);
    const Soc loaded = load_soc_file(path);
    std::remove(path.c_str());

    TestCell cell;
    cell.ate.channels = 512;
    cell.ate.vector_memory_depth = 512 * kibi;
    const Solution a = optimize_multi_site(original, cell);
    const Solution b = optimize_multi_site(loaded, cell);
    EXPECT_EQ(a.channels_per_site, b.channels_per_site);
    EXPECT_EQ(a.sites, b.sites);
    EXPECT_EQ(a.test_cycles, b.test_cycles);
}

TEST(Integration, DeeperMemoryNeverHurtsThroughput)
{
    // Fig 6(b)'s monotone backbone on the real optimizer.
    const Soc soc = make_benchmark_soc("d695");
    double previous = 0.0;
    for (CycleCount depth = 48 * kibi; depth <= 96 * kibi; depth += 16 * kibi) {
        TestCell cell;
        cell.ate.channels = 256;
        cell.ate.vector_memory_depth = depth;
        const Solution solution = optimize_multi_site(soc, cell);
        EXPECT_GE(solution.best_throughput(), previous) << "depth=" << depth;
        previous = solution.best_throughput();
    }
}

TEST(Integration, MoreChannelsNeverHurtThroughput)
{
    // Fig 6(a)'s monotone backbone.
    const Soc soc = make_benchmark_soc("d695");
    double previous = 0.0;
    for (ChannelCount channels = 128; channels <= 512; channels += 128) {
        TestCell cell;
        cell.ate.channels = channels;
        cell.ate.vector_memory_depth = 64 * kibi;
        const Solution solution = optimize_multi_site(soc, cell);
        EXPECT_GE(solution.best_throughput(), previous) << "channels=" << channels;
        previous = solution.best_throughput();
    }
}

} // namespace
} // namespace mst
