// Unit tests for Architecture: aggregation, redistribution, compaction,
// invariant validation, and the multi-site channel formulas.
#include <gtest/gtest.h>

#include "arch/architecture.hpp"
#include "common/error.hpp"
#include "soc/soc.hpp"

namespace mst {
namespace {

Soc three_module_soc()
{
    // Module b's chains are splittable well beyond three wires, so
    // bottleneck widening has room to work with.
    return Soc("trio", {Module("a", 2, 2, 0, 10, {12, 8}),
                        Module("b", 4, 4, 0, 20, {15, 15, 10, 10, 8, 8}),
                        Module("c", 1, 1, 0, 5, {6})});
}

Architecture simple_arch(const SocTimeTables& tables)
{
    Architecture arch(tables);
    const std::size_t narrow = arch.add_group(2);
    arch.add_module(narrow, 0);
    arch.add_module(narrow, 2);
    arch.add_module(arch.add_group(3), 1);
    return arch;
}

TEST(Architecture, Aggregates)
{
    const Soc soc = three_module_soc();
    const SocTimeTables tables(soc);
    const Architecture arch = simple_arch(tables);
    EXPECT_EQ(arch.total_wires(), 5);
    EXPECT_EQ(arch.channels(), 10);
    EXPECT_EQ(arch.test_cycles(),
              std::max(arch.groups()[0].fill(), arch.groups()[1].fill()));
}

TEST(Architecture, FreeMemoryAccounting)
{
    const Soc soc = three_module_soc();
    const SocTimeTables tables(soc);
    const Architecture arch = simple_arch(tables);
    const CycleCount depth = 100'000;
    const CycleCount expected =
        depth * 5 - arch.groups()[0].fill() - arch.groups()[1].fill();
    EXPECT_EQ(arch.free_memory(depth), expected);
}

TEST(Architecture, BottleneckWideningReducesTestTime)
{
    const Soc soc = three_module_soc();
    const SocTimeTables tables(soc);
    Architecture arch = simple_arch(tables);
    const CycleCount before = arch.test_cycles();
    int added = 0;
    while (arch.add_wire_to_bottleneck(8) && added < 32) {
        ++added;
    }
    EXPECT_GT(added, 0);
    EXPECT_LT(arch.test_cycles(), before);
}

TEST(Architecture, BottleneckWideningStopsWhenSaturated)
{
    const Soc soc = three_module_soc();
    const SocTimeTables tables(soc);
    Architecture arch = simple_arch(tables);
    // Drain all possible improvement...
    while (arch.add_wire_to_bottleneck(64)) {
    }
    const WireCount wires = arch.total_wires();
    // ...then verify it reports saturation instead of burning wires.
    EXPECT_FALSE(arch.add_wire_to_bottleneck(64));
    EXPECT_EQ(arch.total_wires(), wires);
    EXPECT_FALSE(arch.add_wire_to_bottleneck(0));
}

TEST(Architecture, CompactRemovesRedundantGroup)
{
    const Soc soc = three_module_soc();
    const SocTimeTables tables(soc);
    Architecture arch(tables);
    // Group 0 is large enough to absorb everything at a generous depth;
    // group 1 only holds module 2 and should be eliminated.
    const std::size_t big = arch.add_group(4);
    arch.add_module(big, 0);
    arch.add_module(big, 1);
    arch.add_module(arch.add_group(1), 2);

    const CycleCount depth = arch.groups()[0].fill() + tables.table(2).time(4) + 1000;
    const WireCount saved = arch.compact(depth);
    EXPECT_EQ(saved, 1);
    EXPECT_EQ(arch.groups().size(), 1u);
    EXPECT_EQ(arch.total_wires(), 4);
    EXPECT_LE(arch.test_cycles(), depth);
}

TEST(Architecture, CompactKeepsTightArchitectures)
{
    const Soc soc = three_module_soc();
    const SocTimeTables tables(soc);
    Architecture arch = simple_arch(tables);
    // Depth exactly at the current max fill: no relocation possible.
    const CycleCount depth = arch.test_cycles();
    const WireCount saved = arch.compact(depth);
    EXPECT_EQ(saved, 0);
    EXPECT_EQ(arch.groups().size(), 2u);
}

TEST(Architecture, ValidateAcceptsSimpleArch)
{
    const Soc soc = three_module_soc();
    const SocTimeTables tables(soc);
    const Architecture arch = simple_arch(tables);
    AteSpec ate;
    ate.channels = 16;
    ate.vector_memory_depth = arch.test_cycles() + 1;
    EXPECT_NO_THROW(arch.validate(ate));
}

TEST(Architecture, ValidateRejectsOverfilledGroup)
{
    const Soc soc = three_module_soc();
    const SocTimeTables tables(soc);
    const Architecture arch = simple_arch(tables);
    AteSpec ate;
    ate.channels = 16;
    ate.vector_memory_depth = arch.test_cycles() - 1;
    EXPECT_THROW(arch.validate(ate), ValidationError);
}

TEST(Architecture, ValidateRejectsMissingModule)
{
    const Soc soc = three_module_soc();
    const SocTimeTables tables(soc);
    Architecture arch(tables);
    arch.add_module(arch.add_group(2), 0);
    AteSpec ate;
    ate.channels = 16;
    ate.vector_memory_depth = 1'000'000;
    EXPECT_THROW(arch.validate(ate), ValidationError);
}

TEST(Architecture, ValidateRejectsDuplicateAssignment)
{
    const Soc soc = three_module_soc();
    const SocTimeTables tables(soc);
    Architecture arch = simple_arch(tables);
    arch.add_module(arch.groups().size() - 1, 0); // module 0 now in two groups
    AteSpec ate;
    ate.channels = 16;
    ate.vector_memory_depth = 10'000'000;
    EXPECT_THROW(arch.validate(ate), ValidationError);
}

TEST(Architecture, ValidateRejectsChannelOverrun)
{
    const Soc soc = three_module_soc();
    const SocTimeTables tables(soc);
    const Architecture arch = simple_arch(tables);
    AteSpec ate;
    ate.channels = 8; // arch needs 10
    ate.vector_memory_depth = 10'000'000;
    EXPECT_THROW(arch.validate(ate), ValidationError);
}

TEST(MaxSites, NoBroadcastIsFloorDivision)
{
    EXPECT_EQ(max_sites(72, 512, BroadcastMode::none), 7);
    EXPECT_EQ(max_sites(28, 256, BroadcastMode::none), 9);
    EXPECT_EQ(max_sites(512, 512, BroadcastMode::none), 1);
    EXPECT_EQ(max_sites(514, 512, BroadcastMode::none), 0);
    EXPECT_EQ(max_sites(0, 512, BroadcastMode::none), 0);
}

TEST(MaxSites, BroadcastSharesStimulusChannels)
{
    // (n+1) * k/2 <= K  ->  n = (K - k/2) / (k/2)
    EXPECT_EQ(max_sites(72, 512, BroadcastMode::stimuli), 13);
    EXPECT_EQ(max_sites(28, 256, BroadcastMode::stimuli), 17);
    EXPECT_EQ(max_sites(12, 256, BroadcastMode::stimuli), 41);
}

TEST(PerSiteBudget, InvertsMaxSites)
{
    for (const BroadcastMode mode : {BroadcastMode::none, BroadcastMode::stimuli}) {
        for (SiteCount n = 1; n <= 20; ++n) {
            const ChannelCount k = per_site_channel_budget(n, 512, mode);
            ASSERT_GT(k, 0);
            EXPECT_EQ(k % 2, 0);
            EXPECT_GE(max_sites(k, 512, mode), n) << "n=" << n;
            // Budget is maximal: two more channels would not support n sites.
            EXPECT_LT(max_sites(k + 2, 512, mode), n) << "n=" << n;
        }
    }
    EXPECT_EQ(per_site_channel_budget(0, 512, BroadcastMode::none), 0);
}

} // namespace
} // namespace mst
