// Unit tests for the common substrate: math helpers, formatting,
// strong-type conversions, errors, and the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace mst {
namespace {

TEST(CeilDiv, ExactDivision)
{
    EXPECT_EQ(ceil_div(12, 4), 3);
    EXPECT_EQ(ceil_div(0, 7), 0);
}

TEST(CeilDiv, RoundsUp)
{
    EXPECT_EQ(ceil_div(13, 4), 4);
    EXPECT_EQ(ceil_div(1, 1000), 1);
    EXPECT_EQ(ceil_div(999, 1000), 1);
    EXPECT_EQ(ceil_div(1001, 1000), 2);
}

TEST(PowProb, MatchesStdPow)
{
    for (const double p : {0.0, 0.25, 0.5, 0.9999, 1.0}) {
        for (const std::int64_t e : {0LL, 1LL, 2LL, 7LL, 100LL, 513LL}) {
            EXPECT_NEAR(pow_prob(p, e), std::pow(p, static_cast<double>(e)), 1e-12)
                << "p=" << p << " e=" << e;
        }
    }
}

TEST(PowProb, ZeroExponentIsOne)
{
    EXPECT_DOUBLE_EQ(pow_prob(0.3, 0), 1.0);
    EXPECT_DOUBLE_EQ(pow_prob(0.0, 0), 1.0);
}

TEST(PowProb, LargeExponentStaysInRange)
{
    const Probability p = pow_prob(0.9999, 1'000'000);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
}

TEST(AtLeastOneOf, SingleTrialIsIdentity)
{
    EXPECT_DOUBLE_EQ(at_least_one_of(0.37, 1), 0.37);
}

TEST(AtLeastOneOf, ZeroSitesIsZero)
{
    EXPECT_DOUBLE_EQ(at_least_one_of(0.9, 0), 0.0);
}

TEST(AtLeastOneOf, IncreasesWithTrials)
{
    double previous = 0.0;
    for (SiteCount n = 1; n <= 16; ++n) {
        const double current = at_least_one_of(0.3, n);
        EXPECT_GT(current, previous) << "n=" << n;
        previous = current;
    }
}

TEST(AtLeastOneOf, CertainSuccess)
{
    EXPECT_DOUBLE_EQ(at_least_one_of(1.0, 5), 1.0);
}

TEST(ClampProbability, ClampsBothEnds)
{
    EXPECT_DOUBLE_EQ(clamp_probability(-0.1), 0.0);
    EXPECT_DOUBLE_EQ(clamp_probability(1.1), 1.0);
    EXPECT_DOUBLE_EQ(clamp_probability(0.5), 0.5);
}

TEST(ChannelWireConversion, RoundTrips)
{
    for (WireCount w = 1; w <= 64; ++w) {
        EXPECT_EQ(wires_from_channels(channels_from_wires(w)), w);
    }
}

TEST(FormatDepth, PaperLabels)
{
    EXPECT_EQ(format_depth(48 * kibi), "48K");
    EXPECT_EQ(format_depth(7 * mebi), "7M");
    EXPECT_EQ(format_depth(100), "100");
}

TEST(FormatDepth, FractionalMega)
{
    EXPECT_EQ(format_depth(parse_depth("1.256M")), "1.256M");
}

TEST(ParseDepth, RoundTripsPaperValues)
{
    for (const char* label : {"48K", "56K", "128K", "384K", "1M", "7M", "14M", "3.512M"}) {
        EXPECT_EQ(format_depth(parse_depth(label)), label) << label;
    }
}

TEST(ParseDepth, PlainIntegers)
{
    EXPECT_EQ(parse_depth("49152"), 49152);
}

TEST(ParseDepth, LowerCaseSuffix)
{
    EXPECT_EQ(parse_depth("48k"), 48 * kibi);
    EXPECT_EQ(parse_depth("7m"), 7 * mebi);
}

TEST(ParseDepth, RejectsMalformed)
{
    EXPECT_THROW((void)parse_depth(""), ValidationError);
    EXPECT_THROW((void)parse_depth("K"), ValidationError);
    EXPECT_THROW((void)parse_depth("12Q"), ValidationError);
    EXPECT_THROW((void)parse_depth("abc"), ValidationError);
    EXPECT_THROW((void)parse_depth("-48K"), ValidationError);
    EXPECT_THROW((void)parse_depth("0"), ValidationError);
}

TEST(FormatThroughput, EngineeringStyle)
{
    EXPECT_EQ(format_throughput(13000.0), "1.30e4");
    EXPECT_EQ(format_throughput(500.0), "500.0");
}

TEST(FormatSeconds, MillisecondResolution)
{
    EXPECT_EQ(format_seconds(1.4675), "1.468 s");
    EXPECT_EQ(format_seconds(0.0), "0.000 s");
}

TEST(FormatDollars, ThousandsSeparators)
{
    EXPECT_EQ(format_dollars(24000.0), "$24,000");
    EXPECT_EQ(format_dollars(8000.0), "$8,000");
    EXPECT_EQ(format_dollars(500.0), "$500");
    EXPECT_EQ(format_dollars(1234567.0), "$1,234,567");
}

TEST(ParseErrorType, CarriesFileAndLine)
{
    const ParseError error("bench.soc", 42, "bad token");
    EXPECT_EQ(error.file(), "bench.soc");
    EXPECT_EQ(error.line(), 42);
    EXPECT_NE(std::string(error.what()).find("bench.soc:42"), std::string::npos);
}

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int differences = 0;
    for (int i = 0; i < 32; ++i) {
        if (a.uniform_int(0, 1'000'000) != b.uniform_int(0, 1'000'000)) {
            ++differences;
        }
    }
    EXPECT_GT(differences, 0);
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t value = rng.uniform_int(5, 9);
        EXPECT_GE(value, 5);
        EXPECT_LE(value, 9);
    }
}

TEST(Rng, UniformRealStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double value = rng.uniform_real(-1.5, 2.5);
        EXPECT_GE(value, -1.5);
        EXPECT_LT(value, 2.5);
    }
}

TEST(Rng, LogNormalIsPositive)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GT(rng.log_normal(0.0, 1.0), 0.0);
    }
}

} // namespace
} // namespace mst
