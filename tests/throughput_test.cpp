// Unit tests for the Section-4 throughput model (Equations 4.1 - 4.6).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "throughput/model.hpp"

namespace mst {
namespace {

ProbeStation paper_prober()
{
    return ProbeStation{0.5, 0.001};
}

TEST(ContactPass, Equation42HandValues)
{
    // P_c(n) = 1 - (1 - p_c^I)^n
    const double pc = 0.999;
    const int terminals = 40;
    const double single = std::pow(pc, terminals);
    EXPECT_NEAR(contact_pass_probability(pc, terminals, 1), single, 1e-12);
    EXPECT_NEAR(contact_pass_probability(pc, terminals, 3),
                1.0 - std::pow(1.0 - single, 3), 1e-12);
}

TEST(ContactPass, PerfectYieldAlwaysPasses)
{
    EXPECT_DOUBLE_EQ(contact_pass_probability(1.0, 500, 1), 1.0);
}

TEST(ContactPass, MonotoneInSites)
{
    double previous = 0.0;
    for (SiteCount n = 1; n <= 10; ++n) {
        const double p = contact_pass_probability(0.995, 60, n);
        EXPECT_GE(p, previous);
        previous = p;
    }
}

TEST(ManufacturingPass, Equation43HandValues)
{
    EXPECT_DOUBLE_EQ(manufacturing_pass_probability(0.7, 1), 0.7);
    EXPECT_NEAR(manufacturing_pass_probability(0.7, 2), 1.0 - 0.09, 1e-12);
}

TEST(Throughput, Equation45SingleSite)
{
    ThroughputInputs inputs;
    inputs.sites = 1;
    inputs.manufacturing_test_time = 1.468;
    inputs.contacted_terminals_per_soc = 79;
    const ThroughputResult result = evaluate_throughput(inputs, paper_prober(), YieldModel{});
    // D_th = 3600 * 1 / (0.5 + 0.001 + 1.468)
    EXPECT_NEAR(result.devices_per_hour, 3600.0 / 1.969, 1e-9);
    EXPECT_DOUBLE_EQ(result.unique_devices_per_hour, result.devices_per_hour);
}

TEST(Throughput, ScalesLinearlyInSitesAtFixedTime)
{
    ThroughputInputs inputs;
    inputs.manufacturing_test_time = 1.0;
    inputs.contacted_terminals_per_soc = 50;
    inputs.sites = 1;
    const double one = evaluate_throughput(inputs, paper_prober(), YieldModel{}).devices_per_hour;
    inputs.sites = 7;
    const double seven = evaluate_throughput(inputs, paper_prober(), YieldModel{}).devices_per_hour;
    EXPECT_NEAR(seven, 7.0 * one, 1e-9);
}

TEST(Throughput, AbortOnFailIsALowerBoundOnTime)
{
    ThroughputInputs inputs;
    inputs.sites = 2;
    inputs.manufacturing_test_time = 1.4;
    inputs.contacted_terminals_per_soc = 80;
    YieldModel yields;
    yields.contact_yield_per_terminal = 0.999;
    yields.manufacturing_yield = 0.7;

    const ThroughputResult full =
        evaluate_throughput(inputs, paper_prober(), yields, AbortOnFail::off);
    const ThroughputResult aborted =
        evaluate_throughput(inputs, paper_prober(), yields, AbortOnFail::on);
    EXPECT_LE(aborted.total_test_time, full.total_test_time);
    EXPECT_GE(aborted.devices_per_hour, full.devices_per_hour);
}

TEST(Throughput, AbortOnFailEquation44HandValue)
{
    // n=1, p_c=1 (contact always passes), p_m = 0.7:
    // E[t_t] = t_c + t_m * 0.7.
    ThroughputInputs inputs;
    inputs.sites = 1;
    inputs.manufacturing_test_time = 1.4;
    inputs.contacted_terminals_per_soc = 80;
    YieldModel yields;
    yields.manufacturing_yield = 0.7;
    const ThroughputResult result =
        evaluate_throughput(inputs, paper_prober(), yields, AbortOnFail::on);
    EXPECT_NEAR(result.total_test_time, 0.001 + 1.4 * 0.7, 1e-12);
}

TEST(Throughput, AbortOnFailBenefitVanishesWithManySites)
{
    // The paper: "the effectiveness of abort-on-fail becomes invisible
    // beyond n = 4" (at p_m = 0.7). Check the expected time approaches
    // the full time as n grows.
    ThroughputInputs inputs;
    inputs.manufacturing_test_time = 1.4;
    inputs.contacted_terminals_per_soc = 80;
    YieldModel yields;
    yields.manufacturing_yield = 0.7;
    inputs.sites = 8;
    const ThroughputResult result =
        evaluate_throughput(inputs, paper_prober(), yields, AbortOnFail::on);
    EXPECT_GT(result.manufacturing_time, 0.999 * 1.4);
}

TEST(Throughput, RetestFractionMatchesEquation46)
{
    ThroughputInputs inputs;
    inputs.sites = 1;
    inputs.manufacturing_test_time = 1.0;
    inputs.contacted_terminals_per_soc = 100;
    YieldModel yields;
    yields.contact_yield_per_terminal = 0.999;
    const ThroughputResult result = evaluate_throughput(inputs, paper_prober(), yields);
    const double expected_fraction = 1.0 - std::pow(0.999, 100);
    EXPECT_NEAR(result.retest_fraction, expected_fraction, 1e-12);
    EXPECT_NEAR(result.unique_devices_per_hour,
                result.devices_per_hour / (1.0 + expected_fraction), 1e-9);
}

TEST(Throughput, UniqueNeverExceedsTotal)
{
    ThroughputInputs inputs;
    inputs.sites = 4;
    inputs.manufacturing_test_time = 0.7;
    inputs.contacted_terminals_per_soc = 200;
    YieldModel yields;
    yields.contact_yield_per_terminal = 0.99;
    const ThroughputResult result = evaluate_throughput(inputs, paper_prober(), yields);
    EXPECT_LE(result.unique_devices_per_hour, result.devices_per_hour);
}

TEST(Throughput, FewerContactedTerminalsMeansFewerRetests)
{
    // Fig 7(a)'s mechanism: deep memory -> fewer channels -> fewer pads
    // -> less re-testing.
    YieldModel yields;
    yields.contact_yield_per_terminal = 0.999;
    ThroughputInputs narrow;
    narrow.sites = 1;
    narrow.manufacturing_test_time = 1.0;
    narrow.contacted_terminals_per_soc = 20;
    ThroughputInputs wide = narrow;
    wide.contacted_terminals_per_soc = 200;
    const auto narrow_result = evaluate_throughput(narrow, paper_prober(), yields);
    const auto wide_result = evaluate_throughput(wide, paper_prober(), yields);
    EXPECT_LT(narrow_result.retest_fraction, wide_result.retest_fraction);
}

TEST(Throughput, FigureOfMeritSelectsPolicy)
{
    ThroughputResult result;
    result.devices_per_hour = 100.0;
    result.unique_devices_per_hour = 80.0;
    EXPECT_DOUBLE_EQ(figure_of_merit(result, RetestPolicy::none), 100.0);
    EXPECT_DOUBLE_EQ(figure_of_merit(result, RetestPolicy::retest_contact_failures), 80.0);
}

TEST(Throughput, ValidationErrors)
{
    ThroughputInputs inputs;
    inputs.sites = 0;
    EXPECT_THROW((void)evaluate_throughput(inputs, paper_prober(), YieldModel{}), ValidationError);

    inputs.sites = 1;
    inputs.manufacturing_test_time = -1.0;
    EXPECT_THROW((void)evaluate_throughput(inputs, paper_prober(), YieldModel{}), ValidationError);

    inputs.manufacturing_test_time = 1.0;
    inputs.contacted_terminals_per_soc = -1;
    EXPECT_THROW((void)evaluate_throughput(inputs, paper_prober(), YieldModel{}), ValidationError);

    inputs.contacted_terminals_per_soc = 10;
    YieldModel bad;
    bad.contact_yield_per_terminal = 1.5;
    EXPECT_THROW((void)evaluate_throughput(inputs, paper_prober(), bad), ValidationError);
    bad = YieldModel{};
    bad.manufacturing_yield = -0.2;
    EXPECT_THROW((void)evaluate_throughput(inputs, paper_prober(), bad), ValidationError);
}

/// Parameterized sweep: the abort-on-fail expected time is monotone
/// non-decreasing in the number of sites for any yield.
class AbortOnFailSweep : public testing::TestWithParam<double> {};

TEST_P(AbortOnFailSweep, ExpectedTimeGrowsWithSites)
{
    const double pm = GetParam();
    YieldModel yields;
    yields.manufacturing_yield = pm;
    double previous = -1.0;
    for (SiteCount n = 1; n <= 8; ++n) {
        ThroughputInputs inputs;
        inputs.sites = n;
        inputs.manufacturing_test_time = 1.4;
        inputs.contacted_terminals_per_soc = 80;
        const ThroughputResult result =
            evaluate_throughput(inputs, paper_prober(), yields, AbortOnFail::on);
        EXPECT_GE(result.total_test_time, previous) << "n=" << n << " pm=" << pm;
        previous = result.total_test_time;
    }
}

INSTANTIATE_TEST_SUITE_P(Fig7bYields, AbortOnFailSweep,
                         testing::Values(1.0, 0.98, 0.95, 0.90, 0.80, 0.70));

} // namespace
} // namespace mst
