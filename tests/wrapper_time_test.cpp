// Exhaustive cross-check of the fast wrapper-time path: the loads-only
// WrapperTimeCalculator and the TableBuild::fast staircases must be
// byte-identical to the full design_wrapper reference at every width.
#include <gtest/gtest.h>

#include <string>

#include "arch/channel_group.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "soc/generator.hpp"
#include "soc/profiles.hpp"
#include "wrapper/pareto.hpp"
#include "wrapper/time_calculator.hpp"
#include "wrapper/wrapper_design.hpp"

namespace mst {
namespace {

void expect_calculator_matches_reference(const Module& module)
{
    const WrapperTimeCalculator calculator(module);
    const WireCount limit = std::min(module.max_useful_width(), width_cap);
    for (WireCount w = 1; w <= limit; ++w) {
        ASSERT_EQ(calculator.time(w), wrapped_test_time(module, w))
            << "module '" << module.name() << "' at width " << w;
    }
    // Beyond the useful width the time must saturate, not change.
    EXPECT_EQ(calculator.time(limit + 7), wrapped_test_time(module, limit + 7))
        << "module '" << module.name() << "' beyond max useful width";
}

TEST(WrapperTimeCalculator, MatchesDesignWrapperOnBenchmarkSocs)
{
    for (const std::string& name : {"d695", "p22810", "p34392"}) {
        const Soc soc = make_benchmark_soc(name);
        for (const Module& module : soc.modules()) {
            expect_calculator_matches_reference(module);
        }
    }
}

TEST(WrapperTimeCalculator, MatchesDesignWrapperOnRandomSocs)
{
    for (const std::uint64_t seed : test_seeds::property_cases) {
        const Soc soc = random_soc(seed, 10);
        for (const Module& module : soc.modules()) {
            expect_calculator_matches_reference(module);
        }
    }
}

TEST(WrapperTimeCalculator, HandlesDegenerateModules)
{
    // No scan chains at all (memory-interface style module).
    const Module combinational("comb", 17, 9, 3, 250, {});
    expect_calculator_matches_reference(combinational);

    // Scan chains but no functional terminals on one side.
    const Module no_outputs("no_out", 12, 0, 0, 50, {100, 80, 3});
    expect_calculator_matches_reference(no_outputs);

    // One long chain dominating many short ones.
    const Module skewed("skewed", 4, 4, 0, 10, {5000, 1, 1, 1, 1, 1, 1, 1});
    expect_calculator_matches_reference(skewed);

    EXPECT_THROW((void)WrapperTimeCalculator(combinational).time(0), ValidationError);
}

TEST(ModuleTimeTable, FastBuildEqualsReferenceBuild)
{
    const Soc soc = make_benchmark_soc("d695");
    for (const Module& module : soc.modules()) {
        const ModuleTimeTable fast(module, 0, TableBuild::fast);
        const ModuleTimeTable reference(module, 0, TableBuild::reference);
        ASSERT_EQ(fast.max_width(), reference.max_width()) << module.name();
        for (WireCount w = 1; w <= fast.max_width(); ++w) {
            ASSERT_EQ(fast.time(w), reference.time(w)) << module.name() << " width " << w;
            ASSERT_EQ(fast.used_width(w), reference.used_width(w))
                << module.name() << " width " << w;
        }
        EXPECT_EQ(fast.min_area(), reference.min_area()) << module.name();
        ASSERT_EQ(fast.pareto().size(), reference.pareto().size()) << module.name();
        for (std::size_t i = 0; i < fast.pareto().size(); ++i) {
            EXPECT_EQ(fast.pareto()[i].width, reference.pareto()[i].width);
            EXPECT_EQ(fast.pareto()[i].test_time, reference.pareto()[i].test_time);
        }
    }
}

TEST(SocTimeTables, TotalMinAreaSumsModuleMinima)
{
    const Soc soc = make_benchmark_soc("d695");
    const SocTimeTables tables(soc);
    CycleCount expected = 0;
    for (int m = 0; m < tables.module_count(); ++m) {
        expected += tables.table(m).min_area();
    }
    EXPECT_EQ(tables.total_min_area(), expected);
    EXPECT_GT(tables.total_min_area(), 0);
}

} // namespace
} // namespace mst
