// Property tests of the exact layer over the random SOC population:
// the LB <= exact <= Step-1 sandwich, anytime determinism across
// thread counts, and seeding-never-worsens.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "baseline/lower_bound.hpp"
#include "common/error.hpp"
#include "core/step1.hpp"
#include "exact/branch_bound.hpp"
#include "soc/generator.hpp"

namespace mst {
namespace {

std::vector<std::vector<int>> step1_groups(const Step1Result& step1)
{
    std::vector<std::vector<int>> groups;
    groups.reserve(step1.architecture.groups().size());
    for (const ChannelGroup& group : step1.architecture.groups()) {
        groups.push_back(group.module_indices());
    }
    return groups;
}

/// Step 1 on a 512-channel ATE at `depth`, or nullopt when the instance
/// is infeasible there (skipped by the properties below).
std::optional<Step1Result> try_step1(const SocTimeTables& tables, CycleCount depth)
{
    AteSpec ate;
    ate.channels = 512;
    ate.vector_memory_depth = depth;
    try {
        return run_step1(tables, ate, OptimizeOptions{});
    } catch (const InfeasibleError&) {
        return std::nullopt;
    }
}

TEST(ExactProperty, SandwichHoldsAcrossPopulation)
{
    // LB <= exact <= Step 1 on random SOCs up to 10 modules, across
    // depths from tight to roomy. The exact search is seeded from the
    // Step-1 partition exactly as the certifier runs it.
    int checked = 0;
    for (const std::uint64_t seed : {3u, 5u, 8u, 13u, 21u}) {
        for (const int count : {6, 10}) {
            const Soc soc = random_soc(seed, count);
            const SocTimeTables tables(soc);
            for (const CycleCount depth : {60'000, 90'000, 150'000}) {
                const auto step1 = try_step1(tables, depth);
                if (!step1) {
                    continue;
                }
                const WireCount step1_wires = wires_from_channels(step1->channels);
                ExactOptions options;
                options.seed = step1_groups(*step1);
                const ExactResult exact = exact_search(tables, depth, options);
                const auto lb = lower_bound_wires(tables, depth);
                ASSERT_TRUE(lb.has_value());
                EXPECT_TRUE(exact.certified);
                EXPECT_LE(*lb, exact.wires) << soc.name() << " depth " << depth;
                EXPECT_LE(exact.wires, step1_wires) << soc.name() << " depth " << depth;
                ++checked;
            }
        }
    }
    // The population must actually exercise the property.
    EXPECT_GE(checked, 10);
}

TEST(ExactProperty, ResultsAreThreadCountInvariant)
{
    // Both the exhaustive search and a node-budget-truncated anytime
    // run must return byte-identical results (wires, node counts,
    // certification, groups) at 1, 2, and 8 threads.
    const Soc soc = random_soc(7, 10);
    const SocTimeTables tables(soc);
    CycleCount depth = 0;
    std::optional<ExactResult> full;
    for (const CycleCount candidate : {60'000, 90'000, 150'000, 300'000}) {
        try {
            full = exact_search(tables, candidate, {});
            depth = candidate;
            break;
        } catch (const InfeasibleError&) {
        }
    }
    if (!full) {
        GTEST_SKIP() << "instance infeasible at every probed depth";
    }
    ASSERT_GE(full->nodes_explored, 8);

    ExactOptions options;
    for (const int threads : {1, 2, 8}) {
        options.threads = threads;
        options.node_limit = 0;
        const ExactResult exhaustive = exact_search(tables, depth, options);
        EXPECT_EQ(exhaustive.wires, full->wires) << "threads " << threads;
        EXPECT_EQ(exhaustive.nodes_explored, full->nodes_explored) << "threads " << threads;
        EXPECT_EQ(exhaustive.groups, full->groups) << "threads " << threads;
        EXPECT_TRUE(exhaustive.certified);
    }

    options.threads = 1;
    options.node_limit = std::max<std::int64_t>(1, full->nodes_explored / 2);
    const ExactResult reference = exact_search(tables, depth, options);
    EXPECT_GE(reference.wires, full->wires); // truncation never beats the optimum
    for (const int threads : {2, 8}) {
        options.threads = threads;
        const ExactResult truncated = exact_search(tables, depth, options);
        EXPECT_EQ(truncated.wires, reference.wires) << "threads " << threads;
        EXPECT_EQ(truncated.nodes_explored, reference.nodes_explored) << "threads " << threads;
        EXPECT_EQ(truncated.certified, reference.certified) << "threads " << threads;
        EXPECT_EQ(truncated.groups, reference.groups) << "threads " << threads;
    }
}

TEST(ExactProperty, SeedingNeverWorsens)
{
    for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
        const Soc soc = random_soc(seed, 8);
        const SocTimeTables tables(soc);
        const CycleCount depth = 120'000;
        const auto step1 = try_step1(tables, depth);
        if (!step1) {
            continue;
        }
        const WireCount step1_wires = wires_from_channels(step1->channels);

        // Seeded and unseeded certified runs agree on the optimum, and
        // the seeded one never returns more wires than its seed.
        ExactOptions seeded;
        seeded.seed = step1_groups(*step1);
        const ExactResult with_seed = exact_search(tables, depth, seeded);
        const ExactResult without_seed = exact_search(tables, depth, {});
        ASSERT_TRUE(with_seed.certified);
        ASSERT_TRUE(without_seed.certified);
        EXPECT_EQ(with_seed.wires, without_seed.wires);
        EXPECT_LE(with_seed.wires, step1_wires);

        // With no node budget to improve on it, the incumbent built
        // from the seed comes back as-is — still never worse. (A
        // one-node run may still certify: when the seed is optimal the
        // root relaxation alone can exhaust the tree.)
        ExactOptions stunted = seeded;
        stunted.node_limit = 1;
        const ExactResult incumbent = exact_search(tables, depth, stunted);
        EXPECT_LE(incumbent.wires, step1_wires);
        if (incumbent.certified) {
            EXPECT_EQ(incumbent.wires, without_seed.wires);
        }
    }
}

} // namespace
} // namespace mst
