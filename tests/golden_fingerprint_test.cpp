// Golden fingerprint tests for the memoized Step-1/Step-2 pipeline: on
// every ITC'02 benchmark SOC and every ExpansionPolicy ablation, the
// fast path (WrapperTimeCalculator tables + PackEngine memo) must
// produce a Solution byte-identical to the from-scratch seed pipeline
// (reference table build, no memoization). Solutions are compared via
// their full deterministic JSON rendering, so sites, channels, cycles,
// throughput, TAM plan, E-RPCT wrapper, and the whole site curve all
// participate in the equality.
#include <gtest/gtest.h>

#include <string>

#include "arch/channel_group.hpp"
#include "core/optimizer.hpp"
#include "report/solution_json.hpp"
#include "soc/profiles.hpp"

namespace mst {
namespace {

const char* policy_name(ExpansionPolicy policy)
{
    switch (policy) {
    case ExpansionPolicy::widen_by_kmin:
        return "widen_by_kmin";
    case ExpansionPolicy::min_widening:
        return "min_widening";
    case ExpansionPolicy::always_new_group:
        return "always_new_group";
    }
    return "?";
}

class GoldenFingerprint : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenFingerprint, MemoizedPipelineMatchesFromScratchRun)
{
    const Soc soc = make_benchmark_soc(GetParam());
    const SocTimeTables fast_tables(soc, TableBuild::fast);
    const SocTimeTables reference_tables(soc, TableBuild::reference);

    TestCell cell; // 512 channels x 7M vectors, the paper's cell

    for (const ExpansionPolicy policy :
         {ExpansionPolicy::widen_by_kmin, ExpansionPolicy::min_widening,
          ExpansionPolicy::always_new_group}) {
        OptimizeOptions memoized;
        memoized.expansion = policy;
        memoized.memoize = true;

        OptimizeOptions from_scratch = memoized;
        from_scratch.memoize = false;

        const Solution fast = optimize_multi_site(fast_tables, cell, memoized);
        const Solution seed = optimize_multi_site(reference_tables, cell, from_scratch);

        EXPECT_EQ(solution_to_json(fast), solution_to_json(seed))
            << GetParam() << " under " << policy_name(policy);

        // The memoized run must not do more greedy work than the
        // from-scratch run; the cache only ever removes passes.
        EXPECT_EQ(fast.stats.packing.pack_calls, seed.stats.packing.pack_calls)
            << GetParam() << " under " << policy_name(policy);
        EXPECT_LE(fast.stats.packing.greedy_passes, seed.stats.packing.greedy_passes)
            << GetParam() << " under " << policy_name(policy);
        EXPECT_EQ(seed.stats.packing.pack_cache_hits, 0)
            << GetParam() << " under " << policy_name(policy);
    }
}

INSTANTIATE_TEST_SUITE_P(Itc02Socs, GoldenFingerprint,
                         ::testing::Values("d695", "p22810", "p34392", "p93791"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                             return std::string(info.param);
                         });

} // namespace
} // namespace mst
