// Integration tests for the persistent request service (service/):
// request/response schema, cross-request caching (hits, eviction),
// error isolation, and thread-count-independent response bytes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "core/optimizer.hpp"
#include "report/solution_json.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/tables_cache.hpp"
#include "soc/profiles.hpp"
#include "soc/writer.hpp"

namespace mst {
namespace {

/// Parse a response line back into a JSON tree (the service must emit
/// valid JSON even for errors).
JsonValue response(const std::string& line)
{
    return JsonValue::parse(line);
}

double stat(const JsonValue& root, const std::string& section, const std::string& field)
{
    const JsonValue* stats = root.find("stats");
    EXPECT_NE(stats, nullptr);
    const JsonValue* group = stats->find(section);
    EXPECT_NE(group, nullptr);
    const JsonValue* value = group->find(field);
    EXPECT_NE(value, nullptr);
    return value->as_number();
}

TEST(Service, OptimizeResponseMatchesDirectLibraryCall)
{
    RequestService service;
    const std::vector<std::string> out = service.execute(
        {R"({"id":"r1","soc":"d695","channels":256,"depth":"48K","broadcast":true})"});
    ASSERT_EQ(out.size(), 1U);
    const JsonValue reply = response(out[0]);
    EXPECT_EQ(reply.find("id")->as_string(), "r1");
    EXPECT_TRUE(reply.find("ok")->as_bool());

    // The embedded solution must be the library's own answer, byte for
    // byte: "serving" may never change the optimization result.
    TestCell cell;
    cell.ate.channels = 256;
    cell.ate.vector_memory_depth = 48 * kibi;
    OptimizeOptions options;
    options.broadcast = BroadcastMode::stimuli;
    const Solution direct = optimize_multi_site(make_benchmark_soc("d695"), cell, options);
    const std::string expected = solution_to_json(direct, JsonStyle::compact);
    const std::size_t start = out[0].find("\"solution\":");
    ASSERT_NE(start, std::string::npos);
    EXPECT_EQ(out[0].substr(start + 11, expected.size()), expected);

    const JsonValue* solution = reply.find("solution");
    ASSERT_NE(solution, nullptr);
    EXPECT_EQ(solution->find("sites")->as_int(), direct.sites);
    EXPECT_EQ(solution->find("channels_per_site")->as_int(), direct.channels_per_site);
    EXPECT_EQ(solution->find("test_cycles")->as_int(), direct.test_cycles);
}

TEST(Service, CachesAcrossRequests)
{
    RequestService service;
    const std::vector<std::string> out = service.execute({
        R"({"id":1,"soc":"d695","channels":256,"depth":"48K"})",
        R"({"id":2,"soc":"d695","channels":256,"depth":"48K"})", // memo hit
        R"({"id":3,"soc":"d695","channels":512,"depth":"7M"})",  // tables hit
        R"({"id":4,"op":"stats"})",
    });
    ASSERT_EQ(out.size(), 4U);
    EXPECT_EQ(out[0].substr(out[0].find("\"solution\"")),
              out[1].substr(out[1].find("\"solution\"")));
    const JsonValue stats = response(out[3]);
    EXPECT_EQ(stat(stats, "solution_memo", "misses"), 2.0);
    EXPECT_EQ(stat(stats, "solution_memo", "hits"), 1.0);
    EXPECT_EQ(stat(stats, "tables_cache", "misses"), 1.0);
    EXPECT_EQ(stat(stats, "tables_cache", "hits"), 1.0);
    EXPECT_EQ(stat(stats, "requests", "received"), 3.0);
    EXPECT_EQ(stat(stats, "requests", "ok"), 3.0);
}

TEST(Service, NamePathAndInlineTextShareOneFingerprint)
{
    // The cache keys on content, not on how the SOC was named.
    const std::string text = soc_to_string(make_benchmark_soc("d695"));
    std::string escaped;
    for (const char ch : text) {
        if (ch == '\n') {
            escaped += "\\n";
        } else if (ch == '"' || ch == '\\') {
            escaped += '\\';
            escaped += ch;
        } else {
            escaped += ch;
        }
    }
    RequestService service;
    const std::vector<std::string> out = service.execute({
        R"({"id":1,"soc":"d695","channels":256,"depth":"48K"})",
        R"({"id":2,"soc_text":")" + escaped + R"(","channels":256,"depth":"48K"})",
        R"({"op":"stats"})",
    });
    const JsonValue first = response(out[0]);
    const JsonValue second = response(out[1]);
    ASSERT_TRUE(first.find("ok")->as_bool());
    ASSERT_TRUE(second.find("ok")->as_bool());
    EXPECT_EQ(first.find("fingerprint")->as_string(), second.find("fingerprint")->as_string());
    // Identical content + cell -> the inline request is a pure memo hit.
    const JsonValue stats = response(out[2]);
    EXPECT_EQ(stat(stats, "solution_memo", "hits"), 1.0);
    EXPECT_EQ(stat(stats, "tables_cache", "misses"), 1.0);
}

TEST(Service, TablesCacheEvicts)
{
    ServiceConfig config;
    config.threads = 1; // eviction order is only deterministic serially
    config.tables_cache_capacity = 1;
    RequestService service(config);
    const std::vector<std::string> out = service.execute({
        R"({"soc":"d695","channels":256,"depth":"48K"})",
        R"({"soc":"p22810","channels":256,"depth":"48K"})", // evicts d695
        R"({"soc":"d695","channels":512,"depth":"7M"})",    // rebuild
        R"({"op":"stats"})",
    });
    const JsonValue stats = response(out[3]);
    EXPECT_EQ(stat(stats, "tables_cache", "misses"), 3.0);
    EXPECT_EQ(stat(stats, "tables_cache", "evictions"), 2.0);
    EXPECT_EQ(stat(stats, "tables_cache", "size"), 1.0);
    EXPECT_EQ(stat(stats, "tables_cache", "capacity"), 1.0);
}

TEST(Service, IsolatesEveryRequestError)
{
    RequestService service;
    const std::vector<std::string> out = service.execute({
        "{ not json",
        R"({"id":"dup","soc":"d695","soc":"d695"})",
        R"({"id":"typo","soc":"d695","chanels":256})",
        R"({"id":"both","soc":"d695","soc_text":"soc x\nend\n"})",
        R"({"id":"none"})",
        R"({"id":"badsoc","soc_text":"soc x\nmodule m inputs 1 outputs 1 patterns 1\n"})",
        R"({"id":"nofile","soc":"/nonexistent/x.soc"})",
        R"({"id":"inf","soc":"d695","channels":2,"depth":"1K"})",
        R"({"id":"badcell","soc":"d695","channels":-4})",
        R"({"id":"good","soc":"d695","channels":256,"depth":"48K"})",
    });
    ASSERT_EQ(out.size(), 10U);
    const auto kind_of = [&](std::size_t i) {
        const JsonValue reply = response(out[i]);
        EXPECT_FALSE(reply.find("ok")->as_bool()) << out[i];
        EXPECT_EQ(reply.find("v")->as_int(), 1) << out[i];
        return reply.find("error")->find("kind")->as_string();
    };
    EXPECT_EQ(kind_of(0), "parse");       // malformed request JSON
    EXPECT_EQ(kind_of(1), "parse");       // duplicate JSON key
    EXPECT_EQ(kind_of(2), "validation");  // unknown field
    EXPECT_NE(response(out[2]).find("error")->find("detail")->as_string().find("channels"),
              std::string::npos);          // ... with a suggestion
    EXPECT_EQ(kind_of(3), "validation");  // soc and soc_text together
    EXPECT_EQ(kind_of(4), "validation");  // neither
    EXPECT_EQ(kind_of(5), "parse");       // truncated inline .soc (no 'end')
    EXPECT_EQ(kind_of(6), "parse");       // unreadable path
    EXPECT_EQ(kind_of(7), "infeasible");  // SOC does not fit that cell
    EXPECT_EQ(kind_of(8), "validation");  // invalid cell
    // ... and the good request after all that still succeeds.
    EXPECT_TRUE(response(out[9]).find("ok")->as_bool()) << out[9];
}

TEST(Service, ResponsesAreByteIdenticalAtAnyThreadCount)
{
    std::vector<std::string> lines;
    for (int i = 0; i < 3; ++i) {
        lines.push_back(R"({"id":"a","soc":"d695","channels":256,"depth":"48K"})");
        lines.push_back(R"({"id":"b","soc":"p22810","channels":512,"depth":"7M"})");
        lines.push_back(R"({"id":"c","soc":"d695","channels":512,"depth":"7M","retest":true,"pc":0.99})");
        lines.push_back(R"({"id":"bad","soc":"d695","channels":"x"})");
    }
    lines.push_back(R"({"op":"stats"})");

    ServiceConfig serial;
    serial.threads = 1;
    ServiceConfig wide;
    wide.threads = 8;
    const std::vector<std::string> one = RequestService(serial).execute(lines);
    const std::vector<std::string> eight = RequestService(wide).execute(lines);
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i], eight[i]) << "response " << i;
    }
}

TEST(Service, StatsRequestsAreBarriers)
{
    RequestService service;
    const std::vector<std::string> out = service.execute({
        R"({"soc":"d695","channels":256,"depth":"48K"})",
        R"({"op":"stats"})",
        R"({"soc":"d695","channels":256,"depth":"48K"})",
        R"({"op":"stats"})",
    });
    // First stats sees exactly the one preceding request; the second
    // also counts the first stats request itself.
    EXPECT_EQ(stat(response(out[1]), "requests", "received"), 1.0);
    EXPECT_EQ(stat(response(out[3]), "requests", "received"), 3.0);
    EXPECT_EQ(stat(response(out[3]), "solution_memo", "hits"), 1.0);
}

TEST(Service, ServeLoopAnswersLineByLine)
{
    std::istringstream in(
        "\n"
        R"({"id":"r1","soc":"d695","channels":256,"depth":"48K"})" "\n"
        "   \n"
        "garbage\n"
        R"({"id":"s","op":"stats"})" "\n");
    std::ostringstream out;
    RequestService service;
    service.serve(in, out);

    std::istringstream replies(out.str());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(replies, line)) {
        lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 3U); // blank lines produce no responses
    EXPECT_TRUE(response(lines[0]).find("ok")->as_bool());
    EXPECT_EQ(response(lines[1]).find("error")->find("kind")->as_string(), "parse");
    EXPECT_EQ(stat(response(lines[2]), "requests", "received"), 2.0);
}

TEST(Service, ProtocolVersionIsEchoedAndEnforced)
{
    RequestService service;
    const std::vector<std::string> out = service.execute({
        R"({"id":1,"v":1,"op":"stats"})",
        R"({"id":2,"v":2,"op":"stats"})",
        R"({"id":3,"op":"optimise","soc":"d695"})",
    });
    EXPECT_TRUE(response(out[0]).find("ok")->as_bool());
    EXPECT_EQ(response(out[0]).find("v")->as_int(), 1);
    const JsonValue bad = response(out[1]);
    EXPECT_EQ(bad.find("v")->as_int(), 1); // rejection still speaks v1
    EXPECT_EQ(bad.find("error")->find("kind")->as_string(), "version");
    EXPECT_EQ(bad.find("error")->find("detail")->as_string(), "supported versions: 1");
    const JsonValue typo = response(out[2]);
    EXPECT_EQ(typo.find("error")->find("kind")->as_string(), "validation");
    // Unknown ops come back with a nearest-match suggestion.
    EXPECT_NE(typo.find("error")->find("detail")->as_string().find("optimize"),
              std::string::npos);
}

TEST(Service, HelloIsAConnectionLevelRequest)
{
    // Over stdio there is no connection to negotiate; the op is typed
    // but rejected, pointing the client at the network server.
    RequestService service;
    const std::string out = service.execute_one(R"({"id":"h","op":"hello","stream":false})");
    const JsonValue reply = response(out);
    EXPECT_FALSE(reply.find("ok")->as_bool());
    EXPECT_EQ(reply.find("error")->find("kind")->as_string(), "validation");
}

TEST(Service, CanonicalJsonCoversEveryBinding)
{
    // The canonical renditions are the solution-memo key: every binding
    // must appear, in fixed order, with round-trippable numbers.
    EXPECT_EQ(protocol::options_to_json(OptimizeOptions{}),
              R"({"broadcast":false,"abort_on_fail":false,"retest":false,)"
              R"("step1_only":false,"exact":false,"exact_budget_ms":0,"pc":1,"pm":1})");
    EXPECT_EQ(protocol::cell_to_json(TestCell{}),
              R"({"channels":512,"depth":7340032,"clock":5000000,"index":0.5,)"
              R"("contact":0.001})");
    // And the CLI flag surface is generated from the same tables.
    EXPECT_EQ(protocol::option_flag_specs().size(), protocol::option_bindings().size());
    EXPECT_EQ(protocol::cell_flag_specs().size(), protocol::cell_bindings().size());
}

TEST(Service, SocFingerprintIsContentBased)
{
    const Soc a = make_benchmark_soc("d695");
    const Soc b = make_benchmark_soc("d695");
    const Soc c = make_benchmark_soc("p22810");
    EXPECT_EQ(soc_fingerprint(a), soc_fingerprint(b));
    EXPECT_NE(soc_fingerprint(a), soc_fingerprint(c));
    EXPECT_EQ(fingerprint_hex(soc_fingerprint(a)).size(), 16U);
}

// --- JSON reader corner cases (service/json.hpp) ---

TEST(ServiceJson, ParsesScalarsAndStructures)
{
    const JsonValue value = JsonValue::parse(
        R"({"s":"a\nbé","n":-1.5e3,"t":true,"f":false,"z":null,"a":[1,2],"o":{"k":7}})");
    EXPECT_EQ(value.find("s")->as_string(), "a\nb\xc3\xa9");
    EXPECT_DOUBLE_EQ(value.find("n")->as_number(), -1500.0);
    EXPECT_TRUE(value.find("t")->as_bool());
    EXPECT_FALSE(value.find("f")->as_bool());
    EXPECT_TRUE(value.find("z")->is_null());
    ASSERT_EQ(value.find("a")->as_array().size(), 2U);
    EXPECT_EQ(value.find("o")->find("k")->as_int(), 7);
}

TEST(ServiceJson, RejectsMalformedDocuments)
{
    EXPECT_THROW((void)JsonValue::parse(""), JsonParseError);
    EXPECT_THROW((void)JsonValue::parse("{"), JsonParseError);
    EXPECT_THROW((void)JsonValue::parse("{} trailing"), JsonParseError);
    EXPECT_THROW((void)JsonValue::parse(R"({"a":1,"a":2})"), JsonParseError);
    EXPECT_THROW((void)JsonValue::parse(R"({"a":01})"), JsonParseError);
    EXPECT_THROW((void)JsonValue::parse(R"({"a":+1})"), JsonParseError);
    EXPECT_THROW((void)JsonValue::parse("{\"a\":\"unterminated}"), JsonParseError);
    EXPECT_THROW((void)JsonValue::parse(R"({"a":"\q"})"), JsonParseError);
    EXPECT_THROW((void)JsonValue::parse("[1,]"), JsonParseError);
    try {
        (void)JsonValue::parse("{\"a\":nope}");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError& error) {
        EXPECT_EQ(error.offset(), 5U);
    }
}

TEST(ServiceJson, IntegerAccessorRejectsFractions)
{
    EXPECT_EQ(JsonValue::parse("42").as_int(), 42);
    EXPECT_THROW((void)JsonValue::parse("1.5").as_int(), ValidationError);
    EXPECT_THROW((void)JsonValue::parse("1e30").as_int(), ValidationError);
    EXPECT_THROW((void)JsonValue::parse("\"7\"").as_int(), ValidationError);
}

TEST(Service, InjectedTablesBuildFaultIsTransientNotMemoized)
{
    fault::install_plan(fault::parse_plan("cache.tables_build:fail@1"));
    RequestService service;
    const std::string request =
        R"({"id":"t1","soc":"d695","channels":256,"depth":"48K"})";

    // The injected failure surfaces as one typed internal error...
    const std::string faulted = service.execute_one(request);
    const JsonValue failed = response(faulted);
    EXPECT_FALSE(failed.find("ok")->as_bool()) << faulted;
    EXPECT_EQ(failed.find("error")->find("kind")->as_string(), "internal");
    EXPECT_NE(failed.find("error")->find("message")->as_string().find("injected fault"),
              std::string::npos)
        << faulted;

    // ...and must NOT poison the solution memo: the identical request
    // (same memo key) succeeds once the transient fault has passed.
    fault::clear_plan();
    const std::string healed = service.execute_one(request);
    EXPECT_TRUE(response(healed).find("ok")->as_bool()) << healed;
}

} // namespace
} // namespace mst
