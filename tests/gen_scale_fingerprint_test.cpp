// Golden fingerprints for the generator-scaled bench scenarios
// (gen300x/gen1000x, wide-shallow and narrow-deep): on every scaled SOC
// the memoized pipeline must produce a Solution byte-identical to the
// from-scratch run (no packing memo), and byte-identical at 1, 2, and 8
// threads — the same bar tests/golden_fingerprint_test.cpp and
// tests/parallel_optimizer_test.cpp set for the ITC'02 SOCs, extended to
// the scale the incremental packing core exists for. Solutions are
// compared via their full deterministic JSON rendering, so sites,
// channels, cycles, throughput, TAM plan, and the whole site curve all
// participate in the equality.
#include <gtest/gtest.h>

#include <string>

#include "arch/channel_group.hpp"
#include "core/optimizer.hpp"
#include "report/solution_json.hpp"
#include "soc/generator.hpp"

namespace mst {
namespace {

struct ScaledCase {
    const char* name;
    int modules;
    ScaledShape shape;
};

class GenScaleFingerprint : public ::testing::TestWithParam<ScaledCase> {};

TEST_P(GenScaleFingerprint, MemoizedPipelineMatchesFromScratchAtAnyThreadCount)
{
    const ScaledCase& scaled = GetParam();
    const Soc soc =
        generate_soc(scaled_benchmark_config(scaled.name, scaled.modules, scaled.shape));
    const SocTimeTables tables(soc);
    TestCell cell; // 512 channels x 7M vectors, the paper's cell

    OptimizeOptions from_scratch;
    from_scratch.memoize = false;
    from_scratch.threads = 1;
    const Solution seed = optimize_multi_site(tables, cell, from_scratch);
    const std::string seed_json = solution_to_json(seed);

    OptimizeOptions memoized;
    for (const int threads : {1, 2, 8}) {
        memoized.threads = threads;
        const Solution fast = optimize_multi_site(tables, cell, memoized);
        EXPECT_EQ(solution_to_json(fast), seed_json)
            << scaled.name << " at " << threads << " threads";
        // Memoization only ever removes greedy work; the schedule itself
        // is thread-count independent, so the counters cannot vary with
        // `threads` either.
        EXPECT_EQ(fast.stats.packing.pack_calls, seed.stats.packing.pack_calls);
        EXPECT_LE(fast.stats.packing.greedy_passes, seed.stats.packing.greedy_passes);
    }
    EXPECT_EQ(seed.stats.packing.pack_cache_hits, 0);
}

INSTANTIATE_TEST_SUITE_P(ScaledSocs, GenScaleFingerprint,
                         ::testing::Values(ScaledCase{"gen300x-wide", 3000,
                                                      ScaledShape::wide_shallow},
                                           ScaledCase{"gen300x-deep", 3000,
                                                      ScaledShape::narrow_deep},
                                           ScaledCase{"gen1000x-wide", 10000,
                                                      ScaledShape::wide_shallow},
                                           ScaledCase{"gen1000x-deep", 10000,
                                                      ScaledShape::narrow_deep}),
                         [](const ::testing::TestParamInfo<ScaledCase>& info) {
                             std::string name = info.param.name;
                             for (char& c : name) {
                                 if (c == '-') {
                                     c = '_';
                                 }
                             }
                             return name;
                         });

} // namespace
} // namespace mst
