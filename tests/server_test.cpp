// Integration tests for the TCP front end (service/server.hpp) and its
// frame splitter: loopback round-trips, ordered-mode byte-identity with
// the stdio replay path, streaming id-correlation, admission control,
// graceful-shutdown drain, and malformed/oversized frame isolation.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <functional>
#include <future>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/executor.hpp"
#include "common/faultpoint.hpp"
#include "common/net.hpp"
#include "common/signals.hpp"
#include "service/framing.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

namespace mst {
namespace {

/// A tiny two-module SOC as inline request text: optimizes in
/// microseconds, so server tests spend their time on the network
/// machinery instead of the optimizer.
const char* const tiny_soc =
    R"(soc tiny\nmodule a inputs 8 outputs 8 patterns 50 scan 40 40\n)"
    R"(module b inputs 4 outputs 4 patterns 120 scan 64 60 56\nend\n)";

std::string tiny_request(const std::string& id, int channels)
{
    return std::string("{\"id\":\"") + id + "\",\"soc_text\":\"" + tiny_soc +
           "\",\"channels\":" + std::to_string(channels) + ",\"depth\":\"1M\"}";
}

std::string recv_all(const net::Socket& socket)
{
    std::string data;
    char buffer[16 * 1024];
    for (;;) {
        const long n = socket.read_some(buffer, sizeof buffer);
        if (n <= 0) {
            return data;
        }
        data.append(buffer, static_cast<std::size_t>(n));
    }
}

std::vector<std::string> split_lines(const std::string& text)
{
    std::vector<std::string> lines;
    std::size_t begin = 0;
    while (begin < text.size()) {
        std::size_t end = text.find('\n', begin);
        if (end == std::string::npos) {
            end = text.size();
        }
        lines.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return lines;
}

/// Split a received byte stream of length-prefixed frames.
std::vector<std::string> split_length_prefixed(const std::string& data)
{
    std::vector<std::string> frames;
    std::size_t at = 0;
    while (at + 4 <= data.size()) {
        const std::size_t length =
            (static_cast<std::size_t>(static_cast<unsigned char>(data[at])) << 24) |
            (static_cast<std::size_t>(static_cast<unsigned char>(data[at + 1])) << 16) |
            (static_cast<std::size_t>(static_cast<unsigned char>(data[at + 2])) << 8) |
            static_cast<std::size_t>(static_cast<unsigned char>(data[at + 3]));
        EXPECT_LE(at + 4 + length, data.size()) << "truncated length-prefixed frame";
        frames.push_back(data.substr(at + 4, length));
        at += 4 + length;
    }
    EXPECT_EQ(at, data.size()) << "trailing bytes after the last frame";
    return frames;
}

JsonValue response(const std::string& line)
{
    return JsonValue::parse(line);
}

bool wait_until(const std::function<bool()>& predicate, int timeout_ms = 10000)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!predicate()) {
        if (std::chrono::steady_clock::now() >= deadline) {
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

/// Occupies every global-executor worker until release(), so admitted
/// requests deterministically stay in flight (the admission and drain
/// tests depend on that, not on timing).
class ExecutorBlocker {
public:
    ExecutorBlocker()
    {
        const int workers = Executor::global().worker_count();
        for (int i = 0; i < workers; ++i) {
            futures_.push_back(Executor::global().submit([this] {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [this] { return released_; });
            }));
        }
    }

    void release()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (released_) {
                return;
            }
            released_ = true;
        }
        cv_.notify_all();
        for (std::future<void>& future : futures_) {
            future.wait();
        }
    }

    ~ExecutorBlocker() { release(); }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool released_ = false;
    std::vector<std::future<void>> futures_;
};

/// Read one '\n'-terminated response line (recv_all would block until
/// the server closes the connection).
std::string recv_line(const net::Socket& socket)
{
    std::string line;
    char byte = 0;
    while (socket.read_some(&byte, 1) == 1) {
        if (byte == '\n') {
            return line;
        }
        line.push_back(byte);
    }
    return line;
}

/// Installs a fault plan for one test and disarms on destruction.
class FaultPlanGuard {
public:
    explicit FaultPlanGuard(const std::string& plan)
    {
        fault::install_plan(fault::parse_plan(plan));
    }
    ~FaultPlanGuard() { fault::clear_plan(); }
    FaultPlanGuard(const FaultPlanGuard&) = delete;
    FaultPlanGuard& operator=(const FaultPlanGuard&) = delete;
};

// --- FrameReader (transport-independent splitter) ---

TEST(Framing, NdjsonSplitsStripsAndSkipsBlanks)
{
    FrameReader reader(1024);
    const std::string bytes = "{\"a\":1}\r\n\n   \n{\"b\":2}\n{\"partial";
    reader.feed(bytes.data(), bytes.size());
    std::string frame;
    ASSERT_EQ(reader.next(frame), FrameReader::Status::frame);
    EXPECT_EQ(frame, "{\"a\":1}"); // '\r' stripped
    ASSERT_EQ(reader.next(frame), FrameReader::Status::frame);
    EXPECT_EQ(frame, "{\"b\":2}"); // blank lines skipped
    EXPECT_EQ(reader.next(frame), FrameReader::Status::need_more);
    EXPECT_TRUE(reader.mid_frame());
    reader.feed("}\n", 2);
    ASSERT_EQ(reader.next(frame), FrameReader::Status::frame);
    EXPECT_EQ(frame, "{\"partial}");
    EXPECT_FALSE(reader.mid_frame());
}

TEST(Framing, NdjsonOversizedLineResyncsAtNewline)
{
    FrameReader reader(8);
    const std::string bytes = "0123456789abcdef\nok\n";
    reader.feed(bytes.data(), bytes.size());
    std::string frame;
    ASSERT_EQ(reader.next(frame), FrameReader::Status::oversized);
    ASSERT_EQ(reader.next(frame), FrameReader::Status::frame);
    EXPECT_EQ(frame, "ok"); // the stream recovered at the next newline
}

TEST(Framing, NdjsonOversizedReportsOnceAcrossChunks)
{
    FrameReader reader(4);
    std::string frame;
    reader.feed("xxxxxxxx", 8); // over the cap, newline not yet seen
    ASSERT_EQ(reader.next(frame), FrameReader::Status::oversized);
    reader.feed("yyyy\nok\n", 8); // the rest of the bad line + a good one
    ASSERT_EQ(reader.next(frame), FrameReader::Status::frame);
    EXPECT_EQ(frame, "ok");
}

TEST(Framing, LengthPrefixRoundTripsAndSkipsOversized)
{
    FrameReader reader(16);
    reader.set_framing(protocol::Framing::length_prefix);
    const std::string good = encode_frame(protocol::Framing::length_prefix, "{\"a\":1}");
    const std::string big =
        encode_frame(protocol::Framing::length_prefix, std::string(64, 'x'));
    const std::string bytes = big + good;
    reader.feed(bytes.data(), bytes.size());
    std::string frame;
    ASSERT_EQ(reader.next(frame), FrameReader::Status::oversized);
    ASSERT_EQ(reader.next(frame), FrameReader::Status::frame);
    EXPECT_EQ(frame, "{\"a\":1}"); // the declared length skipped the bad payload
    EXPECT_EQ(reader.next(frame), FrameReader::Status::need_more);
}

// --- Loopback server ---

TEST(Server, LoopbackRoundTripAndServerScopeStats)
{
    Server server;
    server.start();
    const net::Socket client = net::connect(server.endpoint());
    const std::string requests = tiny_request("q1", 64) + "\n" +
                                 "{\"id\":\"s1\",\"op\":\"stats\"}\n" +
                                 "{\"id\":\"s2\",\"op\":\"stats\",\"scope\":\"server\"}\n";
    ASSERT_TRUE(client.write_all(requests));
    client.shutdown_write();
    const std::vector<std::string> lines = split_lines(recv_all(client));
    ASSERT_EQ(lines.size(), 3U);

    const JsonValue ok = response(lines[0]);
    EXPECT_EQ(ok.find("id")->as_string(), "q1");
    EXPECT_EQ(ok.find("v")->as_int(), 1);
    EXPECT_TRUE(ok.find("ok")->as_bool());
    EXPECT_NE(ok.find("solution"), nullptr);

    // Default scope: no transport-dependent section, byte-compatible
    // with the stdio path. Server scope: the network counters appear.
    const JsonValue service_stats = response(lines[1]);
    EXPECT_EQ(service_stats.find("stats")->find("server"), nullptr);
    const JsonValue server_stats = response(lines[2]);
    const JsonValue* section = server_stats.find("stats")->find("server");
    ASSERT_NE(section, nullptr);
    EXPECT_EQ(section->find("connections_accepted")->as_int(), 1);
    EXPECT_EQ(section->find("connections_active")->as_int(), 1);
    EXPECT_EQ(section->find("requests_admitted")->as_int(), 3);
    EXPECT_EQ(section->find("requests_rejected")->as_int(), 0);
    server.stop();
}

TEST(Server, OrderedModeIsByteIdenticalToStdioReplay)
{
    std::ifstream file(std::string(MST_TEST_DATA_DIR) + "/service_replay_50.jsonl");
    ASSERT_TRUE(file.is_open());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(file, line)) {
        if (line.find_first_not_of(" \t\r") != std::string::npos) {
            lines.push_back(line);
        }
    }
    ASSERT_EQ(lines.size(), 50U);

    for (const int threads : {1, 8}) {
        // The stdio replay path (what `mst replay --threads N` runs).
        ServiceConfig service_config;
        service_config.threads = threads;
        const std::vector<std::string> expected =
            RequestService(service_config).execute(lines);

        // The same stream through a real socket in ordered mode.
        ServerConfig config;
        config.service = service_config;
        Server server(config);
        server.start();
        const net::Socket client = net::connect(server.endpoint());
        std::string payload = "{\"op\":\"hello\",\"stream\":false}\n";
        for (const std::string& request : lines) {
            payload += request;
            payload += '\n';
        }
        ASSERT_TRUE(client.write_all(payload));
        client.shutdown_write();
        std::vector<std::string> received = split_lines(recv_all(client));
        server.stop();

        ASSERT_EQ(received.size(), 51U) << "threads=" << threads;
        EXPECT_TRUE(response(received[0]).find("hello") != nullptr);
        received.erase(received.begin());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(received[i], expected[i])
                << "response " << i << " at threads=" << threads;
        }
    }
}

TEST(Server, StreamingResponsesCorrelateById)
{
    Server server;
    server.start();
    const net::Socket client = net::connect(server.endpoint());
    std::string payload;
    std::set<std::string> ids;
    for (const int channels : {16, 24, 32, 48, 64, 96}) {
        const std::string id = "c" + std::to_string(channels);
        ids.insert(id);
        payload += tiny_request(id, channels);
        payload += '\n';
    }
    ASSERT_TRUE(client.write_all(payload));
    client.shutdown_write();
    const std::vector<std::string> lines = split_lines(recv_all(client));
    server.stop();

    // Streaming mode promises one response per request with matching
    // ids, not any particular order.
    ASSERT_EQ(lines.size(), ids.size());
    std::set<std::string> seen;
    for (const std::string& text : lines) {
        const JsonValue reply = response(text);
        EXPECT_TRUE(reply.find("ok")->as_bool()) << text;
        seen.insert(reply.find("id")->as_string());
    }
    EXPECT_EQ(seen, ids);
}

TEST(Server, AdmissionControlRejectsWithTypedErrors)
{
    ServerConfig config;
    config.connection_queue_limit = 2;
    Server server(config);
    server.start();

    ExecutorBlocker blocker; // admitted requests stay in flight
    const net::Socket client = net::connect(server.endpoint());
    std::string payload;
    for (const int channels : {16, 24, 32, 48, 64, 96}) {
        payload += tiny_request("c" + std::to_string(channels), channels);
        payload += '\n';
    }
    ASSERT_TRUE(client.write_all(payload));
    ASSERT_TRUE(wait_until([&] {
        const protocol::ServerCounters counters = server.counters();
        return counters.requests_admitted + counters.requests_rejected >= 6;
    }));
    const protocol::ServerCounters counters = server.counters();
    EXPECT_EQ(counters.requests_admitted, 2U);
    EXPECT_EQ(counters.requests_rejected, 4U);
    EXPECT_EQ(counters.connection_queue_high_water, 2U);

    blocker.release();
    client.shutdown_write();
    const std::vector<std::string> lines = split_lines(recv_all(client));
    server.stop();

    ASSERT_EQ(lines.size(), 6U);
    int ok = 0;
    int overloaded = 0;
    for (const std::string& text : lines) {
        const JsonValue reply = response(text);
        if (reply.find("ok")->as_bool()) {
            ++ok;
        } else {
            EXPECT_EQ(reply.find("error")->find("kind")->as_string(), "overloaded") << text;
            ++overloaded;
        }
    }
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(overloaded, 4);
}

TEST(Server, HealthAnswersInlineWhileTheExecutorIsPinned)
{
    ServerConfig config;
    config.global_queue_limit = 4;
    Server server(config);
    server.start();

    // Every executor worker is busy and two optimize requests are in
    // flight: a health probe must still answer immediately because it
    // runs on the connection reader thread, never the optimizer pool.
    ExecutorBlocker blocker;
    const net::Socket busy = net::connect(server.endpoint());
    ASSERT_TRUE(busy.write_all(tiny_request("b1", 16) + "\n" + tiny_request("b2", 24) +
                               "\n"));
    ASSERT_TRUE(wait_until([&] { return server.counters().requests_admitted >= 2; }));

    const net::Socket probe = net::connect(server.endpoint());
    ASSERT_TRUE(probe.write_all(std::string(R"({"id":"h","op":"health"})") + "\n"));
    probe.shutdown_write();
    const std::vector<std::string> lines = split_lines(recv_all(probe));
    ASSERT_EQ(lines.size(), 1U);
    const JsonValue reply = response(lines[0]);
    EXPECT_TRUE(reply.find("ok")->as_bool());
    const JsonValue* health = reply.find("health");
    ASSERT_NE(health, nullptr);
    EXPECT_EQ(health->find("status")->as_string(), "ok");
    EXPECT_EQ(health->find("shm")->as_string(), "off");
    EXPECT_EQ(health->find("inflight")->as_int(), 2);
    EXPECT_EQ(health->find("queue_limit")->as_int(), 4);
    EXPECT_GT(health->find("executor_threads")->as_int(), 0);

    blocker.release();
    busy.shutdown_write();
    EXPECT_EQ(split_lines(recv_all(busy)).size(), 2U);
    server.stop();
}

TEST(Server, GracefulStopDrainsInFlightRequests)
{
    Server server;
    server.start();

    ExecutorBlocker blocker;
    const net::Socket client = net::connect(server.endpoint());
    const std::string payload =
        tiny_request("a", 16) + "\n" + tiny_request("b", 32) + "\n" + tiny_request("c", 64) + "\n";
    ASSERT_TRUE(client.write_all(payload));
    ASSERT_TRUE(wait_until([&] { return server.counters().requests_admitted >= 3; }));

    // Stop while all three are in flight: stop() must block until they
    // complete and their responses are flushed, never drop them.
    std::thread stopper([&] { server.stop(); });
    blocker.release();
    const std::vector<std::string> lines = split_lines(recv_all(client));
    stopper.join();

    ASSERT_EQ(lines.size(), 3U);
    std::set<std::string> seen;
    for (const std::string& text : lines) {
        const JsonValue reply = response(text);
        EXPECT_TRUE(reply.find("ok")->as_bool()) << text;
        seen.insert(reply.find("id")->as_string());
    }
    EXPECT_EQ(seen, (std::set<std::string>{"a", "b", "c"}));
}

TEST(Server, MalformedAndOversizedFramesDoNotKillTheConnection)
{
    ServerConfig config;
    config.max_frame_bytes = 96;
    Server server(config);
    server.start();
    const net::Socket client = net::connect(server.endpoint());
    const std::string payload = "{ not json\n" + std::string(200, 'x') + "\n" +
                                "{\"id\":\"after\",\"op\":\"stats\"}\n";
    ASSERT_TRUE(client.write_all(payload));
    client.shutdown_write();
    const std::vector<std::string> lines = split_lines(recv_all(client));
    server.stop();

    ASSERT_EQ(lines.size(), 3U);
    EXPECT_EQ(response(lines[0]).find("error")->find("kind")->as_string(), "parse");
    EXPECT_EQ(response(lines[1]).find("error")->find("kind")->as_string(), "parse");
    const JsonValue after = response(lines[2]);
    EXPECT_TRUE(after.find("ok")->as_bool()) << lines[2];
    EXPECT_EQ(after.find("id")->as_string(), "after");
}

TEST(Server, HelloNegotiatesLengthPrefixFraming)
{
    Server server;
    server.start();
    const net::Socket client = net::connect(server.endpoint());
    // The hello travels in the connection's initial framing (ndjson);
    // everything after it — responses included — uses the negotiated one.
    std::string payload = "{\"id\":\"h\",\"op\":\"hello\",\"framing\":\"length_prefix\","
                          "\"stream\":false}\n";
    payload += encode_frame(protocol::Framing::length_prefix, tiny_request("lp", 64));
    payload += encode_frame(protocol::Framing::length_prefix, "{\"id\":\"s\",\"op\":\"stats\"}");
    ASSERT_TRUE(client.write_all(payload));
    client.shutdown_write();
    const std::vector<std::string> frames = split_length_prefixed(recv_all(client));
    server.stop();

    ASSERT_EQ(frames.size(), 3U);
    const JsonValue hello = response(frames[0]);
    EXPECT_EQ(hello.find("hello")->find("framing")->as_string(), "length_prefix");
    EXPECT_FALSE(hello.find("hello")->find("stream")->as_bool());
    EXPECT_TRUE(response(frames[1]).find("ok")->as_bool()) << frames[1];
    EXPECT_EQ(response(frames[1]).find("id")->as_string(), "lp");
    EXPECT_NE(response(frames[2]).find("stats"), nullptr);
}

TEST(Server, LateHelloIsRejectedWithoutClosing)
{
    Server server;
    server.start();
    const net::Socket client = net::connect(server.endpoint());
    const std::string payload = tiny_request("first", 64) + "\n" +
                                "{\"id\":\"late\",\"op\":\"hello\",\"stream\":false}\n" +
                                "{\"id\":\"s\",\"op\":\"stats\"}\n";
    ASSERT_TRUE(client.write_all(payload));
    client.shutdown_write();
    const std::vector<std::string> lines = split_lines(recv_all(client));
    server.stop();

    ASSERT_EQ(lines.size(), 3U);
    std::set<std::string> kinds;
    bool saw_ok = false;
    for (const std::string& text : lines) {
        const JsonValue reply = response(text);
        if (reply.find("ok")->as_bool()) {
            saw_ok = true;
        } else {
            kinds.insert(reply.find("error")->find("kind")->as_string());
        }
    }
    EXPECT_TRUE(saw_ok);
    EXPECT_EQ(kinds, (std::set<std::string>{"validation"}));
}

// --- Fault injection and self-healing (docs/robustness.md) ---

TEST(Server, ExhaustedAcceptShedsIdleConnectionAndRetries)
{
    ServerConfig config;
    config.accept_backoff_ms = 0; // keep the retry instant for the test
    Server server(config);
    server.start();

    // An established, idle connection: one completed request, nothing
    // in flight — the shedding candidate.
    const net::Socket idle = net::connect(server.endpoint());
    ASSERT_TRUE(idle.write_all(tiny_request("idle", 64) + "\n"));
    const std::string first = recv_line(idle);
    EXPECT_TRUE(response(first).find("ok")->as_bool()) << first;
    // A stats request is an in-flight barrier: once answered, the
    // connection is provably idle (inflight == 0) and shed-eligible.
    ASSERT_TRUE(idle.write_all("{\"id\":\"b\",\"op\":\"stats\"}\n"));
    (void)recv_line(idle);

    // The next ready connection trips a simulated EMFILE: the accept
    // loop must shed the idle connection, back off, and then accept the
    // same pending connection on the retry — never die.
    const FaultPlanGuard plan("net.accept:fail@1=EMFILE");
    const net::Socket client = net::connect(server.endpoint());
    ASSERT_TRUE(client.write_all(tiny_request("after-emfile", 48) + "\n"));
    client.shutdown_write();
    const std::vector<std::string> lines = split_lines(recv_all(client));
    ASSERT_EQ(lines.size(), 1U);
    EXPECT_TRUE(response(lines[0]).find("ok")->as_bool()) << lines[0];
    EXPECT_EQ(response(lines[0]).find("id")->as_string(), "after-emfile");

    // The shed connection was closed out from under its (idle) peer.
    EXPECT_EQ(recv_all(idle), "");
    const protocol::ServerCounters counters = server.counters();
    EXPECT_EQ(counters.accept_retries, 1U);
    EXPECT_EQ(counters.connections_shed, 1U);
    server.stop();
}

TEST(Server, InjectedWriteFailureDropsOneConnectionNotTheServer)
{
    Server server;
    server.start();

    const net::Socket victim = net::connect(server.endpoint());
    {
        const FaultPlanGuard plan("net.write:fail@1=EPIPE");
        ASSERT_TRUE(victim.write_all(tiny_request("lost", 64) + "\n"));
        victim.shutdown_write();
        // The injected delivery failure closes the victim connection
        // without writing its response.
        EXPECT_EQ(recv_all(victim), "");
    }

    // The server survives: a fresh connection gets a correct response.
    const net::Socket client = net::connect(server.endpoint());
    ASSERT_TRUE(client.write_all(tiny_request("served", 64) + "\n"));
    client.shutdown_write();
    const std::vector<std::string> lines = split_lines(recv_all(client));
    server.stop();
    ASSERT_EQ(lines.size(), 1U);
    EXPECT_TRUE(response(lines[0]).find("ok")->as_bool()) << lines[0];
    EXPECT_EQ(response(lines[0]).find("id")->as_string(), "served");
}

TEST(Server, LoadSheddingServesCacheHitsWhileAdmissionRefusesWork)
{
    ServerConfig config;
    config.global_queue_limit = 1;
    Server server(config);
    server.start();
    const net::Socket client = net::connect(server.endpoint());

    // Prime the solution memo with one completed request; the stats
    // barrier guarantees its in-flight slot is released before the
    // saturation phase below counts on a queue of exactly one.
    ASSERT_TRUE(client.write_all(tiny_request("prime", 64) + "\n"));
    const std::string primed = recv_line(client);
    ASSERT_TRUE(response(primed).find("ok")->as_bool()) << primed;
    ASSERT_TRUE(client.write_all("{\"id\":\"b\",\"op\":\"stats\"}\n"));
    (void)recv_line(client);

    // Fill the admission queue with a request that stays in flight,
    // then send a memoized request and an unknown one. The memoized one
    // must be answered from the cache (degradation mode); the unknown
    // one needs real work and is refused.
    ExecutorBlocker blocker;
    const std::string payload = tiny_request("busy", 32) + "\n" +
                                tiny_request("hit", 64) + "\n" +
                                tiny_request("miss", 96) + "\n";
    ASSERT_TRUE(client.write_all(payload));
    ASSERT_TRUE(wait_until([&] {
        const protocol::ServerCounters counters = server.counters();
        return counters.load_shed_cache_hits >= 1 && counters.requests_rejected >= 1;
    }));
    blocker.release();
    client.shutdown_write();
    const std::vector<std::string> lines = split_lines(recv_all(client));
    server.stop();

    ASSERT_EQ(lines.size(), 3U);
    bool saw_hit = false;
    bool saw_miss = false;
    bool saw_busy = false;
    for (const std::string& text : lines) {
        const JsonValue reply = response(text);
        const std::string id = reply.find("id")->as_string();
        if (id == "hit") {
            saw_hit = true;
            EXPECT_TRUE(reply.find("ok")->as_bool()) << text;
        } else if (id == "miss") {
            saw_miss = true;
            EXPECT_FALSE(reply.find("ok")->as_bool()) << text;
            EXPECT_EQ(reply.find("error")->find("kind")->as_string(), "overloaded");
        } else if (id == "busy") {
            saw_busy = true;
            EXPECT_TRUE(reply.find("ok")->as_bool()) << text;
        }
    }
    EXPECT_TRUE(saw_hit);
    EXPECT_TRUE(saw_miss);
    EXPECT_TRUE(saw_busy);
    EXPECT_EQ(server.counters().load_shed_cache_hits, 1U);
}

TEST(Server, InjectedFramingFaultDegradesToOneParseError)
{
    Server server;
    server.start();
    const net::Socket client = net::connect(server.endpoint());
    const FaultPlanGuard plan("framing.read:fail@2");
    // Frame 1 decodes normally; frame 2 trips the injected decode
    // failure and degrades to a typed per-request error; frame 3 shows
    // the stream stayed in sync.
    const std::string payload = tiny_request("ok1", 64) + "\n" +
                                tiny_request("faulted", 48) + "\n" +
                                "{\"id\":\"ok2\",\"op\":\"stats\"}\n";
    ASSERT_TRUE(client.write_all(payload));
    client.shutdown_write();
    const std::vector<std::string> lines = split_lines(recv_all(client));
    server.stop();

    ASSERT_EQ(lines.size(), 3U);
    int ok = 0;
    int parse_errors = 0;
    for (const std::string& text : lines) {
        const JsonValue reply = response(text);
        const JsonValue* error = reply.find("error");
        if (error != nullptr) {
            EXPECT_EQ(error->find("kind")->as_string(), "parse") << text;
            EXPECT_NE(error->find("message")->as_string().find("injected framing fault"),
                      std::string::npos)
                << text;
            ++parse_errors;
        } else {
            ++ok;
        }
    }
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(parse_errors, 1);
}

} // namespace
} // namespace mst
