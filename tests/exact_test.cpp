// Tests for the exact branch-and-bound reference solver, and the
// optimality checks it enables on Step 1 and the lower bound.
#include <gtest/gtest.h>

#include "baseline/lower_bound.hpp"
#include "common/error.hpp"
#include "core/step1.hpp"
#include "exact/branch_bound.hpp"
#include "soc/generator.hpp"

namespace mst {
namespace {

TEST(Exact, SingleModuleEqualsItsMinWidth)
{
    const Soc soc("solo", {Module("m", 4, 4, 0, 50, {30, 20})});
    const SocTimeTables tables(soc);
    const CycleCount depth = tables.table(0).time(2) + 5;
    const auto result = exact_min_wires(tables, depth);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->wires, tables.table(0).min_width_for(depth).value());
    ASSERT_EQ(result->groups.size(), 1u);
}

TEST(Exact, MergesIdenticalModulesWhenDepthAllows)
{
    std::vector<Module> modules;
    for (int i = 0; i < 3; ++i) {
        modules.emplace_back("m" + std::to_string(i), 2, 2, 0, 10,
                             std::vector<FlipFlopCount>{20});
    }
    const Soc soc("trio", std::move(modules));
    const SocTimeTables tables(soc);
    const CycleCount each = tables.table(0).time(1);
    // All three fit serially on one wire.
    const auto result = exact_min_wires(tables, 3 * each + 10);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->wires, 1);
    EXPECT_EQ(result->groups.size(), 1u);
}

TEST(Exact, SplitsWhenDepthForcesIt)
{
    std::vector<Module> modules;
    for (int i = 0; i < 3; ++i) {
        modules.emplace_back("m" + std::to_string(i), 2, 2, 0, 10,
                             std::vector<FlipFlopCount>{20});
    }
    const Soc soc("trio", std::move(modules));
    const SocTimeTables tables(soc);
    const CycleCount each = tables.table(0).time(1);
    // One wire holds at most one test: at least... the optimum may still
    // widen a single group; the exact solver decides. It must respect
    // the area lower bound.
    const auto result = exact_min_wires(tables, each + 1);
    ASSERT_TRUE(result.has_value());
    const auto lb = lower_bound_wires(tables, each + 1);
    ASSERT_TRUE(lb.has_value());
    EXPECT_GE(result->wires, *lb);
    EXPECT_GT(result->wires, 1);
}

TEST(Exact, NulloptWhenUntestable)
{
    const Soc soc("solo", {Module("m", 1, 1, 0, 100, {500})});
    const SocTimeTables tables(soc);
    EXPECT_FALSE(exact_min_wires(tables, 50).has_value());
}

TEST(Exact, RejectsOversizedProblems)
{
    const Soc soc = random_soc(1, exact_module_limit + 1);
    const SocTimeTables tables(soc);
    EXPECT_THROW((void)exact_min_wires(tables, 1'000'000), ValidationError);
}

TEST(Exact, RejectsBadDepth)
{
    const Soc soc = random_soc(1, 3);
    const SocTimeTables tables(soc);
    EXPECT_THROW((void)exact_min_wires(tables, 0), ValidationError);
}

TEST(Exact, EveryModuleInExactlyOneGroup)
{
    const Soc soc = random_soc(7, 8);
    const SocTimeTables tables(soc);
    const auto result = exact_min_wires(tables, 120'000);
    ASSERT_TRUE(result.has_value());
    std::vector<int> seen(8, 0);
    for (const auto& group : result->groups) {
        for (const int m : group) {
            ++seen[static_cast<std::size_t>(m)];
        }
    }
    for (const int count : seen) {
        EXPECT_EQ(count, 1);
    }
}

/// The headline property: Step 1 is sandwiched between the [7] lower
/// bound and the exact optimum-plus-nothing — i.e.
/// LB <= exact <= step1, with step1's gap small on these instances.
class ExactGapTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactGapTest, Step1WithinTwoWiresOfOptimal)
{
    const Soc soc = random_soc(GetParam(), 7);
    const SocTimeTables tables(soc);
    const CycleCount depth = 90'000;

    const auto exact = exact_min_wires(tables, depth);
    if (!exact) {
        GTEST_SKIP() << "untestable at this depth";
    }
    const auto lb = lower_bound_wires(tables, depth);
    ASSERT_TRUE(lb.has_value());
    EXPECT_LE(*lb, exact->wires);

    AteSpec ate;
    ate.channels = 512;
    ate.vector_memory_depth = depth;
    const Step1Result step1 = run_step1(tables, ate, OptimizeOptions{});
    const WireCount step1_wires = wires_from_channels(step1.channels);
    EXPECT_GE(step1_wires, exact->wires) << "heuristic beat the exact optimum?!";
    EXPECT_LE(step1_wires, exact->wires + 2) << "Step 1 gap too large";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactGapTest,
                         testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u, 99u, 111u));

} // namespace
} // namespace mst
