// Tests for the exact branch-and-bound reference solver, and the
// optimality checks it enables on Step 1 and the lower bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baseline/lower_bound.hpp"
#include "common/error.hpp"
#include "core/step1.hpp"
#include "exact/branch_bound.hpp"
#include "soc/generator.hpp"

namespace mst {
namespace {

TEST(Exact, SingleModuleEqualsItsMinWidth)
{
    const Soc soc("solo", {Module("m", 4, 4, 0, 50, {30, 20})});
    const SocTimeTables tables(soc);
    const CycleCount depth = tables.table(0).time(2) + 5;
    const auto result = exact_min_wires(tables, depth);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->wires, tables.table(0).min_width_for(depth).value());
    ASSERT_EQ(result->groups.size(), 1u);
}

TEST(Exact, MergesIdenticalModulesWhenDepthAllows)
{
    std::vector<Module> modules;
    for (int i = 0; i < 3; ++i) {
        modules.emplace_back("m" + std::to_string(i), 2, 2, 0, 10,
                             std::vector<FlipFlopCount>{20});
    }
    const Soc soc("trio", std::move(modules));
    const SocTimeTables tables(soc);
    const CycleCount each = tables.table(0).time(1);
    // All three fit serially on one wire.
    const auto result = exact_min_wires(tables, 3 * each + 10);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->wires, 1);
    EXPECT_EQ(result->groups.size(), 1u);
}

TEST(Exact, SplitsWhenDepthForcesIt)
{
    std::vector<Module> modules;
    for (int i = 0; i < 3; ++i) {
        modules.emplace_back("m" + std::to_string(i), 2, 2, 0, 10,
                             std::vector<FlipFlopCount>{20});
    }
    const Soc soc("trio", std::move(modules));
    const SocTimeTables tables(soc);
    const CycleCount each = tables.table(0).time(1);
    // One wire holds at most one test: at least... the optimum may still
    // widen a single group; the exact solver decides. It must respect
    // the area lower bound.
    const auto result = exact_min_wires(tables, each + 1);
    ASSERT_TRUE(result.has_value());
    const auto lb = lower_bound_wires(tables, each + 1);
    ASSERT_TRUE(lb.has_value());
    EXPECT_GE(result->wires, *lb);
    EXPECT_GT(result->wires, 1);
}

TEST(Exact, NulloptWhenUntestable)
{
    const Soc soc("solo", {Module("m", 1, 1, 0, 100, {500})});
    const SocTimeTables tables(soc);
    EXPECT_FALSE(exact_min_wires(tables, 50).has_value());
}

/// Minimum group width by exhaustive scan, using only the clamped
/// accessors: the reference the solver's binary search is checked
/// against in the wide+narrow saturation regression below.
WireCount brute_group_width(const SocTimeTables& tables, const std::vector<int>& members,
                            CycleCount depth)
{
    WireCount max_width = 0;
    for (const int m : members) {
        max_width = std::max(max_width, tables.flat_max_width(m));
    }
    for (WireCount width = 1; width <= max_width; ++width) {
        CycleCount fill = 0;
        for (const int m : members) {
            fill += tables.time_row(m).at_width(width);
        }
        if (fill <= depth) {
            return width;
        }
    }
    return 0; // no width fits
}

TEST(Exact, WideNarrowSaturationMatchesBruteForce)
{
    // One module with a wide staircase next to one whose staircase
    // truncates early (a single short chain): a merged group probes
    // widths far past the narrow module's recorded widths. Those probes
    // must read the saturated tail of the truncated staircase — never
    // past its end — and agree with a brute-force scan over both
    // partitions of the pair using the clamped accessors.
    const Soc soc("mix", {Module("wide", 8, 8, 0, 40, {60, 55, 50, 45, 40, 35, 30, 25}),
                          Module("narrow", 1, 1, 0, 25, {35})});
    const SocTimeTables tables(soc);
    ASSERT_GT(tables.flat_max_width(0), tables.flat_max_width(1));

    const CycleCount solo_floor = std::max(tables.table(0).time(tables.flat_max_width(0)),
                                           tables.table(1).time(tables.flat_max_width(1)));
    const std::vector<CycleCount> depths = {solo_floor, solo_floor + 50, 2 * solo_floor,
                                            8 * solo_floor, 64 * solo_floor};
    for (const CycleCount depth : depths) {
        const WireCount merged = brute_group_width(tables, {0, 1}, depth);
        const WireCount solo0 = brute_group_width(tables, {0}, depth);
        const WireCount solo1 = brute_group_width(tables, {1}, depth);
        WireCount best = merged;
        if (solo0 > 0 && solo1 > 0 && (best == 0 || solo0 + solo1 < best)) {
            best = solo0 + solo1;
        }
        const auto result = exact_min_wires(tables, depth);
        ASSERT_TRUE(result.has_value()) << "depth " << depth;
        EXPECT_TRUE(result->certified);
        EXPECT_EQ(result->wires, best) << "depth " << depth;
    }
}

TEST(Exact, DepthInfeasibilityCarriesKind)
{
    const Soc soc("solo", {Module("m", 1, 1, 0, 100, {500})});
    const SocTimeTables tables(soc);
    try {
        (void)exact_search(tables, 50, {});
        FAIL() << "expected ExactInfeasibleError";
    } catch (const ExactInfeasibleError& error) {
        EXPECT_EQ(error.kind(), ExactInfeasible::depth);
    }
    // The InfeasibleError base keeps generic taxonomy mapping (serve's
    // "infeasible" response kind, batch error rows) working unchanged.
    EXPECT_THROW((void)exact_search(tables, 50, {}), InfeasibleError);
}

TEST(Exact, BudgetInfeasibilityCarriesKind)
{
    std::vector<Module> modules;
    for (int i = 0; i < 3; ++i) {
        modules.emplace_back("m" + std::to_string(i), 2, 2, 0, 10,
                             std::vector<FlipFlopCount>{20});
    }
    const Soc soc("trio", std::move(modules));
    const SocTimeTables tables(soc);
    const CycleCount depth = tables.table(0).time(1) + 1; // forces > 1 wire
    const ExactResult unconstrained = exact_search(tables, depth, {});
    ASSERT_GT(unconstrained.wires, 1);

    ExactOptions tight;
    tight.wire_budget = unconstrained.wires - 1;
    try {
        (void)exact_search(tables, depth, tight);
        FAIL() << "expected ExactInfeasibleError";
    } catch (const ExactInfeasibleError& error) {
        EXPECT_EQ(error.kind(), ExactInfeasible::budget);
    }

    // A budget exactly at the optimum is met, not rejected.
    ExactOptions enough;
    enough.wire_budget = unconstrained.wires;
    const ExactResult at_budget = exact_search(tables, depth, enough);
    EXPECT_EQ(at_budget.wires, unconstrained.wires);
    EXPECT_TRUE(at_budget.certified);
}

TEST(Exact, MalformedSeedsAreRejected)
{
    const Soc soc = random_soc(3, 4);
    const SocTimeTables tables(soc);
    const CycleCount depth = 150'000;
    ASSERT_TRUE(exact_min_wires(tables, depth).has_value());

    const auto run = [&](std::vector<std::vector<int>> seed) {
        ExactOptions options;
        options.seed = std::move(seed);
        return exact_search(tables, depth, options);
    };
    EXPECT_THROW((void)run({{0, 1, 2}}), ValidationError);          // misses module 3
    EXPECT_THROW((void)run({{0, 1}, {1, 2, 3}}), ValidationError);  // covers 1 twice
    EXPECT_THROW((void)run({{0, 1}, {}, {2, 3}}), ValidationError); // empty group
    EXPECT_THROW((void)run({{0, 1}, {2, 4}}), ValidationError);     // out of range
}

TEST(Exact, NodeLimitReturnsUncertifiedIncumbent)
{
    const Soc soc = random_soc(7, 8);
    const SocTimeTables tables(soc);
    const CycleCount depth = 120'000;
    const ExactResult full = exact_search(tables, depth, {});
    ASSERT_TRUE(full.certified);
    ASSERT_GT(full.nodes_explored, 1);

    ExactOptions stunted;
    stunted.node_limit = 1;
    const ExactResult truncated = exact_search(tables, depth, stunted);
    EXPECT_FALSE(truncated.certified);
    EXPECT_GE(truncated.wires, full.wires);
    EXPECT_LT(truncated.nodes_explored, full.nodes_explored);
    // Even the truncated answer is a complete, valid partition.
    std::vector<int> seen(8, 0);
    for (const auto& group : truncated.groups) {
        for (const int m : group) {
            ++seen[static_cast<std::size_t>(m)];
        }
    }
    for (const int count : seen) {
        EXPECT_EQ(count, 1);
    }
}

TEST(Exact, RejectsOversizedProblems)
{
    const Soc soc = random_soc(1, exact_module_limit + 1);
    const SocTimeTables tables(soc);
    EXPECT_THROW((void)exact_min_wires(tables, 1'000'000), ValidationError);
}

TEST(Exact, RejectsBadDepth)
{
    const Soc soc = random_soc(1, 3);
    const SocTimeTables tables(soc);
    EXPECT_THROW((void)exact_min_wires(tables, 0), ValidationError);
}

TEST(Exact, EveryModuleInExactlyOneGroup)
{
    const Soc soc = random_soc(7, 8);
    const SocTimeTables tables(soc);
    const auto result = exact_min_wires(tables, 120'000);
    ASSERT_TRUE(result.has_value());
    std::vector<int> seen(8, 0);
    for (const auto& group : result->groups) {
        for (const int m : group) {
            ++seen[static_cast<std::size_t>(m)];
        }
    }
    for (const int count : seen) {
        EXPECT_EQ(count, 1);
    }
}

/// The headline property: Step 1 is sandwiched between the [7] lower
/// bound and the exact optimum-plus-nothing — i.e.
/// LB <= exact <= step1, with step1's gap small on these instances.
class ExactGapTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactGapTest, Step1WithinTwoWiresOfOptimal)
{
    const Soc soc = random_soc(GetParam(), 7);
    const SocTimeTables tables(soc);
    const CycleCount depth = 90'000;

    const auto exact = exact_min_wires(tables, depth);
    if (!exact) {
        GTEST_SKIP() << "untestable at this depth";
    }
    const auto lb = lower_bound_wires(tables, depth);
    ASSERT_TRUE(lb.has_value());
    EXPECT_LE(*lb, exact->wires);

    AteSpec ate;
    ate.channels = 512;
    ate.vector_memory_depth = depth;
    const Step1Result step1 = run_step1(tables, ate, OptimizeOptions{});
    const WireCount step1_wires = wires_from_channels(step1.channels);
    EXPECT_GE(step1_wires, exact->wires) << "heuristic beat the exact optimum?!";
    EXPECT_LE(step1_wires, exact->wires + 2) << "Step 1 gap too large";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactGapTest,
                         testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u, 99u, 111u));

} // namespace
} // namespace mst
